# Empty compiler generated dependencies file for mel_recency.
# This may be replaced when dependencies are built.

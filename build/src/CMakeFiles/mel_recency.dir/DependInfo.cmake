
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recency/burst_tracker.cc" "src/CMakeFiles/mel_recency.dir/recency/burst_tracker.cc.o" "gcc" "src/CMakeFiles/mel_recency.dir/recency/burst_tracker.cc.o.d"
  "/root/repo/src/recency/propagation_network.cc" "src/CMakeFiles/mel_recency.dir/recency/propagation_network.cc.o" "gcc" "src/CMakeFiles/mel_recency.dir/recency/propagation_network.cc.o.d"
  "/root/repo/src/recency/recency_propagator.cc" "src/CMakeFiles/mel_recency.dir/recency/recency_propagator.cc.o" "gcc" "src/CMakeFiles/mel_recency.dir/recency/recency_propagator.cc.o.d"
  "/root/repo/src/recency/sliding_window.cc" "src/CMakeFiles/mel_recency.dir/recency/sliding_window.cc.o" "gcc" "src/CMakeFiles/mel_recency.dir/recency/sliding_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mel_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmel_recency.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mel_recency.dir/recency/burst_tracker.cc.o"
  "CMakeFiles/mel_recency.dir/recency/burst_tracker.cc.o.d"
  "CMakeFiles/mel_recency.dir/recency/propagation_network.cc.o"
  "CMakeFiles/mel_recency.dir/recency/propagation_network.cc.o.d"
  "CMakeFiles/mel_recency.dir/recency/recency_propagator.cc.o"
  "CMakeFiles/mel_recency.dir/recency/recency_propagator.cc.o.d"
  "CMakeFiles/mel_recency.dir/recency/sliding_window.cc.o"
  "CMakeFiles/mel_recency.dir/recency/sliding_window.cc.o.d"
  "libmel_recency.a"
  "libmel_recency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_recency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

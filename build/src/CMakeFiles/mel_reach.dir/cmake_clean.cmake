file(REMOVE_RECURSE
  "CMakeFiles/mel_reach.dir/reach/distance_label_index.cc.o"
  "CMakeFiles/mel_reach.dir/reach/distance_label_index.cc.o.d"
  "CMakeFiles/mel_reach.dir/reach/naive_reachability.cc.o"
  "CMakeFiles/mel_reach.dir/reach/naive_reachability.cc.o.d"
  "CMakeFiles/mel_reach.dir/reach/pruned_online_search.cc.o"
  "CMakeFiles/mel_reach.dir/reach/pruned_online_search.cc.o.d"
  "CMakeFiles/mel_reach.dir/reach/transitive_closure.cc.o"
  "CMakeFiles/mel_reach.dir/reach/transitive_closure.cc.o.d"
  "CMakeFiles/mel_reach.dir/reach/two_hop_index.cc.o"
  "CMakeFiles/mel_reach.dir/reach/two_hop_index.cc.o.d"
  "libmel_reach.a"
  "libmel_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reach/distance_label_index.cc" "src/CMakeFiles/mel_reach.dir/reach/distance_label_index.cc.o" "gcc" "src/CMakeFiles/mel_reach.dir/reach/distance_label_index.cc.o.d"
  "/root/repo/src/reach/naive_reachability.cc" "src/CMakeFiles/mel_reach.dir/reach/naive_reachability.cc.o" "gcc" "src/CMakeFiles/mel_reach.dir/reach/naive_reachability.cc.o.d"
  "/root/repo/src/reach/pruned_online_search.cc" "src/CMakeFiles/mel_reach.dir/reach/pruned_online_search.cc.o" "gcc" "src/CMakeFiles/mel_reach.dir/reach/pruned_online_search.cc.o.d"
  "/root/repo/src/reach/transitive_closure.cc" "src/CMakeFiles/mel_reach.dir/reach/transitive_closure.cc.o" "gcc" "src/CMakeFiles/mel_reach.dir/reach/transitive_closure.cc.o.d"
  "/root/repo/src/reach/two_hop_index.cc" "src/CMakeFiles/mel_reach.dir/reach/two_hop_index.cc.o" "gcc" "src/CMakeFiles/mel_reach.dir/reach/two_hop_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

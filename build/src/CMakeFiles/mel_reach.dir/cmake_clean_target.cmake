file(REMOVE_RECURSE
  "libmel_reach.a"
)

# Empty compiler generated dependencies file for mel_reach.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mel_graph.dir/graph/bfs.cc.o"
  "CMakeFiles/mel_graph.dir/graph/bfs.cc.o.d"
  "CMakeFiles/mel_graph.dir/graph/components.cc.o"
  "CMakeFiles/mel_graph.dir/graph/components.cc.o.d"
  "CMakeFiles/mel_graph.dir/graph/directed_graph.cc.o"
  "CMakeFiles/mel_graph.dir/graph/directed_graph.cc.o.d"
  "CMakeFiles/mel_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/mel_graph.dir/graph/graph_builder.cc.o.d"
  "CMakeFiles/mel_graph.dir/graph/stats.cc.o"
  "CMakeFiles/mel_graph.dir/graph/stats.cc.o.d"
  "libmel_graph.a"
  "libmel_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cc" "src/CMakeFiles/mel_graph.dir/graph/bfs.cc.o" "gcc" "src/CMakeFiles/mel_graph.dir/graph/bfs.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/CMakeFiles/mel_graph.dir/graph/components.cc.o" "gcc" "src/CMakeFiles/mel_graph.dir/graph/components.cc.o.d"
  "/root/repo/src/graph/directed_graph.cc" "src/CMakeFiles/mel_graph.dir/graph/directed_graph.cc.o" "gcc" "src/CMakeFiles/mel_graph.dir/graph/directed_graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/mel_graph.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/mel_graph.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/mel_graph.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/mel_graph.dir/graph/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mel_core.dir/core/candidate_generator.cc.o"
  "CMakeFiles/mel_core.dir/core/candidate_generator.cc.o.d"
  "CMakeFiles/mel_core.dir/core/entity_linker.cc.o"
  "CMakeFiles/mel_core.dir/core/entity_linker.cc.o.d"
  "CMakeFiles/mel_core.dir/core/parallel_linker.cc.o"
  "CMakeFiles/mel_core.dir/core/parallel_linker.cc.o.d"
  "CMakeFiles/mel_core.dir/core/personalized_search.cc.o"
  "CMakeFiles/mel_core.dir/core/personalized_search.cc.o.d"
  "libmel_core.a"
  "libmel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

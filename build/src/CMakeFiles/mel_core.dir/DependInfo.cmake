
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate_generator.cc" "src/CMakeFiles/mel_core.dir/core/candidate_generator.cc.o" "gcc" "src/CMakeFiles/mel_core.dir/core/candidate_generator.cc.o.d"
  "/root/repo/src/core/entity_linker.cc" "src/CMakeFiles/mel_core.dir/core/entity_linker.cc.o" "gcc" "src/CMakeFiles/mel_core.dir/core/entity_linker.cc.o.d"
  "/root/repo/src/core/parallel_linker.cc" "src/CMakeFiles/mel_core.dir/core/parallel_linker.cc.o" "gcc" "src/CMakeFiles/mel_core.dir/core/parallel_linker.cc.o.d"
  "/root/repo/src/core/personalized_search.cc" "src/CMakeFiles/mel_core.dir/core/personalized_search.cc.o" "gcc" "src/CMakeFiles/mel_core.dir/core/personalized_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mel_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_recency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmel_eval.a"
)

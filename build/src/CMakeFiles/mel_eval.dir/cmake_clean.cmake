file(REMOVE_RECURSE
  "CMakeFiles/mel_eval.dir/eval/harness.cc.o"
  "CMakeFiles/mel_eval.dir/eval/harness.cc.o.d"
  "CMakeFiles/mel_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/mel_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/mel_eval.dir/eval/runner.cc.o"
  "CMakeFiles/mel_eval.dir/eval/runner.cc.o.d"
  "CMakeFiles/mel_eval.dir/eval/weight_learner.cc.o"
  "CMakeFiles/mel_eval.dir/eval/weight_learner.cc.o.d"
  "libmel_eval.a"
  "libmel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

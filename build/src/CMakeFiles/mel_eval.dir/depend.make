# Empty dependencies file for mel_eval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mel_util.dir/util/random.cc.o"
  "CMakeFiles/mel_util.dir/util/random.cc.o.d"
  "CMakeFiles/mel_util.dir/util/serialize.cc.o"
  "CMakeFiles/mel_util.dir/util/serialize.cc.o.d"
  "CMakeFiles/mel_util.dir/util/string_util.cc.o"
  "CMakeFiles/mel_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/mel_util.dir/util/timer.cc.o"
  "CMakeFiles/mel_util.dir/util/timer.cc.o.d"
  "libmel_util.a"
  "libmel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

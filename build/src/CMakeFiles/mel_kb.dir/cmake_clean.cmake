file(REMOVE_RECURSE
  "CMakeFiles/mel_kb.dir/kb/complemented_kb.cc.o"
  "CMakeFiles/mel_kb.dir/kb/complemented_kb.cc.o.d"
  "CMakeFiles/mel_kb.dir/kb/knowledgebase.cc.o"
  "CMakeFiles/mel_kb.dir/kb/knowledgebase.cc.o.d"
  "CMakeFiles/mel_kb.dir/kb/wlm.cc.o"
  "CMakeFiles/mel_kb.dir/kb/wlm.cc.o.d"
  "libmel_kb.a"
  "libmel_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mel_kb.
# This may be replaced when dependencies are built.

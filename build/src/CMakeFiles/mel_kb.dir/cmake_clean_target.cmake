file(REMOVE_RECURSE
  "libmel_kb.a"
)

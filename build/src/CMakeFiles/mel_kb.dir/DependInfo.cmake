
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/complemented_kb.cc" "src/CMakeFiles/mel_kb.dir/kb/complemented_kb.cc.o" "gcc" "src/CMakeFiles/mel_kb.dir/kb/complemented_kb.cc.o.d"
  "/root/repo/src/kb/knowledgebase.cc" "src/CMakeFiles/mel_kb.dir/kb/knowledgebase.cc.o" "gcc" "src/CMakeFiles/mel_kb.dir/kb/knowledgebase.cc.o.d"
  "/root/repo/src/kb/wlm.cc" "src/CMakeFiles/mel_kb.dir/kb/wlm.cc.o" "gcc" "src/CMakeFiles/mel_kb.dir/kb/wlm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

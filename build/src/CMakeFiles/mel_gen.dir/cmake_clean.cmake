file(REMOVE_RECURSE
  "CMakeFiles/mel_gen.dir/gen/kb_generator.cc.o"
  "CMakeFiles/mel_gen.dir/gen/kb_generator.cc.o.d"
  "CMakeFiles/mel_gen.dir/gen/social_graph_generator.cc.o"
  "CMakeFiles/mel_gen.dir/gen/social_graph_generator.cc.o.d"
  "CMakeFiles/mel_gen.dir/gen/tweet_generator.cc.o"
  "CMakeFiles/mel_gen.dir/gen/tweet_generator.cc.o.d"
  "CMakeFiles/mel_gen.dir/gen/workload.cc.o"
  "CMakeFiles/mel_gen.dir/gen/workload.cc.o.d"
  "libmel_gen.a"
  "libmel_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmel_gen.a"
)

# Empty dependencies file for mel_gen.
# This may be replaced when dependencies are built.

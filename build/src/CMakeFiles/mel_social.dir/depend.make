# Empty dependencies file for mel_social.
# This may be replaced when dependencies are built.

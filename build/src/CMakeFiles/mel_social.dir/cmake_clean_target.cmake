file(REMOVE_RECURSE
  "libmel_social.a"
)

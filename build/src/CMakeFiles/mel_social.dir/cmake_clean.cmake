file(REMOVE_RECURSE
  "CMakeFiles/mel_social.dir/social/influence.cc.o"
  "CMakeFiles/mel_social.dir/social/influence.cc.o.d"
  "CMakeFiles/mel_social.dir/social/influential_index.cc.o"
  "CMakeFiles/mel_social.dir/social/influential_index.cc.o.d"
  "CMakeFiles/mel_social.dir/social/user_interest.cc.o"
  "CMakeFiles/mel_social.dir/social/user_interest.cc.o.d"
  "libmel_social.a"
  "libmel_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

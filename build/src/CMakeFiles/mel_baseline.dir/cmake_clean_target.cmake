file(REMOVE_RECURSE
  "libmel_baseline.a"
)

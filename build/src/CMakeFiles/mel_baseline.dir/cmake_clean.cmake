file(REMOVE_RECURSE
  "CMakeFiles/mel_baseline.dir/baseline/collective_linker.cc.o"
  "CMakeFiles/mel_baseline.dir/baseline/collective_linker.cc.o.d"
  "CMakeFiles/mel_baseline.dir/baseline/on_the_fly_linker.cc.o"
  "CMakeFiles/mel_baseline.dir/baseline/on_the_fly_linker.cc.o.d"
  "libmel_baseline.a"
  "libmel_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mel_baseline.
# This may be replaced when dependencies are built.

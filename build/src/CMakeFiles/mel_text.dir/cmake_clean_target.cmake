file(REMOVE_RECURSE
  "libmel_text.a"
)

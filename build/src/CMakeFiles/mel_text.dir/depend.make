# Empty dependencies file for mel_text.
# This may be replaced when dependencies are built.

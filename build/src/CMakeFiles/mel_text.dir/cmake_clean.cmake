file(REMOVE_RECURSE
  "CMakeFiles/mel_text.dir/text/edit_distance.cc.o"
  "CMakeFiles/mel_text.dir/text/edit_distance.cc.o.d"
  "CMakeFiles/mel_text.dir/text/gazetteer.cc.o"
  "CMakeFiles/mel_text.dir/text/gazetteer.cc.o.d"
  "CMakeFiles/mel_text.dir/text/qgram_index.cc.o"
  "CMakeFiles/mel_text.dir/text/qgram_index.cc.o.d"
  "CMakeFiles/mel_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/mel_text.dir/text/tokenizer.cc.o.d"
  "libmel_text.a"
  "libmel_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/recency_test.dir/recency_test.cc.o"
  "CMakeFiles/recency_test.dir/recency_test.cc.o.d"
  "recency_test"
  "recency_test.pdb"
  "recency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

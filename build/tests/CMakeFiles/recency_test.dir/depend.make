# Empty dependencies file for recency_test.
# This may be replaced when dependencies are built.

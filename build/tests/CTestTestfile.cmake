# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/reach_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/social_test[1]_include.cmake")
include("/root/repo/build/tests/recency_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")

# Empty compiler generated dependencies file for bench_accuracy_methods.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_methods.dir/bench_accuracy_methods.cc.o"
  "CMakeFiles/bench_accuracy_methods.dir/bench_accuracy_methods.cc.o.d"
  "bench_accuracy_methods"
  "bench_accuracy_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_entity_categories.dir/bench_entity_categories.cc.o"
  "CMakeFiles/bench_entity_categories.dir/bench_entity_categories.cc.o.d"
  "bench_entity_categories"
  "bench_entity_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_entity_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

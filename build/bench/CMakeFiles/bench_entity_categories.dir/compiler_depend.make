# Empty compiler generated dependencies file for bench_entity_categories.
# This may be replaced when dependencies are built.

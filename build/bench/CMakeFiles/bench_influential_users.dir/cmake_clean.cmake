file(REMOVE_RECURSE
  "CMakeFiles/bench_influential_users.dir/bench_influential_users.cc.o"
  "CMakeFiles/bench_influential_users.dir/bench_influential_users.cc.o.d"
  "bench_influential_users"
  "bench_influential_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_influential_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_influential_users.
# This may be replaced when dependencies are built.

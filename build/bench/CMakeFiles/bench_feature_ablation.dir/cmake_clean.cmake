file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_ablation.dir/bench_feature_ablation.cc.o"
  "CMakeFiles/bench_feature_ablation.dir/bench_feature_ablation.cc.o.d"
  "bench_feature_ablation"
  "bench_feature_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_followee_storage.dir/bench_followee_storage.cc.o"
  "CMakeFiles/bench_followee_storage.dir/bench_followee_storage.cc.o.d"
  "bench_followee_storage"
  "bench_followee_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_followee_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_search_quality.
# This may be replaced when dependencies are built.

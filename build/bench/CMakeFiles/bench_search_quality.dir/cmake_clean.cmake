file(REMOVE_RECURSE
  "CMakeFiles/bench_search_quality.dir/bench_search_quality.cc.o"
  "CMakeFiles/bench_search_quality.dir/bench_search_quality.cc.o.d"
  "bench_search_quality"
  "bench_search_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

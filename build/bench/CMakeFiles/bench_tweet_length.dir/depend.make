# Empty dependencies file for bench_tweet_length.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tweet_length.dir/bench_tweet_length.cc.o"
  "CMakeFiles/bench_tweet_length.dir/bench_tweet_length.cc.o.d"
  "bench_tweet_length"
  "bench_tweet_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tweet_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_influence_methods.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_influence_methods.dir/bench_influence_methods.cc.o"
  "CMakeFiles/bench_influence_methods.dir/bench_influence_methods.cc.o.d"
  "bench_influence_methods"
  "bench_influence_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_influence_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

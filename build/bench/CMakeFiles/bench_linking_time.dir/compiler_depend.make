# Empty compiler generated dependencies file for bench_linking_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_linking_time.dir/bench_linking_time.cc.o"
  "CMakeFiles/bench_linking_time.dir/bench_linking_time.cc.o.d"
  "bench_linking_time"
  "bench_linking_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linking_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

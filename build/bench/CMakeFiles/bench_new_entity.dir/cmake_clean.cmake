file(REMOVE_RECURSE
  "CMakeFiles/bench_new_entity.dir/bench_new_entity.cc.o"
  "CMakeFiles/bench_new_entity.dir/bench_new_entity.cc.o.d"
  "bench_new_entity"
  "bench_new_entity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_new_entity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

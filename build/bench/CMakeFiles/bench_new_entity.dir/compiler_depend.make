# Empty compiler generated dependencies file for bench_new_entity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_reachability_index.dir/bench_reachability_index.cc.o"
  "CMakeFiles/bench_reachability_index.dir/bench_reachability_index.cc.o.d"
  "bench_reachability_index"
  "bench_reachability_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reachability_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

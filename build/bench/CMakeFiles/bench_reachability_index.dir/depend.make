# Empty dependencies file for bench_reachability_index.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_weight_learning.dir/bench_weight_learning.cc.o"
  "CMakeFiles/bench_weight_learning.dir/bench_weight_learning.cc.o.d"
  "bench_weight_learning"
  "bench_weight_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weight_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

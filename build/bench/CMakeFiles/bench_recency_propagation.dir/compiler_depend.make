# Empty compiler generated dependencies file for bench_recency_propagation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_recency_propagation.dir/bench_recency_propagation.cc.o"
  "CMakeFiles/bench_recency_propagation.dir/bench_recency_propagation.cc.o.d"
  "bench_recency_propagation"
  "bench_recency_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recency_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

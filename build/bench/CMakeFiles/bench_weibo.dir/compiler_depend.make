# Empty compiler generated dependencies file for bench_weibo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_weibo.dir/bench_weibo.cc.o"
  "CMakeFiles/bench_weibo.dir/bench_weibo.cc.o.d"
  "bench_weibo"
  "bench_weibo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weibo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

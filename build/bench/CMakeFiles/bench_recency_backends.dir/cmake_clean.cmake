file(REMOVE_RECURSE
  "CMakeFiles/bench_recency_backends.dir/bench_recency_backends.cc.o"
  "CMakeFiles/bench_recency_backends.dir/bench_recency_backends.cc.o.d"
  "bench_recency_backends"
  "bench_recency_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recency_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_recency_backends.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_tc_construction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tc_construction.dir/bench_tc_construction.cc.o"
  "CMakeFiles/bench_tc_construction.dir/bench_tc_construction.cc.o.d"
  "bench_tc_construction"
  "bench_tc_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tc_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

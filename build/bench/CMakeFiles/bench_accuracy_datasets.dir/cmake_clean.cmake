file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_datasets.dir/bench_accuracy_datasets.cc.o"
  "CMakeFiles/bench_accuracy_datasets.dir/bench_accuracy_datasets.cc.o.d"
  "bench_accuracy_datasets"
  "bench_accuracy_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

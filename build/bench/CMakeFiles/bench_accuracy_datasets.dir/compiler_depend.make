# Empty compiler generated dependencies file for bench_accuracy_datasets.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for mel_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mel_shell.dir/mel_shell.cpp.o"
  "CMakeFiles/mel_shell.dir/mel_shell.cpp.o.d"
  "mel_shell"
  "mel_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mel_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

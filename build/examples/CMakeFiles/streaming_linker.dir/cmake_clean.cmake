file(REMOVE_RECURSE
  "CMakeFiles/streaming_linker.dir/streaming_linker.cpp.o"
  "CMakeFiles/streaming_linker.dir/streaming_linker.cpp.o.d"
  "streaming_linker"
  "streaming_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

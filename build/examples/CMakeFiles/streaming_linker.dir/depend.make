# Empty dependencies file for streaming_linker.
# This may be replaced when dependencies are built.

# Empty dependencies file for new_entity_detection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/new_entity_detection.dir/new_entity_detection.cpp.o"
  "CMakeFiles/new_entity_detection.dir/new_entity_detection.cpp.o.d"
  "new_entity_detection"
  "new_entity_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/new_entity_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

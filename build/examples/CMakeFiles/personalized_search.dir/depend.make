# Empty dependencies file for personalized_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/personalized_search.dir/personalized_search.cpp.o"
  "CMakeFiles/personalized_search.dir/personalized_search.cpp.o.d"
  "personalized_search"
  "personalized_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env sh
# Tier-1 verification: the exact command from ROADMAP.md.
# Configures, builds, and runs the full test suite; fails on the first error.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j

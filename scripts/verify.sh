#!/usr/bin/env sh
# Tier-1 verification: the exact command from ROADMAP.md.
# Configures, builds, and runs the full test suite; fails on the first error.
#
# A second stage rebuilds the threaded code under ThreadSanitizer and
# runs the suites that exercise the thread pool, the parallel index
# constructions, the reach-score cache, and the batch linker. Skip it
# (e.g. on machines without TSan runtime support) with MEL_SKIP_TSAN=1.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

if [ "${MEL_SKIP_TSAN:-0}" != "1" ]; then
  echo "=== TSan stage: thread pool + parallel builds + batch linker ==="
  cmake -B build-tsan -S . -DMEL_SANITIZE=thread
  cmake --build build-tsan -j --target util_test reach_test core_test extensions_test
  (cd build-tsan && ctest --output-on-failure \
    -R 'ThreadPool|Parallel|CachedReachability' -j)
fi

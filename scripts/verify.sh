#!/usr/bin/env sh
# Tier-1 verification: the exact command from ROADMAP.md.
# Configures, builds, and runs the full test suite; fails on the first error.
#
# A second stage runs a Release-mode bench smoke: the hot-path A/B bench,
# the reachability arena/count-only A/B, the serving micro-batch A/B
# (which also asserts batched == sequential bit-identity), the scheduler
# A/B (chunk-pull vs work-stealing; speedup floors assert only in full
# mode on >= 4 hardware threads), the MEL3 startup A/B (mmap vs
# deserializing load; the >= 10x floor asserts only in full mode), the
# incremental-maintenance A/B (patch vs per-delta index rebuilds; the
# >= 5x insert floor asserts only in full mode), the SIMD kernel A/B
# (scalar vs dispatched kernel tables; the >= 1.5x merge-intersection
# floor asserts only in full mode on AVX2 hosts), and a
# short bench_micro filter, then checks that all metrics sidecars are
# valid JSON and that the BENCH_serving.json / BENCH_scheduler.json /
# BENCH_hotpath.json / BENCH_reach.json / BENCH_startup.json /
# BENCH_incremental.json / BENCH_kernels.json
# trajectories carry their required keys (docs/PERFORMANCE.md). Skip it
# (e.g. on very slow machines) with MEL_SKIP_BENCH=1.
#
# A forced-scalar stage reruns the suites that sit on the SIMD kernel
# layer (util, simd, graph, text, kb, reach, differential) with
# MEL_SIMD=scalar, proving the scalar kernel tier gives bit-identical
# behavior to whatever tier the host dispatched in stage one — the same
# contract the binary relies on when it lands on a host without AVX2.
# Skip it with MEL_SKIP_SCALAR=1.
#
# A third stage rebuilds the threaded code under ThreadSanitizer and
# runs the suites that exercise the thread pool (including the
# work-stealing deque protocol and the many-submitters steal stress
# test), the parallel index and network constructions, the
# recency-cache fill, the reach-score cache, the batch linker, the
# serving loop (producers + feedback racing the dispatcher,
# epoch-schedule replay, drain-on-shutdown), the metrics-export
# concurrency test, the concurrent mapped-index query test, and the
# differential concurrency tests (ConfirmLink
# epoch bumps racing the recency cache). Skip it (e.g. on machines
# without TSan runtime support) with MEL_SKIP_TSAN=1.
#
# A fourth stage, `differential`, rebuilds under AddressSanitizer and
# replays a scaled-up randomized differential sweep (see docs/TESTING.md)
# through every production fast path against the mel::testing oracles;
# the same binary also runs under TSan in stage three with a reduced
# case count. Override the ASan case count with MEL_DIFF_CASES (default
# 400 here; 200 in plain ctest) or skip the stage with MEL_SKIP_DIFF=1.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

if [ "${MEL_SKIP_BENCH:-0}" != "1" ]; then
  echo "=== Bench smoke: query hot path A/B + reach arena A/B + serving + scheduler + micro (Release) ==="
  cmake --build build -j --target bench_query_hotpath bench_micro \
    bench_reachability_index bench_serving bench_scheduler \
    bench_index_startup bench_incremental bench_kernels
  (cd build/bench && ./bench_query_hotpath --smoke)
  (cd build/bench && ./bench_kernels --smoke)
  (cd build/bench && ./bench_reachability_index --smoke)
  (cd build/bench && ./bench_serving --smoke)
  (cd build/bench && ./bench_scheduler --smoke)
  (cd build/bench && ./bench_index_startup --smoke)
  (cd build/bench && ./bench_incremental --smoke)
  (cd build/bench && ./bench_micro \
    --benchmark_filter='BM_LinkMention$|BM_LinkMentionRecencyCacheOff|BM_RecencyCandidateScores' \
    --benchmark_min_time=0.05)
  python3 -c '
import json, sys
for path in ("build/bench/bench_query_hotpath.metrics.json",
             "build/bench/bench_reachability_index.metrics.json",
             "build/bench/bench_serving.metrics.json",
             "build/bench/bench_scheduler.metrics.json",
             "build/bench/bench_index_startup.metrics.json",
             "build/bench/bench_incremental.metrics.json",
             "build/bench/bench_kernels.metrics.json",
             "build/bench/bench_micro.metrics.json"):
    with open(path) as f:
        json.load(f)
    print(path, "parses")
# The trajectory sidecars (docs/PERFORMANCE.md) must carry their
# required keys so the committed BENCH_*.json files stay comparable
# across PRs.
required = {
    "BENCH_serving.json": ("bench", "schema_version", "qps_batched",
                           "speedup", "identity_ok", "link_latency_ns"),
    "BENCH_scheduler.json": ("bench", "schema_version", "mode", "threads",
                             "skew_speedup", "uniform_ratio",
                             "twohop_speedup", "skew_steals", "asserted"),
    "BENCH_hotpath.json": ("bench", "schema_version", "mode",
                           "baseline_mentions_per_sec",
                           "optimized_mentions_per_sec", "speedup",
                           "parallel_build_identical"),
    "BENCH_reach.json": ("bench", "schema_version", "mode",
                         "legacy_score_ns", "arena_score_ns",
                         "score_only_ns", "arena_index_bytes",
                         "legacy_index_bytes"),
    "BENCH_startup.json": ("bench", "schema_version", "mode", "users",
                           "file_bytes", "deserialize_warm_ns",
                           "deserialize_cold_ns", "mmap_warm_ns",
                           "mmap_cold_ns", "mmap_first_query_ns",
                           "warm_speedup"),
    "BENCH_incremental.json": ("bench", "schema_version", "mode", "users",
                               "num_deltas", "patch_insert_ns",
                               "rebuild_insert_ns", "patch_erase_ns",
                               "rebuild_erase_ns", "insert_speedup",
                               "erase_speedup"),
    "BENCH_kernels.json": ("bench", "schema_version", "mode", "level",
                           "merge_scalar_ns", "merge_dispatched_ns",
                           "merge_speedup", "gallop_speedup",
                           "minsum_speedup", "probe_speedup",
                           "frontier_speedup"),
}
for name, keys in required.items():
    with open("build/bench/" + name) as f:
        t = json.load(f)
    for key in keys:
        assert key in t, name + " missing key: " + key
    print("build/bench/" + name, "carries the required keys")
    if name == "BENCH_serving.json":
        assert t["bench"] == "serving" and t["identity_ok"] is True
    if name == "BENCH_hotpath.json":
        assert t["parallel_build_identical"] is True
'
fi

if [ "${MEL_SKIP_SCALAR:-0}" != "1" ]; then
  echo "=== Forced-scalar stage: SIMD-layer suites with MEL_SIMD=scalar ==="
  (cd build && MEL_SIMD=scalar ctest --output-on-failure \
    -L '^(util_test|simd_test|graph_test|text_test|kb_test|reach_test|differential_test)$' -j)
fi

if [ "${MEL_SKIP_TSAN:-0}" != "1" ]; then
  echo "=== TSan stage: thread pool + parallel builds + caches + batch linker + serving ==="
  cmake -B build-tsan -S . -DMEL_SANITIZE=thread
  cmake --build build-tsan -j --target util_test reach_test core_test \
    extensions_test recency_test text_test differential_test \
    metrics_test serve_test mmap_test incremental_test
  (cd build-tsan && ctest --output-on-failure \
    -R 'ThreadPool|StealDeque|Parallel|CachedReachability|DifferentialConcurrency|ServeFixture|ConcurrencyTest|MmapConcurrency|Incremental' -j)
  echo "=== TSan stage: reduced differential sweep (mutation shards included) ==="
  (cd build-tsan/tests && MEL_DIFF_CASES="${MEL_DIFF_CASES_TSAN:-40}" \
    ./differential_test --gtest_filter='DifferentialShards.Shard*:MutationSweep.Shard*')
fi

if [ "${MEL_SKIP_DIFF:-0}" != "1" ]; then
  echo "=== Differential stage: oracle sweep + mmap tier under ASan ==="
  cmake -B build-asan -S . -DMEL_SANITIZE=address
  cmake --build build-asan -j --target differential_test mmap_test
  (cd build-asan/tests && ./mmap_test)
  (cd build-asan/tests && MEL_DIFF_CASES="${MEL_DIFF_CASES:-400}" \
    ./differential_test)
fi

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/bfs.h"
#include "graph/components.h"
#include "graph/directed_graph.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "util/random.h"

namespace mel::graph {
namespace {

DirectedGraph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

DirectedGraph RandomGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t i = 0; i < edges; ++i) {
    b.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)));
  }
  return std::move(b).Build();
}

// ---------------------------------------------------------------- build

TEST(GraphBuilderTest, BuildsAdjacency) {
  DirectedGraph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  auto out0 = g.OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);
  EXPECT_EQ(out0[1], 2u);
  auto in3 = g.InNeighbors(3);
  ASSERT_EQ(in3.size(), 2u);
  EXPECT_EQ(in3[0], 1u);
  EXPECT_EQ(in3[1], 2u);
}

TEST(GraphBuilderTest, DropsSelfLoopsAndDuplicates) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.AddEdge(1, 2);
  DirectedGraph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b(5);
  DirectedGraph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_TRUE(g.OutNeighbors(u).empty());
    EXPECT_TRUE(g.InNeighbors(u).empty());
  }
}

TEST(DirectedGraphTest, HasEdge) {
  DirectedGraph g = Diamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(DirectedGraphTest, DegreeSymmetry) {
  DirectedGraph g = RandomGraph(100, 500, 1);
  uint64_t out_total = 0, in_total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_total += g.OutDegree(u);
    in_total += g.InDegree(u);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(DirectedGraphTest, InOutConsistency) {
  DirectedGraph g = RandomGraph(60, 300, 2);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      auto ins = g.InNeighbors(v);
      EXPECT_TRUE(std::find(ins.begin(), ins.end(), u) != ins.end());
    }
  }
}

TEST(DirectedGraphTest, MemoryUsageIsPositive) {
  DirectedGraph g = Diamond();
  EXPECT_GT(g.MemoryUsageBytes(), 0u);
}

// ------------------------------------------------------------- mutations

TEST(DirectedGraphTest, InsertEdgeSplicesSorted) {
  DirectedGraph g = Diamond();
  EXPECT_EQ(g.version(), 0u);
  EXPECT_TRUE(g.InsertEdge(3, 0));
  EXPECT_EQ(g.version(), 1u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(g.HasEdge(3, 0));
  auto in0 = g.InNeighbors(0);
  ASSERT_EQ(in0.size(), 1u);
  EXPECT_EQ(in0[0], 3u);
  // Sorted order is preserved where the new edge lands mid-list.
  EXPECT_TRUE(g.InsertEdge(0, 3));
  auto out0 = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(out0.begin(), out0.end()));
  EXPECT_EQ(out0.size(), 3u);
}

TEST(DirectedGraphTest, InsertEdgeRejectsInvalid) {
  DirectedGraph g = Diamond();
  EXPECT_FALSE(g.InsertEdge(1, 1));    // self-loop
  EXPECT_FALSE(g.InsertEdge(0, 1));    // duplicate
  EXPECT_FALSE(g.InsertEdge(4, 0));    // out of range
  EXPECT_FALSE(g.InsertEdge(0, 99));   // out of range
  EXPECT_EQ(g.version(), 0u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(DirectedGraphTest, EraseEdgeRemovesBothDirections) {
  DirectedGraph g = Diamond();
  EXPECT_TRUE(g.EraseEdge(0, 2));
  EXPECT_EQ(g.version(), 1u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_FALSE(g.HasEdge(0, 2));
  auto in2 = g.InNeighbors(2);
  EXPECT_TRUE(in2.empty());
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(DirectedGraphTest, EraseEdgeRejectsInvalid) {
  DirectedGraph g = Diamond();
  EXPECT_FALSE(g.EraseEdge(1, 0));    // not present
  EXPECT_FALSE(g.EraseEdge(2, 2));    // self-loop
  EXPECT_FALSE(g.EraseEdge(7, 1));    // out of range
  EXPECT_EQ(g.version(), 0u);
}

TEST(DirectedGraphTest, MutationRoundTripMatchesBuilder) {
  // Randomly mutate a graph, then rebuild the same edge set from scratch
  // and check both CSR views agree edge-for-edge.
  DirectedGraph g = RandomGraph(40, 120, 7);
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.OutNeighbors(u)) edges.emplace(u, v);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(40));
    NodeId v = static_cast<NodeId>(rng.Uniform(40));
    if (rng.Uniform(2) == 0) {
      if (g.InsertEdge(u, v)) edges.emplace(u, v);
    } else {
      if (g.EraseEdge(u, v)) edges.erase({u, v});
    }
  }
  GraphBuilder b(40);
  for (auto [u, v] : edges) b.AddEdge(u, v);
  DirectedGraph fresh = std::move(b).Build();
  ASSERT_EQ(g.num_edges(), fresh.num_edges());
  for (NodeId u = 0; u < 40; ++u) {
    auto a = g.OutNeighbors(u);
    auto e = fresh.OutNeighbors(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), e.begin(), e.end()));
    auto ai = g.InNeighbors(u);
    auto ei = fresh.InNeighbors(u);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), ei.begin(), ei.end()));
  }
}

// ------------------------------------------------------------------ BFS

TEST(BfsTest, DistancesOnDiamond) {
  DirectedGraph g = Diamond();
  BfsScratch scratch(4);
  scratch.RunForward(g, 0, 10);
  EXPECT_EQ(scratch.Distance(0), 0u);
  EXPECT_EQ(scratch.Distance(1), 1u);
  EXPECT_EQ(scratch.Distance(2), 1u);
  EXPECT_EQ(scratch.Distance(3), 2u);
}

TEST(BfsTest, BackwardMatchesForwardOnReversedEdge) {
  DirectedGraph g = Diamond();
  BfsScratch scratch(4);
  scratch.RunBackward(g, 3, 10);
  EXPECT_EQ(scratch.Distance(3), 0u);
  EXPECT_EQ(scratch.Distance(1), 1u);
  EXPECT_EQ(scratch.Distance(2), 1u);
  EXPECT_EQ(scratch.Distance(0), 2u);
}

TEST(BfsTest, HopBoundCutsSearch) {
  // 0 -> 1 -> 2 -> 3 chain
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  DirectedGraph g = std::move(b).Build();
  BfsScratch scratch(4);
  scratch.RunForward(g, 0, 2);
  EXPECT_EQ(scratch.Distance(2), 2u);
  EXPECT_EQ(scratch.Distance(3), kUnreachable);
}

TEST(BfsTest, ScratchResetsBetweenRuns) {
  DirectedGraph g = Diamond();
  BfsScratch scratch(4);
  scratch.RunForward(g, 0, 10);
  scratch.RunForward(g, 3, 10);  // 3 has no out-edges
  EXPECT_EQ(scratch.Distance(3), 0u);
  EXPECT_EQ(scratch.Distance(0), kUnreachable);
  EXPECT_EQ(scratch.Distance(1), kUnreachable);
}

TEST(BfsTest, ShortestPathDistanceHelper) {
  DirectedGraph g = Diamond();
  EXPECT_EQ(ShortestPathDistance(g, 0, 3, 10), 2u);
  EXPECT_EQ(ShortestPathDistance(g, 3, 0, 10), kUnreachable);
  EXPECT_EQ(ShortestPathDistance(g, 1, 1, 10), 0u);
}

// ----------------------------------------------------------- components

TEST(ComponentsTest, WeaklyConnected) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);  // {0,1,2} weakly connected
  b.AddEdge(3, 4);  // {3,4}
  DirectedGraph g = std::move(b).Build();
  auto wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(wcc.component[0], wcc.component[1]);
  EXPECT_EQ(wcc.component[1], wcc.component[2]);
  EXPECT_EQ(wcc.component[3], wcc.component[4]);
  EXPECT_NE(wcc.component[0], wcc.component[3]);
  EXPECT_NE(wcc.component[5], wcc.component[0]);
  auto sizes = wcc.ComponentSizes();
  std::multiset<uint32_t> size_set(sizes.begin(), sizes.end());
  EXPECT_EQ(size_set, (std::multiset<uint32_t>{1, 2, 3}));
}

TEST(ComponentsTest, StronglyConnectedCycleVsChain) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);  // cycle {0,1,2}
  b.AddEdge(2, 3);  // chain onward
  b.AddEdge(3, 4);
  DirectedGraph g = std::move(b).Build();
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[3], scc.component[0]);
  EXPECT_NE(scc.component[4], scc.component[3]);
}

TEST(ComponentsTest, SccOfDagIsAllSingletons) {
  DirectedGraph g = Diamond();
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(ComponentsTest, SccHandlesLongChainIteratively) {
  // A 100k chain would overflow a recursive Tarjan.
  const uint32_t n = 100000;
  GraphBuilder b(n);
  for (uint32_t i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  DirectedGraph g = std::move(b).Build();
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, n);
}

// ----------------------------------------------------------------- stats

TEST(StatsTest, ComputesBasicStats) {
  DirectedGraph g = Diamond();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_DOUBLE_EQ(s.avg_out_degree, 1.0);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(StatsTest, DegreeOrderIsDescending) {
  DirectedGraph g = RandomGraph(50, 200, 3);
  auto order = NodesByDegreeDescending(g);
  ASSERT_EQ(order.size(), 50u);
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    uint64_t a = g.OutDegree(order[i]) + g.InDegree(order[i]);
    uint64_t b = g.OutDegree(order[i + 1]) + g.InDegree(order[i + 1]);
    EXPECT_GE(a, b);
  }
}

}  // namespace
}  // namespace mel::graph

#include <gtest/gtest.h>

#include <memory>

#include "core/entity_linker.h"
#include "eval/runner.h"
#include "gen/workload.h"
#include "reach/naive_reachability.h"
#include "reach/two_hop_index.h"
#include "recency/propagation_network.h"
#include "util/random.h"

namespace mel {
namespace {

// Parameterized property sweeps over generated worlds: structural
// invariants that must hold for any seed / size combination.

struct WorldParam {
  uint32_t entities;
  uint32_t topics;
  uint32_t users;
  uint32_t tweets;
  uint64_t seed;
};

class WorldPropertyTest : public ::testing::TestWithParam<WorldParam> {
 protected:
  gen::World MakeWorld() const {
    const auto& p = GetParam();
    gen::WorldOptions wopts;
    wopts.kb.num_entities = p.entities;
    wopts.kb.num_topics = p.topics;
    wopts.kb.num_ambiguous_surfaces = p.entities / 4;
    wopts.kb.seed = p.seed;
    wopts.social.num_users = p.users;
    wopts.social.seed = p.seed + 1;
    wopts.tweets.num_tweets = p.tweets;
    wopts.tweets.seed = p.seed + 2;
    return gen::GenerateWorld(wopts);
  }
};

TEST_P(WorldPropertyTest, TwoHopAgreesWithNaiveOnSocialGraph) {
  gen::World world = MakeWorld();
  const auto& g = world.social.graph;
  reach::NaiveReachability naive(&g, 5);
  auto index = reach::TwoHopIndex::Build(&g, 5);
  Rng rng(GetParam().seed + 7);
  for (int i = 0; i < 400; ++i) {
    auto u = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    auto v = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    auto nq = naive.Query(u, v);
    auto hq = index.Query(u, v);
    ASSERT_EQ(nq.distance, hq.distance) << u << "->" << v;
    ASSERT_EQ(nq.followees, hq.followees) << u << "->" << v;
  }
}

TEST_P(WorldPropertyTest, LinkerScoresAlwaysInUnitRange) {
  gen::World world = MakeWorld();
  auto split = gen::FilterActiveUsers(world.corpus, 5);
  kb::ComplementedKnowledgebase ckb(&world.kb());
  gen::ComplementWithOracle(world, split, 0.1, 5, &ckb);
  reach::NaiveReachability reach(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.6);
  core::LinkerOptions options;
  options.theta1 = 5;
  core::EntityLinker linker(&world.kb(), &ckb, &reach, &network, options);

  Rng rng(GetParam().seed + 9);
  for (int i = 0; i < 200; ++i) {
    const auto& lt =
        world.corpus.tweets[rng.Uniform(world.corpus.tweets.size())];
    for (const auto& m : lt.mentions) {
      auto r = linker.LinkMention(m.surface, lt.tweet.user, lt.tweet.time);
      for (const auto& s : r.ranked) {
        ASSERT_GE(s.score, 0.0);
        ASSERT_LE(s.score, 1.0 + 1e-9);
        ASSERT_GE(s.interest, 0.0);
        ASSERT_LE(s.interest, 1.0 + 1e-9);
        ASSERT_GE(s.recency, 0.0);
        ASSERT_LE(s.recency, 1.0 + 1e-9);
        ASSERT_GE(s.popularity, 0.0);
        ASSERT_LE(s.popularity, 1.0 + 1e-9);
      }
    }
  }
}

TEST_P(WorldPropertyTest, LinkerIsDeterministic) {
  gen::World world = MakeWorld();
  auto split = gen::FilterActiveUsers(world.corpus, 5);
  kb::ComplementedKnowledgebase ckb(&world.kb());
  gen::ComplementWithOracle(world, split, 0.0, 5, &ckb);
  reach::NaiveReachability reach(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.6);
  core::EntityLinker linker(&world.kb(), &ckb, &reach, &network,
                            core::LinkerOptions{});

  const auto& lt = world.corpus.tweets[0];
  auto a = linker.LinkMention(lt.mentions[0].surface, lt.tweet.user,
                              lt.tweet.time);
  auto b = linker.LinkMention(lt.mentions[0].surface, lt.tweet.user,
                              lt.tweet.time);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].entity, b.ranked[i].entity);
    EXPECT_DOUBLE_EQ(a.ranked[i].score, b.ranked[i].score);
  }
}

TEST_P(WorldPropertyTest, PropagationNetworkInvariants) {
  gen::World world = MakeWorld();
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.6);
  // Neighbours stay within the cluster and probabilities are normalized.
  for (kb::EntityId e = 0; e < world.kb().num_entities(); ++e) {
    double total = 0;
    for (const auto& edge : network.Neighbors(e)) {
      EXPECT_EQ(network.Cluster(edge.target), network.Cluster(e));
      EXPECT_GE(edge.weight, 0.6);
      total += edge.probability;
    }
    if (!network.Neighbors(e).empty()) {
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST_P(WorldPropertyTest, RecencyWindowMonotoneInTau) {
  gen::World world = MakeWorld();
  auto split = gen::FilterActiveUsers(world.corpus, 1);
  kb::ComplementedKnowledgebase ckb(&world.kb());
  gen::ComplementWithOracle(world, split, 0.0, 5, &ckb);
  recency::SlidingWindowRecency narrow(&ckb, kb::kSecondsPerDay, 1);
  recency::SlidingWindowRecency wide(&ckb, 30 * kb::kSecondsPerDay, 1);
  kb::Timestamp now = 60 * kb::kSecondsPerDay;
  for (kb::EntityId e = 0; e < world.kb().num_entities(); e += 3) {
    EXPECT_LE(narrow.RecentCount(e, now), wide.RecentCount(e, now));
  }
}

TEST_P(WorldPropertyTest, TweetAccuracyNeverExceedsMentionAccuracy) {
  gen::World world = MakeWorld();
  auto split = gen::FilterActiveUsers(world.corpus, 5);
  kb::ComplementedKnowledgebase ckb(&world.kb());
  gen::ComplementWithOracle(world, split, 0.05, 5, &ckb);
  reach::NaiveReachability reach(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.6);
  core::LinkerOptions options;
  options.theta1 = 5;
  core::EntityLinker linker(&world.kb(), &ckb, &reach, &network, options);
  auto test_split = gen::SampleInactiveUsers(world.corpus, 5, 40, 11);
  auto acc = eval::EvaluateOurs(linker, world, test_split).accuracy();
  EXPECT_GE(acc.MentionAccuracy() + 1e-12, acc.TweetAccuracy());
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, WorldPropertyTest,
    ::testing::Values(WorldParam{200, 8, 300, 2500, 201},
                      WorldParam{400, 15, 500, 5000, 202},
                      WorldParam{150, 5, 200, 1500, 203},
                      WorldParam{300, 25, 400, 3000, 204}));

}  // namespace
}  // namespace mel

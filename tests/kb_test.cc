#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "kb/wlm.h"

namespace mel::kb {
namespace {

// A small handcrafted knowledgebase mirroring the paper's Fig. 1:
// "jordan" is ambiguous between a country, a shoe brand, a basketball
// player, and a machine-learning expert.
class KbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    country_ = kb_.AddEntity("Jordan (country)", EntityCategory::kLocation,
                             {"country", "middle", "east"});
    shoe_ = kb_.AddEntity("Air Jordan", EntityCategory::kProduct,
                          {"shoe", "brand", "nike"});
    player_ = kb_.AddEntity("Michael Jordan (basketball)",
                            EntityCategory::kPerson,
                            {"basketball", "bulls", "nba"});
    expert_ = kb_.AddEntity("Michael Jordan (ML)", EntityCategory::kPerson,
                            {"machine", "learning", "berkeley"});
    bulls_ = kb_.AddEntity("Chicago Bulls", EntityCategory::kCompany,
                           {"basketball", "team", "nba"});
    nba_ = kb_.AddEntity("NBA", EntityCategory::kCompany,
                         {"basketball", "league"});
    icml_ = kb_.AddEntity("ICML", EntityCategory::kCompany,
                          {"machine", "learning", "conference"});

    kb_.AddSurfaceForm("Jordan", country_, 50);
    kb_.AddSurfaceForm("Jordan", shoe_, 30);
    kb_.AddSurfaceForm("Jordan", player_, 100);
    kb_.AddSurfaceForm("Jordan", expert_, 10);
    kb_.AddSurfaceForm("Michael Jordan", player_, 80);
    kb_.AddSurfaceForm("Michael Jordan", expert_, 15);
    kb_.AddSurfaceForm("Chicago Bulls", bulls_, 60);
    kb_.AddSurfaceForm("Bulls", bulls_, 40);
    kb_.AddSurfaceForm("NBA", nba_, 70);
    kb_.AddSurfaceForm("ICML", icml_, 20);

    // Basketball articles co-cite each other; ML articles likewise.
    kb_.AddHyperlink(bulls_, player_);
    kb_.AddHyperlink(nba_, player_);
    kb_.AddHyperlink(nba_, bulls_);
    kb_.AddHyperlink(player_, bulls_);
    kb_.AddHyperlink(player_, nba_);
    kb_.AddHyperlink(bulls_, nba_);
    kb_.AddHyperlink(icml_, expert_);
    kb_.AddHyperlink(expert_, icml_);

    kb_.Finalize();
  }

  Knowledgebase kb_;
  EntityId country_, shoe_, player_, expert_, bulls_, nba_, icml_;
};

TEST_F(KbFixture, CandidatesSortedByAnchorCount) {
  auto cands = kb_.Candidates("jordan");
  ASSERT_EQ(cands.size(), 4u);
  EXPECT_EQ(cands[0].entity, player_);  // most anchors
  EXPECT_EQ(cands[0].anchor_count, 100u);
  EXPECT_EQ(cands[3].entity, expert_);
}

TEST_F(KbFixture, SurfaceNormalization) {
  // Lookup is case- and punctuation-insensitive.
  EXPECT_EQ(kb_.Candidates("JORDAN").size(), 4u);
  EXPECT_EQ(kb_.Candidates("Michael  Jordan!").size(), 2u);
  EXPECT_TRUE(kb_.HasSurface("chicago bulls"));
  EXPECT_FALSE(kb_.HasSurface("los angeles"));
}

TEST_F(KbFixture, UnknownSurfaceHasNoCandidates) {
  EXPECT_TRUE(kb_.Candidates("nonexistent").empty());
}

TEST_F(KbFixture, RepeatedSurfaceFormAccumulatesAnchors) {
  Knowledgebase kb;
  EntityId e = kb.AddEntity("X", EntityCategory::kPerson, {});
  kb.AddSurfaceForm("x", e, 5);
  kb.AddSurfaceForm("x", e, 7);
  kb.Finalize();
  auto cands = kb.Candidates("x");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].anchor_count, 12u);
}

TEST_F(KbFixture, HyperlinksAreDeduplicated) {
  Knowledgebase kb;
  EntityId a = kb.AddEntity("A", EntityCategory::kPerson, {});
  EntityId b = kb.AddEntity("B", EntityCategory::kPerson, {});
  kb.AddHyperlink(a, b);
  kb.AddHyperlink(a, b);
  kb.AddHyperlink(a, a);  // self-link dropped
  kb.Finalize();
  EXPECT_EQ(kb.Inlinks(b).size(), 1u);
  EXPECT_EQ(kb.Outlinks(a).size(), 1u);
  EXPECT_TRUE(kb.Inlinks(a).empty());
}

TEST_F(KbFixture, VocabularyInternsDescriptions) {
  const auto& rec = kb_.entity(player_);
  ASSERT_EQ(rec.description.size(), 3u);
  EXPECT_EQ(kb_.vocab().Word(rec.description[0]), "basketball");
  // "basketball" is shared between player_ and bulls_.
  EXPECT_EQ(kb_.entity(bulls_).description[0], rec.description[0]);
  EXPECT_EQ(kb_.vocab().Find("basketball"), rec.description[0]);
  EXPECT_EQ(kb_.vocab().Find("never-seen"), Vocabulary::kMissing);
}

// -------------------------------------------------------------------- WLM

TEST_F(KbFixture, WlmRelatedEntitiesScoreHigh) {
  WlmRelatedness wlm(&kb_);
  // player_ and bulls_ are both linked from {nba_} (player also from
  // bulls_, bulls also from player_): strong overlap.
  double related = wlm.Relatedness(player_, bulls_);
  double unrelated = wlm.Relatedness(player_, country_);
  EXPECT_GT(related, 0.0);
  EXPECT_EQ(unrelated, 0.0);
  EXPECT_GT(related, unrelated);
}

TEST_F(KbFixture, WlmIsSymmetricAndReflexive) {
  WlmRelatedness wlm(&kb_);
  EXPECT_DOUBLE_EQ(wlm.Relatedness(player_, nba_),
                   wlm.Relatedness(nba_, player_));
  EXPECT_DOUBLE_EQ(wlm.Relatedness(player_, player_), 1.0);
}

TEST_F(KbFixture, WlmNoInlinksMeansZero) {
  WlmRelatedness wlm(&kb_);
  // country_ has no inlinks at all.
  EXPECT_EQ(wlm.Relatedness(country_, shoe_), 0.0);
}

TEST_F(KbFixture, WlmIntersection) {
  WlmRelatedness wlm(&kb_);
  // Inlinks(player_) = {bulls_, nba_}; Inlinks(bulls_) = {nba_, player_}.
  EXPECT_EQ(wlm.InlinkIntersection(player_, bulls_), 1u);  // common: nba_
  EXPECT_EQ(wlm.InlinkIntersection(player_, icml_), 0u);
}

TEST_F(KbFixture, WlmInRange) {
  WlmRelatedness wlm(&kb_);
  for (EntityId a = 0; a < kb_.num_entities(); ++a) {
    for (EntityId b = 0; b < kb_.num_entities(); ++b) {
      double r = wlm.Relatedness(a, b);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

// ---------------------------------------------------- complemented KB

TEST_F(KbFixture, PostingsAndCommunity) {
  ComplementedKnowledgebase ckb(&kb_);
  ckb.AddLink(player_, Posting{1, 10, 100});
  ckb.AddLink(player_, Posting{2, 11, 200});
  ckb.AddLink(player_, Posting{3, 10, 300});
  ckb.AddLink(expert_, Posting{4, 12, 150});

  EXPECT_EQ(ckb.LinkedTweetCount(player_), 3u);
  EXPECT_EQ(ckb.LinkedTweetCount(expert_), 1u);
  EXPECT_EQ(ckb.LinkedTweetCount(country_), 0u);
  EXPECT_EQ(ckb.TotalLinks(), 4u);

  EXPECT_EQ(ckb.UserTweetCount(player_, 10), 2u);
  EXPECT_EQ(ckb.UserTweetCount(player_, 11), 1u);
  EXPECT_EQ(ckb.UserTweetCount(player_, 12), 0u);

  auto community = ckb.Community(player_);
  EXPECT_EQ(community.size(), 2u);  // users 10 and 11
}

TEST_F(KbFixture, RecentTweetCountWindow) {
  ComplementedKnowledgebase ckb(&kb_);
  for (Timestamp t = 0; t < 10; ++t) {
    ckb.AddLink(player_, Posting{static_cast<TweetId>(t), 1, t * 100});
  }
  // Window [400, 900]: times 400..900 step 100 -> 6 postings.
  EXPECT_EQ(ckb.RecentTweetCount(player_, 900, 500), 6u);
  // Window ending before everything.
  EXPECT_EQ(ckb.RecentTweetCount(player_, -1, 500), 0u);
  // Window covering everything.
  EXPECT_EQ(ckb.RecentTweetCount(player_, 10000, 100000), 10u);
  // 'now' in the middle excludes later postings.
  EXPECT_EQ(ckb.RecentTweetCount(player_, 450, 10000), 5u);  // 0..400
}

TEST_F(KbFixture, OutOfOrderInsertsAreResorted) {
  ComplementedKnowledgebase ckb(&kb_);
  ckb.AddLink(player_, Posting{1, 1, 500});
  ckb.AddLink(player_, Posting{2, 1, 100});  // out of order
  ckb.AddLink(player_, Posting{3, 1, 300});
  auto postings = ckb.Postings(player_);
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0].time, 100);
  EXPECT_EQ(postings[1].time, 300);
  EXPECT_EQ(postings[2].time, 500);
  EXPECT_EQ(ckb.RecentTweetCount(player_, 350, 300), 2u);  // 100, 300
}

TEST_F(KbFixture, ComplementedKbVersionBumpsOnEveryAddLink) {
  ComplementedKnowledgebase ckb(&kb_);
  const uint64_t v0 = ckb.version();
  ckb.AddLink(nba_, Posting{1, 2, 100});
  EXPECT_EQ(ckb.version(), v0 + 1);
  ckb.AddLink(nba_, Posting{2, 2, 101});
  ckb.AddLink(player_, Posting{3, 4, 102});
  EXPECT_EQ(ckb.version(), v0 + 3);
}

TEST(WlmSkewedTest, GallopingIntersectionMatchesBruteForce) {
  // Heavily skewed inlink lists (one hub, many small entities) drive the
  // galloping path; the count must match a brute-force pairwise scan.
  Knowledgebase kb;
  EntityId hub = kb.AddEntity("hub", EntityCategory::kCompany, {});
  EntityId niche = kb.AddEntity("niche", EntityCategory::kCompany, {});
  EntityId empty = kb.AddEntity("empty", EntityCategory::kCompany, {});
  std::vector<EntityId> articles;
  for (int i = 0; i < 200; ++i) {
    EntityId a = kb.AddEntity("a" + std::to_string(i),
                              EntityCategory::kMovieMusic, {});
    articles.push_back(a);
    kb.AddHyperlink(a, hub);  // every article links the hub
    if (i % 31 == 0) kb.AddHyperlink(a, niche);  // 7 articles link niche
  }
  kb.Finalize();
  WlmRelatedness wlm(&kb);

  auto brute = [&](EntityId x, EntityId y) {
    uint32_t count = 0;
    auto ix = kb.Inlinks(x);
    for (EntityId a : ix) {
      auto iy = kb.Inlinks(y);
      if (std::find(iy.begin(), iy.end(), a) != iy.end()) ++count;
    }
    return count;
  };
  // |hub| = 200, |niche| = 7: ratio >= 16 selects galloping.
  EXPECT_EQ(wlm.InlinkIntersection(hub, niche), brute(hub, niche));
  EXPECT_EQ(wlm.InlinkIntersection(niche, hub), brute(hub, niche));
  EXPECT_EQ(wlm.InlinkIntersection(hub, niche), 7u);
  EXPECT_EQ(wlm.InlinkIntersection(hub, empty), 0u);
  EXPECT_EQ(wlm.InlinkIntersection(hub, hub), 200u);
  double rel = wlm.Relatedness(hub, niche);
  EXPECT_GE(rel, 0.0);
  EXPECT_LE(rel, 1.0);
}

TEST_F(KbFixture, CommunityCountsStayConsistentAfterManyLinks) {
  ComplementedKnowledgebase ckb(&kb_);
  for (int i = 0; i < 100; ++i) {
    ckb.AddLink(nba_, Posting{static_cast<TweetId>(i),
                              static_cast<UserId>(i % 7), i});
  }
  uint32_t total = 0;
  for (const auto& [user, count] : ckb.Community(nba_)) {
    EXPECT_EQ(count, ckb.UserTweetCount(nba_, user));
    total += count;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(ckb.Community(nba_).size(), 7u);
}

}  // namespace
}  // namespace mel::kb

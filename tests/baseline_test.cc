#include <gtest/gtest.h>

#include <memory>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "gen/workload.h"
#include "kb/wlm.h"

namespace mel::baseline {
namespace {

// World where context and coherence carry signal:
//   "jordan" -> player (popular) or expert (rare).
class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture() {
    player_ = kb_.AddEntity("player", kb::EntityCategory::kPerson,
                            {"basketball", "bulls", "dunk"});
    expert_ = kb_.AddEntity("expert", kb::EntityCategory::kPerson,
                            {"machine", "learning", "gradient"});
    bulls_ = kb_.AddEntity("bulls", kb::EntityCategory::kCompany,
                           {"basketball", "chicago"});
    icml_ = kb_.AddEntity("icml", kb::EntityCategory::kCompany,
                          {"machine", "learning", "conference"});
    kb_.AddSurfaceForm("jordan", player_, 90);
    kb_.AddSurfaceForm("jordan", expert_, 10);
    kb_.AddSurfaceForm("bulls", bulls_, 40);
    kb_.AddSurfaceForm("icml", icml_, 30);
    for (int i = 0; i < 4; ++i) {
      kb::EntityId a = kb_.AddEntity("a" + std::to_string(i),
                                     kb::EntityCategory::kMovieMusic, {});
      kb_.AddHyperlink(a, player_);
      kb_.AddHyperlink(a, bulls_);
      kb::EntityId b = kb_.AddEntity("b" + std::to_string(i),
                                     kb::EntityCategory::kMovieMusic, {});
      kb_.AddHyperlink(b, expert_);
      kb_.AddHyperlink(b, icml_);
    }
    kb_.Finalize();
    wlm_ = std::make_unique<kb::WlmRelatedness>(&kb_);
  }

  kb::Tweet MakeTweet(const std::string& text, kb::UserId user = 1) {
    kb::Tweet t;
    t.id = next_id_++;
    t.user = user;
    t.time = 1000;
    t.text = text;
    return t;
  }

  kb::Knowledgebase kb_;
  std::unique_ptr<kb::WlmRelatedness> wlm_;
  kb::EntityId player_, expert_, bulls_, icml_;
  kb::TweetId next_id_ = 0;
};

// ------------------------------------------------------------- on-the-fly

TEST_F(BaselineFixture, PopularityPriorWinsWithoutContext) {
  OnTheFlyLinker linker(&kb_, wlm_.get(), OnTheFlyOptions{});
  auto r = linker.LinkTweet(MakeTweet("nothing but jordan here"));
  ASSERT_EQ(r.mentions.size(), 1u);
  EXPECT_EQ(r.mentions[0].best(), player_);
}

TEST_F(BaselineFixture, ContextSimilarityFlipsDecision) {
  // Weight context enough to overcome the 90:10 anchor prior.
  OnTheFlyOptions options;
  options.w_commonness = 0.3;
  options.w_context = 0.5;
  options.w_coherence = 0.2;
  OnTheFlyLinker linker(&kb_, wlm_.get(), options);
  // Tweet text overlaps the expert's description tokens.
  auto r = linker.LinkTweet(
      MakeTweet("jordan machine learning gradient talk"));
  ASSERT_EQ(r.mentions.size(), 1u);
  EXPECT_EQ(r.mentions[0].best(), expert_);
}

TEST_F(BaselineFixture, CoherenceVotesAcrossMentions) {
  OnTheFlyOptions options;
  options.w_commonness = 0.3;
  options.w_context = 0.0;  // isolate coherence
  options.w_coherence = 0.7;
  OnTheFlyLinker linker(&kb_, wlm_.get(), options);
  // "icml" is unambiguous and strongly related to the expert.
  auto r = linker.LinkTweet(MakeTweet("jordan speaks at icml"));
  ASSERT_EQ(r.mentions.size(), 2u);
  EXPECT_EQ(r.mentions[0].best(), expert_);
  EXPECT_EQ(r.mentions[1].best(), icml_);
}

TEST_F(BaselineFixture, EmptyTweetYieldsNothing) {
  OnTheFlyLinker linker(&kb_, wlm_.get(), OnTheFlyOptions{});
  auto r = linker.LinkTweet(MakeTweet("no entities whatsoever"));
  EXPECT_TRUE(r.mentions.empty());
}

TEST_F(BaselineFixture, TopKRespected) {
  OnTheFlyOptions options;
  options.top_k_results = 1;
  OnTheFlyLinker linker(&kb_, wlm_.get(), options);
  auto r = linker.LinkTweet(MakeTweet("jordan"));
  ASSERT_EQ(r.mentions.size(), 1u);
  EXPECT_EQ(r.mentions[0].ranked.size(), 1u);
}

// -------------------------------------------------------------- collective

TEST_F(BaselineFixture, CollectiveUsesHistoryAcrossTweets) {
  CollectiveLinker linker(&kb_, wlm_.get(), CollectiveOptions{});
  // A user whose history is full of basketball: "bulls" tweets pull the
  // ambiguous "jordan" tweet toward the player even with ML-ish words.
  std::vector<kb::Tweet> tweets = {
      MakeTweet("the bulls again"),
      MakeTweet("bulls chicago forever"),
      MakeTweet("bulls bulls bulls"),
      MakeTweet("jordan is great"),
  };
  auto results = linker.LinkUserTweets(tweets);
  ASSERT_EQ(results.size(), 4u);
  ASSERT_EQ(results[3].mentions.size(), 1u);
  EXPECT_EQ(results[3].mentions[0].best(), player_);

  // An ML-heavy history pulls the same mention the other way.
  std::vector<kb::Tweet> ml_tweets = {
      MakeTweet("icml deadline"),
      MakeTweet("icml reviews"),
      MakeTweet("icml rebuttal"),
      MakeTweet("jordan is great"),
  };
  auto ml_results = linker.LinkUserTweets(ml_tweets);
  ASSERT_EQ(ml_results[3].mentions.size(), 1u);
  EXPECT_EQ(ml_results[3].mentions[0].best(), expert_);
}

TEST_F(BaselineFixture, CollectiveHandlesEmptyBatch) {
  CollectiveLinker linker(&kb_, wlm_.get(), CollectiveOptions{});
  EXPECT_TRUE(linker.LinkUserTweets({}).empty());
  auto r = linker.LinkUserTweets(
      std::vector<kb::Tweet>{MakeTweet("nothing here")});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r[0].mentions.empty());
}

TEST_F(BaselineFixture, CollectiveSingleTweetDegeneratesToIntraFeatures) {
  CollectiveOptions options;
  options.w_commonness = 0.3;
  options.w_context = 0.7;  // let context dominate the 90:10 prior
  CollectiveLinker linker(&kb_, wlm_.get(), options);
  auto r = linker.LinkUserTweets(
      std::vector<kb::Tweet>{MakeTweet("jordan gradient machine learning")});
  ASSERT_EQ(r.size(), 1u);
  ASSERT_EQ(r[0].mentions.size(), 1u);
  EXPECT_EQ(r[0].mentions[0].best(), expert_);
}

TEST_F(BaselineFixture, CollectiveResultsAlignWithInput) {
  CollectiveLinker linker(&kb_, wlm_.get(), CollectiveOptions{});
  std::vector<kb::Tweet> tweets = {
      MakeTweet("bulls game"),
      MakeTweet("no mention"),
      MakeTweet("icml talk"),
  };
  auto results = linker.LinkUserTweets(tweets);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].mentions.size(), 1u);
  EXPECT_TRUE(results[1].mentions.empty());
  EXPECT_EQ(results[2].mentions.size(), 1u);
}

}  // namespace
}  // namespace mel::baseline

#include <gtest/gtest.h>

#include <memory>

#include "mel.h"

#include "core/parallel_linker.h"
#include "core/personalized_search.h"
#include "eval/harness.h"
#include "eval/runner.h"
#include "eval/weight_learner.h"
#include "gen/workload.h"
#include "social/influential_index.h"

namespace mel {
namespace {

class ExtensionsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::HarnessOptions options;
    options.scale = 0.5;
    harness_ = new eval::Harness(options);
  }
  static void TearDownTestSuite() {
    delete harness_;
    harness_ = nullptr;
  }
  static eval::Harness* harness_;
};

eval::Harness* ExtensionsFixture::harness_ = nullptr;

// ------------------------------------------------- influential index

TEST_F(ExtensionsFixture, InfluentialIndexMatchesOnlineComputation) {
  social::InfluenceEstimator online(&harness_->ckb(),
                                    social::InfluenceMethod::kEntropy);
  social::InfluentialUserIndex index(&harness_->ckb(),
                                     social::InfluenceMethod::kEntropy, 5);
  const auto& kb = harness_->kb();
  for (uint32_t sid = 0; sid < std::min<size_t>(kb.surfaces().size(), 50);
       ++sid) {
    auto candidates = kb.CandidatesBySurfaceId(sid);
    std::vector<kb::EntityId> entities;
    for (const auto& c : candidates) entities.push_back(c.entity);
    for (kb::EntityId e : entities) {
      auto expected = online.TopInfluential(e, entities, 5);
      const auto& cached = index.Get(sid, e);
      ASSERT_EQ(expected.size(), cached.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].user, cached[i].user);
        EXPECT_DOUBLE_EQ(expected[i].influence, cached[i].influence);
      }
    }
  }
}

TEST_F(ExtensionsFixture, InfluentialIndexInvalidationRefreshes) {
  kb::ComplementedKnowledgebase fresh(&harness_->kb());
  social::InfluentialUserIndex index(&fresh,
                                     social::InfluenceMethod::kEntropy, 3);
  // An ambiguous surface whose candidates start with empty communities.
  uint32_t sid = harness_->kb().SurfaceId(
      harness_->world().kb_world.ambiguous_surfaces[0]);
  ASSERT_NE(sid, kb::Knowledgebase::kInvalidSurface);
  auto candidates = harness_->kb().CandidatesBySurfaceId(sid);
  ASSERT_GE(candidates.size(), 2u);
  kb::EntityId entity = candidates[0].entity;
  EXPECT_TRUE(index.Get(sid, entity).empty());

  // A new link makes user 7 influential; without invalidation the cache
  // would still say "empty".
  fresh.AddLink(entity, kb::Posting{1, 7, 100});
  index.Invalidate(entity);
  auto updated = index.Get(sid, entity);
  ASSERT_EQ(updated.size(), 1u);
  EXPECT_EQ(updated[0].user, 7u);
}

TEST_F(ExtensionsFixture, PrecomputeAllFillsEverySurface) {
  social::InfluentialUserIndex index(&harness_->ckb(),
                                     social::InfluenceMethod::kTfIdf, 2);
  EXPECT_EQ(index.CachedEntries(), 0u);
  index.PrecomputeAll();
  EXPECT_GT(index.CachedEntries(), harness_->kb().surfaces().size());
}

// --------------------------------------------------- parallel linking

TEST_F(ExtensionsFixture, ParallelMatchesSequential) {
  auto linker = harness_->MakeLinker(harness_->DefaultLinkerOptions());
  std::vector<kb::Tweet> batch;
  for (uint32_t ti : harness_->test_split().tweet_indices) {
    batch.push_back(harness_->world().corpus.tweets[ti].tweet);
    if (batch.size() >= 200) break;
  }
  auto sequential = core::LinkTweetsParallel(&linker, batch, 1);
  auto parallel = core::LinkTweetsParallel(&linker, batch, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential[i].mentions.size(), parallel[i].mentions.size());
    for (size_t m = 0; m < sequential[i].mentions.size(); ++m) {
      EXPECT_EQ(sequential[i].mentions[m].best(),
                parallel[i].mentions[m].best());
    }
  }
}

TEST_F(ExtensionsFixture, ParallelMentionRequests) {
  auto linker = harness_->MakeLinker(harness_->DefaultLinkerOptions());
  std::vector<core::MentionRequest> requests;
  for (uint32_t ti : harness_->test_split().tweet_indices) {
    const auto& lt = harness_->world().corpus.tweets[ti];
    for (const auto& m : lt.mentions) {
      requests.push_back(
          core::MentionRequest{m.surface, lt.tweet.user, lt.tweet.time});
    }
    if (requests.size() >= 100) break;
  }
  auto results = core::LinkMentionsParallel(&linker, requests, 3);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    auto direct = linker.LinkMention(requests[i].surface, requests[i].user,
                                     requests[i].time);
    EXPECT_EQ(results[i].best(), direct.best());
  }
}

TEST(ParallelLinkerTest, EmptyBatch) {
  eval::HarnessOptions options;
  options.scale = 0.3;
  eval::Harness harness(options);
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());
  EXPECT_TRUE(core::LinkTweetsParallel(&linker, {}, 4).empty());
}

// ------------------------------------------------- personalized search

TEST_F(ExtensionsFixture, SearchReturnsFreshRelevantTweets) {
  auto linker = harness_->MakeLinker(harness_->DefaultLinkerOptions());
  core::PersonalizedSearch search(&linker, &harness_->ckb());

  const auto& surface = harness_->world().kb_world.ambiguous_surfaces[0];
  kb::UserId user = harness_->test_split().users[0];
  kb::Timestamp now = 90 * kb::kSecondsPerDay;

  core::SearchOptions options;
  options.top_k_tweets = 5;
  auto result = search.Query(surface, user, now, options);
  ASSERT_EQ(result.interpretations.size(), 1u);
  EXPECT_TRUE(result.interpretations[0].linked());
  EXPECT_LE(result.hits.size(), 5u);
  EXPECT_FALSE(result.hits.empty());
  for (const auto& hit : result.hits) {
    EXPECT_LE(hit.time, now);  // never from the future
  }
  // Sorted by relevance, ties by freshness.
  for (size_t i = 0; i + 1 < result.hits.size(); ++i) {
    EXPECT_GE(result.hits[i].relevance, result.hits[i + 1].relevance);
  }
}

TEST_F(ExtensionsFixture, SearchFreshnessWindowFilters) {
  auto linker = harness_->MakeLinker(harness_->DefaultLinkerOptions());
  core::PersonalizedSearch search(&linker, &harness_->ckb());
  const auto& surface = harness_->world().kb_world.ambiguous_surfaces[0];
  kb::UserId user = harness_->test_split().users[0];
  kb::Timestamp now = 90 * kb::kSecondsPerDay;

  core::SearchOptions narrow;
  narrow.freshness_window = 2 * kb::kSecondsPerDay;
  auto result = search.Query(surface, user, now, narrow);
  for (const auto& hit : result.hits) {
    EXPECT_GE(hit.time, now - narrow.freshness_window);
  }
}

TEST_F(ExtensionsFixture, SearchWithNoMentionsIsEmpty) {
  auto linker = harness_->MakeLinker(harness_->DefaultLinkerOptions());
  core::PersonalizedSearch search(&linker, &harness_->ckb());
  auto result =
      search.Query("zzz qqq completely unknown words", 0, 1000, {});
  EXPECT_TRUE(result.interpretations.empty());
  EXPECT_TRUE(result.hits.empty());
}

// ----------------------------------------------------- weight learning

TEST_F(ExtensionsFixture, LearnedWeightsLieOnSimplexAndBeatCorners) {
  auto [validation, held_out] = gen::SplitDataset(
      harness_->world().corpus, harness_->test_split(), 0.5, 3);
  auto learned = eval::LearnWeights(harness_, validation, 0.25);
  EXPECT_NEAR(learned.alpha + learned.beta + learned.gamma, 1.0, 1e-9);
  EXPECT_GE(learned.alpha, 0.0);
  EXPECT_GE(learned.beta, 0.0);
  EXPECT_GE(learned.gamma, 0.0);

  // By construction the grid includes the three corners, so the learned
  // validation accuracy dominates every single-feature configuration.
  auto corner = [&](double a, double b, double g) {
    core::LinkerOptions options = harness_->DefaultLinkerOptions();
    options.alpha = a;
    options.beta = b;
    options.gamma = g;
    auto linker = harness_->MakeLinker(options);
    return eval::EvaluateOurs(linker, harness_->world(), validation)
        .accuracy()
        .MentionAccuracy();
  };
  EXPECT_GE(learned.validation_accuracy, corner(1, 0, 0));
  EXPECT_GE(learned.validation_accuracy, corner(0, 1, 0));
  EXPECT_GE(learned.validation_accuracy, corner(0, 0, 1));
}

TEST_F(ExtensionsFixture, SplitDatasetPartitionsUsers) {
  auto [a, b] = gen::SplitDataset(harness_->world().corpus,
                                  harness_->test_split(), 0.4, 5);
  EXPECT_EQ(a.users.size() + b.users.size(),
            harness_->test_split().users.size());
  for (uint32_t u : a.users) {
    EXPECT_FALSE(std::binary_search(b.users.begin(), b.users.end(), u));
  }
  EXPECT_EQ(a.tweet_indices.size() + b.tweet_indices.size(),
            harness_->test_split().tweet_indices.size());
}

}  // namespace
}  // namespace mel

#include <gtest/gtest.h>

#include <memory>

#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "recency/burst_tracker.h"
#include "recency/propagation_network.h"
#include "recency/recency_propagator.h"
#include "recency/sliding_window.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace mel::recency {
namespace {

// Fig. 3 style world: a basketball cluster {player, bulls, nba} and an ML
// cluster {expert, icml}; "jordan" is ambiguous between player and expert
// (so they must never be directly connected in the propagation network).
class RecencyFixture : public ::testing::Test {
 protected:
  RecencyFixture() {
    player_ = kb_.AddEntity("player", kb::EntityCategory::kPerson, {});
    expert_ = kb_.AddEntity("expert", kb::EntityCategory::kPerson, {});
    bulls_ = kb_.AddEntity("bulls", kb::EntityCategory::kCompany, {});
    nba_ = kb_.AddEntity("nba", kb::EntityCategory::kCompany, {});
    icml_ = kb_.AddEntity("icml", kb::EntityCategory::kCompany, {});
    for (int i = 0; i < 5; ++i) {
      // Five "article" entities co-citing the basketball cluster.
      kb::EntityId a = kb_.AddEntity("art" + std::to_string(i),
                                     kb::EntityCategory::kMovieMusic, {});
      kb_.AddHyperlink(a, player_);
      kb_.AddHyperlink(a, bulls_);
      kb_.AddHyperlink(a, nba_);
    }
    for (int i = 0; i < 5; ++i) {
      kb::EntityId a = kb_.AddEntity("ml" + std::to_string(i),
                                     kb::EntityCategory::kMovieMusic, {});
      kb_.AddHyperlink(a, expert_);
      kb_.AddHyperlink(a, icml_);
    }
    kb_.AddSurfaceForm("jordan", player_, 10);
    kb_.AddSurfaceForm("jordan", expert_, 5);
    kb_.Finalize();
    ckb_ = std::make_unique<kb::ComplementedKnowledgebase>(&kb_);
  }

  void Burst(kb::EntityId e, kb::Timestamp around, int count) {
    for (int i = 0; i < count; ++i) {
      ckb_->AddLink(e, kb::Posting{next_tweet_++, 1, around + i});
    }
  }

  kb::Knowledgebase kb_;
  std::unique_ptr<kb::ComplementedKnowledgebase> ckb_;
  kb::EntityId player_, expert_, bulls_, nba_, icml_;
  kb::TweetId next_tweet_ = 0;
};

// ---------------------------------------------------------------- window

TEST_F(RecencyFixture, BurstMassRespectsThreshold) {
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  Burst(player_, 1000, 4);  // below theta1 = 5
  EXPECT_EQ(window.RecentCount(player_, 1050), 4u);
  EXPECT_DOUBLE_EQ(window.BurstMass(player_, 1050), 0.0);
  Burst(player_, 1010, 3);  // now 7 in window
  EXPECT_DOUBLE_EQ(window.BurstMass(player_, 1050), 7.0);
}

TEST_F(RecencyFixture, WindowSlidesPastOldTweets) {
  SlidingWindowRecency window(ckb_.get(), 100, 1);
  Burst(player_, 0, 10);
  EXPECT_EQ(window.RecentCount(player_, 50), 10u);
  EXPECT_EQ(window.RecentCount(player_, 500), 0u);
}

TEST_F(RecencyFixture, ScoresNormalizedOverCandidates) {
  SlidingWindowRecency window(ckb_.get(), 100, 2);
  Burst(player_, 1000, 6);
  Burst(expert_, 1000, 2);
  std::vector<kb::EntityId> candidates = {player_, expert_};
  auto scores = window.Scores(candidates, 1050);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_DOUBLE_EQ(scores[0], 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(scores[1], 2.0 / 8.0);
}

TEST_F(RecencyFixture, SubThresholdCandidateScoresZeroButFeedsDenominator) {
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  Burst(player_, 1000, 6);
  Burst(expert_, 1000, 2);  // below threshold
  auto scores = window.Scores({{player_, expert_}}, 1050);
  EXPECT_DOUBLE_EQ(scores[0], 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST_F(RecencyFixture, NoRecentTweetsAllZero) {
  SlidingWindowRecency window(ckb_.get(), 100, 1);
  auto scores = window.Scores({{player_, expert_}}, 123456);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

// --------------------------------------------------------------- network

TEST_F(RecencyFixture, ClustersFollowTopicStructure) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  // Basketball trio share a cluster; ML pair share another; the two
  // differ.
  EXPECT_EQ(net.Cluster(player_), net.Cluster(bulls_));
  EXPECT_EQ(net.Cluster(bulls_), net.Cluster(nba_));
  EXPECT_EQ(net.Cluster(expert_), net.Cluster(icml_));
  EXPECT_NE(net.Cluster(player_), net.Cluster(expert_));
  EXPECT_GT(net.num_edges(), 0u);
  EXPECT_GE(net.MaxClusterSize(), 3u);
}

TEST_F(RecencyFixture, SameMentionCandidatesNeverConnected) {
  // Even with threshold 0 (accept any positive relatedness), player_ and
  // expert_ must not be adjacent: both are candidates of "jordan".
  auto net = PropagationNetwork::Build(kb_, 0.01);
  for (const auto& edge : net.Neighbors(player_)) {
    EXPECT_NE(edge.target, expert_);
  }
  for (const auto& edge : net.Neighbors(expert_)) {
    EXPECT_NE(edge.target, player_);
  }
}

TEST_F(RecencyFixture, HighThresholdPrunesAllEdges) {
  auto net = PropagationNetwork::Build(kb_, 1.01);
  EXPECT_EQ(net.num_edges(), 0u);
  EXPECT_EQ(net.num_clusters(), kb_.num_entities());
  EXPECT_EQ(net.MaxClusterSize(), 1u);
}

TEST_F(RecencyFixture, ProbabilitiesRowNormalized) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  for (kb::EntityId e = 0; e < kb_.num_entities(); ++e) {
    auto nbrs = net.Neighbors(e);
    if (nbrs.empty()) continue;
    double total = 0;
    for (const auto& edge : nbrs) total += edge.probability;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(RecencyFixture, ClusterMembersPartitionEntities) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  size_t total = 0;
  for (uint32_t c = 0; c < net.num_clusters(); ++c) {
    total += net.ClusterMembers(c).size();
    for (kb::EntityId e : net.ClusterMembers(c)) {
      EXPECT_EQ(net.Cluster(e), c);
    }
  }
  EXPECT_EQ(total, kb_.num_entities());
}

// ------------------------------------------------------------ propagator

TEST_F(RecencyFixture, BurstPropagatesWithinCluster) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  RecencyPropagator propagator(&net, &window, PropagatorOptions{});

  Burst(nba_, 1000, 20);  // NBA bursts; the player has no burst of his own
  auto scores = propagator.CandidateScores({{player_, expert_}}, 1050,
                                           /*enable_propagation=*/true);
  // Propagation lifts the player above the (silent) expert.
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);

  // Without propagation neither candidate has any burst of its own.
  auto plain = propagator.CandidateScores({{player_, expert_}}, 1050,
                                          /*enable_propagation=*/false);
  EXPECT_DOUBLE_EQ(plain[0], 0.0);
  EXPECT_DOUBLE_EQ(plain[1], 0.0);
}

TEST_F(RecencyFixture, IcmlBurstFavoursExpert) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  RecencyPropagator propagator(&net, &window, PropagatorOptions{});
  Burst(icml_, 2000, 15);
  auto scores = propagator.CandidateScores({{player_, expert_}}, 2050, true);
  EXPECT_GT(scores[1], scores[0]);
}

TEST_F(RecencyFixture, LambdaOnePreservesInitialVector) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  PropagatorOptions opts;
  opts.lambda = 1.0;  // no reinforcement at all
  RecencyPropagator propagator(&net, &window, opts);
  Burst(nba_, 1000, 20);
  auto cluster_scores =
      propagator.PropagateCluster(net.Cluster(nba_), 1050);
  auto members = net.ClusterMembers(net.Cluster(nba_));
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i] == nba_) {
      EXPECT_NEAR(cluster_scores[i], 20.0, 1e-9);  // raw burst mass
    } else {
      EXPECT_NEAR(cluster_scores[i], 0.0, 1e-9);
    }
  }
}

TEST_F(RecencyFixture, PropagatedMassStaysFinite) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 1);
  RecencyPropagator propagator(&net, &window, PropagatorOptions{});
  Burst(player_, 1000, 10);
  Burst(bulls_, 1000, 10);
  Burst(nba_, 1000, 10);
  auto scores = propagator.PropagateCluster(net.Cluster(nba_), 1050);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 30.0);  // never exceeds the total injected burst mass
  }
}

TEST_F(RecencyFixture, CandidateScoresNormalized) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 2);
  RecencyPropagator propagator(&net, &window, PropagatorOptions{});
  Burst(player_, 1000, 8);
  Burst(expert_, 1000, 4);
  auto scores = propagator.CandidateScores({{player_, expert_}}, 1050, true);
  EXPECT_NEAR(scores[0] + scores[1], 1.0, 1e-9);
  EXPECT_GT(scores[0], scores[1]);
}

// ----------------------------------------------------------------- cache

uint64_t Hits() {
  return metrics::Registry().GetCounter("recency.cache.hits_total")->Value();
}
uint64_t Misses() {
  return metrics::Registry()
      .GetCounter("recency.cache.misses_total")
      ->Value();
}
uint64_t Invalidations() {
  return metrics::Registry()
      .GetCounter("recency.cache.invalidations_total")
      ->Value();
}

TEST_F(RecencyFixture, CacheHitsOnRepeatedQuery) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  RecencyPropagator propagator(&net, &window, PropagatorOptions{});
  Burst(nba_, 1000, 20);

  const uint64_t hits0 = Hits(), misses0 = Misses();
  auto first = propagator.PropagateCluster(net.Cluster(nba_), 1050);
  EXPECT_EQ(Misses(), misses0 + 1);
  EXPECT_EQ(Hits(), hits0);
  auto second = propagator.PropagateCluster(net.Cluster(nba_), 1050);
  EXPECT_EQ(Hits(), hits0 + 1);
  EXPECT_EQ(Misses(), misses0 + 1);
  EXPECT_EQ(first, second);
}

TEST_F(RecencyFixture, CacheMissesAfterWindowAdvance) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  RecencyPropagator propagator(&net, &window, PropagatorOptions{});
  Burst(nba_, 1000, 20);

  propagator.PropagateCluster(net.Cluster(nba_), 1050);
  const uint64_t misses0 = Misses(), invalidations0 = Invalidations();
  // The sliding window's token is the exact timestamp: a different `now`
  // may change which tweets are inside the window, so it must recompute.
  auto later = propagator.PropagateCluster(net.Cluster(nba_), 1200);
  EXPECT_EQ(Misses(), misses0 + 1);
  EXPECT_EQ(Invalidations(), invalidations0 + 1);
  // 1200 is past the burst's window [1100, 1200): all mass is gone.
  for (double v : later) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(RecencyFixture, CacheInvalidatesAfterConfirmedLinkMutation) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  RecencyPropagator propagator(&net, &window, PropagatorOptions{});
  Burst(nba_, 1000, 20);

  auto before = propagator.PropagateCluster(net.Cluster(nba_), 1050);
  const uint64_t invalidations0 = Invalidations();
  // ConfirmLink-style feedback lands in the complemented KB and bumps its
  // version; the cached vector for the same (cluster, now) must refresh.
  Burst(nba_, 1040, 7);
  auto after = propagator.PropagateCluster(net.Cluster(nba_), 1050);
  EXPECT_EQ(Invalidations(), invalidations0 + 1);
  auto members = net.ClusterMembers(net.Cluster(nba_));
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i] == nba_) {
      EXPECT_GT(after[i], before[i]);
    }
  }
}

TEST_F(RecencyFixture, CachedResultsMatchUncached) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  PropagatorOptions off;
  off.enable_cache = false;
  RecencyPropagator cached(&net, &window, PropagatorOptions{});
  RecencyPropagator uncached(&net, &window, off);
  Burst(nba_, 1000, 20);
  Burst(icml_, 1000, 9);
  for (kb::Timestamp now : {1050, 1060, 1120}) {
    for (uint32_t c = 0; c < net.num_clusters(); ++c) {
      EXPECT_EQ(cached.PropagateCluster(c, now),
                uncached.PropagateCluster(c, now));
      // Repeat hits the cache and must still agree.
      EXPECT_EQ(cached.PropagateCluster(c, now),
                uncached.PropagateCluster(c, now));
    }
  }
}

TEST_F(RecencyFixture, SourcesWithoutEpochBypassTheCache) {
  // A source that cannot track mutations keeps the default kNoEpoch and
  // must never be served from (or populate) the cache.
  struct UntrackedSource : RecencySource {
    uint32_t RecentCount(kb::EntityId, kb::Timestamp) const override {
      return 12;
    }
    double BurstMass(kb::EntityId, kb::Timestamp) const override {
      return 12.0;
    }
  };
  auto net = PropagationNetwork::Build(kb_, 0.3);
  UntrackedSource source;
  RecencyPropagator propagator(&net, &source, PropagatorOptions{});
  const uint64_t hits0 = Hits(), misses0 = Misses();
  propagator.PropagateCluster(net.Cluster(nba_), 1050);
  propagator.PropagateCluster(net.Cluster(nba_), 1050);
  EXPECT_EQ(Hits(), hits0);
  EXPECT_EQ(Misses(), misses0);
}

TEST_F(RecencyFixture, BurstTrackerEpochTracksObservations) {
  BurstTracker tracker(kb_.num_entities(), 100, 10, 5);
  const uint64_t epoch0 = tracker.Epoch();
  tracker.Observe(nba_, 1000);
  EXPECT_EQ(tracker.Epoch(), epoch0 + 1);
  tracker.Observe(nba_, 1001);
  EXPECT_EQ(tracker.Epoch(), epoch0 + 2);
  // A straggler older than the retained window is dropped: no count
  // changes, so the epoch must not move either.
  tracker.Observe(nba_, 0);
  EXPECT_EQ(tracker.Epoch(), epoch0 + 2);
}

TEST_F(RecencyFixture, BurstTrackerWindowTokenIsBucketGranular) {
  BurstTracker tracker(kb_.num_entities(), 100, 10, 5);  // bucket = 10s
  EXPECT_EQ(tracker.WindowToken(1000), tracker.WindowToken(1009));
  EXPECT_NE(tracker.WindowToken(1000), tracker.WindowToken(1010));
  // Queries sharing a token must see identical counts.
  tracker.Observe(nba_, 950);
  EXPECT_EQ(tracker.ApproxRecentCount(nba_, 1000),
            tracker.ApproxRecentCount(nba_, 1009));
}

TEST_F(RecencyFixture, BurstTrackerCacheHitsWithinBucket) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  BurstTracker tracker(kb_.num_entities(), 100, 10, 5);
  RecencyPropagator propagator(&net, &tracker, PropagatorOptions{});
  for (int i = 0; i < 20; ++i) tracker.Observe(nba_, 1000);

  const uint64_t hits0 = Hits(), misses0 = Misses();
  propagator.PropagateCluster(net.Cluster(nba_), 1050);
  // Different `now`, same bucket pair: served from cache.
  propagator.PropagateCluster(net.Cluster(nba_), 1055);
  EXPECT_EQ(Misses(), misses0 + 1);
  EXPECT_EQ(Hits(), hits0 + 1);
  // Crossing a bucket boundary changes the token.
  propagator.PropagateCluster(net.Cluster(nba_), 1061);
  EXPECT_EQ(Misses(), misses0 + 2);
}

// ---------------------------------------------------------- parallel build

TEST_F(RecencyFixture, ParallelNetworkBuildIsByteIdenticalToSerial) {
  util::ThreadPool one(1);
  util::ThreadPool three(3);
  auto serial = PropagationNetwork::Build(kb_, 0.3, &one);
  auto parallel = PropagationNetwork::Build(kb_, 0.3, &three);
  auto shared = PropagationNetwork::Build(kb_, 0.3);
  EXPECT_TRUE(serial.IdenticalTo(parallel));
  EXPECT_TRUE(parallel.IdenticalTo(serial));
  EXPECT_TRUE(serial.IdenticalTo(shared));
}

TEST_F(RecencyFixture, ParallelCachedPropagationIsConsistent) {
  auto net = PropagationNetwork::Build(kb_, 0.3);
  SlidingWindowRecency window(ckb_.get(), 100, 5);
  PropagatorOptions off;
  off.enable_cache = false;
  RecencyPropagator cached(&net, &window, PropagatorOptions{});
  RecencyPropagator uncached(&net, &window, off);
  Burst(nba_, 1000, 20);
  Burst(icml_, 1000, 9);
  const uint32_t cluster = net.Cluster(nba_);
  const auto expected = uncached.PropagateCluster(cluster, 1050);

  // Concurrent queries race to fill the same slot; every one of them must
  // observe the fully computed vector.
  util::ThreadPool pool(4);
  std::vector<std::vector<double>> results(64);
  pool.ParallelFor(0, results.size(), 1, [&](size_t i) {
    results[i] = cached.PropagateCluster(cluster, 1050);
  });
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

}  // namespace
}  // namespace mel::recency

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_builder.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "reach/naive_reachability.h"
#include "social/influence.h"
#include "social/user_interest.h"

namespace mel::social {
namespace {

// World mirroring the paper's running example. Users:
//   0 = target user (follows the NBA hub)
//   1 = @NBAOfficial      — tweets only about the player
//   2 = ML expert         — tweets about both player and expert
//   3 = random user       — one tweet about the shoe
// Entities: 0 = player, 1 = expert, 2 = shoe.
class SocialFixture : public ::testing::Test {
 protected:
  SocialFixture() {
    player_ = kb_.AddEntity("player", kb::EntityCategory::kPerson, {});
    expert_ = kb_.AddEntity("expert", kb::EntityCategory::kPerson, {});
    shoe_ = kb_.AddEntity("shoe", kb::EntityCategory::kProduct, {});
    kb_.AddSurfaceForm("jordan", player_, 10);
    kb_.AddSurfaceForm("jordan", expert_, 5);
    kb_.AddSurfaceForm("jordan", shoe_, 3);
    kb_.Finalize();
    ckb_ = std::make_unique<kb::ComplementedKnowledgebase>(&kb_);

    // @NBAOfficial (user 1): 6 tweets, all about the player.
    for (int i = 0; i < 6; ++i) {
      ckb_->AddLink(player_, kb::Posting{static_cast<kb::TweetId>(i), 1,
                                         i * 10});
    }
    // ML expert (user 2): 2 about the expert, 2 about the player.
    ckb_->AddLink(expert_, kb::Posting{10, 2, 5});
    ckb_->AddLink(expert_, kb::Posting{11, 2, 15});
    ckb_->AddLink(player_, kb::Posting{12, 2, 25});
    ckb_->AddLink(player_, kb::Posting{13, 2, 35});
    // Random user 3: 1 tweet about the shoe.
    ckb_->AddLink(shoe_, kb::Posting{20, 3, 7});

    candidates_ = {player_, expert_, shoe_};
  }

  kb::Knowledgebase kb_;
  std::unique_ptr<kb::ComplementedKnowledgebase> ckb_;
  kb::EntityId player_, expert_, shoe_;
  std::vector<kb::EntityId> candidates_;
};

TEST_F(SocialFixture, TfIdfRewardsFocusedUsers) {
  InfluenceEstimator inf(ckb_.get(), InfluenceMethod::kTfIdf);
  // User 1 mentions only 1 of 3 candidates: idf = log(3).
  double u1 = inf.Influence(1, player_, candidates_);
  EXPECT_NEAR(u1, (6.0 / 8.0) * std::log(3.0), 1e-9);
  // User 2 mentions 2 of 3 candidates: idf = log(1.5), smaller.
  double u2 = inf.Influence(2, player_, candidates_);
  EXPECT_NEAR(u2, (2.0 / 8.0) * std::log(1.5), 1e-9);
  EXPECT_GT(u1, u2);
}

TEST_F(SocialFixture, InfluenceZeroWithoutTweets) {
  InfluenceEstimator inf(ckb_.get(), InfluenceMethod::kTfIdf);
  EXPECT_EQ(inf.Influence(0, player_, candidates_), 0.0);
  EXPECT_EQ(inf.Influence(1, expert_, candidates_), 0.0);
}

TEST_F(SocialFixture, EntropyToleratesIncidentalPostings) {
  // Add an incidental shoe tweet from @NBAOfficial. Under tf-idf its
  // influence in the player community collapses (idf log(3) -> log(1.5));
  // under entropy it barely moves.
  InfluenceEstimator tfidf(ckb_.get(), InfluenceMethod::kTfIdf);
  InfluenceEstimator entropy(ckb_.get(), InfluenceMethod::kEntropy);

  double tfidf_before = tfidf.Influence(1, player_, candidates_);
  double entropy_before = entropy.Influence(1, player_, candidates_);
  ckb_->AddLink(shoe_, kb::Posting{30, 1, 50});
  double tfidf_after = tfidf.Influence(1, player_, candidates_);
  double entropy_after = entropy.Influence(1, player_, candidates_);

  double tfidf_drop = (tfidf_before - tfidf_after) / tfidf_before;
  double entropy_drop = (entropy_before - entropy_after) / entropy_before;
  EXPECT_GT(tfidf_drop, entropy_drop);
  EXPECT_LT(entropy_drop, 0.95);  // entropy influence survives
}

TEST_F(SocialFixture, EntropyUniformDistributionScoresLow) {
  // User 5 spreads tweets evenly over all three candidates.
  for (int i = 0; i < 2; ++i) {
    ckb_->AddLink(player_, kb::Posting{static_cast<kb::TweetId>(40 + i), 5,
                                       i});
    ckb_->AddLink(expert_, kb::Posting{static_cast<kb::TweetId>(50 + i), 5,
                                       i});
    ckb_->AddLink(shoe_, kb::Posting{static_cast<kb::TweetId>(60 + i), 5,
                                     i});
  }
  InfluenceEstimator inf(ckb_.get(), InfluenceMethod::kEntropy);
  // Focused user 1 beats diversified user 5 in the player community even
  // though user 5 has positive share.
  EXPECT_GT(inf.Influence(1, player_, candidates_),
            inf.Influence(5, player_, candidates_));
}

TEST_F(SocialFixture, TopInfluentialRankingAndTruncation) {
  InfluenceEstimator inf(ckb_.get(), InfluenceMethod::kTfIdf);
  auto top = inf.TopInfluential(player_, candidates_, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].user, 1u);  // @NBAOfficial dominates

  auto all = inf.TopInfluential(player_, candidates_, 0);
  ASSERT_EQ(all.size(), 2u);  // users 1 and 2
  EXPECT_EQ(all[0].user, 1u);
  EXPECT_EQ(all[1].user, 2u);
  EXPECT_GE(all[0].influence, all[1].influence);

  // top_k larger than community: returns whole community.
  auto big = inf.TopInfluential(player_, candidates_, 10);
  EXPECT_EQ(big.size(), 2u);
}

TEST_F(SocialFixture, TopInfluentialEmptyCommunity) {
  InfluenceEstimator inf(ckb_.get(), InfluenceMethod::kEntropy);
  kb::Knowledgebase kb2;
  kb::EntityId lonely = kb2.AddEntity("x", kb::EntityCategory::kPerson, {});
  kb2.Finalize();
  kb::ComplementedKnowledgebase ckb2(&kb2);
  InfluenceEstimator inf2(&ckb2, InfluenceMethod::kEntropy);
  EXPECT_TRUE(inf2.TopInfluential(lonely, {{lonely}}, 3).empty());
}

// ------------------------------------------------------- user interest

TEST_F(SocialFixture, InterestAveragesReachability) {
  // Followee graph: 0 -> 1 (target follows the hub), 3 -> 2.
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(3, 2);
  auto g = std::move(b).Build();
  reach::NaiveReachability reach(&g, 5);
  InfluenceEstimator inf(ckb_.get(), InfluenceMethod::kTfIdf);
  UserInterestScorer scorer(&inf, &reach, 0);

  // Community of player = {1, 2}; user 0 reaches 1 (score 1) but not 2.
  double interest = scorer.Interest(0, player_, candidates_);
  EXPECT_DOUBLE_EQ(interest, 0.5);

  // With top-1 influential (user 1), interest is 1.0.
  scorer.set_top_k_influential(1);
  EXPECT_DOUBLE_EQ(scorer.Interest(0, player_, candidates_), 1.0);

  // User 3 follows 2 but not 1: top-1 influential gives 0.
  EXPECT_DOUBLE_EQ(scorer.Interest(3, player_, candidates_), 0.0);
}

TEST_F(SocialFixture, InterestOverEmptySetIsZero) {
  graph::GraphBuilder b(6);
  auto g = std::move(b).Build();
  reach::NaiveReachability reach(&g, 5);
  InfluenceEstimator inf(ckb_.get(), InfluenceMethod::kTfIdf);
  UserInterestScorer scorer(&inf, &reach, 3);
  EXPECT_DOUBLE_EQ(scorer.InterestOver(0, {}), 0.0);
}

}  // namespace
}  // namespace mel::social

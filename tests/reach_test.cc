#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <tuple>

#include "graph/graph_builder.h"
#include "reach/distance_label_index.h"
#include "reach/naive_reachability.h"
#include "reach/pruned_online_search.h"
#include "reach/reach_cache.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mel::reach {
namespace {

using graph::DirectedGraph;
using graph::GraphBuilder;

DirectedGraph Chain(uint32_t n) {
  GraphBuilder b(n);
  for (uint32_t i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return std::move(b).Build();
}

DirectedGraph Diamond() {
  // 0 -> {1,2} -> 3 -> 4; plus 0 -> 5 (dead end)
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 5);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  return std::move(b).Build();
}

DirectedGraph RandomGraph(uint32_t n, double avg_degree, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  uint64_t edges = static_cast<uint64_t>(n * avg_degree);
  for (uint64_t i = 0; i < edges; ++i) {
    b.AddEdge(static_cast<graph::NodeId>(rng.Uniform(n)),
              static_cast<graph::NodeId>(rng.Uniform(n)));
  }
  return std::move(b).Build();
}

// ------------------------------------------------------------- semantics

TEST(NaiveReachabilityTest, DirectFolloweeScoresOne) {
  DirectedGraph g = Diamond();
  NaiveReachability naive(&g, 5);
  EXPECT_DOUBLE_EQ(naive.Score(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(naive.Score(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(naive.Score(3, 4), 1.0);
}

TEST(NaiveReachabilityTest, SelfScoresOne) {
  DirectedGraph g = Diamond();
  NaiveReachability naive(&g, 5);
  EXPECT_DOUBLE_EQ(naive.Score(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(naive.Score(5, 5), 1.0);
}

TEST(NaiveReachabilityTest, UnreachableScoresZero) {
  DirectedGraph g = Diamond();
  NaiveReachability naive(&g, 5);
  EXPECT_DOUBLE_EQ(naive.Score(4, 0), 0.0);
  EXPECT_DOUBLE_EQ(naive.Score(5, 3), 0.0);
}

TEST(NaiveReachabilityTest, Eq4OnDiamond) {
  DirectedGraph g = Diamond();
  NaiveReachability naive(&g, 5);
  // 0 -> 3: distance 2, followees on shortest paths = {1, 2} of
  // F_0 = {1, 2, 5}. R = (1/2) * (2/3).
  auto q = naive.Query(0, 3);
  EXPECT_EQ(q.distance, 2u);
  ASSERT_EQ(q.followees.size(), 2u);
  EXPECT_EQ(q.followees[0], 1u);
  EXPECT_EQ(q.followees[1], 2u);
  EXPECT_DOUBLE_EQ(naive.Score(0, 3), 0.5 * 2.0 / 3.0);
  // 0 -> 4: distance 3, same two followees participate.
  EXPECT_DOUBLE_EQ(naive.Score(0, 4), (1.0 / 3.0) * (2.0 / 3.0));
}

TEST(NaiveReachabilityTest, HopBoundLimitsReach) {
  DirectedGraph g = Chain(10);
  NaiveReachability naive(&g, 3);
  EXPECT_GT(naive.Score(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(naive.Score(0, 4), 0.0);  // distance 4 > H = 3
}

// --------------------------------------------------- transitive closure

TEST(TransitiveClosureTest, IncrementalMatchesDefinitionOnDiamond) {
  DirectedGraph g = Diamond();
  auto tc = TransitiveClosureIndex::Build(
      &g, 5, TransitiveClosureIndex::Construction::kIncremental);
  EXPECT_DOUBLE_EQ(tc.Score(0, 1), 1.0);
  EXPECT_FLOAT_EQ(tc.Score(0, 3), 0.5f * 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(tc.Score(0, 4), (1.0f / 3.0f) * (2.0f / 3.0f));
  EXPECT_DOUBLE_EQ(tc.Score(4, 0), 0.0);
  EXPECT_DOUBLE_EQ(tc.Score(2, 2), 1.0);
  EXPECT_EQ(tc.Distance(0, 3), 2u);
  EXPECT_EQ(tc.Distance(0, 4), 3u);
  EXPECT_EQ(tc.Distance(4, 0), kUnreachableDistance);
}

TEST(TransitiveClosureTest, NaiveConstructionAgreesWithIncremental) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    DirectedGraph g = RandomGraph(40, 2.5, seed);
    auto naive_tc = TransitiveClosureIndex::Build(
        &g, 4, TransitiveClosureIndex::Construction::kNaive);
    auto inc_tc = TransitiveClosureIndex::Build(
        &g, 4, TransitiveClosureIndex::Construction::kIncremental);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(naive_tc.Distance(u, v), inc_tc.Distance(u, v))
            << "seed " << seed << " pair " << u << "->" << v;
        EXPECT_FLOAT_EQ(naive_tc.Score(u, v), inc_tc.Score(u, v))
            << "seed " << seed << " pair " << u << "->" << v;
      }
    }
  }
}

TEST(TransitiveClosureTest, QueryReconstructsFollowees) {
  DirectedGraph g = Diamond();
  auto tc = TransitiveClosureIndex::Build(
      &g, 5, TransitiveClosureIndex::Construction::kIncremental);
  auto q = tc.Query(0, 4);
  EXPECT_EQ(q.distance, 3u);
  ASSERT_EQ(q.followees.size(), 2u);
  EXPECT_EQ(q.followees[0], 1u);
  EXPECT_EQ(q.followees[1], 2u);
}

TEST(TransitiveClosureTest, IndexSizeAccounting) {
  DirectedGraph g = Diamond();
  auto tc = TransitiveClosureIndex::Build(
      &g, 5, TransitiveClosureIndex::Construction::kIncremental);
  EXPECT_EQ(tc.IndexSizeBytes(), 6ull * 6 * 5);
}

// ----------------------------------------------------------- 2-hop cover

TEST(TwoHopIndexTest, MatchesDefinitionOnDiamond) {
  DirectedGraph g = Diamond();
  auto index = TwoHopIndex::Build(&g, 5);
  EXPECT_DOUBLE_EQ(index.Score(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(index.Score(0, 3), 0.5 * 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(index.Score(0, 4), (1.0 / 3.0) * (2.0 / 3.0));
  EXPECT_DOUBLE_EQ(index.Score(4, 0), 0.0);
  EXPECT_DOUBLE_EQ(index.Score(1, 1), 1.0);
}

TEST(TwoHopIndexTest, QueryReturnsSortedFollowees) {
  DirectedGraph g = Diamond();
  auto index = TwoHopIndex::Build(&g, 5);
  auto q = index.Query(0, 4);
  EXPECT_EQ(q.distance, 3u);
  ASSERT_EQ(q.followees.size(), 2u);
  EXPECT_EQ(q.followees[0], 1u);
  EXPECT_EQ(q.followees[1], 2u);
}

TEST(TwoHopIndexTest, HopBoundRespected) {
  DirectedGraph g = Chain(12);
  auto index = TwoHopIndex::Build(&g, 4);
  EXPECT_GT(index.Score(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(index.Score(0, 5), 0.0);
  auto q = index.Query(0, 5);
  EXPECT_FALSE(q.reachable());
}

TEST(TwoHopIndexTest, LabelEntriesAndSizeNonZero) {
  DirectedGraph g = Diamond();
  auto index = TwoHopIndex::Build(&g, 5);
  EXPECT_GT(index.TotalLabelEntries(), 0u);
  EXPECT_GT(index.IndexSizeBytes(), 0u);
}

// -------------------------------------- cross-backend property checking

struct BackendConsistencyParam {
  uint32_t nodes;
  double avg_degree;
  uint32_t max_hops;
  uint64_t seed;
};

class BackendConsistencyTest
    : public ::testing::TestWithParam<BackendConsistencyParam> {};

TEST_P(BackendConsistencyTest, AllBackendsAgree) {
  const auto& p = GetParam();
  DirectedGraph g = RandomGraph(p.nodes, p.avg_degree, p.seed);
  NaiveReachability naive(&g, p.max_hops);
  auto tc = TransitiveClosureIndex::Build(
      &g, p.max_hops, TransitiveClosureIndex::Construction::kIncremental);
  auto two_hop = TwoHopIndex::Build(&g, p.max_hops);

  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto nq = naive.Query(u, v);
      auto tq = tc.Query(u, v);
      auto hq = two_hop.Query(u, v);
      ASSERT_EQ(nq.distance, tq.distance)
          << "TC distance mismatch " << u << "->" << v << " seed " << p.seed;
      ASSERT_EQ(nq.distance, hq.distance)
          << "2hop distance mismatch " << u << "->" << v << " seed "
          << p.seed;
      ASSERT_EQ(nq.followees, tq.followees)
          << "TC followees mismatch " << u << "->" << v << " seed "
          << p.seed;
      ASSERT_EQ(nq.followees, hq.followees)
          << "2hop followees mismatch " << u << "->" << v << " seed "
          << p.seed;
      ASSERT_NEAR(naive.Score(u, v), tc.Score(u, v), 1e-6);
      ASSERT_NEAR(naive.Score(u, v), two_hop.Score(u, v), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BackendConsistencyTest,
    ::testing::Values(BackendConsistencyParam{20, 1.5, 4, 11},
                      BackendConsistencyParam{30, 2.0, 5, 12},
                      BackendConsistencyParam{40, 3.0, 3, 13},
                      BackendConsistencyParam{50, 1.0, 6, 14},
                      BackendConsistencyParam{25, 4.0, 4, 15},
                      BackendConsistencyParam{60, 2.5, 5, 16},
                      BackendConsistencyParam{35, 0.5, 8, 17},
                      BackendConsistencyParam{45, 5.0, 3, 18}));

// Dense cyclic graphs stress the equality branch of Algorithm 2.
TEST(TwoHopIndexTest, CyclicGraphConsistency) {
  GraphBuilder b(8);
  for (uint32_t i = 0; i < 8; ++i) {
    b.AddEdge(i, (i + 1) % 8);
    b.AddEdge(i, (i + 3) % 8);
  }
  DirectedGraph g = std::move(b).Build();
  NaiveReachability naive(&g, 6);
  auto index = TwoHopIndex::Build(&g, 6);
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId v = 0; v < 8; ++v) {
      auto nq = naive.Query(u, v);
      auto hq = index.Query(u, v);
      EXPECT_EQ(nq.distance, hq.distance) << u << "->" << v;
      EXPECT_EQ(nq.followees, hq.followees) << u << "->" << v;
    }
  }
}

// ------------------------------------------- distance-only PLL ablation

TEST(DistanceLabelIndexTest, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    DirectedGraph g = RandomGraph(40, 2.5, seed);
    NaiveReachability naive(&g, 5);
    auto index = DistanceLabelIndex::Build(&g, 5);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        auto nq = naive.Query(u, v);
        auto dq = index.Query(u, v);
        ASSERT_EQ(nq.distance, dq.distance)
            << u << "->" << v << " seed " << seed;
        ASSERT_EQ(nq.followees, dq.followees)
            << u << "->" << v << " seed " << seed;
      }
    }
  }
}

TEST(DistanceLabelIndexTest, SmallerThanFolloweeCarryingIndex) {
  DirectedGraph g = RandomGraph(200, 4.0, 31);
  auto full = TwoHopIndex::Build(&g, 5);
  auto dist_only = DistanceLabelIndex::Build(&g, 5);
  EXPECT_LT(dist_only.IndexSizeBytes(), full.IndexSizeBytes());
  // Both agree on scores.
  Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    auto u = static_cast<graph::NodeId>(rng.Uniform(200));
    auto v = static_cast<graph::NodeId>(rng.Uniform(200));
    ASSERT_DOUBLE_EQ(full.Score(u, v), dist_only.Score(u, v));
  }
}

// ------------------------------------------- pruned online search

TEST(PrunedOnlineSearchTest, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed : {51ULL, 52ULL, 53ULL}) {
    DirectedGraph g = RandomGraph(40, 2.0, seed);
    NaiveReachability naive(&g, 5);
    auto index = PrunedOnlineSearch::Build(&g, 5, 3, seed);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        auto nq = naive.Query(u, v);
        auto pq = index.Query(u, v);
        ASSERT_EQ(nq.distance, pq.distance)
            << u << "->" << v << " seed " << seed;
        ASSERT_EQ(nq.followees, pq.followees)
            << u << "->" << v << " seed " << seed;
      }
    }
  }
}

TEST(PrunedOnlineSearchTest, IntervalsNeverPruneReachablePairs) {
  // Soundness: DefinitelyUnreachable must never fire for a pair that IS
  // reachable (with no hop bound).
  for (uint64_t seed : {61ULL, 62ULL}) {
    DirectedGraph g = RandomGraph(60, 2.5, seed);
    auto index = PrunedOnlineSearch::Build(&g, 60, 2, seed);
    NaiveReachability naive(&g, 60);  // effectively unbounded
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (u == v) continue;
        if (naive.Query(u, v).reachable()) {
          ASSERT_FALSE(index.DefinitelyUnreachable(u, v))
              << u << "->" << v << " seed " << seed;
        }
      }
    }
  }
}

TEST(PrunedOnlineSearchTest, PrunesSomethingOnChains) {
  // On a chain, later nodes provably cannot reach earlier ones.
  DirectedGraph g = Chain(20);
  auto index = PrunedOnlineSearch::Build(&g, 20, 2, 7);
  uint32_t pruned = 0;
  for (graph::NodeId u = 0; u < 20; ++u) {
    for (graph::NodeId v = 0; v < u; ++v) {
      if (index.DefinitelyUnreachable(u, v)) ++pruned;
    }
  }
  EXPECT_GT(pruned, 0u);
  EXPECT_EQ(index.num_components(), 20u);
  EXPECT_GT(index.IndexSizeBytes(), 0u);
}

TEST(PrunedOnlineSearchTest, CyclesCollapseToOneComponent) {
  GraphBuilder b(6);
  for (uint32_t i = 0; i < 6; ++i) b.AddEdge(i, (i + 1) % 6);
  DirectedGraph g = std::move(b).Build();
  auto index = PrunedOnlineSearch::Build(&g, 6, 2, 9);
  EXPECT_EQ(index.num_components(), 1u);
  // Everything reaches everything; no pruning may fire.
  for (graph::NodeId u = 0; u < 6; ++u) {
    for (graph::NodeId v = 0; v < 6; ++v) {
      EXPECT_FALSE(index.DefinitelyUnreachable(u, v));
    }
  }
}

// ---------------------------------------------- dynamic edge insertion

TEST(TransitiveClosureInsertTest, MatchesRebuildAfterInsertions) {
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    const uint32_t n = 30;
    // Base edges.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    for (int i = 0; i < 60; ++i) {
      auto a = static_cast<graph::NodeId>(rng.Uniform(n));
      auto b = static_cast<graph::NodeId>(rng.Uniform(n));
      if (a != b) edges.emplace_back(a, b);
    }
    GraphBuilder base_builder(n);
    for (auto [a, b] : edges) base_builder.AddEdge(a, b);
    DirectedGraph base = std::move(base_builder).Build();
    auto dynamic_tc = TransitiveClosureIndex::Build(
        &base, 4, TransitiveClosureIndex::Construction::kIncremental);

    // Insert a handful of new edges one by one.
    for (int k = 0; k < 8; ++k) {
      auto a = static_cast<graph::NodeId>(rng.Uniform(n));
      auto b = static_cast<graph::NodeId>(rng.Uniform(n));
      if (a == b) continue;
      bool inserted = dynamic_tc.InsertEdge(a, b);
      if (inserted) edges.emplace_back(a, b);

      GraphBuilder rebuilt_builder(n);
      for (auto [x, y] : edges) rebuilt_builder.AddEdge(x, y);
      DirectedGraph rebuilt_graph = std::move(rebuilt_builder).Build();
      auto rebuilt = TransitiveClosureIndex::Build(
          &rebuilt_graph, 4,
          TransitiveClosureIndex::Construction::kIncremental);

      for (graph::NodeId u = 0; u < n; ++u) {
        for (graph::NodeId v = 0; v < n; ++v) {
          ASSERT_EQ(dynamic_tc.Distance(u, v), rebuilt.Distance(u, v))
              << "trial " << trial << " after insert " << a << "->" << b
              << " pair " << u << "->" << v;
          ASSERT_NEAR(dynamic_tc.Score(u, v), rebuilt.Score(u, v), 1e-6)
              << "trial " << trial << " after insert " << a << "->" << b
              << " pair " << u << "->" << v;
        }
      }
    }
  }
}

TEST(TransitiveClosureInsertTest, DuplicateAndSelfEdgesRejected) {
  DirectedGraph g = Diamond();
  auto tc = TransitiveClosureIndex::Build(
      &g, 5, TransitiveClosureIndex::Construction::kIncremental);
  EXPECT_FALSE(tc.InsertEdge(0, 0));
  EXPECT_FALSE(tc.InsertEdge(0, 1));  // already in the base graph
  EXPECT_TRUE(tc.InsertEdge(5, 4));
  EXPECT_FALSE(tc.InsertEdge(5, 4));  // already in the overlay
}

TEST(TransitiveClosureInsertTest, NewEdgeCreatesReachability) {
  // Chain 0 -> 1 -> 2; inserting 2 -> 3 connects node 3.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  DirectedGraph g = std::move(b).Build();
  auto tc = TransitiveClosureIndex::Build(
      &g, 5, TransitiveClosureIndex::Construction::kIncremental);
  EXPECT_DOUBLE_EQ(tc.Score(0, 3), 0.0);
  ASSERT_TRUE(tc.InsertEdge(2, 3));
  EXPECT_EQ(tc.Distance(2, 3), 1u);
  EXPECT_DOUBLE_EQ(tc.Score(2, 3), 1.0);
  EXPECT_EQ(tc.Distance(0, 3), 3u);
  // 0's single followee 1 lies on the shortest path: R = 1/3 * 1/1.
  EXPECT_NEAR(tc.Score(0, 3), 1.0 / 3.0, 1e-6);
  // Node 2 had no followees in the base graph; the overlay adds one.
  EXPECT_EQ(tc.CurrentOutDegree(2), 1u);
}

TEST(TransitiveClosureInsertTest, InsertShortensExistingDistance) {
  // 0 -> 1 -> 2 -> 3 -> 4; inserting 0 -> 3 shortens 0~>4 from 4 to 2.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  DirectedGraph g = std::move(b).Build();
  auto tc = TransitiveClosureIndex::Build(
      &g, 6, TransitiveClosureIndex::Construction::kIncremental);
  EXPECT_EQ(tc.Distance(0, 4), 4u);
  ASSERT_TRUE(tc.InsertEdge(0, 3));
  EXPECT_EQ(tc.Distance(0, 4), 2u);
  // F_04 = {3} of followees {1, 3}: R = 1/2 * 1/2.
  EXPECT_NEAR(tc.Score(0, 4), 0.25, 1e-6);
  auto q = tc.Query(0, 4);
  ASSERT_EQ(q.followees.size(), 1u);
  EXPECT_EQ(q.followees[0], 3u);
}

// ------------------------------------- graph-family property sweeps

enum class GraphFamily {
  kChain,
  kCycle,
  kStarOut,    // hub follows everyone
  kStarIn,     // everyone follows the hub
  kComplete,
  kBipartite,  // layer A -> layer B
  kBinaryTree,
};

const char* FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kChain: return "chain";
    case GraphFamily::kCycle: return "cycle";
    case GraphFamily::kStarOut: return "star-out";
    case GraphFamily::kStarIn: return "star-in";
    case GraphFamily::kComplete: return "complete";
    case GraphFamily::kBipartite: return "bipartite";
    case GraphFamily::kBinaryTree: return "binary-tree";
  }
  return "?";
}

DirectedGraph MakeFamily(GraphFamily family, uint32_t n) {
  GraphBuilder b(n);
  switch (family) {
    case GraphFamily::kChain:
      for (uint32_t i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
      break;
    case GraphFamily::kCycle:
      for (uint32_t i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
      break;
    case GraphFamily::kStarOut:
      for (uint32_t i = 1; i < n; ++i) b.AddEdge(0, i);
      break;
    case GraphFamily::kStarIn:
      for (uint32_t i = 1; i < n; ++i) b.AddEdge(i, 0);
      break;
    case GraphFamily::kComplete:
      for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t j = 0; j < n; ++j) {
          if (i != j) b.AddEdge(i, j);
        }
      }
      break;
    case GraphFamily::kBipartite:
      for (uint32_t i = 0; i < n / 2; ++i) {
        for (uint32_t j = n / 2; j < n; ++j) b.AddEdge(i, j);
      }
      break;
    case GraphFamily::kBinaryTree:
      for (uint32_t i = 1; i < n; ++i) b.AddEdge((i - 1) / 2, i);
      break;
  }
  return std::move(b).Build();
}

class GraphFamilyTest : public ::testing::TestWithParam<GraphFamily> {};

TEST_P(GraphFamilyTest, AllBackendsAgreeEverywhere) {
  const GraphFamily family = GetParam();
  DirectedGraph g = MakeFamily(family, 18);
  NaiveReachability naive(&g, 6);
  auto tc = TransitiveClosureIndex::Build(
      &g, 6, TransitiveClosureIndex::Construction::kIncremental);
  auto two_hop = TwoHopIndex::Build(&g, 6);
  auto dist_only = DistanceLabelIndex::Build(&g, 6);
  auto pruned = PrunedOnlineSearch::Build(&g, 6, 2, 3);

  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto expected = naive.Query(u, v);
      for (const reach::WeightedReachability* backend :
           {static_cast<const reach::WeightedReachability*>(&tc),
            static_cast<const reach::WeightedReachability*>(&two_hop),
            static_cast<const reach::WeightedReachability*>(&dist_only),
            static_cast<const reach::WeightedReachability*>(&pruned)}) {
        auto actual = backend->Query(u, v);
        ASSERT_EQ(expected.distance, actual.distance)
            << FamilyName(family) << " " << backend->Name() << " " << u
            << "->" << v;
        ASSERT_EQ(expected.followees, actual.followees)
            << FamilyName(family) << " " << backend->Name() << " " << u
            << "->" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GraphFamilyTest,
    ::testing::Values(GraphFamily::kChain, GraphFamily::kCycle,
                      GraphFamily::kStarOut, GraphFamily::kStarIn,
                      GraphFamily::kComplete, GraphFamily::kBipartite,
                      GraphFamily::kBinaryTree),
    [](const ::testing::TestParamInfo<GraphFamily>& info) {
      std::string name = FamilyName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Count-only fast path: CountQuery must report exactly (distance,
// |F_uv|) of the materializing Query, and ScoreOnly must be bitwise
// equal to Score, on every backend (both funnel through
// WeightedScoreFromCount, so any divergence is a counting bug).
TEST_P(GraphFamilyTest, CountQueryAndScoreOnlyMatchQueryEverywhere) {
  const GraphFamily family = GetParam();
  DirectedGraph g = MakeFamily(family, 18);
  NaiveReachability naive(&g, 6);
  auto tc = TransitiveClosureIndex::Build(
      &g, 6, TransitiveClosureIndex::Construction::kIncremental);
  auto two_hop = TwoHopIndex::Build(&g, 6);
  auto dist_only = DistanceLabelIndex::Build(&g, 6);
  auto pruned = PrunedOnlineSearch::Build(&g, 6, 2, 3);
  CachedReachability cached(&naive, &g);

  for (const reach::WeightedReachability* backend :
       {static_cast<const reach::WeightedReachability*>(&naive),
        static_cast<const reach::WeightedReachability*>(&tc),
        static_cast<const reach::WeightedReachability*>(&two_hop),
        static_cast<const reach::WeightedReachability*>(&dist_only),
        static_cast<const reach::WeightedReachability*>(&pruned),
        static_cast<const reach::WeightedReachability*>(&cached)}) {
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        auto full = backend->Query(u, v);
        auto count = backend->CountQuery(u, v);
        ASSERT_EQ(full.distance, count.distance)
            << FamilyName(family) << " " << backend->Name() << " " << u
            << "->" << v;
        ASSERT_EQ(full.followees.size(), count.followee_count)
            << FamilyName(family) << " " << backend->Name() << " " << u
            << "->" << v;
        ASSERT_EQ(backend->Score(u, v), backend->ScoreOnly(u, v))
            << FamilyName(family) << " " << backend->Name() << " " << u
            << "->" << v;
      }
    }
  }
}

TEST(TwoHopIndexTest, CountQueryMatchesQueryOnRandomGraphs) {
  for (uint64_t seed : {71ULL, 72ULL, 73ULL}) {
    DirectedGraph g = RandomGraph(50, 3.0, seed);
    auto index = TwoHopIndex::Build(&g, 5);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        auto full = index.Query(u, v);
        auto count = index.CountQuery(u, v);
        ASSERT_EQ(full.distance, count.distance)
            << "seed " << seed << " " << u << "->" << v;
        ASSERT_EQ(full.followees.size(), count.followee_count)
            << "seed " << seed << " " << u << "->" << v;
        ASSERT_EQ(index.Score(u, v), index.ScoreOnly(u, v))
            << "seed " << seed << " " << u << "->" << v;
      }
    }
  }
}

// Regression for the k-way merge that replaced concat+sort+unique: the
// union over several overlapping min-distance hub spans must come out
// sorted and duplicate-free. Dense graphs give every pair many meeting
// hubs whose followee spans overlap heavily.
TEST(TwoHopIndexTest, KWayMergeYieldsSortedDupFreeFollowees) {
  for (uint64_t seed : {81ULL, 82ULL}) {
    DirectedGraph g = RandomGraph(30, 6.0, seed);
    auto index = TwoHopIndex::Build(&g, 4);
    NaiveReachability naive(&g, 4);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        auto q = index.Query(u, v);
        for (size_t i = 1; i < q.followees.size(); ++i) {
          ASSERT_LT(q.followees[i - 1], q.followees[i])
              << "seed " << seed << " " << u << "->" << v
              << ": followees not strictly increasing";
        }
        ASSERT_EQ(naive.Query(u, v).followees, q.followees)
            << "seed " << seed << " " << u << "->" << v;
      }
    }
  }
}

// Arena layout invariants: offsets bracket the arenas, accessors agree
// with the aggregate counters, and the legacy-layout model is strictly
// larger (the whole point of flattening).
TEST(TwoHopIndexTest, ArenaAccountingAndSpans) {
  DirectedGraph g = RandomGraph(60, 3.0, 91);
  auto index = TwoHopIndex::Build(&g, 5);
  uint64_t in_total = 0, out_total = 0, followee_total = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    in_total += index.in_labels(v).size();
    auto outs = index.out_labels(v);
    out_total += outs.size();
    for (size_t i = 0; i < outs.size(); ++i) {
      followee_total +=
          index.followees(index.out_offset(v) + i).size();
    }
  }
  EXPECT_EQ(in_total, index.NumInEntries());
  EXPECT_EQ(out_total, index.NumOutEntries());
  EXPECT_EQ(followee_total, index.NumFolloweeIds());
  EXPECT_EQ(index.TotalLabelEntries(), in_total + out_total);
  EXPECT_GT(index.LegacyIndexSizeBytes(), index.IndexSizeBytes());
}

// Empty graph: every per-node label list is empty, offsets are all zero,
// and queries stay well-defined.
TEST(TwoHopIndexTest, EmptyLabelGraph) {
  GraphBuilder b(5);
  DirectedGraph g = std::move(b).Build();
  auto index = TwoHopIndex::Build(&g, 5);
  EXPECT_EQ(index.NumFolloweeIds(), 0u);
  for (graph::NodeId u = 0; u < 5; ++u) {
    for (graph::NodeId v = 0; v < 5; ++v) {
      EXPECT_EQ(index.Score(u, v), u == v ? 1.0 : 0.0);
      EXPECT_EQ(index.ScoreOnly(u, v), u == v ? 1.0 : 0.0);
      auto count = index.CountQuery(u, v);
      if (u != v) {
        EXPECT_FALSE(count.reachable());
      }
    }
  }
}

// Scores must always be inside [0, 1].
TEST(WeightedScoreTest, RangeProperty) {
  DirectedGraph g = RandomGraph(80, 3.0, 99);
  NaiveReachability naive(&g, 5);
  for (graph::NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (graph::NodeId v = 0; v < g.num_nodes(); v += 2) {
      double s = naive.Score(u, v);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

// ------------------------------------------------- parallel construction

std::string SaveToTempBytes(const std::string& name,
                            const std::function<Status(const std::string&)>&
                                save) {
  std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  EXPECT_TRUE(save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>{});
  std::remove(path.c_str());
  return bytes;
}

// The acceptance bar for the parallel builds: not "equivalent", but
// bit-identical to the 1-thread build, proven via Save bytes on top of
// the per-pair Score/Distance comparison.
TEST(ParallelBuildTest, TcIncrementalMatchesSerialOnRandomGraphs) {
  util::ThreadPool serial(1);
  util::ThreadPool parallel(4);
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    DirectedGraph g = RandomGraph(60, 3.0, seed);
    auto a = TransitiveClosureIndex::Build(
        &g, 5, TransitiveClosureIndex::Construction::kIncremental, &serial);
    auto b = TransitiveClosureIndex::Build(
        &g, 5, TransitiveClosureIndex::Construction::kIncremental,
        &parallel);
    EXPECT_EQ(a.IndexSizeBytes(), b.IndexSizeBytes());
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(a.Distance(u, v), b.Distance(u, v))
            << "seed " << seed << " pair " << u << "->" << v;
        ASSERT_EQ(a.Score(u, v), b.Score(u, v))
            << "seed " << seed << " pair " << u << "->" << v;
      }
    }
    auto save_a = SaveToTempBytes("tc_serial.idx", [&](const auto& p) {
      return a.Save(p);
    });
    auto save_b = SaveToTempBytes("tc_parallel.idx", [&](const auto& p) {
      return b.Save(p);
    });
    EXPECT_FALSE(save_a.empty());
    EXPECT_EQ(save_a, save_b);
  }
}

TEST(ParallelBuildTest, TcNaiveMatchesSerial) {
  util::ThreadPool serial(1);
  util::ThreadPool parallel(4);
  DirectedGraph g = RandomGraph(40, 2.5, 11);
  auto a = TransitiveClosureIndex::Build(
      &g, 5, TransitiveClosureIndex::Construction::kNaive, &serial);
  auto b = TransitiveClosureIndex::Build(
      &g, 5, TransitiveClosureIndex::Construction::kNaive, &parallel);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(a.Distance(u, v), b.Distance(u, v));
      ASSERT_EQ(a.Score(u, v), b.Score(u, v));
    }
  }
}

TEST(ParallelBuildTest, TwoHopMatchesSerialOnRandomGraphs) {
  util::ThreadPool serial(1);
  util::ThreadPool parallel(4);
  for (uint64_t seed : {4ull, 5ull, 6ull}) {
    DirectedGraph g = RandomGraph(60, 3.0, seed);
    auto a = TwoHopIndex::Build(&g, 5, &serial);
    auto b = TwoHopIndex::Build(&g, 5, &parallel);
    EXPECT_EQ(a.TotalLabelEntries(), b.TotalLabelEntries());
    EXPECT_EQ(a.IndexSizeBytes(), b.IndexSizeBytes());
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(a.Score(u, v), b.Score(u, v))
            << "seed " << seed << " pair " << u << "->" << v;
      }
    }
    auto save_a = SaveToTempBytes("hop_serial.idx", [&](const auto& p) {
      return a.Save(p);
    });
    auto save_b = SaveToTempBytes("hop_parallel.idx", [&](const auto& p) {
      return b.Save(p);
    });
    EXPECT_FALSE(save_a.empty());
    EXPECT_EQ(save_a, save_b);
  }
}

// Query objects share nothing mutable anymore (per-thread BFS scratch),
// so concurrent queries on one instance must agree with serial answers.
TEST(ParallelBuildTest, NaiveReachabilityConcurrentQueriesAreSafe) {
  DirectedGraph g = RandomGraph(50, 3.0, 21);
  NaiveReachability naive(&g, 5);
  std::vector<double> expected(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    expected[v] = naive.Score(0, v);
  }
  util::ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.ParallelFor(0, g.num_nodes(), 1, [&](size_t v) {
    if (naive.Score(0, static_cast<graph::NodeId>(v)) != expected[v]) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// The 2-hop query path keeps per-thread span scratch; concurrent
// ScoreOnly/CountQuery readers on one instance must agree with serial
// answers (exercised under TSan via the Parallel filter in verify.sh).
TEST(ParallelBuildTest, TwoHopConcurrentScoreOnlyReadersAgree) {
  DirectedGraph g = RandomGraph(60, 3.0, 23);
  auto index = TwoHopIndex::Build(&g, 5);
  std::vector<double> expected(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    expected[v] = index.Score(7, v);
  }
  util::ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.ParallelFor(0, g.num_nodes() * 8u, 1, [&](size_t i) {
    auto v = static_cast<graph::NodeId>(i % g.num_nodes());
    if (index.ScoreOnly(7, v) != expected[v]) mismatches.fetch_add(1);
    auto count = index.CountQuery(7, v);
    auto full = index.Query(7, v);
    if (count.distance != full.distance ||
        count.followee_count != full.followees.size()) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// --------------------------------------------------- CachedReachability

TEST(CachedReachabilityTest, MatchesBaseBackend) {
  DirectedGraph g = RandomGraph(50, 3.0, 31);
  NaiveReachability base(&g, 5);
  CachedReachability cached(&base, &g);
  for (graph::NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(cached.Score(u, v), base.Score(u, v));
      auto a = cached.Query(u, v);
      auto b = base.Query(u, v);
      ASSERT_EQ(a.distance, b.distance);
      ASSERT_EQ(a.followees, b.followees);
    }
  }
  EXPECT_STREQ(cached.Name(), "cached+naive-bfs");
}

TEST(CachedReachabilityTest, CountsHitsAndMisses) {
  DirectedGraph g = Diamond();
  NaiveReachability base(&g, 5);
  CachedReachability cached(&base, &g);
  auto& reg = metrics::Registry();
  uint64_t hits0 = reg.GetCounter("reach.cache.hits_total")->Value();
  uint64_t misses0 = reg.GetCounter("reach.cache.misses_total")->Value();
  EXPECT_EQ(cached.ApproxEntries(), 0u);
  cached.Query(0, 4);  // miss
  EXPECT_EQ(cached.ApproxEntries(), 1u);
  cached.Query(0, 4);  // hit
  cached.Query(0, 4);  // hit
  cached.Query(0, 3);  // miss
  EXPECT_EQ(cached.ApproxEntries(), 2u);
  EXPECT_EQ(reg.GetCounter("reach.cache.hits_total")->Value() - hits0, 2u);
  EXPECT_EQ(reg.GetCounter("reach.cache.misses_total")->Value() - misses0,
            2u);
}

TEST(CachedReachabilityTest, EvictsWhenShardIsFull) {
  DirectedGraph g = Chain(10);
  NaiveReachability base(&g, 5);
  CachedReachability::Options options;
  options.num_shards = 1;
  options.max_entries_per_shard = 4;
  CachedReachability cached(&base, &g, options);
  for (graph::NodeId v = 0; v < 10; ++v) cached.Query(0, v);
  // Every insert beyond capacity clears the single shard first, so the
  // entry count never exceeds the bound and the answers stay correct.
  EXPECT_LE(cached.ApproxEntries(), 4u);
  for (graph::NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(cached.Score(0, v), base.Score(0, v));
  }
}

TEST(CachedReachabilityTest, InvalidateEmptiesTheCache) {
  DirectedGraph g = Diamond();
  NaiveReachability base(&g, 5);
  CachedReachability cached(&base, &g);
  cached.Query(0, 3);
  cached.Query(1, 3);
  EXPECT_EQ(cached.ApproxEntries(), 2u);
  cached.Invalidate();
  EXPECT_EQ(cached.ApproxEntries(), 0u);
  EXPECT_EQ(cached.Score(0, 3), base.Score(0, 3));
}

TEST(CachedReachabilityTest, CountQueryUsesCacheAndMatchesBase) {
  DirectedGraph g = RandomGraph(40, 3.0, 51);
  NaiveReachability base(&g, 5);
  CachedReachability cached(&base, &g);
  auto& reg = metrics::Registry();
  uint64_t hits0 = reg.GetCounter("reach.cache.hits_total")->Value();
  for (graph::NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = cached.CountQuery(u, v);  // miss (or derived from full)
      auto b = base.CountQuery(u, v);
      ASSERT_EQ(a.distance, b.distance) << u << "->" << v;
      ASSERT_EQ(a.followee_count, b.followee_count) << u << "->" << v;
      ASSERT_EQ(cached.ScoreOnly(u, v), base.ScoreOnly(u, v))
          << u << "->" << v;  // hit on the count cache
    }
  }
  EXPECT_GT(reg.GetCounter("reach.cache.hits_total")->Value(), hits0);
}

// A full Query result already carries (distance, |F_uv|); a later
// CountQuery for the same pair must be served from it, not from a second
// base computation.
TEST(CachedReachabilityTest, CountQueryDerivesFromFullEntry) {
  DirectedGraph g = Diamond();
  NaiveReachability base(&g, 5);
  CachedReachability cached(&base, &g);
  auto& reg = metrics::Registry();
  cached.Query(0, 4);  // miss, populates the full cache
  uint64_t misses0 = reg.GetCounter("reach.cache.misses_total")->Value();
  auto count = cached.CountQuery(0, 4);
  EXPECT_EQ(count.distance, 3u);
  EXPECT_EQ(count.followee_count, 2u);
  EXPECT_EQ(reg.GetCounter("reach.cache.misses_total")->Value(), misses0);
}

TEST(CachedReachabilityTest, BytesGaugeTracksLivePayload) {
  DirectedGraph g = RandomGraph(40, 3.0, 61);
  NaiveReachability base(&g, 5);
  auto* gauge = metrics::Registry().GetGauge("reach.cache.bytes");
  const int64_t before = gauge->Value();
  {
    CachedReachability cached(&base, &g);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      cached.Query(0, v);
      cached.CountQuery(1, v);
    }
    EXPECT_GT(cached.ApproxPayloadBytes(), 0u);
    EXPECT_EQ(gauge->Value() - before,
              static_cast<int64_t>(cached.ApproxPayloadBytes()));
    EXPECT_LE(cached.ApproxPayloadBytes(), cached.IndexSizeBytes());
    cached.Invalidate();
    EXPECT_EQ(cached.ApproxPayloadBytes(), 0u);
    EXPECT_EQ(gauge->Value(), before);
    cached.Query(2, 3);  // repopulate, then let the destructor release it
    EXPECT_GT(gauge->Value(), before);
  }
  EXPECT_EQ(gauge->Value(), before);
}

TEST(CachedReachabilityTest, ConcurrentQueriesAgree) {
  DirectedGraph g = RandomGraph(40, 3.0, 41);
  NaiveReachability base(&g, 5);
  CachedReachability cached(&base, &g);
  std::vector<double> expected(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    expected[v] = base.Score(3, v);
  }
  util::ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  // Each target queried from several threads: some threads hit, some
  // race on the miss path; all must see the same score.
  pool.ParallelFor(0, g.num_nodes() * 8u, 1, [&](size_t i) {
    auto v = static_cast<graph::NodeId>(i % g.num_nodes());
    if (cached.Score(3, v) != expected[v]) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cached.ApproxEntries(), static_cast<size_t>(g.num_nodes()));
}

}  // namespace
}  // namespace mel::reach

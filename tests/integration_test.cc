#include <gtest/gtest.h>

#include <memory>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "core/entity_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"
#include "gen/workload.h"
#include "kb/wlm.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"

namespace mel {
namespace {

// End-to-end world shared by the integration tests: the full offline
// pipeline of Fig. 2 followed by online inference, using the standard
// calibrated harness.
class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    harness_ = new eval::Harness(eval::HarnessOptions{});
  }
  static void TearDownTestSuite() {
    delete harness_;
    harness_ = nullptr;
  }

  static eval::Harness* harness_;
};

eval::Harness* PipelineFixture::harness_ = nullptr;

TEST_F(PipelineFixture, ComplementationPopulatedTheKb) {
  EXPECT_GT(harness_->ckb().TotalLinks(), 1000u);
}

TEST_F(PipelineFixture, TestSplitIsInactiveUsersOnly) {
  EXPECT_GT(harness_->test_split().users.size(), 20u);
  for (uint32_t u : harness_->test_split().users) {
    EXPECT_LT(harness_->world().corpus.tweets_by_user[u].size(), 10u);
  }
}

// The headline result (Fig. 4(a)): ours > collective > on-the-fly on
// inactive users, on both mention and tweet accuracy.
TEST_F(PipelineFixture, AccuracyOrderingMatchesPaper) {
  auto ours_acc =
      harness_->Evaluate(harness_->DefaultLinkerOptions()).accuracy();
  baseline::OnTheFlyLinker on_the_fly(&harness_->kb(), &harness_->wlm(),
                                      baseline::OnTheFlyOptions{});
  auto otf_acc = eval::EvaluateOnTheFly(on_the_fly, harness_->world(),
                                        harness_->test_split())
                     .accuracy();
  baseline::CollectiveLinker collective(&harness_->kb(), &harness_->wlm(),
                                        baseline::CollectiveOptions{});
  auto col_acc = eval::EvaluateCollective(collective, harness_->world(),
                                          harness_->test_split())
                     .accuracy();

  EXPECT_GT(ours_acc.MentionAccuracy(), col_acc.MentionAccuracy());
  EXPECT_GT(col_acc.MentionAccuracy(), otf_acc.MentionAccuracy());
  EXPECT_GT(ours_acc.TweetAccuracy(), col_acc.TweetAccuracy());
  EXPECT_GT(col_acc.TweetAccuracy(), otf_acc.TweetAccuracy());
  EXPECT_GT(otf_acc.MentionAccuracy(), 0.3);
}

// Mention accuracy always dominates tweet accuracy (paper Sec. 5.2.1).
TEST_F(PipelineFixture, MentionAccuracyDominatesTweetAccuracy) {
  auto acc = harness_->Evaluate(harness_->DefaultLinkerOptions()).accuracy();
  EXPECT_GE(acc.MentionAccuracy(), acc.TweetAccuracy());
}

// All-features beats every single feature, and interest is the strongest
// single feature (Table 4 shape).
TEST_F(PipelineFixture, CombinedFeaturesBeatSingleFeatures) {
  auto run_with = [&](double alpha, double beta, double gamma) {
    core::LinkerOptions options = harness_->DefaultLinkerOptions();
    options.alpha = alpha;
    options.beta = beta;
    options.gamma = gamma;
    return harness_->Evaluate(options).accuracy().MentionAccuracy();
  };
  double interest_only = run_with(1, 0, 0);
  double recency_only = run_with(0, 1, 0);
  double popularity_only = run_with(0, 0, 1);
  double combined = run_with(0.6, 0.3, 0.1);
  EXPECT_GT(combined, interest_only);
  EXPECT_GT(combined, recency_only);
  EXPECT_GT(combined, popularity_only);
  EXPECT_GT(interest_only, recency_only);
  EXPECT_GT(recency_only, popularity_only);
}

// Entropy-based influence beats tf-idf (Fig. 4(c) shape).
TEST_F(PipelineFixture, EntropyInfluenceAtLeastTfIdf) {
  core::LinkerOptions entropy = harness_->DefaultLinkerOptions();
  entropy.influence_method = social::InfluenceMethod::kEntropy;
  core::LinkerOptions tfidf = harness_->DefaultLinkerOptions();
  tfidf.influence_method = social::InfluenceMethod::kTfIdf;
  double entropy_acc =
      harness_->Evaluate(entropy).accuracy().MentionAccuracy();
  double tfidf_acc = harness_->Evaluate(tfidf).accuracy().MentionAccuracy();
  EXPECT_GE(entropy_acc, tfidf_acc - 0.02);
}

// Recency propagation helps (Fig. 4(d) shape).
TEST_F(PipelineFixture, RecencyPropagationDoesNotHurt) {
  core::LinkerOptions with = harness_->DefaultLinkerOptions();
  core::LinkerOptions without = harness_->DefaultLinkerOptions();
  without.enable_recency_propagation = false;
  double acc_with = harness_->Evaluate(with).accuracy().MentionAccuracy();
  double acc_without =
      harness_->Evaluate(without).accuracy().MentionAccuracy();
  EXPECT_GE(acc_with, acc_without - 0.01);
}

// The reachability backend is interchangeable: TC and 2-hop give the same
// linking decisions.
TEST_F(PipelineFixture, BackendsGiveIdenticalDecisions) {
  auto tc = reach::TransitiveClosureIndex::Build(
      &harness_->world().social.graph, 5,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  core::EntityLinker with_tc(&harness_->kb(), &harness_->ckb(), &tc,
                             &harness_->network(),
                             harness_->DefaultLinkerOptions());
  core::EntityLinker with_2hop(&harness_->kb(), &harness_->ckb(),
                               &harness_->reachability(),
                               &harness_->network(),
                               harness_->DefaultLinkerOptions());
  uint32_t checked = 0;
  for (uint32_t ti : harness_->test_split().tweet_indices) {
    const auto& lt = harness_->world().corpus.tweets[ti];
    for (const auto& m : lt.mentions) {
      auto a = with_tc.LinkMention(m.surface, lt.tweet.user, lt.tweet.time);
      auto b =
          with_2hop.LinkMention(m.surface, lt.tweet.user, lt.tweet.time);
      ASSERT_EQ(a.best(), b.best()) << m.surface;
      if (++checked > 300) return;
    }
  }
}

// Online feedback: confirming links updates popularity counts and shifts
// future decisions (the warm-up loop of Sec. 3.2.2 / Appendix D).
TEST_F(PipelineFixture, OnlineFeedbackShiftsFutureLinks) {
  kb::ComplementedKnowledgebase fresh(&harness_->kb());
  core::LinkerOptions options = harness_->DefaultLinkerOptions();
  options.alpha = 0;
  options.beta = 0;
  options.gamma = 1;  // popularity-only to make the effect deterministic
  core::EntityLinker linker(&harness_->kb(), &fresh,
                            &harness_->reachability(), &harness_->network(),
                            options);

  const auto& surface = harness_->world().kb_world.ambiguous_surfaces[0];
  auto cands = harness_->kb().Candidates(surface);
  ASSERT_GE(cands.size(), 2u);
  kb::EntityId underdog = cands[1].entity;

  for (int i = 0; i < 50; ++i) {
    kb::Tweet t;
    t.id = 1000000 + i;
    t.user = 1;
    t.time = 1000 + i;
    linker.ConfirmLink(underdog, t);
  }
  auto r = linker.LinkMention(surface, 0, 2000);
  ASSERT_TRUE(r.linked());
  EXPECT_EQ(r.best(), underdog);
}

// A harness with collective complementation still produces a working
// pipeline (slower, noisier — the trade-off documented in DESIGN.md).
TEST(CollectiveComplementationTest, PipelineStillFunctions) {
  eval::HarnessOptions options;
  options.scale = 0.5;
  options.complementation =
      eval::HarnessOptions::Complementation::kCollective;
  eval::Harness harness(options);
  EXPECT_GT(harness.ckb().TotalLinks(), 100u);
  auto acc = harness.Evaluate(harness.DefaultLinkerOptions()).accuracy();
  EXPECT_GT(acc.MentionAccuracy(), 0.4);
}

// Oracle complementation is an upper bound on the simulated pre-linker.
TEST(OracleComplementationTest, UpperBoundsSimulated) {
  eval::HarnessOptions oracle_opts;
  oracle_opts.scale = 0.5;
  oracle_opts.complementation =
      eval::HarnessOptions::Complementation::kOracle;
  eval::Harness oracle(oracle_opts);
  eval::HarnessOptions sim_opts;
  sim_opts.scale = 0.5;
  eval::Harness sim(sim_opts);
  double oracle_acc =
      oracle.Evaluate(oracle.DefaultLinkerOptions()).accuracy()
          .MentionAccuracy();
  double sim_acc =
      sim.Evaluate(sim.DefaultLinkerOptions()).accuracy().MentionAccuracy();
  EXPECT_GE(oracle_acc, sim_acc - 0.03);
}

}  // namespace
}  // namespace mel

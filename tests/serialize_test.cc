#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/graph_builder.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "reach/distance_label_index.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "util/random.h"
#include "util/serialize.h"

namespace mel {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(TempPath(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::DirectedGraph RandomGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder b(n);
  for (uint32_t i = 0; i < edges; ++i) {
    b.AddEdge(static_cast<graph::NodeId>(rng.Uniform(n)),
              static_cast<graph::NodeId>(rng.Uniform(n)));
  }
  return std::move(b).Build();
}

// ------------------------------------------------------- writer/reader

TEST(BinaryIoTest, RoundTripScalarsAndVectors) {
  TempFile file("mel_io_roundtrip.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU8(7);
    writer.WriteU32(123456);
    writer.WriteU64(1ull << 40);
    writer.WriteFloat(2.5f);
    writer.WriteDouble(3.25);
    writer.WriteString("hello world");
    writer.WriteVector(std::vector<uint32_t>{1, 2, 3});
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(file.path());
  EXPECT_EQ(reader.ReadU8(), 7);
  EXPECT_EQ(reader.ReadU32(), 123456u);
  EXPECT_EQ(reader.ReadU64(), 1ull << 40);
  EXPECT_FLOAT_EQ(reader.ReadFloat(), 2.5f);
  EXPECT_DOUBLE_EQ(reader.ReadDouble(), 3.25);
  EXPECT_EQ(reader.ReadString(), "hello world");
  EXPECT_EQ(reader.ReadVector<uint32_t>(),
            (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(reader.status().ok());
}

TEST(BinaryIoTest, MissingFileReportsNotFound) {
  BinaryReader reader("/nonexistent/dir/file.bin");
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
  BinaryWriter writer("/nonexistent/dir/file.bin");
  EXPECT_EQ(writer.Finish().code(), StatusCode::kNotFound);
}

TEST(BinaryIoTest, TruncatedFileReportsOutOfRange) {
  TempFile file("mel_io_truncated.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(file.path());
  reader.ReadU32();
  EXPECT_TRUE(reader.status().ok());
  reader.ReadU64();  // past the end
  EXPECT_EQ(reader.status().code(), StatusCode::kOutOfRange);
}

TEST(BinaryIoTest, CorruptVectorLengthRejected) {
  TempFile file("mel_io_badlen.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU64(~0ull);  // absurd element count
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(file.path());
  auto v = reader.ReadVector<uint32_t>();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(reader.status().ok());
}

// ---------------------------------------------------- index round trips

TEST(IndexSerializationTest, TransitiveClosureRoundTrip) {
  auto g = RandomGraph(50, 200, 3);
  auto original = reach::TransitiveClosureIndex::Build(
      &g, 5, reach::TransitiveClosureIndex::Construction::kIncremental);
  ASSERT_TRUE(original.InsertEdge(0, 49) || true);  // exercise overlay

  TempFile file("mel_tc_index.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = reach::TransitiveClosureIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(original.Distance(u, v), loaded.value().Distance(u, v));
      ASSERT_FLOAT_EQ(original.Score(u, v), loaded.value().Score(u, v));
    }
  }
  // Overlay survives: inserting the same edge again is rejected.
  if (!g.HasEdge(0, 49)) {
    EXPECT_FALSE(loaded.value().InsertEdge(0, 49));
  }
}

TEST(IndexSerializationTest, TwoHopRoundTrip) {
  auto g = RandomGraph(60, 240, 4);
  auto original = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel_2hop_index.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = reach::TwoHopIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(original.TotalLabelEntries(),
            loaded.value().TotalLabelEntries());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = original.Query(u, v);
      auto b = loaded.value().Query(u, v);
      ASSERT_EQ(a.distance, b.distance);
      ASSERT_EQ(a.followees, b.followees);
    }
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>{});
}

// Arena serialization is canonical: Save -> Load -> Save must reproduce
// the file byte for byte (the load path is a block read plus offset
// validation, no re-derivation that could reorder anything).
TEST(IndexSerializationTest, TwoHopSaveLoadSaveBytesIdentical) {
  auto g = RandomGraph(60, 240, 9);
  auto original = reach::TwoHopIndex::Build(&g, 5);
  TempFile first("mel_2hop_first.bin");
  TempFile second("mel_2hop_second.bin");
  ASSERT_TRUE(original.Save(first.path()).ok());
  auto loaded = reach::TwoHopIndex::Load(first.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().Save(second.path()).ok());
  std::string a = ReadFileBytes(first.path());
  std::string b = ReadFileBytes(second.path());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// Edgeless graph: every label list is empty, so all offsets collapse to
// zero and the arenas are empty blocks — the round trip must survive it.
TEST(IndexSerializationTest, TwoHopEmptyLabelRoundTrip) {
  graph::GraphBuilder b(7);
  auto g = std::move(b).Build();
  auto original = reach::TwoHopIndex::Build(&g, 5);
  EXPECT_EQ(original.NumFolloweeIds(), 0u);
  TempFile file("mel_2hop_empty.bin");
  TempFile resave("mel_2hop_empty2.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = reach::TwoHopIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumInEntries(), 0u);
  EXPECT_EQ(loaded.value().NumOutEntries(), 0u);
  for (graph::NodeId u = 0; u < 7; ++u) {
    for (graph::NodeId v = 0; v < 7; ++v) {
      EXPECT_EQ(loaded.value().Score(u, v), u == v ? 1.0 : 0.0);
    }
  }
  ASSERT_TRUE(loaded.value().Save(resave.path()).ok());
  EXPECT_EQ(ReadFileBytes(file.path()), ReadFileBytes(resave.path()));
}

// Hand-crafted files with plausible headers but broken offset arrays:
// the loader must reject them instead of indexing out of bounds.
TEST(IndexSerializationTest, TwoHopCorruptOffsetsRejected) {
  constexpr uint32_t kMagic = 0x4d454c32;  // "MEL2"
  auto g = RandomGraph(3, 6, 10);
  struct Case {
    const char* name;
    std::vector<uint64_t> in_offsets;
  };
  // Expected shape for n=3 with no entries: {0, 0, 0, 0}.
  const Case cases[] = {
      {"back exceeds arena", {0, 0, 0, 9}},
      {"non-monotone", {0, 2, 1, 0}},
      {"wrong length", {0, 0, 0}},
  };
  for (const Case& c : cases) {
    TempFile file("mel_2hop_corrupt.bin");
    {
      BinaryWriter writer(file.path());
      writer.WriteU32(kMagic);
      writer.WriteU32(2);  // version
      writer.WriteU32(3);  // node count
      writer.WriteU32(5);  // max hops
      writer.WriteVector(c.in_offsets);
      writer.WriteVector(std::vector<reach::TwoHopIndex::InLabel>{});
      writer.WriteVector(std::vector<uint64_t>{0, 0, 0, 0});
      writer.WriteVector(std::vector<reach::TwoHopIndex::OutSpan>{});
      writer.WriteVector(std::vector<uint64_t>{0});
      writer.WriteVector(std::vector<graph::NodeId>{});
      ASSERT_TRUE(writer.Finish().ok());
    }
    auto loaded = reach::TwoHopIndex::Load(file.path(), &g);
    EXPECT_FALSE(loaded.ok()) << c.name;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << c.name;
  }
}

TEST(IndexSerializationTest, TwoHopOutOfRangeNodeIdRejected) {
  constexpr uint32_t kMagic = 0x4d454c32;
  auto g = RandomGraph(3, 6, 10);
  TempFile file("mel_2hop_badnode.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(kMagic);
    writer.WriteU32(2);
    writer.WriteU32(3);
    writer.WriteU32(5);
    writer.WriteVector(std::vector<uint64_t>{0, 1, 1, 1});
    // Node id 7 does not exist in a 3-node graph.
    writer.WriteVector(
        std::vector<reach::TwoHopIndex::InLabel>{{7, 1}});
    writer.WriteVector(std::vector<uint64_t>{0, 0, 0, 0});
    writer.WriteVector(std::vector<reach::TwoHopIndex::OutSpan>{});
    writer.WriteVector(std::vector<uint64_t>{0});
    writer.WriteVector(std::vector<graph::NodeId>{});
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto loaded = reach::TwoHopIndex::Load(file.path(), &g);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(IndexSerializationTest, DistanceLabelRoundTrip) {
  auto g = RandomGraph(50, 200, 11);
  auto original = reach::DistanceLabelIndex::Build(&g, 5);
  TempFile file("mel_dli_index.bin");
  TempFile resave("mel_dli_index2.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = reach::DistanceLabelIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(original.Distance(u, v), loaded.value().Distance(u, v));
      ASSERT_EQ(original.Score(u, v), loaded.value().Score(u, v));
      ASSERT_EQ(original.ScoreOnly(u, v), loaded.value().ScoreOnly(u, v));
    }
  }
  ASSERT_TRUE(loaded.value().Save(resave.path()).ok());
  EXPECT_EQ(ReadFileBytes(file.path()), ReadFileBytes(resave.path()));
}

TEST(IndexSerializationTest, DistanceLabelRejectsForeignFiles) {
  auto g = RandomGraph(30, 100, 12);
  auto two_hop = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel_dli_foreign.bin");
  ASSERT_TRUE(two_hop.Save(file.path()).ok());
  // A 2-hop file is not a distance-label file (distinct magics).
  auto loaded = reach::DistanceLabelIndex::Load(file.path(), &g);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  // Truncation is caught by the reader's sticky status.
  auto dli = reach::DistanceLabelIndex::Build(&g, 5);
  ASSERT_TRUE(dli.Save(file.path()).ok());
  auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size / 2);
  auto truncated = reach::DistanceLabelIndex::Load(file.path(), &g);
  EXPECT_FALSE(truncated.ok());
}

TEST(IndexSerializationTest, WrongMagicRejected) {
  TempFile file("mel_wrong_magic.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(0xdeadbeef);
    writer.WriteU32(1);
    writer.WriteU32(10);
    writer.WriteU32(5);
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto g = RandomGraph(10, 20, 5);
  auto tc = reach::TransitiveClosureIndex::Load(file.path(), &g);
  EXPECT_FALSE(tc.ok());
  EXPECT_EQ(tc.status().code(), StatusCode::kInvalidArgument);
  auto hop = reach::TwoHopIndex::Load(file.path(), &g);
  EXPECT_FALSE(hop.ok());
}

TEST(IndexSerializationTest, NodeCountMismatchRejected) {
  auto g = RandomGraph(30, 100, 6);
  auto index = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel_mismatch.bin");
  ASSERT_TRUE(index.Save(file.path()).ok());
  auto other = RandomGraph(31, 100, 7);
  auto loaded = reach::TwoHopIndex::Load(file.path(), &other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- knowledgebase files

kb::Knowledgebase MakeSmallKb() {
  kb::Knowledgebase kbase;
  auto player = kbase.AddEntity("Michael Jordan",
                                kb::EntityCategory::kPerson,
                                {"basketball", "bulls"});
  auto country = kbase.AddEntity("Jordan", kb::EntityCategory::kLocation,
                                 {"country", "amman"});
  auto bulls = kbase.AddEntity("Chicago Bulls",
                               kb::EntityCategory::kCompany,
                               {"basketball", "chicago"});
  kbase.AddSurfaceForm("jordan", player, 10);
  kbase.AddSurfaceForm("jordan", country, 4);
  kbase.AddSurfaceForm("bulls", bulls, 6);
  kbase.AddHyperlink(bulls, player);
  kbase.AddHyperlink(player, bulls);
  kbase.Finalize();
  return kbase;
}

TEST(KbSerializationTest, RoundTrip) {
  kb::Knowledgebase original = MakeSmallKb();
  TempFile file("mel_kb.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = kb::Knowledgebase::Load(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const kb::Knowledgebase& kb2 = loaded.value();

  EXPECT_EQ(kb2.num_entities(), original.num_entities());
  EXPECT_EQ(kb2.num_surface_forms(), original.num_surface_forms());
  EXPECT_TRUE(kb2.finalized());
  auto cands = kb2.Candidates("jordan");
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].anchor_count, 10u);
  EXPECT_EQ(kb2.entity(0).name, "Michael Jordan");
  EXPECT_EQ(kb2.entity(1).category, kb::EntityCategory::kLocation);
  // Descriptions share the interned vocabulary ("basketball").
  EXPECT_EQ(kb2.entity(0).description[0], kb2.entity(2).description[0]);
  // Hyperlinks survive.
  ASSERT_EQ(kb2.Inlinks(0).size(), 1u);
  EXPECT_EQ(kb2.Inlinks(0)[0], 2u);
}

TEST(KbSerializationTest, UnfinalizedRejected) {
  kb::Knowledgebase kbase;
  kbase.AddEntity("x", kb::EntityCategory::kPerson, {});
  TempFile file("mel_kb_unfinalized.bin");
  EXPECT_EQ(kbase.Save(file.path()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CkbSerializationTest, RoundTrip) {
  kb::Knowledgebase kbase = MakeSmallKb();
  kb::ComplementedKnowledgebase original(&kbase);
  original.AddLink(0, kb::Posting{1, 10, 500});
  original.AddLink(0, kb::Posting{2, 11, 100});
  original.AddLink(2, kb::Posting{3, 10, 300});

  TempFile file("mel_ckb.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = kb::ComplementedKnowledgebase::Load(file.path(), &kbase);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().TotalLinks(), 3u);
  EXPECT_EQ(loaded.value().LinkedTweetCount(0), 2u);
  EXPECT_EQ(loaded.value().UserTweetCount(0, 10), 1u);
  auto postings = loaded.value().Postings(0);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].time, 100);  // stored sorted
}

TEST(CkbSerializationTest, EntityCountMismatchRejected) {
  kb::Knowledgebase kbase = MakeSmallKb();
  kb::ComplementedKnowledgebase original(&kbase);
  TempFile file("mel_ckb_mismatch.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  kb::Knowledgebase other;
  other.AddEntity("only one", kb::EntityCategory::kPerson, {});
  other.Finalize();
  auto loaded = kb::ComplementedKnowledgebase::Load(file.path(), &other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IndexSerializationTest, TruncatedIndexRejected) {
  auto g = RandomGraph(30, 100, 8);
  auto index = reach::TransitiveClosureIndex::Build(
      &g, 5, reach::TransitiveClosureIndex::Construction::kIncremental);
  TempFile file("mel_truncated_index.bin");
  ASSERT_TRUE(index.Save(file.path()).ok());
  // Chop the file in half.
  auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size / 2);
  auto loaded = reach::TransitiveClosureIndex::Load(file.path(), &g);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace mel

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/graph_builder.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "util/random.h"
#include "util/serialize.h"

namespace mel {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(TempPath(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::DirectedGraph RandomGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder b(n);
  for (uint32_t i = 0; i < edges; ++i) {
    b.AddEdge(static_cast<graph::NodeId>(rng.Uniform(n)),
              static_cast<graph::NodeId>(rng.Uniform(n)));
  }
  return std::move(b).Build();
}

// ------------------------------------------------------- writer/reader

TEST(BinaryIoTest, RoundTripScalarsAndVectors) {
  TempFile file("mel_io_roundtrip.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU8(7);
    writer.WriteU32(123456);
    writer.WriteU64(1ull << 40);
    writer.WriteFloat(2.5f);
    writer.WriteDouble(3.25);
    writer.WriteString("hello world");
    writer.WriteVector(std::vector<uint32_t>{1, 2, 3});
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(file.path());
  EXPECT_EQ(reader.ReadU8(), 7);
  EXPECT_EQ(reader.ReadU32(), 123456u);
  EXPECT_EQ(reader.ReadU64(), 1ull << 40);
  EXPECT_FLOAT_EQ(reader.ReadFloat(), 2.5f);
  EXPECT_DOUBLE_EQ(reader.ReadDouble(), 3.25);
  EXPECT_EQ(reader.ReadString(), "hello world");
  EXPECT_EQ(reader.ReadVector<uint32_t>(),
            (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(reader.status().ok());
}

TEST(BinaryIoTest, MissingFileReportsNotFound) {
  BinaryReader reader("/nonexistent/dir/file.bin");
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
  BinaryWriter writer("/nonexistent/dir/file.bin");
  EXPECT_EQ(writer.Finish().code(), StatusCode::kNotFound);
}

TEST(BinaryIoTest, TruncatedFileReportsOutOfRange) {
  TempFile file("mel_io_truncated.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(file.path());
  reader.ReadU32();
  EXPECT_TRUE(reader.status().ok());
  reader.ReadU64();  // past the end
  EXPECT_EQ(reader.status().code(), StatusCode::kOutOfRange);
}

TEST(BinaryIoTest, CorruptVectorLengthRejected) {
  TempFile file("mel_io_badlen.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU64(~0ull);  // absurd element count
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(file.path());
  auto v = reader.ReadVector<uint32_t>();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(reader.status().ok());
}

// ---------------------------------------------------- index round trips

TEST(IndexSerializationTest, TransitiveClosureRoundTrip) {
  auto g = RandomGraph(50, 200, 3);
  auto original = reach::TransitiveClosureIndex::Build(
      &g, 5, reach::TransitiveClosureIndex::Construction::kIncremental);
  ASSERT_TRUE(original.InsertEdge(0, 49) || true);  // exercise overlay

  TempFile file("mel_tc_index.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = reach::TransitiveClosureIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(original.Distance(u, v), loaded.value().Distance(u, v));
      ASSERT_FLOAT_EQ(original.Score(u, v), loaded.value().Score(u, v));
    }
  }
  // Overlay survives: inserting the same edge again is rejected.
  if (!g.HasEdge(0, 49)) {
    EXPECT_FALSE(loaded.value().InsertEdge(0, 49));
  }
}

TEST(IndexSerializationTest, TwoHopRoundTrip) {
  auto g = RandomGraph(60, 240, 4);
  auto original = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel_2hop_index.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = reach::TwoHopIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(original.TotalLabelEntries(),
            loaded.value().TotalLabelEntries());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = original.Query(u, v);
      auto b = loaded.value().Query(u, v);
      ASSERT_EQ(a.distance, b.distance);
      ASSERT_EQ(a.followees, b.followees);
    }
  }
}

TEST(IndexSerializationTest, WrongMagicRejected) {
  TempFile file("mel_wrong_magic.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(0xdeadbeef);
    writer.WriteU32(1);
    writer.WriteU32(10);
    writer.WriteU32(5);
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto g = RandomGraph(10, 20, 5);
  auto tc = reach::TransitiveClosureIndex::Load(file.path(), &g);
  EXPECT_FALSE(tc.ok());
  EXPECT_EQ(tc.status().code(), StatusCode::kInvalidArgument);
  auto hop = reach::TwoHopIndex::Load(file.path(), &g);
  EXPECT_FALSE(hop.ok());
}

TEST(IndexSerializationTest, NodeCountMismatchRejected) {
  auto g = RandomGraph(30, 100, 6);
  auto index = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel_mismatch.bin");
  ASSERT_TRUE(index.Save(file.path()).ok());
  auto other = RandomGraph(31, 100, 7);
  auto loaded = reach::TwoHopIndex::Load(file.path(), &other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- knowledgebase files

kb::Knowledgebase MakeSmallKb() {
  kb::Knowledgebase kbase;
  auto player = kbase.AddEntity("Michael Jordan",
                                kb::EntityCategory::kPerson,
                                {"basketball", "bulls"});
  auto country = kbase.AddEntity("Jordan", kb::EntityCategory::kLocation,
                                 {"country", "amman"});
  auto bulls = kbase.AddEntity("Chicago Bulls",
                               kb::EntityCategory::kCompany,
                               {"basketball", "chicago"});
  kbase.AddSurfaceForm("jordan", player, 10);
  kbase.AddSurfaceForm("jordan", country, 4);
  kbase.AddSurfaceForm("bulls", bulls, 6);
  kbase.AddHyperlink(bulls, player);
  kbase.AddHyperlink(player, bulls);
  kbase.Finalize();
  return kbase;
}

TEST(KbSerializationTest, RoundTrip) {
  kb::Knowledgebase original = MakeSmallKb();
  TempFile file("mel_kb.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = kb::Knowledgebase::Load(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const kb::Knowledgebase& kb2 = loaded.value();

  EXPECT_EQ(kb2.num_entities(), original.num_entities());
  EXPECT_EQ(kb2.num_surface_forms(), original.num_surface_forms());
  EXPECT_TRUE(kb2.finalized());
  auto cands = kb2.Candidates("jordan");
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].anchor_count, 10u);
  EXPECT_EQ(kb2.entity(0).name, "Michael Jordan");
  EXPECT_EQ(kb2.entity(1).category, kb::EntityCategory::kLocation);
  // Descriptions share the interned vocabulary ("basketball").
  EXPECT_EQ(kb2.entity(0).description[0], kb2.entity(2).description[0]);
  // Hyperlinks survive.
  ASSERT_EQ(kb2.Inlinks(0).size(), 1u);
  EXPECT_EQ(kb2.Inlinks(0)[0], 2u);
}

TEST(KbSerializationTest, UnfinalizedRejected) {
  kb::Knowledgebase kbase;
  kbase.AddEntity("x", kb::EntityCategory::kPerson, {});
  TempFile file("mel_kb_unfinalized.bin");
  EXPECT_EQ(kbase.Save(file.path()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CkbSerializationTest, RoundTrip) {
  kb::Knowledgebase kbase = MakeSmallKb();
  kb::ComplementedKnowledgebase original(&kbase);
  original.AddLink(0, kb::Posting{1, 10, 500});
  original.AddLink(0, kb::Posting{2, 11, 100});
  original.AddLink(2, kb::Posting{3, 10, 300});

  TempFile file("mel_ckb.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  auto loaded = kb::ComplementedKnowledgebase::Load(file.path(), &kbase);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().TotalLinks(), 3u);
  EXPECT_EQ(loaded.value().LinkedTweetCount(0), 2u);
  EXPECT_EQ(loaded.value().UserTweetCount(0, 10), 1u);
  auto postings = loaded.value().Postings(0);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].time, 100);  // stored sorted
}

TEST(CkbSerializationTest, EntityCountMismatchRejected) {
  kb::Knowledgebase kbase = MakeSmallKb();
  kb::ComplementedKnowledgebase original(&kbase);
  TempFile file("mel_ckb_mismatch.bin");
  ASSERT_TRUE(original.Save(file.path()).ok());
  kb::Knowledgebase other;
  other.AddEntity("only one", kb::EntityCategory::kPerson, {});
  other.Finalize();
  auto loaded = kb::ComplementedKnowledgebase::Load(file.path(), &other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IndexSerializationTest, TruncatedIndexRejected) {
  auto g = RandomGraph(30, 100, 8);
  auto index = reach::TransitiveClosureIndex::Build(
      &g, 5, reach::TransitiveClosureIndex::Construction::kIncremental);
  TempFile file("mel_truncated_index.bin");
  ASSERT_TRUE(index.Save(file.path()).ok());
  // Chop the file in half.
  auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size / 2);
  auto loaded = reach::TransitiveClosureIndex::Load(file.path(), &g);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace mel

#include <gtest/gtest.h>

#include <memory>

#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "recency/burst_tracker.h"
#include "recency/propagation_network.h"
#include "recency/recency_propagator.h"
#include "recency/sliding_window.h"
#include "util/random.h"

namespace mel::recency {
namespace {

TEST(BurstTrackerTest, CountsWithinWindow) {
  BurstTracker tracker(3, /*tau=*/100, /*num_buckets=*/10, /*theta1=*/2);
  tracker.Observe(0, 10);
  tracker.Observe(0, 20);
  tracker.Observe(0, 95);
  EXPECT_EQ(tracker.ApproxRecentCount(0, 100), 3u);
  EXPECT_EQ(tracker.ApproxRecentCount(1, 100), 0u);
}

TEST(BurstTrackerTest, OldObservationsExpire) {
  BurstTracker tracker(1, 100, 10, 1);
  tracker.Observe(0, 10);
  tracker.Observe(0, 500);  // advances the ring far past bucket of t=10
  EXPECT_EQ(tracker.ApproxRecentCount(0, 510), 1u);
}

TEST(BurstTrackerTest, LateArrivalsWithinWindowStillCount) {
  BurstTracker tracker(1, 100, 10, 1);
  tracker.Observe(0, 200);
  tracker.Observe(0, 150);  // late but inside the retained window
  EXPECT_EQ(tracker.ApproxRecentCount(0, 210), 2u);
  // Far-too-late arrival is dropped.
  tracker.Observe(0, 10);
  EXPECT_EQ(tracker.ApproxRecentCount(0, 210), 2u);
}

TEST(BurstTrackerTest, BurstMassThreshold) {
  BurstTracker tracker(1, 100, 10, 3);
  tracker.Observe(0, 50);
  tracker.Observe(0, 55);
  EXPECT_DOUBLE_EQ(tracker.BurstMass(0, 60), 0.0);  // below theta1
  tracker.Observe(0, 58);
  EXPECT_DOUBLE_EQ(tracker.BurstMass(0, 60), 3.0);
}

TEST(BurstTrackerTest, MemoryIsConstantPerEntity) {
  BurstTracker small(10, 1000, 16, 1);
  BurstTracker large(10, 1000, 16, 1);
  for (int i = 0; i < 10000; ++i) {
    large.Observe(0, i);
  }
  EXPECT_EQ(small.MemoryUsageBytes(), large.MemoryUsageBytes());
}

// Model-based check: on an in-order stream, the tracker's approximate
// count must match the exact posting-list count up to one bucket of
// slack at the trailing window edge.
TEST(BurstTrackerTest, TracksExactWindowWithinBucketSlack) {
  kb::Knowledgebase kbase;
  kbase.AddEntity("e", kb::EntityCategory::kPerson, {});
  kbase.Finalize();
  kb::ComplementedKnowledgebase ckb(&kbase);

  const kb::Timestamp tau = 1000;
  const uint32_t buckets = 20;
  const kb::Timestamp bucket_width = tau / buckets;
  BurstTracker tracker(1, tau, buckets, 1);
  SlidingWindowRecency exact(&ckb, tau, 1);

  Rng rng(7);
  kb::Timestamp t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += static_cast<kb::Timestamp>(rng.Uniform(30));
    tracker.Observe(0, t);
    ckb.AddLink(0, kb::Posting{static_cast<kb::TweetId>(i), 1, t});

    if (i % 50 == 0) {
      kb::Timestamp now = t + static_cast<kb::Timestamp>(rng.Uniform(50));
      uint32_t approx = tracker.ApproxRecentCount(0, now);
      // The bucketed window can only differ at the trailing edge: it may
      // include extra tweets from the partially-expired oldest bucket.
      uint32_t lower = exact.RecentCount(0, now);
      uint32_t upper =
          ckb.RecentTweetCount(0, now, tau + bucket_width);
      EXPECT_GE(approx, lower) << "i=" << i << " now=" << now;
      EXPECT_LE(approx, upper) << "i=" << i << " now=" << now;
    }
  }
}

// The tracker plugs into the propagation model through RecencySource —
// the full streaming recency pipeline without posting lists.
TEST(BurstTrackerTest, DrivesRecencyPropagator) {
  kb::Knowledgebase kbase;
  auto player = kbase.AddEntity("player", kb::EntityCategory::kPerson, {});
  auto expert = kbase.AddEntity("expert", kb::EntityCategory::kPerson, {});
  auto nba = kbase.AddEntity("nba", kb::EntityCategory::kCompany, {});
  for (int i = 0; i < 4; ++i) {
    auto a = kbase.AddEntity("a" + std::to_string(i),
                             kb::EntityCategory::kMovieMusic, {});
    kbase.AddHyperlink(a, player);
    kbase.AddHyperlink(a, nba);
  }
  kbase.AddSurfaceForm("jordan", player, 5);
  kbase.AddSurfaceForm("jordan", expert, 5);
  kbase.Finalize();
  auto network = recency::PropagationNetwork::Build(kbase, 0.3);

  BurstTracker tracker(kbase.num_entities(), 1000, 10, 3);
  RecencyPropagator propagator(&network, &tracker, PropagatorOptions{});

  // Stream an NBA burst through the tracker: propagation lifts the
  // player over the expert even though the player itself never bursts.
  for (int i = 0; i < 12; ++i) tracker.Observe(nba, 5000 + i);
  auto scores = propagator.CandidateScores({{player, expert}}, 5050, true);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(BurstTrackerTest, ManyEntitiesIndependent) {
  BurstTracker tracker(100, 100, 10, 1);
  Rng rng(9);
  std::vector<uint32_t> expected(100, 0);
  for (int i = 0; i < 2000; ++i) {
    auto e = static_cast<kb::EntityId>(rng.Uniform(100));
    tracker.Observe(e, 500 + static_cast<kb::Timestamp>(rng.Uniform(90)));
    ++expected[e];
  }
  for (kb::EntityId e = 0; e < 100; ++e) {
    EXPECT_EQ(tracker.ApproxRecentCount(e, 600), expected[e]);
  }
}

}  // namespace
}  // namespace mel::recency

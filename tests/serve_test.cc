// Tests of the online linking service (src/serve/): micro-batching
// determinism (batched results bit-identical to one-at-a-time linking),
// admission-control policies (block / shed / deadline), epoch-barrier
// feedback ordering (including a threaded replay that runs under TSan in
// scripts/verify.sh), and clean shutdown with in-flight requests drained.
//
// Deterministic batch boundaries come from ServeOptions::start_paused +
// Pause/Resume/WaitIdle: requests admitted while paused dispatch as one
// micro-batch (up to max_batch) on Resume.

#include "serve/link_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "graph/directed_graph.h"
#include "graph/mutation.h"
#include "reach/reach_maintainer.h"
#include "reach/transitive_closure.h"
#include "serve/request_queue.h"
#include "serve/types.h"
#include "util/metrics.h"

namespace mel {
namespace {

constexpr kb::Timestamp kNow = 90 * kb::kSecondsPerDay;

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::HarnessOptions options;
    options.scale = 0.3;
    harness_ = new eval::Harness(options);
  }
  static void TearDownTestSuite() {
    delete harness_;
    harness_ = nullptr;
  }

  // A surface with at least two candidates, for disambiguation pressure.
  static std::string AmbiguousSurface() {
    return harness_->world().kb_world.ambiguous_surfaces.front();
  }

  static serve::LinkRequest Request(const std::string& mention,
                                    kb::UserId user = 1,
                                    kb::Timestamp now = kNow) {
    serve::LinkRequest request;
    request.mention = mention;
    request.user = user;
    request.now = now;
    return request;
  }

  // Test-split mention workload (surface, author, kNow).
  static std::vector<serve::LinkRequest> SplitRequests(size_t limit) {
    std::vector<serve::LinkRequest> requests;
    const auto& tweets = harness_->world().corpus.tweets;
    for (uint32_t idx : harness_->test_split().tweet_indices) {
      for (const auto& m : tweets[idx].mentions) {
        if (requests.size() >= limit) return requests;
        requests.push_back(Request(m.surface, tweets[idx].tweet.user));
      }
    }
    return requests;
  }

  static eval::Harness* harness_;
};

eval::Harness* ServeFixture::harness_ = nullptr;

void ExpectBitIdentical(const core::MentionLinkResult& expected,
                        const core::MentionLinkResult& actual) {
  ASSERT_EQ(expected.ranked.size(), actual.ranked.size());
  EXPECT_EQ(expected.probable_new_entity, actual.probable_new_entity);
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    EXPECT_EQ(expected.ranked[i].entity, actual.ranked[i].entity);
    // Bit-identical, not approximately-equal: the batch shares every
    // arithmetic path with the sequential call.
    EXPECT_EQ(expected.ranked[i].score, actual.ranked[i].score);
    EXPECT_EQ(expected.ranked[i].interest, actual.ranked[i].interest);
    EXPECT_EQ(expected.ranked[i].recency, actual.ranked[i].recency);
    EXPECT_EQ(expected.ranked[i].popularity, actual.ranked[i].popularity);
  }
}

// ------------------------------------------------ batching determinism

TEST_F(ServeFixture, BatchedResultsBitIdenticalToSequential) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  linker.WarmUp();
  std::vector<serve::LinkRequest> requests = SplitRequests(64);
  ASSERT_GE(requests.size(), 16u);

  // One-at-a-time reference (pure reads; order irrelevant).
  std::vector<core::MentionLinkResult> reference;
  reference.reserve(requests.size());
  for (const auto& r : requests) {
    reference.push_back(linker.LinkMention(r.mention, r.user, r.now));
  }

  serve::ServeOptions options;
  options.max_batch = 16;
  options.start_paused = true;
  serve::LinkService service(&linker, options);
  std::vector<std::future<serve::LinkResponse>> futures;
  for (const auto& r : requests) futures.push_back(service.Submit(r));
  service.Resume();
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::LinkResponse response = futures[i].get();
    ASSERT_EQ(response.status, serve::ServeStatus::kOk);
    EXPECT_EQ(response.epoch, 0u) << "no feedback -> no epoch bump";
    EXPECT_GE(response.batch_size, 1u);
    ExpectBitIdentical(reference[i], response.result);
  }
}

TEST_F(ServeFixture, PausedSubmissionsDispatchAsOneBatchWithOneEpoch) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  serve::ServeOptions options;
  options.max_batch = 32;
  options.start_paused = true;
  serve::LinkService service(&linker, options);

  std::vector<std::future<serve::LinkResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(service.Submit(Request(AmbiguousSurface())));
  }
  service.Resume();
  for (auto& f : futures) {
    serve::LinkResponse response = f.get();
    ASSERT_EQ(response.status, serve::ServeStatus::kOk);
    EXPECT_EQ(response.batch_size, 5u);
    EXPECT_EQ(response.epoch, 0u);
    EXPECT_GE(response.queue_wait_ns, 0);
  }
}

// --------------------------------------------- epoch-barrier feedback

TEST_F(ServeFixture, FeedbackAppliesBehindTheBatchThatPrecedesIt) {
  // Fresh, empty complemented KB: popularity is 0 for everyone until the
  // first confirmed link, which makes feedback visibility unambiguous.
  kb::ComplementedKnowledgebase ckb(&harness_->kb());
  core::EntityLinker linker(&harness_->kb(), &ckb,
                            &harness_->reachability(), &harness_->network(),
                            harness_->DefaultLinkerOptions());
  serve::ServeOptions options;
  options.start_paused = true;
  serve::LinkService service(&linker, options);

  const std::string surface = AmbiguousSurface();
  auto candidates = harness_->kb().Candidates(surface);
  ASSERT_FALSE(candidates.empty());
  const kb::EntityId confirmed = candidates.front().entity;

  // Batch A: pre-feedback state.
  auto a = service.Submit(Request(surface));
  service.Resume();
  service.WaitIdle();
  service.Pause();

  // While paused: a batch B and one feedback write are both pending.
  // The already-admitted batch must run BEFORE the barrier (no torn
  // epoch), so B still observes epoch 0.
  auto b = service.Submit(Request(surface));
  kb::Tweet tweet;
  tweet.id = 999001;
  tweet.user = 2;
  tweet.time = kNow - 60;
  auto ack = service.SubmitFeedback(confirmed, tweet);
  service.Resume();
  service.WaitIdle();

  // Batch C: post-barrier state.
  auto c = service.Submit(Request(surface));

  serve::LinkResponse ra = a.get();
  serve::LinkResponse rb = b.get();
  const uint64_t barrier_epoch = ack.get();
  serve::LinkResponse rc = c.get();

  ASSERT_EQ(ra.status, serve::ServeStatus::kOk);
  ASSERT_EQ(rb.status, serve::ServeStatus::kOk);
  ASSERT_EQ(rc.status, serve::ServeStatus::kOk);
  EXPECT_EQ(ra.epoch, 0u);
  EXPECT_EQ(rb.epoch, 0u) << "admitted before the barrier must not see it";
  EXPECT_EQ(barrier_epoch, 1u);
  EXPECT_EQ(rc.epoch, 1u);

  // Before the barrier nobody had popularity; after it, the confirmed
  // entity owns the whole popularity share.
  for (const auto& s : rb.result.ranked) EXPECT_EQ(s.popularity, 0.0);
  bool found = false;
  for (const auto& s : rc.result.ranked) {
    if (s.entity == confirmed) {
      EXPECT_EQ(s.popularity, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// The TSan-facing test: concurrent producers + feedback racing the
// serving loop. The epoch stamps let us replay the exact schedule
// sequentially afterwards; every response must be bit-identical to the
// replay — the serving-loop statement of the differential harness's
// epoch-freshness invariant (readers never observe a torn epoch).
TEST_F(ServeFixture, ConcurrentFeedbackEpochScheduleReplaysBitIdentically) {
  kb::ComplementedKnowledgebase serve_ckb(&harness_->kb());
  core::EntityLinker serve_linker(
      &harness_->kb(), &serve_ckb, &harness_->reachability(),
      &harness_->network(), harness_->DefaultLinkerOptions());
  serve::ServeOptions options;
  options.max_batch = 8;
  serve::LinkService service(&serve_linker, options);

  std::vector<serve::LinkRequest> requests = SplitRequests(60);
  ASSERT_GE(requests.size(), 20u);
  const size_t half = requests.size() / 2;

  struct Feedback {
    kb::EntityId entity;
    kb::Tweet tweet;
  };
  std::vector<Feedback> feedback;
  {
    const auto& tweets = harness_->world().corpus.tweets;
    kb::TweetId next_id = 5000000;
    for (uint32_t idx : harness_->test_split().tweet_indices) {
      for (const auto& m : tweets[idx].mentions) {
        if (feedback.size() >= 30) break;
        kb::Tweet t = tweets[idx].tweet;
        t.id = next_id++;
        t.time = kNow - 120 + static_cast<kb::Timestamp>(feedback.size());
        feedback.push_back({m.truth, t});
      }
    }
  }
  ASSERT_GE(feedback.size(), 10u);

  std::vector<std::future<serve::LinkResponse>> responses(requests.size());
  std::vector<std::future<uint64_t>> acks(feedback.size());
  std::thread producer_a([&] {
    for (size_t i = 0; i < half; ++i) {
      responses[i] = service.Submit(requests[i]);
    }
  });
  std::thread producer_b([&] {
    for (size_t i = half; i < requests.size(); ++i) {
      responses[i] = service.Submit(requests[i]);
    }
  });
  std::thread confirmer([&] {
    for (size_t i = 0; i < feedback.size(); ++i) {
      acks[i] = service.SubmitFeedback(feedback[i].entity,
                                       feedback[i].tweet);
      std::this_thread::yield();
    }
  });
  producer_a.join();
  producer_b.join();
  confirmer.join();
  service.WaitIdle();
  service.Stop();

  struct Linked {
    serve::LinkResponse response;
    size_t request = 0;
  };
  std::vector<Linked> linked;
  for (size_t i = 0; i < responses.size(); ++i) {
    serve::LinkResponse r = responses[i].get();
    ASSERT_EQ(r.status, serve::ServeStatus::kOk);
    linked.push_back({std::move(r), i});
  }
  std::vector<uint64_t> ack_epochs(acks.size());
  for (size_t i = 0; i < acks.size(); ++i) {
    ack_epochs[i] = acks[i].get();
    ASSERT_NE(ack_epochs[i], serve::kFeedbackRejected);
    if (i > 0) {
      EXPECT_GE(ack_epochs[i], ack_epochs[i - 1])
          << "FIFO feedback must ack in monotone epochs";
    }
  }

  // Sequential replay of the recorded epoch schedule on a second,
  // identically seeded linker: before serving epoch e, apply every
  // feedback write acked at an epoch <= e (FIFO order).
  std::stable_sort(linked.begin(), linked.end(),
                   [](const Linked& x, const Linked& y) {
                     return x.response.epoch < y.response.epoch;
                   });
  kb::ComplementedKnowledgebase replay_ckb(&harness_->kb());
  core::EntityLinker replay_linker(
      &harness_->kb(), &replay_ckb, &harness_->reachability(),
      &harness_->network(), harness_->DefaultLinkerOptions());
  size_t next_feedback = 0;
  for (const Linked& item : linked) {
    while (next_feedback < feedback.size() &&
           ack_epochs[next_feedback] <= item.response.epoch) {
      replay_linker.ConfirmLink(feedback[next_feedback].entity,
                                feedback[next_feedback].tweet);
      ++next_feedback;
    }
    const serve::LinkRequest& r = requests[item.request];
    core::MentionLinkResult expected =
        replay_linker.LinkMention(r.mention, r.user, r.now);
    ExpectBitIdentical(expected, item.response.result);
  }
}

// ----------------------------------------------------- admission control

TEST_F(ServeFixture, ShedPolicyRejectsWithOverloadedWhenFull) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  serve::ServeOptions options;
  options.queue_capacity = 4;
  options.policy = serve::AdmissionPolicy::kShed;
  options.start_paused = true;
  serve::LinkService service(&linker, options);

  auto& reg = metrics::Registry();
  const uint64_t shed_before = reg.GetCounter("serve.shed_total")->Value();

  std::vector<std::future<serve::LinkResponse>> accepted;
  for (int i = 0; i < 4; ++i) {
    accepted.push_back(service.Submit(Request(AmbiguousSurface())));
  }
  auto overflow = service.Submit(Request(AmbiguousSurface()));
  // The shed future resolves without any dispatch happening.
  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(overflow.get().status, serve::ServeStatus::kOverloaded);
  EXPECT_EQ(reg.GetCounter("serve.shed_total")->Value(), shed_before + 1);

  service.Resume();
  for (auto& f : accepted) {
    EXPECT_EQ(f.get().status, serve::ServeStatus::kOk);
  }
}

TEST_F(ServeFixture, BlockPolicyBackpressuresProducersUntilDrained) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  serve::ServeOptions options;
  options.queue_capacity = 2;
  options.policy = serve::AdmissionPolicy::kBlock;
  options.start_paused = true;
  serve::LinkService service(&linker, options);

  std::atomic<int> submitted{0};
  std::vector<std::future<serve::LinkResponse>> futures(6);
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      futures[i] = service.Submit(Request(AmbiguousSurface()));
      submitted.fetch_add(1);
    }
  });
  // The producer must stall at the capacity (2 queued + 1 blocked).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(submitted.load(), 2);
  service.Resume();
  producer.join();
  EXPECT_EQ(submitted.load(), 6);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::ServeStatus::kOk);
  }
}

TEST_F(ServeFixture, DeadlineExpiryAtAdmissionAndAtDispatch) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  serve::ServeOptions options;
  options.queue_capacity = 2;
  options.policy = serve::AdmissionPolicy::kDeadline;
  options.start_paused = true;
  serve::LinkService service(&linker, options);

  // Two requests with a short budget fill the queue.
  serve::LinkRequest short_budget = Request(AmbiguousSurface());
  short_budget.deadline_ns = 20 * 1000 * 1000;  // 20 ms
  auto q1 = service.Submit(short_budget);
  auto q2 = service.Submit(short_budget);
  // The third cannot be admitted before its deadline: the producer blocks
  // (bounded by the budget), then fails with kDeadlineExpired.
  auto q3 = service.Submit(short_budget);
  EXPECT_EQ(q3.get().status, serve::ServeStatus::kDeadlineExpired);

  // By now the queued two are expired as well; dispatch drops them
  // without linking.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  service.Resume();
  EXPECT_EQ(q1.get().status, serve::ServeStatus::kDeadlineExpired);
  EXPECT_EQ(q2.get().status, serve::ServeStatus::kDeadlineExpired);

  // A generous budget is served normally under the same policy.
  serve::LinkRequest long_budget = Request(AmbiguousSurface());
  long_budget.deadline_ns = int64_t{10} * 1000 * 1000 * 1000;  // 10 s
  EXPECT_EQ(service.LinkSync(long_budget).status,
            serve::ServeStatus::kOk);
}

// ------------------------------------------------------------- shutdown

TEST_F(ServeFixture, StopDrainsEveryAdmittedRequestAndFeedback) {
  kb::ComplementedKnowledgebase ckb(&harness_->kb());
  core::EntityLinker linker(&harness_->kb(), &ckb,
                            &harness_->reachability(), &harness_->network(),
                            harness_->DefaultLinkerOptions());
  serve::ServeOptions options;
  options.max_batch = 4;
  serve::LinkService service(&linker, options);

  std::vector<std::future<serve::LinkResponse>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(service.Submit(Request(AmbiguousSurface())));
  }
  kb::Tweet tweet;
  tweet.id = 999100;
  tweet.user = 3;
  tweet.time = kNow - 30;
  auto candidates = harness_->kb().Candidates(AmbiguousSurface());
  auto ack = service.SubmitFeedback(candidates.front().entity, tweet);

  service.Stop();  // must drain, not drop

  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::ServeStatus::kOk);
  }
  EXPECT_NE(ack.get(), serve::kFeedbackRejected);

  // Post-stop submissions are rejected immediately.
  auto late = service.Submit(Request(AmbiguousSurface()));
  EXPECT_EQ(late.get().status, serve::ServeStatus::kShutdown);
  auto late_feedback =
      service.SubmitFeedback(candidates.front().entity, tweet);
  EXPECT_EQ(late_feedback.get(), serve::kFeedbackRejected);
}

TEST_F(ServeFixture, DestructorStopsCleanlyWithQueuedWork) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  std::vector<std::future<serve::LinkResponse>> futures;
  {
    serve::ServeOptions options;
    options.max_batch = 8;
    serve::LinkService service(&linker, options);
    for (int i = 0; i < 20; ++i) {
      futures.push_back(service.Submit(Request(AmbiguousSurface())));
    }
  }  // ~LinkService drains
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::ServeStatus::kOk);
  }
}

// ------------------------------------------------------------- metrics

TEST_F(ServeFixture, ServeMetricsAreExported) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  auto& reg = metrics::Registry();
  const uint64_t requests_before =
      reg.GetCounter("serve.requests_total")->Value();
  const uint64_t batches_before =
      reg.GetCounter("serve.batches_total")->Value();

  serve::ServeOptions options;
  options.max_batch = 8;
  options.start_paused = true;
  serve::LinkService service(&linker, options);
  std::vector<std::future<serve::LinkResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.Submit(Request(AmbiguousSurface())));
  }
  service.Resume();
  for (auto& f : futures) {
    ASSERT_EQ(f.get().status, serve::ServeStatus::kOk);
  }
  service.Stop();

  EXPECT_EQ(reg.GetCounter("serve.requests_total")->Value(),
            requests_before + 8);
  EXPECT_GE(reg.GetCounter("serve.batches_total")->Value(),
            batches_before + 1);
  auto snapshot = reg.Snapshot();
  bool found_latency = false;
  bool found_batch_size = false;
  for (const auto& [name, h] : snapshot.histograms) {
    if (name == "serve.link_latency_ns" && h.count > 0) {
      found_latency = true;
    }
    if (name == "serve.batch_size" && h.count > 0) found_batch_size = true;
  }
  EXPECT_TRUE(found_latency);
  EXPECT_TRUE(found_batch_size);
  EXPECT_GT(reg.GetGauge("serve.qps")->Value(), 0);
}

TEST_F(ServeFixture, WaitIdleReturnsImmediatelyWhenIdle) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  serve::LinkService service(&linker, {});
  service.WaitIdle();  // no admitted work: must not block
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_EQ(service.LinkSync(Request(AmbiguousSurface())).status,
            serve::ServeStatus::kOk);
}

// ------------------------------------------- graph mutations at the barrier

TEST_F(ServeFixture, MutationsApplyAtBarrierWithOneEpochBumpAndPatchIndexes) {
  graph::DirectedGraph live = harness_->world().social.graph;
  const uint32_t max_hops = harness_->options().max_hops;
  auto tc = reach::TransitiveClosureIndex::Build(
      &live, max_hops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  reach::ReachMaintainer maintainer(&live, max_hops);
  maintainer.Register(&tc);

  kb::ComplementedKnowledgebase ckb(&harness_->kb());
  core::EntityLinker linker(&harness_->kb(), &ckb, &tc,
                            &harness_->network(),
                            harness_->DefaultLinkerOptions());

  // One existing edge to erase and one missing edge to insert.
  graph::EdgeDelta erase_delta, insert_delta;
  erase_delta.op = graph::EdgeDelta::Op::kErase;
  for (graph::NodeId u = 0; u < live.num_nodes(); ++u) {
    if (live.OutDegree(u) > 0) {
      erase_delta.u = u;
      erase_delta.v = live.OutNeighbors(u)[0];
      break;
    }
  }
  insert_delta.op = graph::EdgeDelta::Op::kInsert;
  insert_delta.u = erase_delta.u;
  for (graph::NodeId v = 0; v < live.num_nodes(); ++v) {
    if (v != insert_delta.u && !live.HasEdge(insert_delta.u, v)) {
      insert_delta.v = v;
      break;
    }
  }

  serve::ServeOptions options;
  options.start_paused = true;
  options.mutation_handler = [&](const graph::EdgeDelta& delta) {
    EXPECT_TRUE(maintainer.ApplyDelta(delta).applied);
  };
  serve::LinkService service(&linker, options);

  // A batch, a feedback write, and two mutations, all admitted while
  // paused: the batch links against the PRE-mutation graph (epoch 0),
  // then one barrier applies every write with a single epoch bump.
  auto response_future = service.Submit(Request(AmbiguousSurface()));
  kb::Tweet tweet;
  tweet.id = 999200;
  tweet.user = 3;
  tweet.time = kNow - 30;
  auto candidates = harness_->kb().Candidates(AmbiguousSurface());
  auto feedback_ack =
      service.SubmitFeedback(candidates.front().entity, tweet);
  auto erase_ack = service.SubmitMutation(erase_delta);
  auto insert_ack = service.SubmitMutation(insert_delta);

  service.Resume();
  serve::LinkResponse response = response_future.get();
  ASSERT_EQ(response.status, serve::ServeStatus::kOk);
  EXPECT_EQ(response.epoch, 0u);
  EXPECT_EQ(feedback_ack.get(), 1u);
  EXPECT_EQ(erase_ack.get(), 1u);
  EXPECT_EQ(insert_ack.get(), 1u);  // same barrier: one bump for all
  service.WaitIdle();
  EXPECT_EQ(service.epoch(), 1u);

  // The live graph carries both deltas and the patched index is exactly
  // the index a from-scratch build on the mutated graph produces.
  EXPECT_FALSE(live.HasEdge(erase_delta.u, erase_delta.v));
  EXPECT_TRUE(live.HasEdge(insert_delta.u, insert_delta.v));
  auto fresh = reach::TransitiveClosureIndex::Build(
      &live, max_hops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  for (graph::NodeId u = 0; u < live.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < live.num_nodes(); ++v) {
      ASSERT_EQ(tc.Distance(u, v), fresh.Distance(u, v)) << u << " " << v;
      ASSERT_EQ(tc.Score(u, v), fresh.Score(u, v)) << u << " " << v;
    }
  }

  // A request linked after the barrier observes the new epoch.
  serve::LinkResponse after = service.LinkSync(Request(AmbiguousSurface()));
  ASSERT_EQ(after.status, serve::ServeStatus::kOk);
  EXPECT_EQ(after.epoch, 1u);
}

TEST_F(ServeFixture, MutationsRejectedWithoutHandlerAndAfterStop) {
  core::EntityLinker linker =
      harness_->MakeLinker(harness_->DefaultLinkerOptions());
  graph::EdgeDelta delta;
  delta.u = 0;
  delta.v = 1;

  {
    serve::LinkService service(&linker, {});  // no mutation_handler
    EXPECT_EQ(service.SubmitMutation(delta).get(),
              serve::kMutationRejected);
    EXPECT_EQ(service.epoch(), 0u);
  }

  serve::ServeOptions options;
  options.mutation_handler = [](const graph::EdgeDelta&) {};
  serve::LinkService service(&linker, options);
  service.Stop();
  EXPECT_EQ(service.SubmitMutation(delta).get(), serve::kMutationRejected);
}

}  // namespace
}  // namespace mel

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "text/edit_distance.h"
#include "text/gazetteer.h"
#include "text/qgram_index.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mel::text {
namespace {

// ------------------------------------------------------------- tokenizer

TEST(TokenizerTest, BasicWords) {
  auto tokens = TokenizeToStrings("Michael Jordan plays basketball");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "michael");
  EXPECT_EQ(tokens[1], "jordan");
  EXPECT_EQ(tokens[3], "basketball");
}

TEST(TokenizerTest, StripsPunctuationAndHandles) {
  auto tokens = TokenizeToStrings("@NBAOfficial: #Jordan wins!!!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "nbaofficial");
  EXPECT_EQ(tokens[1], "jordan");
  EXPECT_EQ(tokens[2], "wins");
}

TEST(TokenizerTest, KeepsIntraWordApostrophe) {
  auto tokens = TokenizeToStrings("O'Neal's game");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "o'neal's");
  EXPECT_EQ(tokens[1], "game");
}

TEST(TokenizerTest, ByteSpansPointIntoOriginal) {
  std::string input = "Hi, Bob!";
  auto tokens = Tokenize(input);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(input.substr(tokens[1].begin, tokens[1].end - tokens[1].begin),
            "Bob");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ???").empty());
}

TEST(TokenizerTest, Numbers) {
  auto tokens = TokenizeToStrings("win 23 points");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "23");
}

// ---------------------------------------------------------- edit distance

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "xyz"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("jordan", "jorden"), 1u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("abcdef", "azced"), EditDistance("azced", "abcdef"));
}

TEST(EditDistanceTest, BoundedAgreesWithinThreshold) {
  Rng rng(7);
  const std::string alphabet = "abcd";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string a, b;
    size_t la = rng.Uniform(12), lb = rng.Uniform(12);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(4)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(4)];
    uint32_t exact = EditDistance(a, b);
    for (uint32_t bound = 0; bound <= 4; ++bound) {
      uint32_t bounded = BoundedEditDistance(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(bounded, bound) << a << " vs " << b << " bound " << bound;
      }
    }
  }
}

TEST(EditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(EditSimilarity("jordan", "jorden"), 1.0 - 1.0 / 6, 1e-9);
}

// ------------------------------------------------------------ fuzzy index

TEST(SegmentFuzzyIndexTest, ExactLookup) {
  SegmentFuzzyIndex index(2);
  index.Add("jordan", 1);
  index.Add("jackson", 2);
  auto hits = index.Lookup("jordan", 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(SegmentFuzzyIndexTest, OneEditAway) {
  SegmentFuzzyIndex index(2);
  index.Add("jordan", 1);
  index.Add("gordon", 2);
  auto hits = index.Lookup("jorden", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(SegmentFuzzyIndexTest, InsertionsAndDeletions) {
  SegmentFuzzyIndex index(2);
  index.Add("chicago bulls", 9);
  EXPECT_EQ(index.Lookup("chicago bull", 1).size(), 1u);   // deletion
  EXPECT_EQ(index.Lookup("chicagoo bulls", 1).size(), 1u);  // insertion
  EXPECT_TRUE(index.Lookup("chicago", 2).empty());          // too far
}

TEST(SegmentFuzzyIndexTest, DuplicatePayloadsDeduplicated) {
  SegmentFuzzyIndex index(1);
  index.Add("alpha", 5);
  index.Add("alphb", 5);
  auto hits = index.Lookup("alpha", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 5u);
}

TEST(SegmentFuzzyIndexTest, RandomizedCompleteness) {
  // The pigeonhole filter must never miss a true near-match.
  Rng rng(13);
  const std::string alphabet = "abcde";
  SegmentFuzzyIndex index(2);
  std::vector<std::string> dict;
  for (uint32_t i = 0; i < 200; ++i) {
    std::string s;
    size_t len = 3 + rng.Uniform(10);
    for (size_t k = 0; k < len; ++k) s += alphabet[rng.Uniform(5)];
    dict.push_back(s);
    index.Add(s, i);
  }
  for (int iter = 0; iter < 500; ++iter) {
    std::string q;
    size_t len = 3 + rng.Uniform(10);
    for (size_t k = 0; k < len; ++k) q += alphabet[rng.Uniform(5)];
    uint32_t threshold = 1 + static_cast<uint32_t>(rng.Uniform(2));
    auto hits = index.Lookup(q, threshold);
    for (uint32_t i = 0; i < dict.size(); ++i) {
      bool expected = EditDistance(q, dict[i]) <= threshold;
      bool found = std::find(hits.begin(), hits.end(), i) != hits.end();
      EXPECT_EQ(found, expected)
          << "query=" << q << " dict=" << dict[i] << " t=" << threshold;
    }
  }
}

TEST(SegmentFuzzyIndexTest, PackedKeyParityAgainstBruteForce) {
  // The packed-key open-addressed probe must return exactly the payload
  // set of a brute-force scan — neither a missed match (pigeonhole bug)
  // nor a spurious payload (hash collisions must die in verification).
  Rng rng(71);
  const std::string alphabet = "abcdefgh";
  SegmentFuzzyIndex index(2);
  std::vector<std::pair<std::string, uint32_t>> dict;
  for (uint32_t i = 0; i < 300; ++i) {
    std::string s;
    size_t len = 1 + rng.Uniform(14);
    for (size_t k = 0; k < len; ++k) s += alphabet[rng.Uniform(8)];
    // Repeat some strings under different payloads and some payloads
    // under different strings.
    uint32_t payload = static_cast<uint32_t>(rng.Uniform(150));
    dict.emplace_back(s, payload);
    index.Add(s, payload);
  }
  for (int iter = 0; iter < 400; ++iter) {
    std::string q;
    size_t len = 1 + rng.Uniform(14);
    for (size_t k = 0; k < len; ++k) q += alphabet[rng.Uniform(8)];
    for (uint32_t threshold : {0u, 1u, 2u}) {
      auto got = index.Lookup(q, threshold);
      std::vector<uint32_t> expected;
      for (const auto& [s, payload] : dict) {
        if (BoundedEditDistance(q, s, threshold) <= threshold) {
          expected.push_back(payload);
        }
      }
      std::sort(expected.begin(), expected.end());
      expected.erase(std::unique(expected.begin(), expected.end()),
                     expected.end());
      EXPECT_EQ(got, expected) << "query=" << q << " t=" << threshold;
    }
  }
}

TEST(SegmentFuzzyIndexTest, ParallelLookupsAreConsistent) {
  // Lookup is const with thread-local scratch: concurrent queries from a
  // shared index must all see the exact result set.
  Rng rng(72);
  const std::string alphabet = "abcd";
  SegmentFuzzyIndex index(1);
  for (uint32_t i = 0; i < 150; ++i) {
    std::string s;
    size_t len = 3 + rng.Uniform(8);
    for (size_t k = 0; k < len; ++k) s += alphabet[rng.Uniform(4)];
    index.Add(s, i);
  }
  std::vector<std::string> queries;
  std::vector<std::vector<uint32_t>> expected;
  for (int i = 0; i < 200; ++i) {
    std::string q;
    size_t len = 3 + rng.Uniform(8);
    for (size_t k = 0; k < len; ++k) q += alphabet[rng.Uniform(4)];
    queries.push_back(q);
    expected.push_back(index.Lookup(q, 1));
  }
  mel::util::ThreadPool pool(4);
  std::vector<std::vector<uint32_t>> got(queries.size());
  pool.ParallelFor(0, queries.size(), 1, [&](size_t i) {
    got[i] = index.Lookup(queries[i], 1);
  });
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query=" << queries[i];
  }
}

TEST(SegmentFuzzyIndexTest, MemoryAccounting) {
  SegmentFuzzyIndex index(1);
  uint64_t empty = index.MemoryUsageBytes();
  index.Add("something", 1);
  EXPECT_GT(index.MemoryUsageBytes(), empty);
}

TEST(SegmentFuzzyIndexTest, HashCollisionStillVerifiedByEditDistance) {
  // "blndrk" and "ciwpsf" collide in the 46-bit FNV-1a fold of the packed
  // probe key (exhaustive search over 6-char lowercase strings). If this
  // first assertion ever fails, the hash function changed and a new
  // colliding pair must be mined for this regression test to keep biting.
  ASSERT_EQ(SegmentFuzzyIndex::PackedProbeKey(12, 0, "blndrk"),
            SegmentFuzzyIndex::PackedProbeKey(12, 0, "ciwpsf"));
  ASSERT_NE(std::string("blndrk"), std::string("ciwpsf"));

  // Two 12-char entries whose FIRST segments (max_distance 1 -> two 6-char
  // segments) are exactly the colliding pair. A probe for either string
  // admits the other through the shared hash bucket; only the banded
  // edit-distance verification separates them.
  SegmentFuzzyIndex index(1);
  index.Add("blndrkoooooo", 1);
  index.Add("ciwpsfoooooo", 2);  // same tail: the collision does the rest

  auto hits = index.Lookup("blndrkoooooo", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
  hits = index.Lookup("ciwpsfoooooo", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);

  // One true edit on the non-colliding tail still resolves correctly.
  hits = index.Lookup("blndrkooooop", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);

  // Brute-force parity on the colliding universe.
  for (const char* probe : {"blndrkoooooo", "ciwpsfoooooo", "blndrkoooop",
                            "ciwpsfools", "xlndrkoooooo"}) {
    auto got = index.Lookup(probe, 1);
    std::vector<uint32_t> want;
    if (BoundedEditDistance(probe, "blndrkoooooo", 1) <= 1) want.push_back(1);
    if (BoundedEditDistance(probe, "ciwpsfoooooo", 1) <= 1) want.push_back(2);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << probe;
  }
}

// -------------------------------------------------------------- gazetteer

TEST(GazetteerTest, SingleTokenMatch) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("jordan", 1);
  auto mentions = gaz.Detect("I love jordan so much");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].surface, "jordan");
  EXPECT_EQ(mentions[0].surface_id, 1u);
  EXPECT_EQ(mentions[0].token_begin, 2u);
  EXPECT_EQ(mentions[0].token_end, 3u);
}

TEST(GazetteerTest, LongestCoverWins) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("michael", 1);
  gaz.AddSurfaceForm("michael jordan", 2);
  auto mentions = gaz.Detect("michael jordan dunks");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].surface_id, 2u);
  EXPECT_EQ(mentions[0].surface, "michael jordan");
}

TEST(GazetteerTest, NonOverlappingMatches) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("new york", 1);
  gaz.AddSurfaceForm("york city", 2);
  auto mentions = gaz.Detect("new york city");
  // Longest-cover from the left: "new york" consumes tokens 0-1; token 2
  // ("city") alone matches nothing.
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].surface_id, 1u);
}

TEST(GazetteerTest, CaseInsensitive) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("Chicago Bulls", 7);
  auto mentions = gaz.Detect("the CHICAGO bulls won");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].surface_id, 7u);
}

TEST(GazetteerTest, MultipleMentions) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("jordan", 1);
  gaz.AddSurfaceForm("nba", 2);
  auto mentions = gaz.Detect("jordan rules the nba and jordan smiles");
  ASSERT_EQ(mentions.size(), 3u);
  EXPECT_EQ(mentions[0].surface_id, 1u);
  EXPECT_EQ(mentions[1].surface_id, 2u);
  EXPECT_EQ(mentions[2].surface_id, 1u);
}

TEST(GazetteerTest, PrefixWithoutFullMatchDoesNotFire) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("new york city", 1);
  auto mentions = gaz.Detect("new york is big");
  EXPECT_TRUE(mentions.empty());
}

TEST(GazetteerTest, EmptyTextAndEmptyDictionary) {
  Gazetteer gaz;
  EXPECT_TRUE(gaz.Detect("anything at all").empty());
  gaz.AddSurfaceForm("x", 1);
  EXPECT_TRUE(gaz.Detect("").empty());
}

TEST(GazetteerTest, LastSurfaceIdWinsOnDuplicateRegistration) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("jordan", 1);
  gaz.AddSurfaceForm("jordan", 2);
  auto mentions = gaz.Detect("jordan");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].surface_id, 2u);
}

// ---------------------------------------------------------------- fuzzing

TEST(TokenizerFuzzTest, RandomBytesNeverCrashAndSpansAreValid) {
  mel::Rng rng(97);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto tokens = Tokenize(input);
    size_t previous_end = 0;
    for (const auto& token : tokens) {
      ASSERT_FALSE(token.text.empty());
      ASSERT_LE(token.begin, token.end);
      ASSERT_LE(token.end, input.size());
      ASSERT_GE(token.begin, previous_end);  // non-overlapping, ordered
      previous_end = token.end;
      for (char c : token.text) {
        // Tokens are lowercase alnum plus intra-word apostrophes.
        ASSERT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '\'')
            << "byte " << static_cast<int>(c);
      }
    }
  }
}

TEST(GazetteerFuzzTest, RandomTextNeverCrashes) {
  Gazetteer gaz;
  gaz.AddSurfaceForm("abc def", 1);
  gaz.AddSurfaceForm("xyz", 2);
  mel::Rng rng(98);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string input;
    size_t len = rng.Uniform(48);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto mentions = gaz.Detect(input);  // must not crash
    for (const auto& m : mentions) {
      ASSERT_LE(m.token_begin, m.token_end);
    }
  }
}

TEST(SegmentFuzzyIndexFuzzTest, RandomQueriesNeverCrash) {
  SegmentFuzzyIndex index(2);
  index.Add("hello", 1);
  index.Add("world wide", 2);
  mel::Rng rng(99);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string query;
    size_t len = rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      query.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    auto hits =
        index.Lookup(query, 1 + static_cast<uint32_t>(rng.Uniform(2)));
    for (uint32_t payload : hits) {
      ASSERT_TRUE(payload == 1 || payload == 2);
    }
  }
}

}  // namespace
}  // namespace mel::text

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_linker.h"
#include "graph/graph_builder.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "reach/naive_reachability.h"
#include "reach/pruned_online_search.h"
#include "reach/reach_cache.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "recency/propagation_network.h"
#include "recency/recency_propagator.h"
#include "recency/sliding_window.h"
#include "testing/differential_runner.h"
#include "testing/oracle.h"
#include "testing/random_workload.h"
#include "testing/sync_source.h"
#include "util/metrics.h"

namespace mel::testing {
namespace {

// ===========================================================================
// Oracle unit tests — hand-computed values, independent of any production
// path. If these fail, the ground truth itself is wrong and every
// differential verdict is meaningless, so they run first.
// ===========================================================================

// 0 -> 1 -> 2 -> 3, 0 -> 4 -> 2; node 5 isolated.
graph::DirectedGraph MakeDiamondGraph() {
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 4);
  b.AddEdge(4, 2);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

TEST(OracleReach, HandComputedDistances) {
  graph::DirectedGraph g = MakeDiamondGraph();
  EXPECT_EQ(OracleDistance(g, 0, 0, 5), 0u);
  EXPECT_EQ(OracleDistance(g, 0, 1, 5), 1u);
  EXPECT_EQ(OracleDistance(g, 0, 2, 5), 2u);
  EXPECT_EQ(OracleDistance(g, 0, 3, 5), 3u);
  EXPECT_EQ(OracleDistance(g, 0, 5, 5), reach::kUnreachableDistance);
  EXPECT_EQ(OracleDistance(g, 5, 0, 5), reach::kUnreachableDistance);
  // Hop bound: distance 2 is invisible with max_hops = 1.
  EXPECT_EQ(OracleDistance(g, 0, 2, 1), reach::kUnreachableDistance);
}

TEST(OracleReach, HandComputedScores) {
  graph::DirectedGraph g = MakeDiamondGraph();
  // Paper conventions.
  EXPECT_EQ(OracleReachScore(g, 0, 0, 5), 1.0);  // R(u, u) = 1
  EXPECT_EQ(OracleReachScore(g, 0, 1, 5), 1.0);  // direct followee
  EXPECT_EQ(OracleReachScore(g, 0, 5, 5), 0.0);  // unreachable
  EXPECT_EQ(OracleReachScore(g, 5, 0, 5), 0.0);  // out-degree 0
  EXPECT_EQ(OracleReachScore(g, 5, 5, 5), 1.0);  // even with out-degree 0
  // d(0, 2) = 2 via both followees {1, 4}: (1/2) * (2/2).
  EXPECT_DOUBLE_EQ(OracleReachScore(g, 0, 2, 5), 0.5);
  // d(0, 3) = 3, both followees on shortest paths: (1/3) * (2/2).
  EXPECT_DOUBLE_EQ(OracleReachScore(g, 0, 3, 5), 1.0 / 3.0);
  // Beyond the hop bound the score collapses to 0.
  EXPECT_EQ(OracleReachScore(g, 0, 2, 1), 0.0);
}

TEST(OracleReach, QueryReportsShortestPathFollowees) {
  graph::DirectedGraph g = MakeDiamondGraph();
  reach::ReachQueryResult r = OracleReachQuery(g, 0, 2, 5);
  EXPECT_EQ(r.distance, 2u);
  EXPECT_EQ(r.followees, (std::vector<graph::NodeId>{1, 4}));
  r = OracleReachQuery(g, 0, 3, 5);
  EXPECT_EQ(r.distance, 3u);
  EXPECT_EQ(r.followees, (std::vector<graph::NodeId>{1, 4}));
  r = OracleReachQuery(g, 0, 1, 5);
  EXPECT_EQ(r.distance, 1u);
  EXPECT_EQ(r.followees, (std::vector<graph::NodeId>{1}));
}

TEST(OracleRecency, InclusiveWindowAndThreshold) {
  kb::Knowledgebase kb;
  kb::EntityId e = kb.AddEntity("e", kb::EntityCategory::kPerson, {});
  kb.AddSurfaceForm("e", e, 1);
  kb.Finalize();
  kb::ComplementedKnowledgebase ckb(&kb);
  ckb.AddLink(e, kb::Posting{1, 0, 10});
  ckb.AddLink(e, kb::Posting{2, 0, 20});
  ckb.AddLink(e, kb::Posting{3, 0, 30});

  // Window [now - tau, now] is inclusive on both ends.
  EXPECT_EQ(OracleRecentCount(ckb, e, 30, 20), 3u);  // [10, 30]
  EXPECT_EQ(OracleRecentCount(ckb, e, 25, 5), 1u);   // [20, 25]
  EXPECT_EQ(OracleRecentCount(ckb, e, 9, 100), 0u);
  EXPECT_EQ(OracleRecentCount(ckb, e, 1000, 100), 0u);  // window passed

  EXPECT_DOUBLE_EQ(OracleBurstMass(ckb, e, 30, 20, 3), 3.0);
  EXPECT_DOUBLE_EQ(OracleBurstMass(ckb, e, 30, 20, 4), 0.0);  // below theta1

  // The production sliding window agrees on the hand-computed values.
  recency::SlidingWindowRecency window(&ckb, 20, 3);
  EXPECT_EQ(window.RecentCount(e, 30), 3u);
  EXPECT_EQ(window.RecentCount(e, 25), 2u);  // tau = 20: [5, 25]
  EXPECT_DOUBLE_EQ(window.BurstMass(e, 30), 3.0);
}

TEST(OracleWlm, HandComputedRelatedness) {
  kb::Knowledgebase kb;
  kb::EntityId x = kb.AddEntity("x", kb::EntityCategory::kPerson, {});
  kb::EntityId y = kb.AddEntity("y", kb::EntityCategory::kPerson, {});
  kb::EntityId z = kb.AddEntity("z", kb::EntityCategory::kPerson, {});
  for (int i = 0; i < 5; ++i) {
    kb::EntityId a = kb.AddEntity("a" + std::to_string(i),
                                  kb::EntityCategory::kMovieMusic, {});
    kb.AddHyperlink(a, x);
    if (i < 4) kb.AddHyperlink(a, y);
  }
  kb.Finalize();

  EXPECT_EQ(OracleInlinkIntersection(kb, x, y), 4u);
  EXPECT_EQ(OracleInlinkIntersection(kb, x, z), 0u);
  // |A_x| = 5, |A_y| = 4, |A_x ∩ A_y| = 4, N = 8 entities total:
  // rel = 1 - (log 5 - log 4) / (log 8 - log 4).
  const double expected =
      1.0 - (std::log(5.0) - std::log(4.0)) / (std::log(8.0) - std::log(4.0));
  EXPECT_NEAR(OracleWlmRelatedness(kb, x, y), expected, 1e-12);
  EXPECT_EQ(OracleWlmRelatedness(kb, x, x), 1.0);
  EXPECT_EQ(OracleWlmRelatedness(kb, x, z), 0.0);
}

TEST(OracleInfluence, TieBreakAscendingUser) {
  kb::Knowledgebase kb;
  kb::EntityId e = kb.AddEntity("e", kb::EntityCategory::kPerson, {});
  kb::EntityId f = kb.AddEntity("f", kb::EntityCategory::kPerson, {});
  kb.AddSurfaceForm("e", e, 1);
  kb.AddSurfaceForm("f", f, 1);
  kb.Finalize();
  kb::ComplementedKnowledgebase ckb(&kb);
  // Users 7 and 3 tie with two tweets each; user 5 trails with one. A
  // second candidate (with a disjoint community) keeps the tf-idf
  // discriminativeness of e's users positive — in a single-candidate
  // context every influence degenerates to idf = log(1/1) = 0.
  ckb.AddLink(e, kb::Posting{1, 7, 100});
  ckb.AddLink(e, kb::Posting{2, 3, 110});
  ckb.AddLink(e, kb::Posting{3, 5, 120});
  ckb.AddLink(e, kb::Posting{4, 7, 130});
  ckb.AddLink(e, kb::Posting{5, 3, 140});
  ckb.AddLink(f, kb::Posting{6, 9, 150});
  ckb.AddLink(f, kb::Posting{7, 9, 160});

  const std::vector<kb::EntityId> cands = {e, f};
  auto top =
      OracleTopInfluential(ckb, e, cands, 0, social::InfluenceMethod::kTfIdf);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].user, 3u);  // tie with 7 broken by ascending id
  EXPECT_EQ(top[1].user, 7u);
  EXPECT_EQ(top[2].user, 5u);
  EXPECT_DOUBLE_EQ(top[0].influence, top[1].influence);
  EXPECT_LT(top[2].influence, top[1].influence);

  auto top2 =
      OracleTopInfluential(ckb, e, cands, 2, social::InfluenceMethod::kTfIdf);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].user, 3u);
  EXPECT_EQ(top2[1].user, 7u);
}

// Two entities sharing three co-citing articles: one two-member cluster.
struct TwoEntityClusterWorld {
  kb::Knowledgebase kb;
  kb::EntityId x = 0, y = 0;

  TwoEntityClusterWorld() {
    x = kb.AddEntity("x", kb::EntityCategory::kPerson, {});
    y = kb.AddEntity("y", kb::EntityCategory::kPerson, {});
    kb.AddSurfaceForm("xx", x, 1);
    kb.AddSurfaceForm("yy", y, 1);
    for (int i = 0; i < 3; ++i) {
      kb::EntityId a = kb.AddEntity("a" + std::to_string(i),
                                    kb::EntityCategory::kMovieMusic, {});
      kb.AddHyperlink(a, x);
      kb.AddHyperlink(a, y);
    }
    kb.Finalize();
  }
};

TEST(OraclePropagation, LambdaOneKeepsRawMassAndZeroMassShortCircuits) {
  TwoEntityClusterWorld w;
  recency::PropagationNetwork network =
      recency::PropagationNetwork::Build(w.kb, 0.5);
  const uint32_t cluster = network.Cluster(w.x);
  ASSERT_EQ(network.Cluster(w.y), cluster);
  ASSERT_EQ(network.ClusterMembers(cluster).size(), 2u);

  kb::ComplementedKnowledgebase ckb(&w.kb);
  for (int i = 0; i < 4; ++i)
    ckb.AddLink(w.x, kb::Posting{static_cast<kb::TweetId>(i), 0, 100 + i});
  for (int i = 0; i < 8; ++i)
    ckb.AddLink(w.y,
                kb::Posting{static_cast<kb::TweetId>(100 + i), 1, 100 + i});

  OracleRecencySource source(&ckb, /*tau=*/1000, /*theta1=*/1);
  recency::PropagatorOptions po;
  po.lambda = 1.0;  // S^i = S^0 exactly, every iteration
  po.max_iterations = 6;
  po.convergence_epsilon = 0.0;
  std::vector<double> v =
      OraclePropagateCluster(network, source, cluster, /*now=*/200, po);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[network.MemberIndex(w.x)], 4.0);
  EXPECT_DOUBLE_EQ(v[network.MemberIndex(w.y)], 8.0);

  // Empty window: the all-zero initial vector short-circuits.
  std::vector<double> zeros =
      OraclePropagateCluster(network, source, cluster, /*now=*/10'000'000, po);
  EXPECT_EQ(zeros, (std::vector<double>{0.0, 0.0}));
}

// ===========================================================================
// Appendix-D rejection semantics across every reachability backend.
// ===========================================================================

// The core_test Fig.-1 world, extended with every production reachability
// backend plus the oracle, so Appendix-D semantics can be asserted to be
// backend-independent.
class BackendFixture : public ::testing::Test {
 protected:
  BackendFixture() {
    player_ = kb_.AddEntity("player", kb::EntityCategory::kPerson,
                            {"basketball", "nba"});
    expert_ = kb_.AddEntity("expert", kb::EntityCategory::kPerson,
                            {"machine", "learning"});
    bulls_ = kb_.AddEntity("bulls", kb::EntityCategory::kCompany,
                           {"basketball", "team"});
    nba_ = kb_.AddEntity("nba", kb::EntityCategory::kCompany,
                         {"basketball", "league"});
    icml_ = kb_.AddEntity("icml", kb::EntityCategory::kCompany,
                          {"machine", "learning"});
    kb_.AddSurfaceForm("jordan", player_, 100);
    kb_.AddSurfaceForm("jordan", expert_, 10);
    kb_.AddSurfaceForm("bulls", bulls_, 50);
    kb_.AddSurfaceForm("nba", nba_, 50);
    kb_.AddSurfaceForm("icml", icml_, 20);
    for (int i = 0; i < 4; ++i) {
      kb::EntityId a = kb_.AddEntity("art" + std::to_string(i),
                                     kb::EntityCategory::kMovieMusic, {});
      kb_.AddHyperlink(a, player_);
      kb_.AddHyperlink(a, bulls_);
      kb_.AddHyperlink(a, nba_);
    }
    kb_.Finalize();

    ckb_ = std::make_unique<kb::ComplementedKnowledgebase>(&kb_);
    for (int i = 0; i < 10; ++i) {
      ckb_->AddLink(player_,
                    kb::Posting{static_cast<kb::TweetId>(i), 1, i * 100});
    }
    for (int i = 0; i < 4; ++i) {
      ckb_->AddLink(expert_, kb::Posting{static_cast<kb::TweetId>(100 + i),
                                         2, i * 100});
    }

    // 0 follows the basketball hub 1; user 5 follows nobody and belongs
    // to no community, so every reachability score from 5 is 0.
    graph::GraphBuilder b(6);
    b.AddEdge(0, 1);
    b.AddEdge(3, 2);
    b.AddEdge(4, 1);
    b.AddEdge(4, 2);
    graph_ = std::move(b).Build();

    naive_ = std::make_unique<reach::NaiveReachability>(&graph_, 5);
    tc_ = std::make_unique<reach::TransitiveClosureIndex>(
        reach::TransitiveClosureIndex::Build(
            &graph_, 5, reach::TransitiveClosureIndex::Construction::
                            kIncremental));
    two_hop_ = std::make_unique<reach::TwoHopIndex>(
        reach::TwoHopIndex::Build(&graph_, 5));
    pruned_ = std::make_unique<reach::PrunedOnlineSearch>(
        reach::PrunedOnlineSearch::Build(&graph_, 5, 3, /*seed=*/123));
    cached_ = std::make_unique<reach::CachedReachability>(naive_.get(),
                                                          &graph_);
    oracle_ = std::make_unique<OracleReachability>(&graph_, 5);
    network_ = std::make_unique<recency::PropagationNetwork>(
        recency::PropagationNetwork::Build(kb_, 0.3));

    backends_ = {naive_.get(),   tc_.get(),     two_hop_.get(),
                 pruned_.get(),  cached_.get(), oracle_.get()};
  }

  core::EntityLinker MakeLinker(const reach::WeightedReachability* reach,
                                const core::LinkerOptions& options) {
    return core::EntityLinker(&kb_, ckb_.get(), reach, network_.get(),
                              options);
  }

  static core::LinkerOptions RejectOptions() {
    core::LinkerOptions options;
    options.theta1 = 3;
    options.tau = 500;
    options.reject_below_interest_threshold = true;
    return options;
  }

  kb::Knowledgebase kb_;
  std::unique_ptr<kb::ComplementedKnowledgebase> ckb_;
  graph::DirectedGraph graph_;
  std::unique_ptr<reach::NaiveReachability> naive_;
  std::unique_ptr<reach::TransitiveClosureIndex> tc_;
  std::unique_ptr<reach::TwoHopIndex> two_hop_;
  std::unique_ptr<reach::PrunedOnlineSearch> pruned_;
  std::unique_ptr<reach::CachedReachability> cached_;
  std::unique_ptr<OracleReachability> oracle_;
  std::unique_ptr<recency::PropagationNetwork> network_;
  std::vector<const reach::WeightedReachability*> backends_;
  kb::EntityId player_, expert_, bulls_, nba_, icml_;
};

TEST_F(BackendFixture, EmptyCandidateSetIsNotProbableNewEntity) {
  for (const auto* backend : backends_) {
    core::EntityLinker linker = MakeLinker(backend, RejectOptions());
    core::MentionLinkResult r = linker.LinkMention("zzzz", 0, 10000);
    EXPECT_FALSE(r.linked()) << backend->Name();
    // No candidates at all is "nothing to say", not "new entity".
    EXPECT_FALSE(r.probable_new_entity) << backend->Name();
  }
}

TEST_F(BackendFixture, AllCandidatesRejectedFlagsProbableNewEntity) {
  // User 5 follows nobody (and is in no community — a community member
  // would reach itself with R(u, u) = 1), and the query time is far past
  // every posting: interest and recency are 0 for both meanings of
  // "jordan", so each score is at most gamma < beta + gamma and
  // Appendix D suppresses all.
  for (const auto* backend : backends_) {
    for (bool use_index : {true, false}) {
      core::LinkerOptions options = RejectOptions();
      options.use_influential_index = use_index;
      core::EntityLinker linker = MakeLinker(backend, options);
      core::MentionLinkResult r = linker.LinkMention("jordan", 5, 10000);
      EXPECT_FALSE(r.linked()) << backend->Name();
      EXPECT_TRUE(r.probable_new_entity) << backend->Name();
    }
  }
}

TEST_F(BackendFixture, ScoreExactlyAtThresholdIsRejected) {
  // Single candidate with all the popularity mass: score == gamma * 1
  // exactly, and with beta = 0 the Appendix-D cut is score <= gamma —
  // the knife edge must reject (the paper's "at most beta + gamma").
  for (int i = 0; i < 3; ++i) {
    ckb_->AddLink(nba_,
                  kb::Posting{static_cast<kb::TweetId>(200 + i), 3, i * 100});
  }
  core::LinkerOptions options = RejectOptions();
  options.alpha = 0.7;
  options.beta = 0.0;
  options.gamma = 0.3;
  for (const auto* backend : backends_) {
    core::EntityLinker linker = MakeLinker(backend, options);
    core::MentionLinkResult r = linker.LinkMention("nba", 1, 10000);
    EXPECT_FALSE(r.linked()) << backend->Name();
    EXPECT_TRUE(r.probable_new_entity) << backend->Name();

    core::LinkerOptions keep = options;
    keep.reject_below_interest_threshold = false;
    core::EntityLinker accepting = MakeLinker(backend, keep);
    core::MentionLinkResult kept = accepting.LinkMention("nba", 1, 10000);
    ASSERT_TRUE(kept.linked()) << backend->Name();
    EXPECT_DOUBLE_EQ(kept.ranked[0].score, 0.3) << backend->Name();
  }
}

TEST_F(BackendFixture, AcceptedResultsAgreeAcrossBackends) {
  const core::LinkerOptions options = RejectOptions();
  core::EntityLinker reference = MakeLinker(naive_.get(), options);
  core::MentionLinkResult expected = reference.LinkMention("jordan", 0, 10000);
  ASSERT_TRUE(expected.linked());
  EXPECT_EQ(expected.best(), player_);
  ASSERT_EQ(expected.ranked.size(), 1u);  // "expert" rejected
  EXPECT_FALSE(expected.probable_new_entity);

  for (const auto* backend : backends_) {
    core::EntityLinker linker = MakeLinker(backend, options);
    core::MentionLinkResult r = linker.LinkMention("jordan", 0, 10000);
    ASSERT_TRUE(r.linked()) << backend->Name();
    ASSERT_EQ(r.ranked.size(), expected.ranked.size()) << backend->Name();
    EXPECT_EQ(r.ranked[0].entity, expected.ranked[0].entity)
        << backend->Name();
    // The transitive closure stores float scores; every other backend
    // (including the forward-BFS oracle adapter, which feeds the exact
    // same integers into reach::WeightedScore) is bitwise identical.
    const double tol = backend == tc_.get() ? 1e-6 : 0.0;
    EXPECT_NEAR(r.ranked[0].score, expected.ranked[0].score, tol)
        << backend->Name();
    EXPECT_NEAR(r.ranked[0].interest, expected.ranked[0].interest, tol)
        << backend->Name();
  }

  // The fully independent oracle pipeline lands on the same result.
  core::MentionLinkResult oracle_result =
      OracleLinkMention(kb_, *ckb_, *network_, *oracle_, "jordan", 0, 10000,
                        options);
  ASSERT_EQ(oracle_result.ranked.size(), expected.ranked.size());
  EXPECT_EQ(oracle_result.ranked[0].entity, expected.ranked[0].entity);
  EXPECT_NEAR(oracle_result.ranked[0].score, expected.ranked[0].score, 1e-9);
}

// ===========================================================================
// The randomized differential sweep. MEL_DIFF_CASES overrides the total
// case count (split across the shards so ctest -j runs them in parallel).
// ===========================================================================

constexpr uint32_t kNumShards = 4;
constexpr uint64_t kSeedBase = 0xD1FFC0DE00000000ull;

uint32_t TotalDiffCases() {
  if (const char* env = std::getenv("MEL_DIFF_CASES")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<uint32_t>(parsed);
  }
  return 200;
}

void RunShard(uint32_t shard) {
  const uint32_t total = TotalDiffCases();
  const uint32_t count =
      total / kNumShards + (shard < total % kNumShards ? 1 : 0);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t seed = kSeedBase + shard + i * kNumShards;
    DiffReport report = RunDifferentialCase(seed);
    ASSERT_TRUE(report.ok()) << report.Summary();
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(DifferentialShards, Shard0) { RunShard(0); }
TEST(DifferentialShards, Shard1) { RunShard(1); }
TEST(DifferentialShards, Shard2) { RunShard(2); }
TEST(DifferentialShards, Shard3) { RunShard(3); }

// Mutation sweep: the same differential harness with interleaved graph
// mutations and tweet ingestion, so every case also replays its event
// stream through reach::ReachMaintainer and exact-checks the patched
// indexes against from-scratch rebuilds at randomized checkpoints
// (CheckIncrementalMaintenance). Queries are trimmed to keep the per-case
// budget on the incremental checks. Shares the MEL_DIFF_CASES override.
constexpr uint64_t kMutationSeedBase = 0xD1FFC0DE80000000ull;

void RunMutationShard(uint32_t shard) {
  const uint32_t total = TotalDiffCases();
  const uint32_t count =
      total / kNumShards + (shard < total % kNumShards ? 1 : 0);
  RandomWorkloadOptions wopts;
  wopts.num_queries = 8;
  wopts.num_feedback_events = 4;
  wopts.num_mutation_events = 16;
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t seed = kMutationSeedBase + shard + i * kNumShards;
    DiffReport report = RunDifferentialCase(seed, wopts);
    ASSERT_TRUE(report.ok()) << report.Summary();
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(MutationSweep, Shard0) { RunMutationShard(0); }
TEST(MutationSweep, Shard1) { RunMutationShard(1); }
TEST(MutationSweep, Shard2) { RunMutationShard(2); }
TEST(MutationSweep, Shard3) { RunMutationShard(3); }

TEST(DifferentialShards, WorkloadIsBitReproducible) {
  RandomWorkload a = MakeRandomWorkload(0xFEEDFACEull);
  RandomWorkload b = MakeRandomWorkload(0xFEEDFACEull);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].mention, b.queries[i].mention);
    EXPECT_EQ(a.queries[i].user, b.queries[i].user);
    EXPECT_EQ(a.queries[i].now, b.queries[i].now);
  }
  EXPECT_EQ(a.linker.alpha, b.linker.alpha);
  EXPECT_EQ(a.linker.tau, b.linker.tau);
  EXPECT_EQ(a.complement_seed, b.complement_seed);
  EXPECT_EQ(a.feedback.size(), b.feedback.size());

  RandomWorkload c = MakeRandomWorkload(0xFEEDFACFull);
  EXPECT_NE(a.linker.alpha, c.linker.alpha);  // streams actually differ
}

// Mutation events draw from their own DeriveSeed stream: enabling them
// must leave every pre-existing workload field bit-identical (pre-PR
// seeds replay unchanged), and the default workload carries none.
TEST(DifferentialShards, MutationEventsDoNotPerturbOtherStreams) {
  RandomWorkload plain = MakeRandomWorkload(0xFEEDFACEull);
  EXPECT_TRUE(plain.mutations.empty());

  RandomWorkloadOptions mo;
  mo.num_mutation_events = 12;
  RandomWorkload with = MakeRandomWorkload(0xFEEDFACEull, mo);
  ASSERT_EQ(with.mutations.size(), 12u);

  ASSERT_EQ(plain.queries.size(), with.queries.size());
  for (size_t i = 0; i < plain.queries.size(); ++i) {
    EXPECT_EQ(plain.queries[i].mention, with.queries[i].mention);
    EXPECT_EQ(plain.queries[i].user, with.queries[i].user);
    EXPECT_EQ(plain.queries[i].now, with.queries[i].now);
  }
  ASSERT_EQ(plain.feedback.size(), with.feedback.size());
  for (size_t i = 0; i < plain.feedback.size(); ++i) {
    EXPECT_EQ(plain.feedback[i].entity, with.feedback[i].entity);
    EXPECT_EQ(plain.feedback[i].tweet.id, with.feedback[i].tweet.id);
  }
  EXPECT_EQ(plain.linker.alpha, with.linker.alpha);
  EXPECT_EQ(plain.linker.tau, with.linker.tau);
  EXPECT_EQ(plain.complement_seed, with.complement_seed);
  EXPECT_EQ(plain.max_hops, with.max_hops);

  // Every edge event is effective at its position: replaying the stream
  // against a live graph copy never no-ops.
  graph::DirectedGraph live = with.world.social.graph;
  for (const MutationEvent& ev : with.mutations) {
    if (ev.kind == MutationEvent::Kind::kAddEdge) {
      EXPECT_TRUE(live.InsertEdge(ev.u, ev.v));
    } else if (ev.kind == MutationEvent::Kind::kRemoveEdge) {
      EXPECT_TRUE(live.EraseEdge(ev.u, ev.v));
    } else {
      EXPECT_LT(ev.entity, with.world.kb().num_entities());
    }
  }
}

TEST(DifferentialShards, ExportsMetrics) {
  auto& reg = metrics::Registry();
  metrics::Counter* cases = reg.GetCounter("testing.diff.cases_total");
  metrics::Counter* checks = reg.GetCounter("testing.diff.checks_total");
  metrics::Counter* divergences =
      reg.GetCounter("testing.diff.divergences_total");
  const uint64_t cases_before = cases->Value();
  const uint64_t checks_before = checks->Value();
  const uint64_t divergences_before = divergences->Value();

  RandomWorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.num_feedback_events = 2;
  DiffReport report = RunDifferentialCase(0xC0FFEEull, wopts);
  EXPECT_TRUE(report.ok()) << report.Summary();

  EXPECT_EQ(cases->Value(), cases_before + 1);
  EXPECT_EQ(checks->Value(), checks_before + report.checks);
  EXPECT_EQ(divergences->Value(), divergences_before);  // the case passed
}

// ===========================================================================
// Concurrency: ConfirmLink epoch bumps racing against readers that score
// through the recency cache. Run under TSan by scripts/verify.sh.
// ===========================================================================

// Every value the cache may legally serve for a reader that observed
// count c_before before the call and c_after after it is the propagation
// of SOME count in [c_before, c_after]. A stale Eq.-11 vector (cache not
// invalidated on an epoch bump) propagates an older, smaller count and
// violates the lower bound.
TEST(DifferentialConcurrency, RecencyCacheNeverServesStaleEpoch) {
  constexpr uint32_t kSeedPostings = 4;
  constexpr uint32_t kWriters = 4;
  constexpr uint32_t kWritesPerThread = 250;
  constexpr uint32_t kReaders = 4;
  constexpr kb::Timestamp kNow = 500000;
  constexpr kb::Timestamp kTau = 1 << 20;

  TwoEntityClusterWorld w;
  recency::PropagationNetwork network =
      recency::PropagationNetwork::Build(w.kb, 0.5);
  const uint32_t cluster = network.Cluster(w.x);
  ASSERT_EQ(network.Cluster(w.y), cluster);
  const uint32_t idx_x = network.MemberIndex(w.x);

  recency::PropagatorOptions po;
  po.lambda = 0.5;
  po.max_iterations = 20;
  po.convergence_epsilon = 0.0;
  po.enable_cache = true;

  auto seed_ckb = [&](kb::ComplementedKnowledgebase* ckb) {
    for (uint32_t i = 0; i < kSeedPostings; ++i)
      ckb->AddLink(w.x, kb::Posting{i, 0, 1000 + i});
    for (uint32_t i = 0; i < 8; ++i)
      ckb->AddLink(w.y, kb::Posting{100 + i, 1, 1000 + i});
  };

  // Expected values, one per possible count of x-postings, computed by
  // the production power iteration itself (bitwise-reproducible: same
  // masses, same code). y's mass stays fixed at 8 throughout.
  const uint32_t max_count = kSeedPostings + kWriters * kWritesPerThread;
  std::vector<double> expected;
  expected.reserve(max_count - kSeedPostings + 1);
  {
    kb::ComplementedKnowledgebase ref_ckb(&w.kb);
    seed_ckb(&ref_ckb);
    recency::SlidingWindowRecency ref_window(&ref_ckb, kTau, /*theta1=*/1);
    recency::PropagatorOptions ref_po = po;
    ref_po.enable_cache = false;
    recency::RecencyPropagator ref_prop(&network, &ref_window, ref_po);
    for (uint32_t c = kSeedPostings; c <= max_count; ++c) {
      expected.push_back(ref_prop.PropagateCluster(cluster, kNow)[idx_x]);
      ref_ckb.AddLink(w.x, kb::Posting{1000000 + c, 0,
                                       static_cast<kb::Timestamp>(2000 + c)});
    }
    // Monotone in the mass, so the range check below is meaningful.
    for (size_t i = 1; i < expected.size(); ++i)
      ASSERT_GT(expected[i], expected[i - 1]);
  }

  kb::ComplementedKnowledgebase ckb(&w.kb);
  seed_ckb(&ckb);
  recency::SlidingWindowRecency window(&ckb, kTau, /*theta1=*/1);
  SynchronizedRecencySource sync(&window);
  recency::RecencyPropagator prop(&network, &sync, po);

  std::atomic<uint32_t> writers_done{0};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> reads{0};
  // Advanced only under the exclusive lock so posting times are strictly
  // increasing (the posting lists never go dirty, and the monotone-count
  // invariant holds).
  uint64_t write_seq = 0;

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (uint32_t i = 0; i < kWritesPerThread; ++i) {
        sync.Mutate([&] {
          const uint64_t seq = write_seq++;
          ckb.AddLink(w.x,
                      kb::Posting{static_cast<kb::TweetId>(10000 + seq), 0,
                                  static_cast<kb::Timestamp>(2000 + seq)});
        });
      }
      writers_done.fetch_add(1);
    });
  }
  for (uint32_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      do {
        const uint32_t before = sync.RecentCount(w.x, kNow);
        const double served = prop.PropagateCluster(cluster, kNow)[idx_x];
        const uint32_t after = sync.RecentCount(w.x, kNow);
        bool found = false;
        for (uint32_t c = before; c <= after && !found; ++c) {
          found = expected[c - kSeedPostings] == served;
        }
        if (!found) violations.fetch_add(1);
        reads.fetch_add(1);
      } while (writers_done.load() < kWriters);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(ckb.RecentTweetCount(w.x, kNow, kTau), max_count);
  // A fresh read after the last write serves the final value exactly.
  EXPECT_EQ(prop.PropagateCluster(cluster, kNow)[idx_x], expected.back());
}

// Whole-linker variant: LinkMention under a reader lock races ConfirmLink
// under the writer lock; afterwards the feedback is fully absorbed.
TEST(DifferentialConcurrency, LinkerAbsorbsFeedbackUnderSharedLock) {
  constexpr uint32_t kConfirms = 200;
  constexpr uint32_t kReaders = 3;
  constexpr kb::Timestamp kNow = 100000;

  TwoEntityClusterWorld w;
  recency::PropagationNetwork network =
      recency::PropagationNetwork::Build(w.kb, 0.5);
  graph::GraphBuilder b(3);
  b.AddEdge(2, 0);
  graph::DirectedGraph graph = std::move(b).Build();
  reach::NaiveReachability reach(&graph, 5);

  kb::ComplementedKnowledgebase ckb(&w.kb);
  for (uint32_t i = 0; i < 5; ++i)
    ckb.AddLink(w.x, kb::Posting{i, 0, 1000 + i});

  core::LinkerOptions options;
  options.theta1 = 1;
  options.tau = 1 << 20;
  // The influential-user index is only safe between mutations (the WarmUp
  // contract); this test mutates continuously, so it stays off and the
  // online influence path runs instead.
  options.use_influential_index = false;
  core::EntityLinker linker(&w.kb, &ckb, &reach, &network, options);

  std::shared_mutex mu;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> unlinked{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (uint32_t i = 0; i < kConfirms; ++i) {
      std::unique_lock lock(mu);
      kb::Tweet tweet;
      tweet.id = 1000 + i;
      tweet.user = 0;
      tweet.time = static_cast<kb::Timestamp>(2000 + i);
      linker.ConfirmLink(w.x, tweet);
    }
    done.store(true);
  });
  for (uint32_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      do {
        std::shared_lock lock(mu);
        core::MentionLinkResult r = linker.LinkMention("xx", 2, kNow);
        if (!r.linked() || r.best() != w.x) unlinked.fetch_add(1);
        reads.fetch_add(1);
      } while (!done.load());
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(unlinked.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(ckb.LinkedTweetCount(w.x), 5 + kConfirms);
  core::MentionLinkResult settled = linker.LinkMention("xx", 2, kNow);
  ASSERT_TRUE(settled.linked());
  EXPECT_EQ(settled.best(), w.x);
}

}  // namespace
}  // namespace mel::testing

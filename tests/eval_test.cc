#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/runner.h"

namespace mel::eval {
namespace {

TEST(MetricsTest, EmptyOutcomes) {
  Accuracy acc = Summarize({});
  EXPECT_EQ(acc.mentions, 0u);
  EXPECT_DOUBLE_EQ(acc.MentionAccuracy(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TweetAccuracy(), 0.0);
}

TEST(MetricsTest, MentionAndTweetAccuracy) {
  std::vector<MentionOutcome> outcomes = {
      {0, 1, 1},   // tweet 0: correct
      {0, 2, 2},   // tweet 0: correct
      {1, 3, 4},   // tweet 1: wrong
      {1, 5, 5},   // tweet 1: one right, one wrong -> tweet wrong
      {2, 6, 6},   // tweet 2: correct
  };
  Accuracy acc = Summarize(outcomes);
  EXPECT_EQ(acc.mentions, 5u);
  EXPECT_EQ(acc.correct_mentions, 4u);
  EXPECT_EQ(acc.tweets, 3u);
  EXPECT_EQ(acc.correct_tweets, 2u);
  EXPECT_DOUBLE_EQ(acc.MentionAccuracy(), 0.8);
  EXPECT_NEAR(acc.TweetAccuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(acc.ToString().empty());
}

TEST(MetricsTest, MentionAccuracyAlwaysAtLeastTweetAccuracy) {
  // The paper observes mention accuracy >= tweet accuracy; it holds by
  // construction (a correct tweet needs all mentions correct).
  std::vector<MentionOutcome> outcomes;
  for (uint32_t t = 0; t < 20; ++t) {
    for (uint32_t m = 0; m < 3; ++m) {
      outcomes.push_back({t, m, (t * 3 + m) % 4 == 0 ? m + 1 : m});
    }
  }
  Accuracy acc = Summarize(outcomes);
  EXPECT_GE(acc.MentionAccuracy(), acc.TweetAccuracy());
}

TEST(MetricsTest, InvalidPredictionNeverCorrect) {
  std::vector<MentionOutcome> outcomes = {
      {0, kb::kInvalidEntity, kb::kInvalidEntity}};
  Accuracy acc = Summarize(outcomes);
  EXPECT_EQ(acc.correct_mentions, 0u);
}

TEST(EvalRunTest, PerMentionAndPerTweetTiming) {
  EvalRun run;
  run.outcomes = {{0, 1, 1}, {0, 2, 2}, {1, 3, 3}};
  run.num_tweets = 2;
  run.total_nanos = 6000;
  EXPECT_DOUBLE_EQ(run.NanosPerMention(), 2000.0);
  EXPECT_DOUBLE_EQ(run.NanosPerTweet(), 3000.0);
}

TEST(BootstrapTest, DegenerateDistributionsHaveTightIntervals) {
  std::vector<MentionOutcome> all_right, all_wrong;
  for (uint32_t i = 0; i < 50; ++i) {
    all_right.push_back({i, 1, 1});
    all_wrong.push_back({i, 1, 2});
  }
  auto right = BootstrapMentionAccuracy(all_right, 500, 0.95, 1);
  EXPECT_DOUBLE_EQ(right.mean, 1.0);
  EXPECT_DOUBLE_EQ(right.lo, 1.0);
  EXPECT_DOUBLE_EQ(right.hi, 1.0);
  auto wrong = BootstrapMentionAccuracy(all_wrong, 500, 0.95, 1);
  EXPECT_DOUBLE_EQ(wrong.mean, 0.0);
}

TEST(BootstrapTest, IntervalCoversTrueAccuracy) {
  std::vector<MentionOutcome> outcomes;
  for (uint32_t i = 0; i < 200; ++i) {
    outcomes.push_back({i, 1, i % 4 == 0 ? 1u : 2u});  // accuracy 0.25
  }
  auto ci = BootstrapMentionAccuracy(outcomes, 2000, 0.95, 7);
  EXPECT_LT(ci.lo, 0.25);
  EXPECT_GT(ci.hi, 0.25);
  EXPECT_NEAR(ci.mean, 0.25, 0.02);
  EXPECT_GT(ci.hi - ci.lo, 0.0);
}

TEST(BootstrapTest, PairedDifferenceDetectsDominance) {
  // System A correct on 80%, system B on 50%, same mentions.
  std::vector<MentionOutcome> a, b;
  for (uint32_t i = 0; i < 300; ++i) {
    a.push_back({i, 1, i % 5 != 0 ? 1u : 2u});
    b.push_back({i, 1, i % 2 == 0 ? 1u : 2u});
  }
  auto diff = BootstrapAccuracyDifference(a, b, 2000, 0.95, 9);
  EXPECT_NEAR(diff.mean, 0.3, 0.05);
  EXPECT_TRUE(diff.ExcludesZero());

  // A vs itself: difference exactly zero.
  auto self = BootstrapAccuracyDifference(a, a, 500, 0.95, 9);
  EXPECT_DOUBLE_EQ(self.mean, 0.0);
  EXPECT_FALSE(self.ExcludesZero());
}

TEST(AlignTest, MatchesBySurfaceInOrder) {
  core::TweetLinkResult prediction;
  core::MentionLinkResult m1;
  m1.surface = "jordan";
  m1.ranked.push_back(core::ScoredEntity{7, 1, 0, 0, 0});
  core::MentionLinkResult m2;
  m2.surface = "jordan";
  m2.ranked.push_back(core::ScoredEntity{8, 1, 0, 0, 0});
  prediction.mentions = {m1, m2};

  std::vector<gen::LabeledMention> labels = {{"jordan", 7}, {"jordan", 8}};
  auto aligned = AlignPredictions(prediction, labels);
  ASSERT_EQ(aligned.size(), 2u);
  EXPECT_EQ(aligned[0], 7u);  // first prediction consumed by first label
  EXPECT_EQ(aligned[1], 8u);
}

TEST(AlignTest, MissingPredictionYieldsInvalid) {
  core::TweetLinkResult prediction;  // nothing detected
  std::vector<gen::LabeledMention> labels = {{"jordan", 7}};
  auto aligned = AlignPredictions(prediction, labels);
  ASSERT_EQ(aligned.size(), 1u);
  EXPECT_EQ(aligned[0], kb::kInvalidEntity);
}

TEST(AlignTest, SurfaceMismatchNotConsumed) {
  core::TweetLinkResult prediction;
  core::MentionLinkResult m;
  m.surface = "bulls";
  m.ranked.push_back(core::ScoredEntity{3, 1, 0, 0, 0});
  prediction.mentions = {m};
  std::vector<gen::LabeledMention> labels = {{"jordan", 7}, {"bulls", 3}};
  auto aligned = AlignPredictions(prediction, labels);
  EXPECT_EQ(aligned[0], kb::kInvalidEntity);
  EXPECT_EQ(aligned[1], 3u);
}

}  // namespace
}  // namespace mel::eval

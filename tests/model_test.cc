// Model-based randomized tests: each component is driven with random
// operation sequences and compared against a brute-force reference
// implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "kb/wlm.h"
#include "text/gazetteer.h"
#include "util/random.h"

namespace mel {
namespace {

// ------------------------------------------------ complemented KB model

TEST(CkbModelTest, RandomOpsMatchBruteForce) {
  kb::Knowledgebase kbase;
  const uint32_t kEntities = 8;
  for (uint32_t e = 0; e < kEntities; ++e) {
    kbase.AddEntity("e" + std::to_string(e), kb::EntityCategory::kPerson,
                    {});
  }
  kbase.Finalize();

  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    kb::ComplementedKnowledgebase ckb(&kbase);
    // Reference: plain vector of (entity, posting).
    std::vector<std::pair<kb::EntityId, kb::Posting>> model;

    for (int op = 0; op < 2000; ++op) {
      if (rng.UniformDouble() < 0.7 || model.empty()) {
        kb::Posting p;
        p.tweet = static_cast<kb::TweetId>(op);
        p.user = static_cast<kb::UserId>(rng.Uniform(20));
        p.time = static_cast<kb::Timestamp>(rng.Uniform(100000));
        auto e = static_cast<kb::EntityId>(rng.Uniform(kEntities));
        ckb.AddLink(e, p);
        model.emplace_back(e, p);
      } else {
        // Random query, checked against the model.
        auto e = static_cast<kb::EntityId>(rng.Uniform(kEntities));
        auto u = static_cast<kb::UserId>(rng.Uniform(20));
        kb::Timestamp now =
            static_cast<kb::Timestamp>(rng.Uniform(120000));
        kb::Timestamp tau =
            1 + static_cast<kb::Timestamp>(rng.Uniform(50000));

        uint32_t linked = 0, by_user = 0, recent = 0;
        std::set<kb::UserId> community;
        for (const auto& [me, mp] : model) {
          if (me != e) continue;
          ++linked;
          community.insert(mp.user);
          if (mp.user == u) ++by_user;
          if (mp.time >= now - tau && mp.time <= now) ++recent;
        }
        ASSERT_EQ(ckb.LinkedTweetCount(e), linked) << "seed " << seed;
        ASSERT_EQ(ckb.UserTweetCount(e, u), by_user) << "seed " << seed;
        ASSERT_EQ(ckb.RecentTweetCount(e, now, tau), recent)
            << "seed " << seed << " now=" << now << " tau=" << tau;
        ASSERT_EQ(ckb.Community(e).size(), community.size());
      }
    }
    ASSERT_EQ(ckb.TotalLinks(), model.size());
  }
}

// ------------------------------------------------------ gazetteer model

// Brute-force longest-cover: at each position try the longest dictionary
// match.
std::vector<std::string> ReferenceLongestCover(
    const std::vector<std::string>& tokens,
    const std::set<std::vector<std::string>>& dictionary,
    size_t max_len) {
  std::vector<std::string> matches;
  size_t i = 0;
  while (i < tokens.size()) {
    size_t best = 0;
    for (size_t len = std::min(max_len, tokens.size() - i); len >= 1;
         --len) {
      std::vector<std::string> span(tokens.begin() + i,
                                    tokens.begin() + i + len);
      if (dictionary.contains(span)) {
        best = len;
        break;
      }
    }
    if (best > 0) {
      std::string joined;
      for (size_t k = 0; k < best; ++k) {
        if (k) joined += ' ';
        joined += tokens[i + k];
      }
      matches.push_back(joined);
      i += best;
    } else {
      ++i;
    }
  }
  return matches;
}

TEST(GazetteerModelTest, RandomDictionariesMatchBruteForce) {
  const std::vector<std::string> vocab = {"aa", "bb", "cc", "dd", "ee"};
  for (uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    Rng rng(seed);
    text::Gazetteer gazetteer;
    std::set<std::vector<std::string>> dictionary;
    size_t max_len = 0;
    for (int d = 0; d < 12; ++d) {
      size_t len = 1 + rng.Uniform(3);
      std::vector<std::string> form;
      for (size_t k = 0; k < len; ++k) {
        form.push_back(vocab[rng.Uniform(vocab.size())]);
      }
      if (dictionary.insert(form).second) {
        std::string joined;
        for (size_t k = 0; k < form.size(); ++k) {
          if (k) joined += ' ';
          joined += form[k];
        }
        gazetteer.AddSurfaceForm(joined, d);
        max_len = std::max(max_len, len);
      }
    }
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::string> tokens;
      size_t n = rng.Uniform(15);
      for (size_t k = 0; k < n; ++k) {
        tokens.push_back(vocab[rng.Uniform(vocab.size())]);
      }
      std::string
          joined;
      for (size_t k = 0; k < tokens.size(); ++k) {
        if (k) joined += ' ';
        joined += tokens[k];
      }
      auto detected = gazetteer.Detect(joined);
      auto expected = ReferenceLongestCover(tokens, dictionary, max_len);
      ASSERT_EQ(detected.size(), expected.size())
          << "seed " << seed << " text '" << joined << "'";
      for (size_t k = 0; k < expected.size(); ++k) {
        ASSERT_EQ(detected[k].surface, expected[k])
            << "seed " << seed << " text '" << joined << "'";
      }
    }
  }
}

// ------------------------------------------------------------ WLM model

TEST(WlmModelTest, MatchesDirectFormula) {
  for (uint64_t seed : {21ULL, 22ULL}) {
    Rng rng(seed);
    kb::Knowledgebase kbase;
    const uint32_t n = 40;
    for (uint32_t e = 0; e < n; ++e) {
      kbase.AddEntity("e" + std::to_string(e),
                      kb::EntityCategory::kPerson, {});
    }
    std::vector<std::set<kb::EntityId>> inlinks(n);
    for (int i = 0; i < 400; ++i) {
      auto from = static_cast<kb::EntityId>(rng.Uniform(n));
      auto to = static_cast<kb::EntityId>(rng.Uniform(n));
      if (from == to) continue;
      kbase.AddHyperlink(from, to);
      inlinks[to].insert(from);
    }
    kbase.Finalize();
    kb::WlmRelatedness wlm(&kbase);

    for (kb::EntityId a = 0; a < n; ++a) {
      for (kb::EntityId b = a + 1; b < n; ++b) {
        std::vector<kb::EntityId> common;
        std::set_intersection(inlinks[a].begin(), inlinks[a].end(),
                              inlinks[b].begin(), inlinks[b].end(),
                              std::back_inserter(common));
        double expected = 0;
        double na = static_cast<double>(inlinks[a].size());
        double nb = static_cast<double>(inlinks[b].size());
        if (na > 0 && nb > 0 && !common.empty()) {
          double denom = std::log(n) - std::log(std::min(na, nb));
          double rel = denom <= 0
                           ? 1.0
                           : 1.0 - (std::log(std::max(na, nb)) -
                                    std::log(common.size())) /
                                       denom;
          expected = std::clamp(rel, 0.0, 1.0);
        }
        ASSERT_NEAR(wlm.Relatedness(a, b), expected, 1e-12)
            << "seed " << seed << " pair " << a << "," << b;
        ASSERT_EQ(wlm.InlinkIntersection(a, b), common.size());
      }
    }
  }
}

}  // namespace
}  // namespace mel

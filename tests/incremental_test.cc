// Tests of the incremental graph-mutation maintenance layer: the
// DirectedGraph edge-splice API driven through reach::ReachMaintainer,
// hand-computed Algorithm-1 (Eq. 4) values after single insertions and
// deletions on the 6-node diamond fixture, rejected-delta edge cases,
// the lazy stamped-ring retirement of the BurstTracker, a pinned
// mutation-event stream (seed regression), and a TSan stress test racing
// edge mutations against pooled ScoreOnly readers under a shared lock
// (scripts/verify.sh runs it under TSan).

#include "reach/reach_maintainer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/graph_builder.h"
#include "graph/mutation.h"
#include "reach/distance_label_index.h"
#include "reach/naive_reachability.h"
#include "reach/pruned_online_search.h"
#include "reach/reach_cache.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "recency/burst_tracker.h"
#include "testing/random_workload.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mel {
namespace {

constexpr uint32_t kMaxHops = 5;

// 0 -> 1 -> 2 -> 3, 0 -> 4 -> 2; node 5 isolated.
graph::DirectedGraph MakeDiamondGraph() {
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 4);
  b.AddEdge(4, 2);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

/// Every production backend built over one live graph, registered with a
/// maintainer in the documented order (cache strictly after its base).
struct Rig {
  graph::DirectedGraph g;
  reach::NaiveReachability naive;
  reach::TransitiveClosureIndex tc;
  reach::TwoHopIndex two_hop;
  reach::DistanceLabelIndex dli;
  reach::PrunedOnlineSearch pruned;
  reach::CachedReachability cached;
  reach::ReachMaintainer maintainer;

  explicit Rig(graph::DirectedGraph graph, uint32_t max_hops = kMaxHops)
      : g(std::move(graph)),
        naive(&g, max_hops),
        tc(reach::TransitiveClosureIndex::Build(
            &g, max_hops,
            reach::TransitiveClosureIndex::Construction::kIncremental)),
        two_hop(reach::TwoHopIndex::Build(&g, max_hops)),
        dli(reach::DistanceLabelIndex::Build(&g, max_hops)),
        pruned(reach::PrunedOnlineSearch::Build(&g, max_hops, 3,
                                                /*seed=*/42)),
        cached(&naive, &g),
        maintainer(&g, max_hops) {
    maintainer.Register(&naive);
    maintainer.Register(&tc);
    maintainer.Register(&two_hop);
    maintainer.Register(&dli);
    maintainer.Register(&pruned);
    maintainer.Register(&cached);
  }

  std::vector<std::pair<const char*, const reach::WeightedReachability*>>
  backends() const {
    return {{"naive", &naive},     {"tc", &tc},
            {"two-hop", &two_hop}, {"dist-label", &dli},
            {"pruned", &pruned},   {"cached", &cached}};
  }

  reach::ReachMaintainer::ApplyResult Apply(graph::EdgeDelta::Op op,
                                            graph::NodeId u,
                                            graph::NodeId v) {
    graph::EdgeDelta delta;
    delta.op = op;
    delta.u = u;
    delta.v = v;
    return maintainer.ApplyDelta(delta);
  }
};

// Registration-order indexes into ApplyResult::results.
enum BackendIndex : size_t {
  kNaiveIdx = 0,
  kTcIdx,
  kTwoHopIdx,
  kDliIdx,
  kPrunedIdx,
  kCachedIdx,
};

void ExpectQuery(const Rig& rig, graph::NodeId u, graph::NodeId v,
                 uint32_t distance,
                 const std::vector<graph::NodeId>& followees,
                 double score) {
  for (const auto& [name, backend] : rig.backends()) {
    const auto q = backend->Query(u, v);
    EXPECT_EQ(q.distance, distance) << name << " " << u << "->" << v;
    EXPECT_EQ(q.followees, followees) << name << " " << u << "->" << v;
    const auto cq = backend->CountQuery(u, v);
    EXPECT_EQ(cq.distance, distance) << name << " " << u << "->" << v;
    EXPECT_EQ(cq.followee_count, followees.size())
        << name << " " << u << "->" << v;
    // The transitive closure stores float scores; everything else feeds
    // exact integers into WeightedScoreFromCount and is bit-identical.
    const double tol = backend == &rig.tc ? 1e-6 : 0.0;
    EXPECT_NEAR(backend->Score(u, v), score, tol)
        << name << " " << u << "->" << v;
    EXPECT_EQ(backend->ScoreOnly(u, v), backend->Score(u, v))
        << name << " " << u << "->" << v;
  }
}

// ------------------------------------------------- hand-computed patches

TEST(IncrementalHandComputed, InsertShortcutShortensDistances) {
  Rig rig(MakeDiamondGraph());
  // Pre-insert: d(0, 3) = 3 through both followees {1, 4}.
  ExpectQuery(rig, 0, 3, 3, {1, 4}, (1.0 / 3.0) * (2.0 / 2.0));

  const auto applied = rig.Apply(graph::EdgeDelta::Op::kInsert, 1, 3);
  ASSERT_TRUE(applied.applied);
  ASSERT_EQ(applied.results.size(), 6u);
  EXPECT_EQ(applied.results[kNaiveIdx],
            reach::MutationResult::kUnaffected);
  EXPECT_EQ(applied.results[kTcIdx], reach::MutationResult::kPatched);
  EXPECT_EQ(applied.results[kTwoHopIdx], reach::MutationResult::kPatched);
  EXPECT_EQ(applied.results[kDliIdx], reach::MutationResult::kPatched);
  EXPECT_EQ(applied.results[kPrunedIdx], reach::MutationResult::kRebuilt);
  EXPECT_EQ(applied.results[kCachedIdx], reach::MutationResult::kPatched);

  // d(1, 3) collapses to the direct edge; R = 1 by the followee
  // convention.
  ExpectQuery(rig, 1, 3, 1, {3}, 1.0);
  // d(0, 3) = 2 now runs through followee 1 alone: (1/2) * (1/2).
  ExpectQuery(rig, 0, 3, 2, {1}, 0.25);
  // Untouched pair: d(0, 2) = 2 through {1, 4} keeps (1/2) * (2/2).
  ExpectQuery(rig, 0, 2, 2, {1, 4}, 0.5);
}

TEST(IncrementalHandComputed, EraseReroutesAndDisconnects) {
  Rig rig(MakeDiamondGraph());
  const auto applied = rig.Apply(graph::EdgeDelta::Op::kErase, 4, 2);
  ASSERT_TRUE(applied.applied);
  ASSERT_EQ(applied.results.size(), 6u);
  EXPECT_EQ(applied.results[kTcIdx], reach::MutationResult::kPatched);
  // Deletion breaks the pruned-labeling cover (a new shortest path was
  // non-shortest before and never got labeled), so the label indexes
  // rebuild rather than patch.
  EXPECT_EQ(applied.results[kTwoHopIdx], reach::MutationResult::kRebuilt);
  EXPECT_EQ(applied.results[kDliIdx], reach::MutationResult::kRebuilt);

  // d(0, 2) = 2 now only through followee 1: (1/2) * (1/2).
  ExpectQuery(rig, 0, 2, 2, {1}, 0.25);
  // d(0, 3) = 3 through followee 1 alone: (1/3) * (1/2).
  ExpectQuery(rig, 0, 3, 3, {1}, 1.0 / 6.0);
  // Node 4 lost its only followee: nothing is reachable but itself.
  ExpectQuery(rig, 4, 2, reach::kUnreachableDistance, {}, 0.0);
  ExpectQuery(rig, 4, 4, 0, {}, 1.0);
}

TEST(IncrementalHandComputed, InsertConnectsIsolatedNode) {
  Rig rig(MakeDiamondGraph());
  ExpectQuery(rig, 5, 0, reach::kUnreachableDistance, {}, 0.0);

  ASSERT_TRUE(rig.Apply(graph::EdgeDelta::Op::kInsert, 5, 0).applied);
  ExpectQuery(rig, 5, 0, 1, {0}, 1.0);
  // 5 -> 0 -> 1 -> 2 -> 3 with the single followee 0: (1/4) * (1/1).
  ExpectQuery(rig, 5, 3, 4, {0}, 0.25);
  // Nothing reaches 5: the edge is directed.
  ExpectQuery(rig, 0, 5, reach::kUnreachableDistance, {}, 0.0);
}

// ------------------------------------------------------ rejected deltas

TEST(IncrementalEdgeCases, EmptyGraphRejectsEveryDelta) {
  Rig rig(graph::DirectedGraph{});
  EXPECT_FALSE(rig.Apply(graph::EdgeDelta::Op::kInsert, 0, 1).applied);
  EXPECT_FALSE(rig.Apply(graph::EdgeDelta::Op::kErase, 0, 1).applied);
  EXPECT_EQ(rig.g.version(), 0u);
}

TEST(IncrementalEdgeCases, SelfLoopDuplicateAndMissingAreNoOps) {
  Rig rig(MakeDiamondGraph());
  EXPECT_FALSE(
      rig.Apply(graph::EdgeDelta::Op::kInsert, 2, 2).applied);  // self-loop
  EXPECT_FALSE(
      rig.Apply(graph::EdgeDelta::Op::kErase, 2, 2).applied);  // self-loop
  EXPECT_FALSE(
      rig.Apply(graph::EdgeDelta::Op::kInsert, 0, 1).applied);  // duplicate
  EXPECT_FALSE(
      rig.Apply(graph::EdgeDelta::Op::kErase, 3, 0).applied);  // missing
  EXPECT_FALSE(
      rig.Apply(graph::EdgeDelta::Op::kInsert, 0, 99).applied);  // range
  EXPECT_EQ(rig.g.version(), 0u);
  // A rejected delta leaves every index untouched.
  ExpectQuery(rig, 0, 2, 2, {1, 4}, 0.5);
}

TEST(IncrementalEdgeCases, VersionCountsAppliedDeltasOnly) {
  Rig rig(MakeDiamondGraph());
  EXPECT_EQ(rig.g.version(), 0u);
  ASSERT_TRUE(rig.Apply(graph::EdgeDelta::Op::kInsert, 1, 3).applied);
  EXPECT_EQ(rig.g.version(), 1u);
  EXPECT_FALSE(rig.Apply(graph::EdgeDelta::Op::kInsert, 1, 3).applied);
  EXPECT_EQ(rig.g.version(), 1u);
  ASSERT_TRUE(rig.Apply(graph::EdgeDelta::Op::kErase, 1, 3).applied);
  EXPECT_EQ(rig.g.version(), 2u);
}

// ------------------------------------------- burst-ring lazy retirement

TEST(IncrementalBurstTracker, LazySlotReclaimDropsExpiredCounts) {
  // tau = 160, 16 buckets -> width 10, 17 slots. Bucket 17 wraps onto
  // slot 0, so observing it must retire bucket 0's count lazily.
  recency::BurstTracker burst(/*num_entities=*/1, /*tau=*/160,
                              /*num_buckets=*/16, /*theta1=*/1);
  ASSERT_EQ(burst.bucket_width(), 10u);
  burst.Observe(0, 5);  // bucket 0
  EXPECT_EQ(burst.ApproxRecentCount(0, 5), 1u);

  burst.Observe(0, 175);  // bucket 17: reclaims slot 0
  EXPECT_EQ(burst.ApproxRecentCount(0, 175), 1u);  // not resurrected to 2
  // Bucket 0 is behind the retained span (head 17 - 0 >= 17 slots).
  EXPECT_EQ(burst.ApproxRecentCount(0, 9), 0u);
}

TEST(IncrementalBurstTracker, SparseHeadAdvanceIsExactAndDropsStragglers) {
  recency::BurstTracker burst(/*num_entities=*/1, /*tau=*/160,
                              /*num_buckets=*/16, /*theta1=*/1);
  burst.Observe(0, 5);
  const uint64_t epoch_before = burst.Epoch();
  // A huge forward jump (millions of skipped buckets) is O(1): nothing
  // is zeroed, old slots expire by stamp mismatch.
  burst.Observe(0, 10'000'000);
  EXPECT_EQ(burst.ApproxRecentCount(0, 10'000'000), 1u);
  EXPECT_EQ(burst.ApproxRecentCount(0, 165), 0u);  // old window all gone
  EXPECT_EQ(burst.Epoch(), epoch_before + 1);

  // A straggler older than the retained window is dropped without an
  // epoch bump (it would have expired anyway).
  burst.Observe(0, 5);
  EXPECT_EQ(burst.Epoch(), epoch_before + 1);
  EXPECT_EQ(burst.ApproxRecentCount(0, 10'000'000), 1u);
}

// --------------------------------------------- pinned mutation stream

// Bit-reproducibility regression: the first ten mutation events of seed
// 0xFEEDFACF, pinned the day the stream was introduced. A change here
// means the mutation seed stream (util::DeriveSeed stream 20) or the
// evolving-edge-set simulation drifted, invalidating every recorded
// repro seed.
TEST(IncrementalWorkload, MutationStreamIsPinned) {
  using Kind = testing::MutationEvent::Kind;
  struct Expected {
    uint32_t before_query;
    Kind kind;
    kb::UserId u, v;
    kb::EntityId entity;
    kb::TweetId tweet_id;
    kb::UserId tweet_user;
    kb::Timestamp tweet_time;
  };
  const Expected expected[] = {
      {2, Kind::kAddPost, 0, 0, 4, 2000000, 47, 1999861},
      {5, Kind::kAddEdge, 18, 32, kb::kInvalidEntity, 0, kb::kInvalidUser, 0},
      {8, Kind::kAddPost, 0, 0, 4, 2000002, 21, 387518},
      {10, Kind::kAddEdge, 0, 51, kb::kInvalidEntity, 0, kb::kInvalidUser, 0},
      {12, Kind::kAddEdge, 11, 48, kb::kInvalidEntity, 0, kb::kInvalidUser,
       0},
      {13, Kind::kRemoveEdge, 49, 1, kb::kInvalidEntity, 0, kb::kInvalidUser,
       0},
      {18, Kind::kAddPost, 0, 0, 19, 2000006, 23, 1310979},
      {21, Kind::kRemoveEdge, 28, 1, kb::kInvalidEntity, 0, kb::kInvalidUser,
       0},
      {23, Kind::kAddEdge, 49, 23, kb::kInvalidEntity, 0, kb::kInvalidUser,
       0},
      {24, Kind::kRemoveEdge, 58, 31, kb::kInvalidEntity, 0,
       kb::kInvalidUser, 0},
  };

  testing::RandomWorkloadOptions options;
  options.num_mutation_events = 10;
  testing::RandomWorkload w =
      testing::MakeRandomWorkload(0xFEEDFACFull, options);
  ASSERT_EQ(w.mutations.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    const auto& got = w.mutations[i];
    const auto& want = expected[i];
    EXPECT_EQ(got.before_query, want.before_query) << "event " << i;
    EXPECT_EQ(got.kind, want.kind) << "event " << i;
    EXPECT_EQ(got.u, want.u) << "event " << i;
    EXPECT_EQ(got.v, want.v) << "event " << i;
    EXPECT_EQ(got.entity, want.entity) << "event " << i;
    EXPECT_EQ(got.tweet.id, want.tweet_id) << "event " << i;
    EXPECT_EQ(got.tweet.user, want.tweet_user) << "event " << i;
    EXPECT_EQ(got.tweet.time, want.tweet_time) << "event " << i;
  }
}

// ------------------------------------------------- concurrency (TSan)

// Edge mutations (exclusive lock) race ScoreOnly readers on the shared
// thread pool (shared lock). Readers demand cross-backend agreement on
// every read; after the writer finishes, the patched indexes must equal
// from-scratch rebuilds exactly. scripts/verify.sh runs this under TSan,
// where any unlocked access inside the patch paths is a hard error.
TEST(IncrementalConcurrency, MutationsRaceScoreOnlyReadersUnderSharedLock) {
  constexpr uint32_t kNodes = 48;
  constexpr uint32_t kMutations = 150;
  constexpr uint32_t kReaders = 3;

  graph::GraphBuilder b(kNodes);
  Rng build_rng(7);
  for (uint32_t u = 0; u < kNodes; ++u) {
    for (int e = 0; e < 3; ++e) {
      const auto v =
          static_cast<graph::NodeId>(build_rng.Uniform(kNodes));
      if (v != u) b.AddEdge(u, v);
    }
  }
  Rig rig(std::move(b).Build());

  std::shared_mutex mu;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> applied_count{0};

  std::thread writer([&] {
    Rng wrng(11);
    for (uint32_t i = 0; i < kMutations; ++i) {
      const auto u = static_cast<graph::NodeId>(wrng.Uniform(kNodes));
      const auto v = static_cast<graph::NodeId>(wrng.Uniform(kNodes));
      if (u == v) continue;
      std::unique_lock lock(mu);
      const auto op = rig.g.HasEdge(u, v) ? graph::EdgeDelta::Op::kErase
                                          : graph::EdgeDelta::Op::kInsert;
      if (rig.Apply(op, u, v).applied) applied_count.fetch_add(1);
    }
    done.store(true);
  });

  // Readers are bounded AND yield after every read: glibc's shared_mutex
  // prefers readers, so an unbounded tight reader loop can starve the
  // writer indefinitely. The cap guarantees termination either way.
  constexpr uint32_t kMaxReadsPerLane = 20000;
  util::ThreadPool pool(kReaders);
  pool.ParallelFor(0, kReaders, /*grain=*/1, [&](size_t lane) {
    Rng rrng(100 + lane);
    for (uint32_t i = 0; i < kMaxReadsPerLane && !done.load(); ++i) {
      const auto u = static_cast<graph::NodeId>(rrng.Uniform(kNodes));
      const auto v = static_cast<graph::NodeId>(rrng.Uniform(kNodes));
      {
        std::shared_lock lock(mu);
        const double want = rig.naive.ScoreOnly(u, v);
        bool ok = rig.two_hop.ScoreOnly(u, v) == want &&
                  rig.dli.ScoreOnly(u, v) == want &&
                  rig.pruned.ScoreOnly(u, v) == want &&
                  rig.cached.ScoreOnly(u, v) == want &&
                  std::abs(rig.tc.ScoreOnly(u, v) - want) <= 1e-6;
        if (!ok) mismatches.fetch_add(1);
        reads.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  writer.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(applied_count.load(), 0u);
  EXPECT_EQ(rig.g.version(), applied_count.load());

  // Settled state equals from-scratch rebuilds, pair for pair.
  auto tc_fresh = reach::TransitiveClosureIndex::Build(
      &rig.g, kMaxHops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  auto two_hop_fresh = reach::TwoHopIndex::Build(&rig.g, kMaxHops);
  auto dli_fresh = reach::DistanceLabelIndex::Build(&rig.g, kMaxHops);
  for (graph::NodeId u = 0; u < kNodes; ++u) {
    for (graph::NodeId v = 0; v < kNodes; ++v) {
      ASSERT_EQ(rig.tc.Distance(u, v), tc_fresh.Distance(u, v));
      ASSERT_EQ(rig.tc.Score(u, v), tc_fresh.Score(u, v));
      ASSERT_EQ(rig.two_hop.ScoreOnly(u, v),
                two_hop_fresh.ScoreOnly(u, v));
      ASSERT_EQ(rig.dli.ScoreOnly(u, v), dli_fresh.ScoreOnly(u, v));
      ASSERT_EQ(rig.naive.ScoreOnly(u, v), rig.cached.ScoreOnly(u, v));
    }
  }
}

}  // namespace
}  // namespace mel

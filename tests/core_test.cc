#include <gtest/gtest.h>

#include <memory>

#include "core/candidate_generator.h"
#include "core/entity_linker.h"
#include "gen/workload.h"
#include "graph/graph_builder.h"
#include "reach/naive_reachability.h"
#include "util/metrics.h"

namespace mel::core {
namespace {

// Handcrafted Fig.-1 world with full control over every feature:
//   entities: 0 player, 1 expert, 2 bulls, 3 nba, 4 icml
//   users:    0 target (follows 1=@NBAOfficial), 1 hub, 2 ML fan, 3 misc
class LinkerFixture : public ::testing::Test {
 protected:
  LinkerFixture() {
    player_ = kb_.AddEntity("player", kb::EntityCategory::kPerson,
                            {"basketball", "nba"});
    expert_ = kb_.AddEntity("expert", kb::EntityCategory::kPerson,
                            {"machine", "learning"});
    bulls_ = kb_.AddEntity("bulls", kb::EntityCategory::kCompany,
                           {"basketball", "team"});
    nba_ = kb_.AddEntity("nba", kb::EntityCategory::kCompany,
                         {"basketball", "league"});
    icml_ = kb_.AddEntity("icml", kb::EntityCategory::kCompany,
                          {"machine", "learning"});
    kb_.AddSurfaceForm("jordan", player_, 100);
    kb_.AddSurfaceForm("jordan", expert_, 10);
    kb_.AddSurfaceForm("bulls", bulls_, 50);
    kb_.AddSurfaceForm("nba", nba_, 50);
    kb_.AddSurfaceForm("icml", icml_, 20);
    // Co-citation articles so WLM clusters {player,bulls,nba} and
    // {expert,icml}.
    for (int i = 0; i < 4; ++i) {
      kb::EntityId a = kb_.AddEntity("art" + std::to_string(i),
                                     kb::EntityCategory::kMovieMusic, {});
      kb_.AddHyperlink(a, player_);
      kb_.AddHyperlink(a, bulls_);
      kb_.AddHyperlink(a, nba_);
      kb::EntityId b = kb_.AddEntity("ml" + std::to_string(i),
                                     kb::EntityCategory::kMovieMusic, {});
      kb_.AddHyperlink(b, expert_);
      kb_.AddHyperlink(b, icml_);
    }
    kb_.Finalize();

    ckb_ = std::make_unique<kb::ComplementedKnowledgebase>(&kb_);
    // Communities: user 1 tweets about the player (hub), user 2 about the
    // expert.
    for (int i = 0; i < 10; ++i) {
      ckb_->AddLink(player_,
                    kb::Posting{static_cast<kb::TweetId>(i), 1, i * 100});
    }
    for (int i = 0; i < 4; ++i) {
      ckb_->AddLink(expert_, kb::Posting{static_cast<kb::TweetId>(100 + i),
                                         2, i * 100});
    }

    // Social graph: target user 0 follows hub 1; user 3 follows ML fan 2.
    graph::GraphBuilder b(5);
    b.AddEdge(0, 1);
    b.AddEdge(3, 2);
    b.AddEdge(4, 1);
    b.AddEdge(4, 2);
    graph_ = std::move(b).Build();
    reach_ = std::make_unique<reach::NaiveReachability>(&graph_, 5);
    network_ = std::make_unique<recency::PropagationNetwork>(
        recency::PropagationNetwork::Build(kb_, 0.3));
  }

  EntityLinker MakeLinker(LinkerOptions options) {
    return EntityLinker(&kb_, ckb_.get(), reach_.get(), network_.get(),
                        options);
  }

  static LinkerOptions DefaultOptions() {
    LinkerOptions options;
    options.theta1 = 3;
    options.tau = 500;
    return options;
  }

  kb::Knowledgebase kb_;
  std::unique_ptr<kb::ComplementedKnowledgebase> ckb_;
  graph::DirectedGraph graph_;
  std::unique_ptr<reach::NaiveReachability> reach_;
  std::unique_ptr<recency::PropagationNetwork> network_;
  kb::EntityId player_, expert_, bulls_, nba_, icml_;
};

// ------------------------------------------------------------ candidates

TEST_F(LinkerFixture, CandidateGeneratorExact) {
  CandidateGenerator gen(&kb_, 1);
  auto cands = gen.Generate("jordan");
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].entity, player_);  // higher anchor count first
  EXPECT_EQ(cands[1].entity, expert_);
}

TEST_F(LinkerFixture, CandidateGeneratorFuzzyFallback) {
  CandidateGenerator gen(&kb_, 1);
  auto cands = gen.Generate("jordam");  // one substitution
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].entity, player_);
}

TEST_F(LinkerFixture, CandidateGeneratorFuzzyDisabled) {
  CandidateGenerator gen(&kb_, 0);
  EXPECT_TRUE(gen.Generate("jordam").empty());
  EXPECT_FALSE(gen.Generate("jordan").empty());
}

TEST_F(LinkerFixture, DetectMentionsInTweet) {
  CandidateGenerator gen(&kb_, 1);
  auto mentions = gen.DetectMentions("watching jordan in the nba tonight");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].surface, "jordan");
  EXPECT_EQ(mentions[1].surface, "nba");
}

// ---------------------------------------------------------------- linking

TEST_F(LinkerFixture, SocialInterestDisambiguates) {
  // Pure interest (alpha = 1): user 0 follows the basketball hub, user 3
  // follows the ML fan.
  LinkerOptions options = DefaultOptions();
  options.alpha = 1;
  options.beta = 0;
  options.gamma = 0;
  EntityLinker linker = MakeLinker(options);

  auto r0 = linker.LinkMention("jordan", 0, 10000);
  ASSERT_TRUE(r0.linked());
  EXPECT_EQ(r0.best(), player_);

  auto r3 = linker.LinkMention("jordan", 3, 10000);
  ASSERT_TRUE(r3.linked());
  EXPECT_EQ(r3.best(), expert_);
}

TEST_F(LinkerFixture, PopularityOnlyFollowsAnchorMass) {
  LinkerOptions options = DefaultOptions();
  options.alpha = 0;
  options.beta = 0;
  options.gamma = 1;
  EntityLinker linker = MakeLinker(options);
  // Popularity = linked tweet share: player has 10 links, expert 4.
  auto r = linker.LinkMention("jordan", 3, 10000);
  ASSERT_TRUE(r.linked());
  EXPECT_EQ(r.best(), player_);
  EXPECT_NEAR(r.ranked[0].popularity, 10.0 / 14.0, 1e-9);
}

TEST_F(LinkerFixture, RecencyOnlyReactsToBursts) {
  LinkerOptions options = DefaultOptions();
  options.alpha = 0;
  options.beta = 1;
  options.gamma = 0;
  EntityLinker linker = MakeLinker(options);

  // Burst on the expert just before the query time.
  for (int i = 0; i < 5; ++i) {
    ckb_->AddLink(expert_, kb::Posting{static_cast<kb::TweetId>(200 + i), 2,
                                       20000 + i});
  }
  auto r = linker.LinkMention("jordan", 0, 20100);
  ASSERT_TRUE(r.linked());
  EXPECT_EQ(r.best(), expert_);
  EXPECT_GT(r.ranked[0].recency, 0.0);
}

TEST_F(LinkerFixture, RecencyPropagationLiftsRelatedEntity) {
  LinkerOptions options = DefaultOptions();
  options.alpha = 0;
  options.beta = 1;
  options.gamma = 0;
  EntityLinker linker = MakeLinker(options);

  // ICML bursts; the expert has no burst of his own but should win via
  // propagation.
  for (int i = 0; i < 8; ++i) {
    ckb_->AddLink(icml_, kb::Posting{static_cast<kb::TweetId>(300 + i), 2,
                                     30000 + i});
  }
  auto with = linker.LinkMention("jordan", 0, 30100);
  ASSERT_TRUE(with.linked());
  EXPECT_EQ(with.best(), expert_);

  linker.mutable_options()->enable_recency_propagation = false;
  auto without = linker.LinkMention("jordan", 0, 30100);
  // Without propagation there is no recency signal at all; scores tie at
  // zero and anchor order (player first) wins.
  EXPECT_EQ(without.best(), player_);
}

TEST_F(LinkerFixture, CombinedScoreIsConvexCombination) {
  EntityLinker linker = MakeLinker(DefaultOptions());
  auto r = linker.LinkMention("jordan", 0, 10000);
  ASSERT_TRUE(r.linked());
  for (const auto& s : r.ranked) {
    EXPECT_NEAR(s.score,
                0.6 * s.interest + 0.3 * s.recency + 0.1 * s.popularity,
                1e-12);
    EXPECT_GE(s.score, 0.0);
    EXPECT_LE(s.score, 1.0);
  }
}

TEST_F(LinkerFixture, RankedSortedDescending) {
  EntityLinker linker = MakeLinker(DefaultOptions());
  auto r = linker.LinkMention("jordan", 0, 10000);
  for (size_t i = 0; i + 1 < r.ranked.size(); ++i) {
    EXPECT_GE(r.ranked[i].score, r.ranked[i + 1].score);
  }
}

TEST_F(LinkerFixture, TopKTruncation) {
  LinkerOptions options = DefaultOptions();
  options.top_k_results = 1;
  EntityLinker linker = MakeLinker(options);
  auto r = linker.LinkMention("jordan", 0, 10000);
  EXPECT_EQ(r.ranked.size(), 1u);
}

TEST_F(LinkerFixture, UnknownMentionNotLinked) {
  EntityLinker linker = MakeLinker(DefaultOptions());
  auto r = linker.LinkMention("completely unknown thing", 0, 10000);
  EXPECT_FALSE(r.linked());
  EXPECT_EQ(r.best(), kb::kInvalidEntity);
  EXPECT_FALSE(r.probable_new_entity);
}

TEST_F(LinkerFixture, LinkTweetLinksEachDetectedMention) {
  EntityLinker linker = MakeLinker(DefaultOptions());
  kb::Tweet tweet;
  tweet.user = 0;
  tweet.time = 10000;
  tweet.text = "jordan dunks while the bulls watch";
  auto result = linker.LinkTweet(tweet);
  ASSERT_EQ(result.mentions.size(), 2u);
  EXPECT_EQ(result.mentions[0].surface, "jordan");
  EXPECT_EQ(result.mentions[0].best(), player_);
  EXPECT_EQ(result.mentions[1].surface, "bulls");
  EXPECT_EQ(result.mentions[1].best(), bulls_);
}

TEST_F(LinkerFixture, ConfirmLinkUpdatesKnowledge) {
  EntityLinker linker = MakeLinker(DefaultOptions());
  uint32_t before = ckb_->LinkedTweetCount(nba_);
  kb::Tweet tweet;
  tweet.id = 999;
  tweet.user = 0;
  tweet.time = 40000;
  linker.ConfirmLink(nba_, tweet);
  EXPECT_EQ(ckb_->LinkedTweetCount(nba_), before + 1);
  EXPECT_EQ(ckb_->UserTweetCount(nba_, 0), 1u);
}

TEST_F(LinkerFixture, LinkMentionIdenticalWithRecencyCacheOnAndOff) {
  LinkerOptions cached_opts = DefaultOptions();
  cached_opts.propagator.enable_cache = true;
  LinkerOptions uncached_opts = DefaultOptions();
  uncached_opts.propagator.enable_cache = false;
  EntityLinker cached = MakeLinker(cached_opts);
  EntityLinker uncached = MakeLinker(uncached_opts);

  // Burst on nba_ exercises the propagation path; repeated and shifted
  // query times exercise hits, misses, and invalidation-free reuse.
  for (int i = 0; i < 5; ++i) {
    ckb_->AddLink(nba_, kb::Posting{static_cast<kb::TweetId>(200 + i), 1,
                                    1000 + i});
  }
  for (kb::Timestamp now : {1100, 1100, 1200, 1100, 3000}) {
    for (const char* mention : {"jordan", "bulls", "nba", "icml"}) {
      for (kb::UserId user : {0u, 2u, 3u}) {
        auto a = cached.LinkMention(mention, user, now);
        auto b = uncached.LinkMention(mention, user, now);
        ASSERT_EQ(a.ranked.size(), b.ranked.size());
        for (size_t k = 0; k < a.ranked.size(); ++k) {
          EXPECT_EQ(a.ranked[k].entity, b.ranked[k].entity);
          EXPECT_DOUBLE_EQ(a.ranked[k].score, b.ranked[k].score);
          EXPECT_DOUBLE_EQ(a.ranked[k].recency, b.ranked[k].recency);
        }
      }
    }
  }
}

TEST_F(LinkerFixture, ConfirmLinkInvalidatesRecencyCache) {
  LinkerOptions cached_opts = DefaultOptions();
  cached_opts.theta1 = 1;
  cached_opts.propagator.enable_cache = true;
  LinkerOptions uncached_opts = cached_opts;
  uncached_opts.propagator.enable_cache = false;
  EntityLinker cached = MakeLinker(cached_opts);
  EntityLinker uncached = MakeLinker(uncached_opts);

  // Prime the memoized cluster vector at the query time, then mutate the
  // complemented KB through ConfirmLink.
  auto primed = cached.LinkMention("nba", 0, 1050);
  ASSERT_TRUE(primed.linked());
  auto* invalidations = metrics::Registry().GetCounter(
      "recency.cache.invalidations_total");
  const uint64_t invalidations0 = invalidations->Value();
  kb::Tweet tweet;
  tweet.id = 500;
  tweet.user = 1;
  tweet.time = 1000;
  cached.ConfirmLink(nba_, tweet);
  // The version bump must evict the stale vector on the next query, and
  // the recomputed scores must match an uncached linker exactly.
  auto a = cached.LinkMention("nba", 0, 1050);
  EXPECT_EQ(invalidations->Value(), invalidations0 + 1);
  auto b = uncached.LinkMention("nba", 0, 1050);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t k = 0; k < a.ranked.size(); ++k) {
    EXPECT_EQ(a.ranked[k].entity, b.ranked[k].entity);
    EXPECT_DOUBLE_EQ(a.ranked[k].recency, b.ranked[k].recency);
    EXPECT_DOUBLE_EQ(a.ranked[k].score, b.ranked[k].score);
  }
}

// --------------------------------------------------- Appendix D threshold

TEST_F(LinkerFixture, NewEntityRejection) {
  LinkerOptions options = DefaultOptions();
  options.reject_below_interest_threshold = true;
  EntityLinker linker = MakeLinker(options);

  // User 3 has no reachability to the player community and no burst is
  // active: every candidate scores <= beta + gamma.
  auto r = linker.LinkMention("jordan", 3, 2000000);
  // User 3 reaches the ML fan, so the expert retains interest > 0...
  // confirm the threshold semantics both ways.
  for (const auto& s : r.ranked) {
    EXPECT_GT(s.score, options.beta + options.gamma);
  }

  // A fresh user (id 4 follows both communities' members, but user 2's
  // community...) — use a user with NO followees: everything suppressed.
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1);
  auto lonely_graph = std::move(b).Build();
  reach::NaiveReachability lonely_reach(&lonely_graph, 5);
  EntityLinker lonely_linker(&kb_, ckb_.get(), &lonely_reach,
                             network_.get(), options);
  auto r5 = lonely_linker.LinkMention("jordan", 5, 2000000);
  EXPECT_FALSE(r5.linked());
  EXPECT_TRUE(r5.probable_new_entity);
}

// ----------------------------------------------- generated-world smoke

TEST(LinkerWorldTest, BeatsPopularityBaselineOnGeneratedWorld) {
  gen::WorldOptions wopts;
  wopts.kb.num_entities = 400;
  wopts.kb.num_topics = 12;
  wopts.kb.num_ambiguous_surfaces = 120;
  wopts.kb.seed = 31;
  wopts.social.num_users = 500;
  wopts.social.seed = 32;
  wopts.tweets.num_tweets = 6000;
  wopts.tweets.seed = 33;
  gen::World world = gen::GenerateWorld(wopts);

  auto active = gen::FilterActiveUsers(world.corpus, 8);
  kb::ComplementedKnowledgebase ckb(&world.kb());
  gen::ComplementWithOracle(world, active, 0.05, 7, &ckb);

  reach::NaiveReachability reach(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.6);

  LinkerOptions options;
  options.theta1 = 5;
  EntityLinker linker(&world.kb(), &ckb, &reach, &network, options);

  auto test_split = gen::SampleInactiveUsers(world.corpus, 8, 60, 9);
  uint32_t ours_correct = 0, popularity_correct = 0, total = 0;
  for (uint32_t ti : test_split.tweet_indices) {
    const auto& lt = world.corpus.tweets[ti];
    for (const auto& m : lt.mentions) {
      ++total;
      auto r = linker.LinkMention(m.surface, lt.tweet.user, lt.tweet.time);
      if (r.best() == m.truth) ++ours_correct;
      auto cands = world.kb().Candidates(m.surface);
      if (!cands.empty() && cands[0].entity == m.truth) ++popularity_correct;
    }
  }
  ASSERT_GT(total, 50u);
  // The social-temporal linker must beat the raw anchor-popularity prior.
  EXPECT_GT(ours_correct, popularity_correct);
  EXPECT_GT(static_cast<double>(ours_correct) / total, 0.5);
}

}  // namespace
}  // namespace mel::core

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace mel::metrics {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);  // gauges may go negative transiently
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, EmptyPercentilesAreZero) {
  Histogram h;
  auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryPercentile) {
  Histogram h;
  h.Record(12345);
  auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 12345u);
  EXPECT_EQ(snap.min, 12345u);
  EXPECT_EQ(snap.max, 12345u);
  // min/max clamping makes a degenerate distribution exact.
  EXPECT_DOUBLE_EQ(snap.Percentile(0), 12345.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 12345.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 12345.0);
}

TEST(HistogramTest, ZeroValuesLandInBucketZero) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
}

TEST(HistogramTest, PercentilesRespectBucketOrdering) {
  Histogram h;
  // 90 small values and 10 large ones: p50 must sit near the small mass,
  // p99 inside the large mass. Buckets are power-of-two, so use values in
  // clearly distinct buckets.
  for (int i = 0; i < 90; ++i) h.Record(100);     // bucket of 100
  for (int i = 0; i < 10; ++i) h.Record(100000);  // bucket of 100000
  auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 100u);
  double p50 = snap.Percentile(50);
  double p99 = snap.Percentile(99);
  EXPECT_GE(p50, 64.0);    // inside 100's bucket [64, 128)
  EXPECT_LT(p50, 128.0);
  EXPECT_GE(p99, 65536.0);  // inside 100000's bucket [65536, 131072)
  EXPECT_LE(p99, 100000.0);  // clamped to observed max
  EXPECT_LE(p50, p99);
}

TEST(HistogramTest, PercentileIsMonotoneInP) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v * 17);
  auto snap = h.GetSnapshot();
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    double value = snap.Percentile(p);
    EXPECT_GE(value, prev) << "p=" << p;
    prev = value;
  }
  EXPECT_DOUBLE_EQ(snap.Percentile(100), static_cast<double>(snap.max));
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(7);
  h.Record(1 << 20);
  h.Reset();
  auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  for (uint64_t b : snap.buckets) EXPECT_EQ(b, 0u);
}

TEST(RegistryTest, SameNameReturnsSameMetric) {
  auto& reg = Registry();
  Counter* a = reg.GetCounter("test.registry.same_name");
  Counter* b = reg.GetCounter("test.registry.same_name");
  EXPECT_EQ(a, b);
  Histogram* h1 = reg.GetHistogram("test.registry.same_hist");
  Histogram* h2 = reg.GetHistogram("test.registry.same_hist");
  EXPECT_EQ(h1, h2);
}

TEST(RegistryTest, SnapshotIsDetachedFromLaterUpdates) {
  auto& reg = Registry();
  Counter* c = reg.GetCounter("test.registry.snapshot_detached");
  c->Reset();
  c->Increment(5);
  RegistrySnapshot before = reg.Snapshot();
  c->Increment(100);

  auto find = [](const RegistrySnapshot& snap, const std::string& name) {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return uint64_t{0};
  };
  // The earlier snapshot still reports the value at snapshot time.
  EXPECT_EQ(find(before, "test.registry.snapshot_detached"), 5u);
  EXPECT_EQ(find(reg.Snapshot(), "test.registry.snapshot_detached"), 105u);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistration) {
  auto& reg = Registry();
  Counter* c = reg.GetCounter("test.registry.reset_keeps");
  Histogram* h = reg.GetHistogram("test.registry.reset_keeps_hist");
  c->Increment(9);
  h->Record(9);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->GetSnapshot().count, 0u);
  // Pointers stay valid and re-registered lookups agree.
  EXPECT_EQ(reg.GetCounter("test.registry.reset_keeps"), c);
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  auto& reg = Registry();
  reg.GetCounter("test.sort.zz");
  reg.GetCounter("test.sort.aa");
  RegistrySnapshot snap = reg.Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(RegistryTest, JsonExportContainsRegisteredMetrics) {
  auto& reg = Registry();
  Counter* c = reg.GetCounter("test.json.counter");
  c->Reset();
  c->Increment(3);
  Histogram* h = reg.GetHistogram("test.json.hist");
  h->Reset();
  h->Record(1000);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ConcurrencyTest, CountersAreExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Counter c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(ConcurrencyTest, HistogramCountSumMinMaxAreExact) {
  constexpr int kThreads = 8;
  constexpr uint64_t kSamples = 10000;
  Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Thread t records t*kSamples+1 .. t*kSamples+kSamples.
      for (uint64_t i = 1; i <= kSamples; ++i) {
        h.Record(static_cast<uint64_t>(t) * kSamples + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto snap = h.GetSnapshot();
  const uint64_t n = kThreads * kSamples;
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n + 1) / 2);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, n);
}

TEST(ConcurrencyTest, RegistryLookupsAreSafeFromManyThreads) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      seen[t] = Registry().GetCounter("test.concurrent.lookup");
      seen[t]->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_GE(seen[0]->Value(), static_cast<uint64_t>(kThreads));
}

// The serving loop records latencies from pool workers while an operator
// thread exports the registry: recording and ToJson snapshotting must be
// safe to interleave (the snapshot sees a consistent-enough view; the
// final totals are exact).
TEST(ConcurrencyTest, RecordingFromPoolWhileExportingJsonIsSafe) {
  Histogram* h =
      Registry().GetHistogram("test.concurrent.export_histogram");
  Counter* c = Registry().GetCounter("test.concurrent.export_counter");
  const uint64_t count_before = h->GetSnapshot().count;
  const uint64_t value_before = c->Value();

  constexpr uint64_t kItems = 20000;
  std::atomic<bool> done{false};
  std::thread exporter([&done] {
    while (!done.load(std::memory_order_acquire)) {
      std::string json = Registry().Snapshot().ToJson();
      EXPECT_NE(json.find("test.concurrent.export_histogram"),
                std::string::npos);
    }
  });
  util::ThreadPool::Shared().ParallelFor(0, kItems, /*grain=*/64,
                                         [&](size_t i) {
                                           h->Record(i + 1);
                                           c->Increment();
                                         });
  done.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_EQ(h->GetSnapshot().count, count_before + kItems);
  EXPECT_EQ(c->Value(), value_before + kItems);
}

TEST(ScopedStageTimerTest, RecordsOneSampleWhenEnabled) {
  SetEnabled(true);
  Histogram h;
  { ScopedStageTimer timer(&h); }
  EXPECT_EQ(h.GetSnapshot().count, 1u);
}

TEST(ScopedStageTimerTest, DisabledTimerRecordsNothing) {
  SetEnabled(false);
  Histogram h;
  { ScopedStageTimer timer(&h); }
  EXPECT_EQ(h.GetSnapshot().count, 0u);
  SetEnabled(true);
}

TEST(StageClockTest, LapsRecordConsecutiveStages) {
  SetEnabled(true);
  Histogram a, b;
  StageClock clock;
  clock.Lap(&a);
  clock.Lap(&b);
  EXPECT_EQ(a.GetSnapshot().count, 1u);
  EXPECT_EQ(b.GetSnapshot().count, 1u);
}

}  // namespace
}  // namespace mel::metrics

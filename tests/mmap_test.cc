// MEL3 container + MmapFile + zero-copy index load coverage: mapping
// basics, mapped-vs-built query identity, corruption rejection, span
// lifetime across destruction/re-mapping, and concurrent read-only
// queries against one shared mapping (runs under TSan via verify.sh).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_builder.h"
#include "reach/distance_label_index.h"
#include "reach/two_hop_index.h"
#include "util/mmap_file.h"
#include "util/random.h"
#include "util/serialize.h"

namespace mel {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(TempPath(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::DirectedGraph RandomGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder b(n);
  for (uint32_t i = 0; i < edges; ++i) {
    b.AddEdge(static_cast<graph::NodeId>(rng.Uniform(n)),
              static_cast<graph::NodeId>(rng.Uniform(n)));
  }
  return std::move(b).Build();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>{});
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Re-seals the header checksum after a deliberate header/table edit, so
// corruption tests hit the specific validation they target instead of
// tripping the checksum first.
void ResealHeaderChecksum(std::string& bytes) {
  ASSERT_GE(bytes.size(), sizeof(Mel3Header));
  auto* h = reinterpret_cast<Mel3Header*>(bytes.data());
  const size_t covered =
      sizeof(Mel3Header) + h->block_count * sizeof(Mel3BlockRecord);
  ASSERT_GE(bytes.size(), covered);
  h->header_checksum = 0;
  h->header_checksum = Mel3Checksum(bytes.data(), covered);
}

// ------------------------------------------------------------ MmapFile

TEST(MmapFileTest, MissingFileReportsError) {
  auto file = util::MmapFile::Open("/nonexistent/dir/file.mel3");
  EXPECT_FALSE(file.ok());
}

TEST(MmapFileTest, MapsBytesReadOnly) {
  TempFile file("mel_mmap_bytes.bin");
  WriteFileBytes(file.path(), "hello mapping");
  auto mapped = util::MmapFile::Open(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().size(), 13u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(
                            mapped.value().data()),
                        mapped.value().size()),
            "hello mapping");
}

TEST(MmapFileTest, EmptyFileMapsToNullView) {
  TempFile file("mel_mmap_empty.bin");
  WriteFileBytes(file.path(), "");
  auto mapped = util::MmapFile::Open(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().size(), 0u);
}

TEST(MmapFileTest, MoveTransfersTheMapping) {
  TempFile file("mel_mmap_move.bin");
  WriteFileBytes(file.path(), "abcd");
  auto mapped = util::MmapFile::Open(file.path());
  ASSERT_TRUE(mapped.ok());
  util::MmapFile moved = std::move(mapped).value();
  EXPECT_EQ(moved.size(), 4u);
  EXPECT_EQ(moved.bytes()[0], 'a');
  util::MmapFile moved_again = std::move(moved);
  EXPECT_EQ(moved_again.size(), 4u);
  EXPECT_EQ(moved.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(MmapFileTest, AdviceOptionsApplyAndRename) {
  TempFile file("mel_mmap_advice.bin");
  WriteFileBytes(file.path(), std::string(8192, 'x'));
  util::MmapFile::Options opts;
  opts.advice = util::MmapFile::Advice::kSequential;
  opts.prefault = true;
  auto mapped = util::MmapFile::Open(file.path(), opts);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().advice(), util::MmapFile::Advice::kSequential);
  EXPECT_TRUE(
      mapped.value().Advise(util::MmapFile::Advice::kWillNeed).ok());
  EXPECT_STREQ(util::MmapFile::AdviceName(util::MmapFile::Advice::kRandom),
               "random");
}

// ----------------------------------------------- MEL3 mapped round trips

TEST(Mel3ContainerTest, TwoHopMappedMatchesBuiltExactly) {
  auto g = RandomGraph(60, 240, 4);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_2hop_mapped.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsMapped());
  EXPECT_GT(mapped.value().MappedBytes(), 0u);
  EXPECT_EQ(mapped.value().TotalLabelEntries(), built.TotalLabelEntries());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto a = built.Query(u, v);
      auto b = mapped.value().Query(u, v);
      ASSERT_EQ(a.distance, b.distance);
      ASSERT_EQ(a.followees, b.followees);
      ASSERT_EQ(built.Score(u, v), mapped.value().Score(u, v));
      ASSERT_EQ(built.ScoreOnly(u, v), mapped.value().ScoreOnly(u, v));
    }
  }
}

TEST(Mel3ContainerTest, DistanceLabelMappedMatchesBuiltExactly) {
  auto g = RandomGraph(50, 200, 11);
  auto built = reach::DistanceLabelIndex::Build(&g, 5);
  TempFile file("mel3_dli_mapped.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  auto mapped = reach::DistanceLabelIndex::LoadMapped(file.path(), &g);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsMapped());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(built.Distance(u, v), mapped.value().Distance(u, v));
      ASSERT_EQ(built.Score(u, v), mapped.value().Score(u, v));
    }
  }
}

// A mapped index re-saves to the identical container: the zero-copy view
// carries exactly the bytes the writer laid out.
TEST(Mel3ContainerTest, MappedResaveIsByteIdentical) {
  auto g = RandomGraph(40, 160, 21);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile first("mel3_resave_a.mel3");
  TempFile second("mel3_resave_b.mel3");
  ASSERT_TRUE(built.Save(first.path()).ok());
  auto mapped = reach::TwoHopIndex::LoadMapped(first.path(), &g);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(mapped.value().Save(second.path()).ok());
  EXPECT_EQ(ReadFileBytes(first.path()), ReadFileBytes(second.path()));
}

TEST(Mel3ContainerTest, CopyingLoadOwnsItsArenas) {
  auto g = RandomGraph(40, 160, 22);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_copyload.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  auto loaded = reach::TwoHopIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().IsMapped());
  EXPECT_EQ(loaded.value().MappedBytes(), 0u);
  // The file is gone; the owned copy keeps answering.
  std::remove(file.path().c_str());
  EXPECT_EQ(loaded.value().Score(1, 2), built.Score(1, 2));
}

TEST(Mel3ContainerTest, VerifyChecksumsOptionAcceptsIntactFile) {
  auto g = RandomGraph(40, 160, 23);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_verify_ok.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  util::MmapLoadOptions opts;
  opts.verify_checksums = true;
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g, opts);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsMapped());
}

// Legacy pre-MEL3 files keep loading through the copying path.
TEST(Mel3ContainerTest, LegacyMel2FileStillLoads) {
  auto g = RandomGraph(3, 6, 10);
  TempFile file("mel3_legacy_mel2.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(0x4d454c32);  // "MEL2"
    writer.WriteU32(2);           // version
    writer.WriteU32(3);           // node count
    writer.WriteU32(5);           // max hops
    writer.WriteVector(std::vector<uint64_t>{0, 1, 1, 1});
    writer.WriteVector(std::vector<reach::TwoHopIndex::InLabel>{{1, 1}});
    writer.WriteVector(std::vector<uint64_t>{0, 0, 1, 1});
    writer.WriteVector(std::vector<reach::TwoHopIndex::OutSpan>{{0, 1}});
    writer.WriteVector(std::vector<uint64_t>{0, 1});
    writer.WriteVector(std::vector<graph::NodeId>{2});
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto loaded = reach::TwoHopIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().IsMapped());
  EXPECT_EQ(loaded.value().TotalLabelEntries(), 2u);
  // But the legacy wire format cannot be mapped.
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g);
  EXPECT_FALSE(mapped.ok());
}

TEST(Mel3ContainerTest, LegacyMeldFileStillLoads) {
  auto g = RandomGraph(3, 6, 10);
  TempFile file("mel3_legacy_meld.bin");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(0x4d454c44);  // "MELD"
    writer.WriteU32(1);           // version
    writer.WriteU32(3);           // node count
    writer.WriteU32(5);           // max hops
    writer.WriteVector(std::vector<uint64_t>{0, 1, 1, 1});
    writer.WriteVector(
        std::vector<reach::DistanceLabelIndex::Label>{{1, 1}});
    writer.WriteVector(std::vector<uint64_t>{0, 0, 0, 0});
    writer.WriteVector(std::vector<reach::DistanceLabelIndex::Label>{});
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto loaded = reach::DistanceLabelIndex::Load(file.path(), &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().IsMapped());
}

// ------------------------------------------------------ corrupt files

class Mel3CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = RandomGraph(30, 120, 31);
    index_ = std::make_unique<reach::TwoHopIndex>(
        reach::TwoHopIndex::Build(&g_, 5));
  }

  graph::DirectedGraph g_;
  std::unique_ptr<reach::TwoHopIndex> index_;
};

TEST_F(Mel3CorruptionTest, TruncatedHeaderRejected) {
  TempFile file("mel3_trunc_header.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  std::string bytes = ReadFileBytes(file.path());
  WriteFileBytes(file.path(), bytes.substr(0, sizeof(Mel3Header) / 2));
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mapped.status().message().find("truncated"),
            std::string::npos);
  // The copying load funnels through the same validation.
  EXPECT_FALSE(reach::TwoHopIndex::Load(file.path(), &g_).ok());
}

TEST_F(Mel3CorruptionTest, TruncatedPayloadRejected) {
  TempFile file("mel3_trunc_payload.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size / 2);
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(Mel3CorruptionTest, MisalignedBlockOffsetRejected) {
  TempFile file("mel3_misaligned.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  std::string bytes = ReadFileBytes(file.path());
  auto* rec = reinterpret_cast<Mel3BlockRecord*>(
      bytes.data() + sizeof(Mel3Header));
  rec[0].offset += 8;  // off the sector boundary
  ResealHeaderChecksum(bytes);
  WriteFileBytes(file.path(), bytes);
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mapped.status().message().find("misaligned"),
            std::string::npos);
}

TEST_F(Mel3CorruptionTest, HeaderChecksumMismatchRejected) {
  TempFile file("mel3_bad_header_sum.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  std::string bytes = ReadFileBytes(file.path());
  // Flip a block-table byte without resealing.
  bytes[sizeof(Mel3Header) + 3] ^= 0x5a;
  WriteFileBytes(file.path(), bytes);
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("checksum"),
            std::string::npos);
}

TEST_F(Mel3CorruptionTest, BlockChecksumMismatchRejected) {
  TempFile file("mel3_bad_block_sum.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  std::string bytes = ReadFileBytes(file.path());
  const auto* rec = reinterpret_cast<const Mel3BlockRecord*>(
      bytes.data() + sizeof(Mel3Header));
  ASSERT_GT(rec[1].length, 0u);  // in-entries payload
  bytes[rec[1].offset] ^= 0x01;
  WriteFileBytes(file.path(), bytes);
  // Payload corruption is invisible to the trusting default load...
  util::MmapLoadOptions trusting;
  EXPECT_TRUE(
      reach::TwoHopIndex::LoadMapped(file.path(), &g_, trusting).ok());
  // ...caught by verify_checksums and by the copying load.
  util::MmapLoadOptions verifying;
  verifying.verify_checksums = true;
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_, verifying);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("checksum"),
            std::string::npos);
  EXPECT_FALSE(reach::TwoHopIndex::Load(file.path(), &g_).ok());
}

TEST_F(Mel3CorruptionTest, ForeignMagicRejected) {
  TempFile file("mel3_foreign.mel3");
  {
    BinaryWriter writer(file.path());
    writer.WriteU32(0xdeadbeef);
    writer.WriteU32(1);
    for (int i = 0; i < 14; ++i) writer.WriteU32(0);  // pad past 64 B
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
}

// A DLI container is not a 2-hop container even though both are MEL3.
TEST_F(Mel3CorruptionTest, WrongInnerMagicRejected) {
  auto dli = reach::DistanceLabelIndex::Build(&g_, 5);
  TempFile file("mel3_inner_mismatch.mel3");
  ASSERT_TRUE(dli.Save(file.path()).ok());
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("different index kind"),
            std::string::npos);
  EXPECT_FALSE(reach::TwoHopIndex::Load(file.path(), &g_).ok());
}

TEST_F(Mel3CorruptionTest, FileSizeMismatchRejected) {
  TempFile file("mel3_size_mismatch.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  std::string bytes = ReadFileBytes(file.path());
  WriteFileBytes(file.path(), bytes + std::string(4096, '\0'));
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("size"), std::string::npos);
}

TEST_F(Mel3CorruptionTest, NodeCountMismatchRejected) {
  TempFile file("mel3_nodecount.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  auto other = RandomGraph(31, 120, 32);
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &other);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(Mel3CorruptionTest, CorruptOffsetsRejectedEvenWithoutVerify) {
  TempFile file("mel3_bad_offsets.mel3");
  ASSERT_TRUE(index_->Save(file.path()).ok());
  std::string bytes = ReadFileBytes(file.path());
  const auto* rec = reinterpret_cast<const Mel3BlockRecord*>(
      bytes.data() + sizeof(Mel3Header));
  // Blow up the last in-offsets entry so the prefix sum overruns the
  // entry arena; offsets are always validated because span binding
  // depends on them for memory safety.
  ASSERT_EQ(rec[0].kind, uint32_t(Mel3BlockKind::kInOffsets));
  auto* offsets = reinterpret_cast<uint64_t*>(bytes.data() + rec[0].offset);
  offsets[rec[0].count - 1] = ~0ull;
  // Reseal the block checksum too: this must fail on offset validation,
  // not checksum, in the trusting load.
  auto* mut_rec = reinterpret_cast<Mel3BlockRecord*>(
      bytes.data() + sizeof(Mel3Header));
  mut_rec[0].checksum =
      Mel3Checksum(bytes.data() + rec[0].offset, rec[0].length);
  ResealHeaderChecksum(bytes);
  WriteFileBytes(file.path(), bytes);
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("offsets"), std::string::npos);
}

// --------------------------------------------------- span lifetime

TEST(MmapLifetimeTest, MappingOutlivesLoadScope) {
  auto g = RandomGraph(40, 160, 41);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_lifetime.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  // Move the mapped index out of the load scope; the shared mapping
  // travels with it.
  auto mapped = [&] {
    auto loaded = reach::TwoHopIndex::LoadMapped(file.path(), &g);
    EXPECT_TRUE(loaded.ok());
    return std::move(loaded).value();
  }();
  EXPECT_TRUE(mapped.IsMapped());
  EXPECT_EQ(mapped.Score(1, 2), built.Score(1, 2));
}

TEST(MmapLifetimeTest, CopiedIndexSharesTheMapping) {
  auto g = RandomGraph(40, 160, 42);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_copy_share.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  auto loaded = reach::TwoHopIndex::LoadMapped(file.path(), &g);
  ASSERT_TRUE(loaded.ok());
  auto copy = std::make_unique<reach::TwoHopIndex>(loaded.value());
  // Destroy the original; the copy's shared_ptr keeps the pages alive.
  { auto destroyed = std::move(loaded).value(); }
  EXPECT_TRUE(copy->IsMapped());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(copy->Score(u, 0), built.Score(u, 0));
  }
}

TEST(MmapLifetimeTest, RemapSameFileTwiceIndependentLifetimes) {
  auto g = RandomGraph(40, 160, 43);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_remap.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  auto first = reach::TwoHopIndex::LoadMapped(file.path(), &g);
  auto second = reach::TwoHopIndex::LoadMapped(file.path(), &g);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value().in_labels(0).data(),
            second.value().in_labels(0).data());
  // Destroy the first mapping; the second keeps answering.
  { auto destroyed = std::move(first).value(); }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(second.value().Score(u, 1), built.Score(u, 1));
  }
}

TEST(MmapLifetimeTest, UnlinkedFileKeepsServing) {
  auto g = RandomGraph(40, 160, 44);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_unlink.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g);
  ASSERT_TRUE(mapped.ok());
  std::remove(file.path().c_str());  // pages live until munmap
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(mapped.value().Score(u, 2), built.Score(u, 2));
  }
}

// ----------------------------------------- concurrent mapped queries

// Read-only queries on one shared mapped index from many threads; TSan
// (verify.sh stage three) checks the zero-copy path stays data-race
// free. Expected values are computed single-threaded first.
TEST(MmapConcurrencyTest, ParallelQueriesOnSharedMapping) {
  auto g = RandomGraph(60, 300, 51);
  auto built = reach::TwoHopIndex::Build(&g, 5);
  TempFile file("mel3_concurrent.mel3");
  ASSERT_TRUE(built.Save(file.path()).ok());
  auto mapped = reach::TwoHopIndex::LoadMapped(file.path(), &g);
  ASSERT_TRUE(mapped.ok());
  const reach::TwoHopIndex& index = mapped.value();

  const uint32_t n = g.num_nodes();
  std::vector<double> expected(n * n);
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = 0; v < n; ++v) {
      expected[u * n + v] = built.Score(u, v);
    }
  }

  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (graph::NodeId u = t; u < n; u += kThreads) {
        for (graph::NodeId v = 0; v < n; ++v) {
          if (index.Score(u, v) != expected[u * n + v] ||
              index.ScoreOnly(u, v) != expected[u * n + v]) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace mel

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cpu_topology.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"
#include "util/steal_deque.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mel {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ----------------------------------------------------------------- Zipf

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (size_t r = 0; r < 100; ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfSampler zipf(50, 1.2);
  for (size_t r = 1; r < 50; ++r) {
    EXPECT_GT(zipf.Probability(0), zipf.Probability(r));
  }
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 0.1, 1e-9);
  }
}

TEST(ZipfTest, EmpiricalFrequencyTracksProbability) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(19);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), zipf.Probability(r),
                0.01);
  }
}

TEST(WeightedSampleTest, RespectsWeights) {
  Rng rng(21);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    size_t pick = WeightedSample(weights, &rng);
    ASSERT_LT(pick, 3u);
    ++counts[pick];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.2);
}

TEST(WeightedSampleTest, AllZeroReturnsSize) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(WeightedSample(weights, &rng), 2u);
  std::vector<double> empty;
  EXPECT_EQ(WeightedSample(empty, &rng), 0u);
}

// --------------------------------------------------------------- string

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("MiXeD Case 42!"), "mixed case 42!");
  EXPECT_EQ(AsciiLower(""), "");
}

TEST(StringUtilTest, SplitNonEmptyDropsEmptyFields) {
  auto parts = SplitNonEmpty("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2048), "2.0KB");
  EXPECT_EQ(HumanBytes(1536 * 1024 * 1024ULL), "1.5GB");
}

TEST(StringUtilTest, HumanNanos) {
  EXPECT_EQ(HumanNanos(500), "500ns");
  EXPECT_EQ(HumanNanos(1500), "1.5us");
  EXPECT_EQ(HumanNanos(2.5e6), "2.5ms");
  EXPECT_EQ(HumanNanos(3e9), "3.0s");
}

// ---------------------------------------------------------------- timer

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  int64_t a = timer.ElapsedNanos();
  int64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  int64_t before = timer.ElapsedNanos();
  timer.Restart();
  EXPECT_LE(timer.ElapsedNanos(), before);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  util::ThreadPool pool(0);
  uint32_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(pool.num_threads(), hw == 0 ? 4u : hw);
}

TEST(ThreadPoolTest, SharedIsASingleton) {
  EXPECT_EQ(&util::ThreadPool::Shared(), &util::ThreadPool::Shared());
  EXPECT_GE(util::ThreadPool::Shared().num_threads(), 1u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  for (size_t count : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, count, /*grain=*/3,
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, RespectsBeginOffsetAndGrainZero) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(4, 10, /*grain=*/0,
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i].load(), i >= 4 ? 1 : 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(0, 16, 1,
                   [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, MaxThreadsOneRunsInline) {
  util::ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(
      0, 16, 1, [&](size_t i) { seen[i] = std::this_thread::get_id(); },
      /*max_threads=*/1);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, NestedParallelForRunsSerially) {
  util::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t) {
    // The nested region must run inline on this thread — deadlock-free
    // even though all pool threads may already be inside the outer one.
    std::thread::id me = std::this_thread::get_id();
    pool.ParallelFor(0, 4, 1, [&](size_t) {
      EXPECT_EQ(std::this_thread::get_id(), me);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 8 * 4);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a throwing region and keep working.
  std::atomic<int> total{0};
  pool.ParallelFor(0, 50, 1, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPoolTest, SerialInlineExceptionPropagates) {
  util::ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 3, 1,
                                [&](size_t) {
                                  throw std::runtime_error("inline boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, BackToBackRegions) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> total{0};
    pool.ParallelFor(0, 20, 2, [&](size_t) { total.fetch_add(1); });
    ASSERT_EQ(total.load(), 20);
  }
}

// ------------------------------------------------- work-stealing path

util::ThreadPool::Options StealOptions(uint32_t threads) {
  util::ThreadPool::Options o;
  o.num_threads = threads;
  o.scheduler = util::SchedulerKind::kWorkStealing;
  return o;
}

uint64_t CounterValue(const char* name) {
  return metrics::Registry().GetCounter(name)->Value();
}

// Forced skew: the first index of the caller's slice blocks long enough
// that the workers drain their own slices and must steal the caller's
// remaining range to finish. Every index still runs exactly once, and at
// least one steal is observed.
TEST(ThreadPoolStealTest, SkewedWorkloadCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(StealOptions(4));
  ASSERT_EQ(pool.scheduler(), util::SchedulerKind::kWorkStealing);
  constexpr size_t kCount = 512;
  std::vector<std::atomic<uint32_t>> visits(kCount);
  const uint64_t steals_before = CounterValue("util.pool.steals_total");
  const uint64_t pops_before = CounterValue("util.pool.local_pops_total");
  pool.ParallelFor(0, kCount, 1, [&](size_t i) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
  }
  EXPECT_GT(CounterValue("util.pool.local_pops_total"), pops_before);
  EXPECT_GT(CounterValue("util.pool.steals_total"), steals_before);
  // The blocked caller makes the region maximally imbalanced; the gauge
  // reports max/mean busy-time x100, so it must exceed the balanced 100.
  EXPECT_GT(
      metrics::Registry().GetGauge("util.pool.region_imbalance_x100")->Value(),
      100);
}

// An exception thrown from a stolen range (while the submitting caller is
// still busy elsewhere) cancels the region, rethrows on the caller, and
// never runs an index twice. The pool stays usable afterwards.
TEST(ThreadPoolStealTest, ExceptionMidStealCancelsAndRethrows) {
  util::ThreadPool pool(StealOptions(4));
  constexpr size_t kCount = 512;
  std::vector<std::atomic<uint32_t>> visits(kCount);
  EXPECT_THROW(
      pool.ParallelFor(0, kCount, 1,
                       [&](size_t i) {
                         visits[i].fetch_add(1, std::memory_order_relaxed);
                         if (i == 0) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(20));
                         }
                         // Deep inside the tail half, so it is typically
                         // reached via a stolen range.
                         if (i == kCount - 5) {
                           throw std::runtime_error("boom in stolen range");
                         }
                       }),
      std::runtime_error);
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_LE(visits[i].load(), 1u) << "index " << i;
  }
  // Cancelled regions must leave no residue in the deques: the next
  // region covers its range exactly.
  std::atomic<int> total{0};
  pool.ParallelFor(0, 100, 1, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolStealTest, NestedParallelForRunsInline) {
  util::ThreadPool pool(StealOptions(4));
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t) {
    std::thread::id outer = std::this_thread::get_id();
    pool.ParallelFor(0, 4, 1, [&](size_t) {
      EXPECT_EQ(std::this_thread::get_id(), outer);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

// Degenerate regions (count <= grain, or capped to one participant) run
// inline on the calling thread: no job is opened, no worker woken.
TEST(ThreadPoolTest, DegenerateRegionRunsInlineOnCaller) {
  util::ThreadPool pool(StealOptions(4));
  const std::thread::id caller = std::this_thread::get_id();
  const uint64_t regions_before =
      CounterValue("util.pool.parallel_for_total");
  const uint64_t inline_before = CounterValue("util.pool.inline_for_total");

  // count <= grain: one chunk, nothing to parallelize.
  pool.ParallelFor(0, 8, 8, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  pool.ParallelFor(0, 5, 100, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  // max_threads == 1: explicit single-participant cap.
  pool.ParallelFor(
      0, 64, 1, [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*max_threads=*/1);

  EXPECT_EQ(CounterValue("util.pool.parallel_for_total"), regions_before);
  EXPECT_EQ(CounterValue("util.pool.inline_for_total"), inline_before + 3);
}

TEST(ThreadPoolTest, ChunkPullSchedulerStillSelectable) {
  util::ThreadPool::Options o;
  o.num_threads = 4;
  o.scheduler = util::SchedulerKind::kChunkPull;
  util::ThreadPool pool(o);
  EXPECT_EQ(pool.scheduler(), util::SchedulerKind::kChunkPull);
  constexpr size_t kCount = 300;
  std::vector<std::atomic<uint32_t>> visits(kCount);
  pool.ParallelFor(0, kCount, 3, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, EnvVarSelectsScheduler) {
  ASSERT_EQ(setenv("MEL_SCHEDULER", "chunk", 1), 0);
  {
    util::ThreadPool pool(2);
    EXPECT_EQ(pool.scheduler(), util::SchedulerKind::kChunkPull);
  }
  ASSERT_EQ(setenv("MEL_SCHEDULER", "steal", 1), 0);
  {
    util::ThreadPool pool(2);
    EXPECT_EQ(pool.scheduler(), util::SchedulerKind::kWorkStealing);
  }
  ASSERT_EQ(unsetenv("MEL_SCHEDULER"), 0);
  {
    util::ThreadPool pool(2);
    EXPECT_EQ(pool.scheduler(), util::SchedulerKind::kWorkStealing);
  }
}

// Many tiny regions submitted from racing threads: concurrent callers
// serialize on the pool, every region covers its range exactly once.
// Exercises region open/close, deque seeding, and the exit barrier under
// TSan from multiple submitter threads.
TEST(ThreadPoolStealStressTest, ManySmallRegionsFromManySubmitters) {
  util::ThreadPool pool(StealOptions(4));
  constexpr int kSubmitters = 4;
  constexpr int kRegionsEach = 60;
  constexpr size_t kItems = 64;
  std::atomic<uint64_t> grand_total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int r = 0; r < kRegionsEach; ++r) {
        std::atomic<uint64_t> region_total{0};
        pool.ParallelFor(0, kItems, 1, [&](size_t i) {
          region_total.fetch_add(i + 1, std::memory_order_relaxed);
        });
        ASSERT_EQ(region_total.load(), kItems * (kItems + 1) / 2)
            << "submitter " << s << " region " << r;
        grand_total.fetch_add(region_total.load());
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(grand_total.load(),
            uint64_t{kSubmitters} * kRegionsEach * kItems * (kItems + 1) / 2);
}

// ------------------------------------------------------- StealDeque

TEST(StealDequeTest, OwnerLifoThiefFifo) {
  util::StealDeque dq;
  EXPECT_TRUE(dq.MaybeEmpty());
  ASSERT_TRUE(dq.Push(1));
  ASSERT_TRUE(dq.Push(2));
  ASSERT_TRUE(dq.Push(3));
  EXPECT_FALSE(dq.MaybeEmpty());
  uint64_t v = 0;
  ASSERT_TRUE(dq.Pop(&v));  // owner pops the newest
  EXPECT_EQ(v, 3u);
  ASSERT_TRUE(dq.Steal(&v));  // thief takes the oldest
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(dq.Pop(&v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(dq.Pop(&v));
  EXPECT_FALSE(dq.Steal(&v));
  EXPECT_TRUE(dq.MaybeEmpty());
}

TEST(StealDequeTest, PushFailsWhenFull) {
  util::StealDeque dq;
  for (uint32_t i = 0; i < util::StealDeque::kCapacity; ++i) {
    ASSERT_TRUE(dq.Push(i));
  }
  EXPECT_FALSE(dq.Push(999));
  uint64_t v = 0;
  ASSERT_TRUE(dq.Steal(&v));
  EXPECT_EQ(v, 0u);  // a steal frees the oldest slot
  EXPECT_TRUE(dq.Push(999));
}

TEST(StealDequeTest, ConcurrentOwnerAndThievesLoseNothing) {
  util::StealDeque dq;
  constexpr uint64_t kValues = 20000;
  std::atomic<uint64_t> taken_sum{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      uint64_t v;
      while (!done.load(std::memory_order_acquire)) {
        if (dq.Steal(&v)) taken_sum.fetch_add(v);
      }
      while (dq.Steal(&v)) taken_sum.fetch_add(v);
    });
  }
  uint64_t owner_sum = 0;
  for (uint64_t i = 1; i <= kValues; ++i) {
    while (!dq.Push(i)) {  // full: drain a few ourselves
      uint64_t v;
      if (dq.Pop(&v)) owner_sum += v;
    }
    if ((i & 7) == 0) {
      uint64_t v;
      if (dq.Pop(&v)) owner_sum += v;
    }
  }
  uint64_t v;
  while (dq.Pop(&v)) owner_sum += v;
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  EXPECT_EQ(owner_sum + taken_sum.load(), kValues * (kValues + 1) / 2);
}

// ----------------------------------------------------- CpuTopology

TEST(CpuTopologyTest, ParseCpuList) {
  using util::internal::ParseCpuList;
  EXPECT_EQ(ParseCpuList("0"), (std::vector<uint32_t>{0}));
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(ParseCpuList("0-1,4,6-7"),
            (std::vector<uint32_t>{0, 1, 4, 6, 7}));
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("garbage").empty());
}

TEST(CpuTopologyTest, HostTopologyIsSane) {
  const util::CpuTopology& topo = util::HostTopology();
  ASSERT_GE(topo.cpus.size(), 1u);
  ASSERT_GE(topo.num_sockets, 1u);
  for (const auto& cpu : topo.cpus) {
    EXPECT_LT(cpu.socket, topo.num_sockets);
  }
  // Sorted socket-major so neighbouring workers share a socket.
  for (size_t i = 1; i < topo.cpus.size(); ++i) {
    EXPECT_LE(topo.cpus[i - 1].socket, topo.cpus[i].socket);
  }
  EXPECT_LT(util::CurrentCpuSocket(topo), topo.num_sockets);
}

}  // namespace
}  // namespace mel

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mel {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ----------------------------------------------------------------- Zipf

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (size_t r = 0; r < 100; ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfSampler zipf(50, 1.2);
  for (size_t r = 1; r < 50; ++r) {
    EXPECT_GT(zipf.Probability(0), zipf.Probability(r));
  }
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 0.1, 1e-9);
  }
}

TEST(ZipfTest, EmpiricalFrequencyTracksProbability) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(19);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), zipf.Probability(r),
                0.01);
  }
}

TEST(WeightedSampleTest, RespectsWeights) {
  Rng rng(21);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    size_t pick = WeightedSample(weights, &rng);
    ASSERT_LT(pick, 3u);
    ++counts[pick];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.2);
}

TEST(WeightedSampleTest, AllZeroReturnsSize) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(WeightedSample(weights, &rng), 2u);
  std::vector<double> empty;
  EXPECT_EQ(WeightedSample(empty, &rng), 0u);
}

// --------------------------------------------------------------- string

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("MiXeD Case 42!"), "mixed case 42!");
  EXPECT_EQ(AsciiLower(""), "");
}

TEST(StringUtilTest, SplitNonEmptyDropsEmptyFields) {
  auto parts = SplitNonEmpty("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2048), "2.0KB");
  EXPECT_EQ(HumanBytes(1536 * 1024 * 1024ULL), "1.5GB");
}

TEST(StringUtilTest, HumanNanos) {
  EXPECT_EQ(HumanNanos(500), "500ns");
  EXPECT_EQ(HumanNanos(1500), "1.5us");
  EXPECT_EQ(HumanNanos(2.5e6), "2.5ms");
  EXPECT_EQ(HumanNanos(3e9), "3.0s");
}

// ---------------------------------------------------------------- timer

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  int64_t a = timer.ElapsedNanos();
  int64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  int64_t before = timer.ElapsedNanos();
  timer.Restart();
  EXPECT_LE(timer.ElapsedNanos(), before);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  util::ThreadPool pool(0);
  uint32_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(pool.num_threads(), hw == 0 ? 4u : hw);
}

TEST(ThreadPoolTest, SharedIsASingleton) {
  EXPECT_EQ(&util::ThreadPool::Shared(), &util::ThreadPool::Shared());
  EXPECT_GE(util::ThreadPool::Shared().num_threads(), 1u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  for (size_t count : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, count, /*grain=*/3,
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, RespectsBeginOffsetAndGrainZero) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(4, 10, /*grain=*/0,
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i].load(), i >= 4 ? 1 : 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(0, 16, 1,
                   [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, MaxThreadsOneRunsInline) {
  util::ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(
      0, 16, 1, [&](size_t i) { seen[i] = std::this_thread::get_id(); },
      /*max_threads=*/1);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, NestedParallelForRunsSerially) {
  util::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t) {
    // The nested region must run inline on this thread — deadlock-free
    // even though all pool threads may already be inside the outer one.
    std::thread::id me = std::this_thread::get_id();
    pool.ParallelFor(0, 4, 1, [&](size_t) {
      EXPECT_EQ(std::this_thread::get_id(), me);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 8 * 4);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a throwing region and keep working.
  std::atomic<int> total{0};
  pool.ParallelFor(0, 50, 1, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPoolTest, SerialInlineExceptionPropagates) {
  util::ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 3, 1,
                                [&](size_t) {
                                  throw std::runtime_error("inline boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, BackToBackRegions) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> total{0};
    pool.ParallelFor(0, 20, 2, [&](size_t) { total.fetch_add(1); });
    ASSERT_EQ(total.load(), 20);
  }
}

}  // namespace
}  // namespace mel

// Property and adversarial tests for the vectorized kernel layer
// (util/simd). Every kernel variant the build supports — scalar, SSE4.2,
// AVX2 — is checked for bit-identity against independently computed
// ground truth (std::set_intersection and straight-line reference loops),
// over randomized inputs and the adversarial shapes that historically
// break block-compare intersections: duplicates inside and across vector
// windows, all-equal lists, fully disjoint ranges, and sizes straddling
// both the kGallopRatio dispatch split and the 8/4-lane vector widths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <span>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph_builder.h"
#include "util/random.h"
#include "util/simd/simd.h"
#include "util/sorted_intersect.h"

namespace mel {
namespace {

using util::simd::CpuFeatures;
using util::simd::KernelsFor;
using util::simd::Level;
using util::simd::LevelSupported;
using util::simd::ResolveLevel;

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (LevelSupported(Level::kSse4)) levels.push_back(Level::kSse4);
  if (LevelSupported(Level::kAvx2)) levels.push_back(Level::kAvx2);
  return levels;
}

uint32_t GroundTruthIntersect(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return static_cast<uint32_t>(out.size());
}

// Sorted list of `n` values drawn from [0, universe); duplicates allowed
// and frequent when universe is small.
std::vector<uint32_t> RandomSorted(Rng& rng, size_t n,
                                   uint64_t universe) {
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = static_cast<uint32_t>(rng.Uniform(universe));
  std::sort(v.begin(), v.end());
  return v;
}

// ------------------------------------------------------------ dispatch

TEST(SimdDispatchTest, ResolveLevelHonorsOverridesAndClamps) {
  CpuFeatures none;
  CpuFeatures sse;
  sse.sse4_2 = true;
  CpuFeatures all;
  all.sse4_2 = true;
  all.avx2 = true;

  // No override: best the host+build supports.
  EXPECT_EQ(ResolveLevel(nullptr, none), Level::kScalar);
  EXPECT_EQ(ResolveLevel("", none), Level::kScalar);

  // Explicit scalar always honored.
  EXPECT_EQ(ResolveLevel("scalar", all), Level::kScalar);

  // Requests above capability clamp down, never trap.
  EXPECT_EQ(ResolveLevel("avx2", none), Level::kScalar);
  EXPECT_EQ(ResolveLevel("avx2", sse),
            LevelSupported(Level::kSse4) ? Level::kSse4 : Level::kScalar);

  // Unknown strings fall back to auto-detection.
  EXPECT_EQ(ResolveLevel("turbo", none), Level::kScalar);

  // Within capability (and when the tier is built), the request sticks.
  if (LevelSupported(Level::kSse4)) {
    EXPECT_EQ(ResolveLevel("sse4", all), Level::kSse4);
  }
  if (LevelSupported(Level::kAvx2)) {
    EXPECT_EQ(ResolveLevel("avx2", all), Level::kAvx2);
  }
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(LevelSupported(Level::kScalar));
  const util::simd::KernelTable& t = KernelsFor(Level::kScalar);
  EXPECT_NE(t.merge_count, nullptr);
  EXPECT_NE(t.gallop_count, nullptr);
  EXPECT_NE(t.min_sum_spans, nullptr);
  EXPECT_NE(t.probe_scan, nullptr);
  EXPECT_NE(t.frontier_and_not, nullptr);
}

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(util::simd::LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(util::simd::LevelName(Level::kSse4), "sse4");
  EXPECT_STREQ(util::simd::LevelName(Level::kAvx2), "avx2");
}

// -------------------------------------------------- intersection kernels

void CheckIntersectAllVariants(const std::vector<uint32_t>& a,
                               const std::vector<uint32_t>& b) {
  const uint32_t expected = GroundTruthIntersect(a, b);
  for (Level level : SupportedLevels()) {
    const auto& t = KernelsFor(level);
    EXPECT_EQ(t.merge_count(a.data(), a.size(), b.data(), b.size()), expected)
        << "merge level=" << util::simd::LevelName(level)
        << " |a|=" << a.size() << " |b|=" << b.size();
    EXPECT_EQ(t.merge_count(b.data(), b.size(), a.data(), a.size()), expected)
        << "merge swapped level=" << util::simd::LevelName(level);
    // The gallop kernel is exact for any sorted pair, not just skewed
    // ones; check both orientations too.
    EXPECT_EQ(t.gallop_count(a.data(), a.size(), b.data(), b.size()),
              expected)
        << "gallop level=" << util::simd::LevelName(level)
        << " |a|=" << a.size() << " |b|=" << b.size();
    EXPECT_EQ(t.gallop_count(b.data(), b.size(), a.data(), a.size()),
              expected)
        << "gallop swapped level=" << util::simd::LevelName(level);
  }
  // The public dispatcher (what wlm.cc / two_hop_index.cc call).
  EXPECT_EQ(util::SortedIntersectCount(std::span<const uint32_t>(a),
                                       std::span<const uint32_t>(b)),
            expected);
}

TEST(SimdIntersectTest, AdversarialShapes) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> one = {7};
  const std::vector<uint32_t> run17(17, 42);  // all-equal, straddles lanes
  std::vector<uint32_t> evens, odds;
  for (uint32_t i = 0; i < 64; ++i) {
    evens.push_back(2 * i);
    odds.push_back(2 * i + 1);
  }

  CheckIntersectAllVariants(empty, empty);
  CheckIntersectAllVariants(empty, evens);
  CheckIntersectAllVariants(one, evens);
  CheckIntersectAllVariants(one, odds);
  CheckIntersectAllVariants(run17, run17);     // min-multiplicity = 17
  CheckIntersectAllVariants(run17, {41, 42});  // dup vs dup-free
  CheckIntersectAllVariants(evens, odds);      // fully disjoint, interleaved
  CheckIntersectAllVariants(evens, evens);     // identical lists

  // Duplicates positioned to span vector-window boundaries: a run of
  // nine 100s starting at index 7 crosses both the 8-lane AVX2 window
  // and the 4-lane SSE4 window edges.
  std::vector<uint32_t> cross(7, 1);
  cross.insert(cross.end(), 9, 100);
  cross.insert(cross.end(), {200, 201, 202, 203, 204, 205, 206, 207});
  std::vector<uint32_t> probe = {100, 100, 100, 150, 200, 205};
  CheckIntersectAllVariants(cross, probe);

  // Unsigned-compare edge: values with the sign bit set must order
  // correctly through the sign-bias trick.
  std::vector<uint32_t> high = {0x7FFFFFFEu, 0x7FFFFFFFu, 0x80000000u,
                                0x80000001u, 0xFFFFFFFEu, 0xFFFFFFFFu,
                                0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu};
  std::vector<uint32_t> high2 = {0x0u,        0x7FFFFFFFu, 0x80000000u,
                                 0x80000002u, 0xFFFFFFFFu, 0xFFFFFFFFu,
                                 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu};
  CheckIntersectAllVariants(high, high2);
}

TEST(SimdIntersectTest, SizesStraddlingDispatchAndLaneBoundaries) {
  Rng rng(DeriveSeed(0xC0FFEE, 1));
  // Sizes around the vector widths (4, 8) and around the ratio split:
  // |b| = |a| * kGallopRatio ± 1 flips SortedIntersectCount between the
  // merge and gallop kernels.
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33};
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      auto a = RandomSorted(rng, na, 64);
      auto b = RandomSorted(rng, nb, 64);
      CheckIntersectAllVariants(a, b);
    }
  }
  for (size_t na : {2u, 5u, 11u}) {
    for (long delta : {-1L, 0L, 1L}) {
      const size_t nb =
          static_cast<size_t>(static_cast<long>(na * util::kGallopRatio) +
                              delta);
      auto a = RandomSorted(rng, na, 1000);
      auto b = RandomSorted(rng, nb, 1000);
      CheckIntersectAllVariants(a, b);
    }
  }
}

TEST(SimdIntersectTest, RandomizedAgainstSetIntersection) {
  Rng rng(DeriveSeed(0xC0FFEE, 2));
  for (int round = 0; round < 200; ++round) {
    const size_t na = rng.Uniform(200);
    const size_t nb = rng.Uniform(200);
    // Alternate between duplicate-heavy (tiny universe) and sparse.
    const uint64_t universe = (round % 2 == 0) ? 32 : 4096;
    auto a = RandomSorted(rng, na, universe);
    auto b = RandomSorted(rng, nb, universe);
    CheckIntersectAllVariants(a, b);
  }
}

// ------------------------------------------------------ min-sum kernel

struct MinSumResult {
  uint32_t dmin;
  std::vector<uint64_t> spans;
};

MinSumResult RunMinSum(const util::simd::KernelTable& t,
                       const std::vector<uint64_t>& outs,
                       const std::vector<uint64_t>& ins, uint32_t seed,
                       uint64_t base) {
  MinSumResult r;
  r.spans.resize(outs.size());
  size_t n_spans = 0;
  r.dmin = t.min_sum_spans(outs.data(), outs.size(), ins.data(), ins.size(),
                           seed, base, r.spans.data(), &n_spans);
  r.spans.resize(n_spans);
  return r;
}

// Straight-line reference: intersect by node, min over distance sums,
// collect out-indices achieving the min.
MinSumResult ReferenceMinSum(const std::vector<uint64_t>& outs,
                             const std::vector<uint64_t>& ins, uint32_t seed,
                             uint64_t base) {
  MinSumResult r;
  r.dmin = seed;
  for (size_t i = 0; i < outs.size(); ++i) {
    for (size_t j = 0; j < ins.size(); ++j) {
      if (static_cast<uint32_t>(outs[i]) != static_cast<uint32_t>(ins[j])) {
        continue;
      }
      const uint32_t d = static_cast<uint32_t>(outs[i] >> 32) +
                         static_cast<uint32_t>(ins[j] >> 32);
      if (d < r.dmin) {
        r.dmin = d;
        r.spans.clear();
        r.spans.push_back(base + i);
      } else if (d == r.dmin) {
        r.spans.push_back(base + i);
      }
    }
  }
  return r;
}

// Sorted-unique-by-node packed label list.
std::vector<uint64_t> RandomLabels(Rng& rng, size_t n,
                                   uint64_t universe, uint32_t max_dist) {
  std::vector<uint32_t> nodes = RandomSorted(rng, n, universe);
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::vector<uint64_t> labels;
  labels.reserve(nodes.size());
  for (uint32_t node : nodes) {
    const uint64_t dist = rng.Uniform(max_dist + 1);
    labels.push_back((dist << 32) | node);
  }
  return labels;
}

TEST(SimdMinSumTest, MatchesReferenceAcrossVariants) {
  Rng rng(DeriveSeed(0xC0FFEE, 3));
  for (int round = 0; round < 200; ++round) {
    const auto outs = RandomLabels(rng, rng.Uniform(64), 96, 4);
    const auto ins = RandomLabels(rng, rng.Uniform(64), 96, 4);
    // Seed sometimes low enough that no match beats it (spans stay
    // empty), sometimes kInf-like.
    const uint32_t seed =
        (round % 3 == 0) ? 1u : std::numeric_limits<uint32_t>::max();
    const uint64_t base = rng.Uniform(1 << 20);
    const MinSumResult expected = ReferenceMinSum(outs, ins, seed, base);
    for (Level level : SupportedLevels()) {
      const MinSumResult got =
          RunMinSum(KernelsFor(level), outs, ins, seed, base);
      EXPECT_EQ(got.dmin, expected.dmin)
          << "level=" << util::simd::LevelName(level) << " round=" << round;
      EXPECT_EQ(got.spans, expected.spans)
          << "level=" << util::simd::LevelName(level) << " round=" << round;
    }
  }
}

TEST(SimdMinSumTest, EmptyAndDegenerateInputs) {
  const std::vector<uint64_t> empty;
  const std::vector<uint64_t> one = {(uint64_t{2} << 32) | 5};
  for (Level level : SupportedLevels()) {
    const auto& t = KernelsFor(level);
    EXPECT_EQ(RunMinSum(t, empty, empty, 99, 0).dmin, 99u);
    EXPECT_EQ(RunMinSum(t, one, empty, 99, 0).dmin, 99u);
    EXPECT_EQ(RunMinSum(t, empty, one, 99, 0).dmin, 99u);
    const MinSumResult hit = RunMinSum(t, one, one, 99, 10);
    EXPECT_EQ(hit.dmin, 4u);
    EXPECT_EQ(hit.spans, std::vector<uint64_t>({10}));
    // Tie with the seed appends; worse-than-seed leaves spans empty.
    EXPECT_EQ(RunMinSum(t, one, one, 4, 10).spans,
              std::vector<uint64_t>({10}));
    EXPECT_TRUE(RunMinSum(t, one, one, 3, 10).spans.empty());
  }
}

// -------------------------------------------------------- probe kernel

size_t ReferenceProbe(const std::vector<uint64_t>& keys, size_t mask,
                      uint64_t key, size_t start) {
  size_t idx = start;
  while (keys[idx] != key && keys[idx] != 0) idx = (idx + 1) & mask;
  return idx;
}

TEST(SimdProbeTest, MatchesReferenceIncludingWrap) {
  Rng rng(DeriveSeed(0xC0FFEE, 4));
  for (size_t cap : {4u, 8u, 16u, 64u, 1024u}) {
    const size_t mask = cap - 1;
    std::vector<uint64_t> keys(cap, 0);
    // ~60% load of distinct nonzero keys.
    std::vector<uint64_t> present;
    for (size_t i = 0; i < cap * 6 / 10; ++i) {
      const uint64_t k = rng.Next() | 1;  // nonzero
      const size_t idx =
          ReferenceProbe(keys, mask, k, (k * 0x9E3779B97F4A7C15ull) & mask);
      if (keys[idx] == 0) {
        keys[idx] = k;
        present.push_back(k);
      }
    }
    for (int round = 0; round < 100; ++round) {
      const uint64_t key = (round % 2 == 0 && !present.empty())
                               ? present[rng.Uniform(present.size())]
                               : (rng.Next() | 1);
      const size_t start = rng.Uniform(cap);  // forces wrap scans too
      const size_t expected = ReferenceProbe(keys, mask, key, start);
      for (Level level : SupportedLevels()) {
        EXPECT_EQ(KernelsFor(level).probe_scan(keys.data(), mask, key, start),
                  expected)
            << "level=" << util::simd::LevelName(level) << " cap=" << cap
            << " start=" << start;
      }
    }
  }
}

// ----------------------------------------------------- frontier kernel

TEST(SimdFrontierTest, MatchesScalarAndNot) {
  Rng rng(DeriveSeed(0xC0FFEE, 5));
  for (size_t nwords : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 64u, 129u}) {
    std::vector<uint64_t> next(nwords), visited(nwords);
    for (auto& w : next) w = rng.Next();
    for (auto& w : visited) w = rng.Next();
    std::vector<uint64_t> expected(nwords);
    for (size_t w = 0; w < nwords; ++w) expected[w] = next[w] & ~visited[w];
    for (Level level : SupportedLevels()) {
      std::vector<uint64_t> got = next;
      KernelsFor(level).frontier_and_not(got.data(), visited.data(), nwords);
      EXPECT_EQ(got, expected)
          << "level=" << util::simd::LevelName(level)
          << " nwords=" << nwords;
    }
  }
}

// ------------------------------------------------- BFS dense-vs-sparse

// Dense graphs force the bitset frontier path; the resulting distances
// must agree with a plain reference BFS, and Touched() must be the same
// set per level.
TEST(SimdBfsTest, DenseLevelsMatchReferenceBfs) {
  Rng rng(DeriveSeed(0xC0FFEE, 6));
  const uint32_t n = 200;
  graph::GraphBuilder builder(n);
  for (uint32_t u = 0; u < n; ++u) {
    // ~40 out-edges per node: the second BFS level covers most of the
    // graph, comfortably past the 1/8 density threshold.
    for (int e = 0; e < 40; ++e) {
      const uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
      if (v != u) builder.AddEdge(u, v);
    }
  }
  const graph::DirectedGraph g = std::move(builder).Build();

  graph::BfsScratch scratch(n);
  for (int round = 0; round < 8; ++round) {
    const graph::NodeId source =
        static_cast<graph::NodeId>(rng.Uniform(n));
    const uint32_t max_hops = 1 + static_cast<uint32_t>(rng.Uniform(4));
    scratch.RunForward(g, source, max_hops);

    // Reference: textbook queue BFS.
    std::vector<uint32_t> ref(n, graph::kUnreachable);
    std::vector<graph::NodeId> queue = {source};
    ref[source] = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
      const graph::NodeId u = queue[head];
      if (ref[u] >= max_hops) continue;
      for (graph::NodeId v : g.OutNeighbors(u)) {
        if (ref[v] == graph::kUnreachable) {
          ref[v] = ref[u] + 1;
          queue.push_back(v);
        }
      }
    }

    size_t touched_count = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(scratch.Distance(v), ref[v]) << "v=" << v;
      if (ref[v] != graph::kUnreachable) ++touched_count;
    }
    EXPECT_EQ(scratch.Touched().size(), touched_count);
    // Touched() is grouped by level: distances must be non-decreasing.
    uint32_t prev = 0;
    for (graph::NodeId v : scratch.Touched()) {
      EXPECT_GE(scratch.Distance(v), prev);
      prev = scratch.Distance(v);
    }
  }
}

}  // namespace
}  // namespace mel

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "gen/kb_generator.h"
#include "gen/social_graph_generator.h"
#include "gen/tweet_generator.h"
#include "gen/workload.h"
#include "graph/stats.h"
#include "util/random.h"

namespace mel::gen {
namespace {

KbGenOptions SmallKb() {
  KbGenOptions opts;
  opts.num_entities = 300;
  opts.num_topics = 10;
  opts.num_ambiguous_surfaces = 80;
  opts.seed = 1;
  return opts;
}

SocialGenOptions SmallSocial() {
  SocialGenOptions opts;
  opts.num_users = 400;
  opts.num_topics = 10;
  opts.avg_followees = 10;
  opts.seed = 2;
  return opts;
}

TweetGenOptions SmallTweets() {
  TweetGenOptions opts;
  opts.num_tweets = 3000;
  opts.seed = 3;
  return opts;
}

// ----------------------------------------------------------------- kb gen

TEST(KbGeneratorTest, BasicShape) {
  auto world = GenerateKnowledgebase(SmallKb());
  const auto& kb = world.knowledgebase;
  EXPECT_EQ(kb.num_entities(), 300u);
  EXPECT_TRUE(kb.finalized());
  EXPECT_EQ(world.entity_topic.size(), 300u);
  EXPECT_EQ(world.canonical_surface.size(), 300u);
  EXPECT_GT(world.ambiguous_surfaces.size(), 40u);
}

TEST(KbGeneratorTest, Deterministic) {
  auto a = GenerateKnowledgebase(SmallKb());
  auto b = GenerateKnowledgebase(SmallKb());
  EXPECT_EQ(a.ambiguous_surfaces, b.ambiguous_surfaces);
  EXPECT_EQ(a.entity_topic, b.entity_topic);
  EXPECT_EQ(a.canonical_surface, b.canonical_surface);
}

TEST(KbGeneratorTest, AmbiguousSurfacesHaveMultipleCandidates) {
  auto world = GenerateKnowledgebase(SmallKb());
  for (size_t i = 0; i < world.ambiguous_surfaces.size(); ++i) {
    auto cands = world.knowledgebase.Candidates(world.ambiguous_surfaces[i]);
    EXPECT_GE(cands.size(), 2u) << world.ambiguous_surfaces[i];
    EXPECT_EQ(cands.size(), world.surface_entities[i].size());
  }
}

TEST(KbGeneratorTest, CanonicalSurfacesAreUnambiguous) {
  auto world = GenerateKnowledgebase(SmallKb());
  for (kb::EntityId e = 0; e < 300; ++e) {
    auto cands = world.knowledgebase.Candidates(world.canonical_surface[e]);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].entity, e);
  }
}

TEST(KbGeneratorTest, EntityAmbiguousSurfacesBackReference) {
  auto world = GenerateKnowledgebase(SmallKb());
  for (kb::EntityId e = 0; e < 300; ++e) {
    for (uint32_t sid : world.entity_ambiguous_surfaces[e]) {
      const auto& entities = world.surface_entities[sid];
      EXPECT_TRUE(std::find(entities.begin(), entities.end(), e) !=
                  entities.end());
    }
  }
}

TEST(KbGeneratorTest, HyperlinksMostlyWithinTopic) {
  auto world = GenerateKnowledgebase(SmallKb());
  uint64_t within = 0, across = 0;
  for (kb::EntityId e = 0; e < 300; ++e) {
    for (kb::EntityId t : world.knowledgebase.Outlinks(e)) {
      if (world.entity_topic[e] == world.entity_topic[t]) {
        ++within;
      } else {
        ++across;
      }
    }
  }
  EXPECT_GT(within, across * 2);
}

TEST(KbGeneratorTest, TopicPartition) {
  auto world = GenerateKnowledgebase(SmallKb());
  size_t total = 0;
  for (const auto& members : world.topic_entities) total += members.size();
  EXPECT_EQ(total, 300u);
}

TEST(SyntheticNameTest, NonEmptyAndLowercase) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string name = SyntheticName(&rng);
    EXPECT_GE(name.size(), 4u);
    for (char c : name) EXPECT_TRUE(c >= 'a' && c <= 'z');
  }
}

// -------------------------------------------------------------- social gen

TEST(SocialGeneratorTest, BasicShape) {
  auto social = GenerateSocialGraph(SmallSocial());
  EXPECT_EQ(social.graph.num_nodes(), 400u);
  EXPECT_GT(social.graph.num_edges(), 400u * 3);
  EXPECT_EQ(social.user_topics.size(), 400u);
  for (const auto& topics : social.user_topics) {
    EXPECT_GE(topics.size(), 1u);
    EXPECT_LE(topics.size(), 3u);
  }
}

TEST(SocialGeneratorTest, HubsAttractFollowers) {
  auto social = GenerateSocialGraph(SmallSocial());
  // Average in-degree of hubs must far exceed the global average.
  double hub_in = 0;
  uint32_t hub_count = 0;
  for (const auto& hubs : social.topic_hubs) {
    for (uint32_t h : hubs) {
      hub_in += social.graph.InDegree(h);
      ++hub_count;
    }
  }
  ASSERT_GT(hub_count, 0u);
  hub_in /= hub_count;
  double avg_in =
      static_cast<double>(social.graph.num_edges()) / social.graph.num_nodes();
  EXPECT_GT(hub_in, 3 * avg_in);
}

TEST(SocialGeneratorTest, TopicHomophily) {
  auto social = GenerateSocialGraph(SmallSocial());
  // Most follow edges connect users sharing a topic.
  uint64_t shared = 0, total = 0;
  for (uint32_t u = 0; u < social.graph.num_nodes(); ++u) {
    std::unordered_set<uint32_t> mine(social.user_topics[u].begin(),
                                      social.user_topics[u].end());
    for (uint32_t v : social.graph.OutNeighbors(u)) {
      ++total;
      for (uint32_t t : social.user_topics[v]) {
        if (mine.contains(t)) {
          ++shared;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(shared) / total, 0.5);
}

TEST(SocialGeneratorTest, Deterministic) {
  auto a = GenerateSocialGraph(SmallSocial());
  auto b = GenerateSocialGraph(SmallSocial());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.user_topics, b.user_topics);
}

// --------------------------------------------------------------- tweet gen

class TweetGenFixture : public ::testing::Test {
 protected:
  TweetGenFixture()
      : kb_world_(GenerateKnowledgebase(SmallKb())),
        social_(GenerateSocialGraph(SmallSocial())),
        corpus_(GenerateTweets(kb_world_, social_, SmallTweets())) {}

  GeneratedKb kb_world_;
  GeneratedSocial social_;
  Corpus corpus_;
};

TEST_F(TweetGenFixture, BasicShape) {
  EXPECT_EQ(corpus_.tweets.size(), 3000u);
  EXPECT_EQ(corpus_.tweets_by_user.size(), 400u);
  EXPECT_EQ(corpus_.events.size(), SmallTweets().num_burst_events);
}

TEST_F(TweetGenFixture, SortedByTimeWithSequentialIds) {
  for (size_t i = 0; i + 1 < corpus_.tweets.size(); ++i) {
    EXPECT_LE(corpus_.tweets[i].tweet.time, corpus_.tweets[i + 1].tweet.time);
    EXPECT_EQ(corpus_.tweets[i].tweet.id, i);
  }
}

TEST_F(TweetGenFixture, EveryTweetHasAtLeastOneLabeledMention) {
  for (const auto& lt : corpus_.tweets) {
    EXPECT_GE(lt.mentions.size(), 1u);
    EXPECT_LE(lt.mentions.size(), 4u);
  }
}

TEST_F(TweetGenFixture, LabelsAreValidCandidates) {
  // Every labeled surface must resolve to candidates containing the truth.
  const auto& kb = kb_world_.knowledgebase;
  for (const auto& lt : corpus_.tweets) {
    for (const auto& m : lt.mentions) {
      auto cands = kb.Candidates(m.surface);
      ASSERT_FALSE(cands.empty()) << m.surface;
      bool found = false;
      for (const auto& c : cands) found = found || c.entity == m.truth;
      EXPECT_TRUE(found) << m.surface;
    }
  }
}

TEST_F(TweetGenFixture, SurfacesAppearInText) {
  for (size_t i = 0; i < 200; ++i) {
    const auto& lt = corpus_.tweets[i];
    for (const auto& m : lt.mentions) {
      EXPECT_NE(lt.tweet.text.find(m.surface), std::string::npos)
          << "surface '" << m.surface << "' missing from '" << lt.tweet.text
          << "'";
    }
  }
}

TEST_F(TweetGenFixture, TweetsByUserGroupsCorrectly) {
  size_t total = 0;
  for (uint32_t u = 0; u < corpus_.tweets_by_user.size(); ++u) {
    for (uint32_t ti : corpus_.tweets_by_user[u]) {
      EXPECT_EQ(corpus_.tweets[ti].tweet.user, u);
      ++total;
    }
  }
  EXPECT_EQ(total, corpus_.tweets.size());
}

TEST_F(TweetGenFixture, BurstsConcentrateMentions) {
  // During an event window, the bursting entity should be mentioned much
  // more often than in an equally long window elsewhere.
  const auto& event = corpus_.events[0];
  uint32_t during = 0, before = 0;
  for (const auto& lt : corpus_.tweets) {
    for (const auto& m : lt.mentions) {
      if (m.truth != event.entity) continue;
      if (lt.tweet.time >= event.begin && lt.tweet.time < event.end) {
        ++during;
      }
      kb::Timestamp shift = event.begin - 30 * kb::kSecondsPerDay;
      if (lt.tweet.time >= shift &&
          lt.tweet.time < shift + (event.end - event.begin)) {
        ++before;
      }
    }
  }
  EXPECT_GT(during, before);
}

TEST_F(TweetGenFixture, ActivityIsSkewed) {
  // Zipf activity: the most active user should have far more tweets than
  // the median user.
  std::vector<size_t> counts;
  for (const auto& tweets : corpus_.tweets_by_user) {
    counts.push_back(tweets.size());
  }
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts.back(), 20 * std::max<size_t>(1, counts[counts.size() / 2]));
}

// ---------------------------------------------------------------- workload

TEST_F(TweetGenFixture, FilterActiveUsers) {
  auto d5 = FilterActiveUsers(corpus_, 5);
  EXPECT_EQ(d5.name, "D5");
  for (uint32_t u : d5.users) {
    EXPECT_GE(corpus_.tweets_by_user[u].size(), 5u);
  }
  auto d50 = FilterActiveUsers(corpus_, 50);
  EXPECT_LT(d50.users.size(), d5.users.size());
  EXPECT_LT(d50.tweet_indices.size(), d5.tweet_indices.size());
}

TEST_F(TweetGenFixture, SampleInactiveUsers) {
  auto test_split = SampleInactiveUsers(corpus_, 5, 50, 7);
  EXPECT_LE(test_split.users.size(), 50u);
  EXPECT_GT(test_split.users.size(), 0u);
  for (uint32_t u : test_split.users) {
    EXPECT_LT(corpus_.tweets_by_user[u].size(), 5u);
  }
  // Deterministic.
  auto again = SampleInactiveUsers(corpus_, 5, 50, 7);
  EXPECT_EQ(test_split.users, again.users);
}

TEST_F(TweetGenFixture, OracleComplementationNoiseless) {
  World world{std::move(kb_world_), std::move(social_), std::move(corpus_)};
  auto split = FilterActiveUsers(world.corpus, 5);
  kb::ComplementedKnowledgebase ckb(&world.kb());
  ComplementWithOracle(world, split, 0.0, 1, &ckb);
  // Total links = total labeled mentions in split.
  auto stats = ComputeSplitStats(world.corpus, split);
  EXPECT_EQ(ckb.TotalLinks(), stats.num_mentions);
  // Every link points at the true entity: recheck one tweet.
  uint32_t ti = split.tweet_indices[0];
  const auto& lt = world.corpus.tweets[ti];
  EXPECT_GE(ckb.LinkedTweetCount(lt.mentions[0].truth), 1u);
}

TEST_F(TweetGenFixture, OracleComplementationWithNoiseKeepsTotal) {
  World world{std::move(kb_world_), std::move(social_), std::move(corpus_)};
  auto split = FilterActiveUsers(world.corpus, 5);
  kb::ComplementedKnowledgebase clean(&world.kb());
  kb::ComplementedKnowledgebase noisy(&world.kb());
  ComplementWithOracle(world, split, 0.0, 1, &clean);
  ComplementWithOracle(world, split, 0.4, 1, &noisy);
  EXPECT_EQ(clean.TotalLinks(), noisy.TotalLinks());
}

TEST_F(TweetGenFixture, SplitStats) {
  auto split = FilterActiveUsers(corpus_, 1);
  auto stats = ComputeSplitStats(corpus_, split);
  EXPECT_EQ(stats.num_tweets, corpus_.tweets.size());
  EXPECT_GE(stats.mentions_per_tweet, 1.0);
}

// ---------------------------------------------------------- seed plumbing

TEST(DeriveSeedTest, DeterministicAndStreamSeparated) {
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  // Distinct streams and distinct masters decorrelate.
  std::set<uint64_t> seen;
  for (uint64_t stream = 0; stream < 64; ++stream) {
    seen.insert(DeriveSeed(42, stream));
    seen.insert(DeriveSeed(43, stream));
  }
  EXPECT_EQ(seen.size(), 128u);
}

TEST(WithMasterSeedTest, WorldsAreBitReproducible) {
  WorldOptions opts;
  opts.kb = SmallKb();
  opts.kb.num_entities = 80;
  opts.social = SmallSocial();
  opts.social.num_users = 60;
  opts.tweets = SmallTweets();
  opts.tweets.num_tweets = 400;

  World a = GenerateWorld(WithMasterSeed(opts, 0xABCDEFull));
  World b = GenerateWorld(WithMasterSeed(opts, 0xABCDEFull));

  ASSERT_EQ(a.kb().num_entities(), b.kb().num_entities());
  ASSERT_EQ(a.social.graph.num_edges(), b.social.graph.num_edges());
  for (graph::NodeId u = 0; u < a.social.graph.num_nodes(); ++u) {
    auto na = a.social.graph.OutNeighbors(u);
    auto nb = b.social.graph.OutNeighbors(u);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
  ASSERT_EQ(a.corpus.tweets.size(), b.corpus.tweets.size());
  for (size_t i = 0; i < a.corpus.tweets.size(); ++i) {
    const auto& ta = a.corpus.tweets[i].tweet;
    const auto& tb = b.corpus.tweets[i].tweet;
    ASSERT_EQ(ta.user, tb.user);
    ASSERT_EQ(ta.time, tb.time);
    ASSERT_EQ(ta.text, tb.text);
  }

  // A different master seed changes all three generator streams.
  World c = GenerateWorld(WithMasterSeed(opts, 0xABCDF0ull));
  bool same_graph = a.social.graph.num_edges() == c.social.graph.num_edges();
  bool same_corpus =
      a.corpus.tweets.size() == c.corpus.tweets.size() &&
      a.corpus.tweets[0].tweet.text == c.corpus.tweets[0].tweet.text;
  EXPECT_FALSE(same_graph && same_corpus);
}

TEST(GenerateWorldTest, AlignsTopics) {
  WorldOptions opts;
  opts.kb = SmallKb();
  opts.kb.num_topics = 7;
  opts.social = SmallSocial();
  opts.social.num_topics = 99;  // should be overridden
  opts.tweets = SmallTweets();
  opts.tweets.num_tweets = 500;
  World world = GenerateWorld(opts);
  for (const auto& topics : world.social.user_topics) {
    for (uint32_t t : topics) EXPECT_LT(t, 7u);
  }
}

}  // namespace
}  // namespace mel::gen

// Reproduces Table 4: effectiveness of user interest (alpha=1), entity
// recency (beta=1), and entity popularity (gamma=1) for entity linking,
// against the full combination.

#include <cstdio>

#include "eval/harness.h"

int main() {
  using namespace mel;
  std::printf("=== Table 4: single features vs all features ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  struct Row {
    const char* label;
    double alpha, beta, gamma;
  };
  const Row rows[] = {
      {"alpha=1 (interest)", 1, 0, 0},
      {"beta=1  (recency)", 0, 1, 0},
      {"gamma=1 (popularity)", 0, 0, 1},
      {"all features (.6/.3/.1)", 0.6, 0.3, 0.1},
  };

  std::printf("%-26s %10s %10s\n", "configuration", "tweet", "mention");
  for (const Row& row : rows) {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    options.alpha = row.alpha;
    options.beta = row.beta;
    options.gamma = row.gamma;
    auto acc = harness.Evaluate(options).accuracy();
    std::printf("%-26s %10.4f %10.4f\n", row.label, acc.TweetAccuracy(),
                acc.MentionAccuracy());
  }
  std::printf(
      "\nPaper shape check (Table 4): all-features highest; interest is "
      "the strongest single feature; recency beats popularity.\n");
  return 0;
}

// Startup-latency A/B for the MEL3 index tier: how long until a freshly
// started process can answer its first reachability query?
//
//   deserialize : TwoHopIndex::Load       — read + verify + copy every
//                 byte into owned heap arenas (the pre-mmap story).
//   mmap        : TwoHopIndex::LoadMapped — map the file, validate the
//                 header/table/offset arrays, bind spans. Load time is
//                 independent of arena size; payload pages fault in
//                 lazily on first query.
//
// Both warm (page cache hot) and cold (best-effort page-cache eviction
// via posix_fadvise(DONTNEED)) paths are measured, plus the first-query
// latency each load mode pays afterwards. Full mode asserts the mmap
// load is >= 10x faster than the deserializing load — the contract
// claimed in docs/PERFORMANCE.md. Results go to bench.startup.* gauges
// and the BENCH_startup.json trajectory sidecar checked by
// scripts/verify.sh.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>
#include <vector>

#include "gen/social_graph_generator.h"
#include "reach/distance_label_index.h"
#include "reach/two_hop_index.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using mel::graph::NodeId;

// Best-effort page-cache eviction for `path`: sync dirty pages, then ask
// the kernel to drop the clean ones. Without root there is no guaranteed
// drop, so "cold" numbers are a floor on the real cold-start cost.
void EvictFromPageCache(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
#ifdef POSIX_FADV_DONTNEED
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  ::close(fd);
}

struct LoadStats {
  double warm_ns = 0;  // min over repetitions, page cache hot
  double cold_ns = 0;  // min over repetitions, cache evicted first
  double first_query_ns = 0;
};

struct StartupResult {
  uint32_t users = 0;
  uint64_t file_bytes = 0;
  uint64_t index_bytes = 0;
  LoadStats deserialize;
  LoadStats mmap;
  double speedup_warm = 0;  // deserialize.warm_ns / mmap.warm_ns
};

// One measured load via `load()` (returns the loaded index so the first
// query can be timed against it). `reps` loads keep the minimum — load
// time has no steady state to average over, the floor is the signal.
template <typename LoadFn>
LoadStats MeasureLoads(const std::string& path, LoadFn load, int reps,
                       NodeId qu, NodeId qv) {
  LoadStats stats;
  stats.warm_ns = 1e18;
  stats.cold_ns = 1e18;
  // Warm-up: prime the page cache and any lazy allocator state.
  { auto index = load(); (void)index; }
  for (int r = 0; r < reps; ++r) {
    mel::WallTimer timer;
    auto index = load();
    stats.warm_ns =
        std::min(stats.warm_ns, static_cast<double>(timer.ElapsedNanos()));
    if (r == 0) {
      mel::WallTimer qt;
      double s = index.Score(qu, qv);
      stats.first_query_ns = static_cast<double>(qt.ElapsedNanos());
      if (s < -1) std::printf("impossible %f", s);
    }
  }
  for (int r = 0; r < reps; ++r) {
    EvictFromPageCache(path);
    mel::WallTimer timer;
    auto index = load();
    stats.cold_ns =
        std::min(stats.cold_ns, static_cast<double>(timer.ElapsedNanos()));
    (void)index;
  }
  return stats;
}

StartupResult RunStartupAb(uint32_t users, int reps) {
  using namespace mel;
  gen::SocialGenOptions sopts;
  sopts.num_users = users;
  sopts.num_topics = 15;
  sopts.seed = 5;
  auto social = gen::GenerateSocialGraph(sopts);
  auto two_hop = reach::TwoHopIndex::Build(&social.graph, 5);

  const std::string path = "bench_index_startup.2hop.mel3";
  if (!two_hop.Save(path).ok()) {
    std::fprintf(stderr, "save failed\n");
    std::abort();
  }

  Rng rng(99);
  const NodeId qu = static_cast<NodeId>(rng.Uniform(users));
  const NodeId qv = static_cast<NodeId>(rng.Uniform(users));

  StartupResult result;
  result.users = users;
  result.index_bytes = two_hop.IndexSizeBytes();
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    result.file_bytes = static_cast<uint64_t>(f.tellg());
  }

  result.deserialize = MeasureLoads(
      path,
      [&] {
        auto loaded = reach::TwoHopIndex::Load(path, &social.graph);
        if (!loaded.ok()) {
          std::fprintf(stderr, "deserialize load failed: %s\n",
                       loaded.status().message().c_str());
          std::abort();
        }
        return std::move(loaded).value();
      },
      reps, qu, qv);

  result.mmap = MeasureLoads(
      path,
      [&] {
        auto loaded = reach::TwoHopIndex::LoadMapped(path, &social.graph);
        if (!loaded.ok()) {
          std::fprintf(stderr, "mmap load failed: %s\n",
                       loaded.status().message().c_str());
          std::abort();
        }
        return std::move(loaded).value();
      },
      reps, qu, qv);

  result.speedup_warm = result.deserialize.warm_ns / result.mmap.warm_ns;

  // The two load modes must answer identically — spot-check a query
  // sample before trusting the timing comparison.
  {
    auto a = reach::TwoHopIndex::Load(path, &social.graph);
    auto b = reach::TwoHopIndex::LoadMapped(path, &social.graph);
    Rng check_rng(7);
    for (int i = 0; i < 2000; ++i) {
      const NodeId u = static_cast<NodeId>(check_rng.Uniform(users));
      const NodeId v = static_cast<NodeId>(check_rng.Uniform(users));
      if (a.value().Score(u, v) != b.value().Score(u, v)) {
        std::fprintf(stderr, "load-mode mismatch at pair (%u, %u)\n", u, v);
        std::abort();
      }
    }
  }

  std::remove(path.c_str());

  std::printf(
      "\n=== Index startup (2-hop, %u users, %s file, %s arenas) ===\n",
      users, HumanBytes(result.file_bytes).c_str(),
      HumanBytes(result.index_bytes).c_str());
  std::printf("deserialize  : warm %s, cold %s, first query %s\n",
              HumanNanos(result.deserialize.warm_ns).c_str(),
              HumanNanos(result.deserialize.cold_ns).c_str(),
              HumanNanos(result.deserialize.first_query_ns).c_str());
  std::printf("mmap         : warm %s, cold %s, first query %s\n",
              HumanNanos(result.mmap.warm_ns).c_str(),
              HumanNanos(result.mmap.cold_ns).c_str(),
              HumanNanos(result.mmap.first_query_ns).c_str());
  std::printf("warm speedup : %.1fx (mmap vs deserialize)\n",
              result.speedup_warm);

  auto& reg = metrics::Registry();
  reg.GetGauge("bench.startup.file_bytes")
      ->Set(static_cast<int64_t>(result.file_bytes));
  reg.GetGauge("bench.startup.deserialize_warm_ns")
      ->Set(static_cast<int64_t>(result.deserialize.warm_ns));
  reg.GetGauge("bench.startup.deserialize_cold_ns")
      ->Set(static_cast<int64_t>(result.deserialize.cold_ns));
  reg.GetGauge("bench.startup.mmap_warm_ns")
      ->Set(static_cast<int64_t>(result.mmap.warm_ns));
  reg.GetGauge("bench.startup.mmap_cold_ns")
      ->Set(static_cast<int64_t>(result.mmap.cold_ns));
  reg.GetGauge("bench.startup.mmap_first_query_ns")
      ->Set(static_cast<int64_t>(result.mmap.first_query_ns));
  return result;
}

// DLI side dish: same A/B on the distance-label ablation, printed only
// (the asserted contract and the sidecar track the primary backend).
void RunDliStartup(uint32_t users, int reps) {
  using namespace mel;
  gen::SocialGenOptions sopts;
  sopts.num_users = users;
  sopts.num_topics = 15;
  sopts.seed = 5;
  auto social = gen::GenerateSocialGraph(sopts);
  auto dli = reach::DistanceLabelIndex::Build(&social.graph, 5);
  const std::string path = "bench_index_startup.dli.mel3";
  if (!dli.Save(path).ok()) {
    std::fprintf(stderr, "dli save failed\n");
    std::abort();
  }
  Rng rng(99);
  const NodeId qu = static_cast<NodeId>(rng.Uniform(users));
  const NodeId qv = static_cast<NodeId>(rng.Uniform(users));
  auto deser = MeasureLoads(
      path,
      [&] {
        return std::move(
                   reach::DistanceLabelIndex::Load(path, &social.graph))
            .value();
      },
      reps, qu, qv);
  auto mapped = MeasureLoads(
      path,
      [&] {
        return std::move(reach::DistanceLabelIndex::LoadMapped(
                             path, &social.graph))
            .value();
      },
      reps, qu, qv);
  std::remove(path.c_str());
  std::printf(
      "dist-label   : deserialize warm %s -> mmap warm %s (%.1fx)\n",
      HumanNanos(deser.warm_ns).c_str(), HumanNanos(mapped.warm_ns).c_str(),
      deser.warm_ns / mapped.warm_ns);
}

// Per-PR trajectory sidecar (schema v1; keys checked by verify.sh).
void WriteStartupSidecar(const StartupResult& r, bool smoke) {
  std::ofstream sidecar("BENCH_startup.json");
  mel::JsonWriter w(&sidecar);
  w.BeginObject();
  w.KeyValue("bench", std::string_view("startup"));
  w.KeyValue("schema_version", uint64_t{1});
  w.KeyValue("mode", std::string_view(smoke ? "smoke" : "full"));
  w.KeyValue("users", uint64_t{r.users});
  w.KeyValue("file_bytes", r.file_bytes);
  w.KeyValue("index_bytes", r.index_bytes);
  w.KeyValue("deserialize_warm_ns", r.deserialize.warm_ns);
  w.KeyValue("deserialize_cold_ns", r.deserialize.cold_ns);
  w.KeyValue("deserialize_first_query_ns", r.deserialize.first_query_ns);
  w.KeyValue("mmap_warm_ns", r.mmap.warm_ns);
  w.KeyValue("mmap_cold_ns", r.mmap.cold_ns);
  w.KeyValue("mmap_first_query_ns", r.mmap.first_query_ns);
  w.KeyValue("warm_speedup", r.speedup_warm);
  w.EndObject();
  sidecar << "\n";
  std::printf("trajectory written to BENCH_startup.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 1;
    }
  }

  const uint32_t users = smoke ? 800 : 4000;
  const int reps = smoke ? 3 : 7;
  const auto result = RunStartupAb(users, reps);
  if (!smoke) RunDliStartup(users, reps);
  WriteStartupSidecar(result, smoke);

  if (!smoke && result.speedup_warm < 10.0) {
    std::fprintf(stderr,
                 "FAIL: mmap warm load only %.1fx faster than "
                 "deserializing load (contract: >= 10x)\n",
                 result.speedup_warm);
    return 1;
  }

  const char* metrics_path = "bench_index_startup.metrics.json";
  if (mel::metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("metrics JSON written to %s\n", metrics_path);
  }
  return 0;
}

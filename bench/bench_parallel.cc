// Quantifies the paper's parallelization claim (Sec. 5.2.2): mentions are
// linked independently, so batch linking scales across threads with no
// coordination. Reports throughput and speedup for growing thread counts.

#include <cstdio>
#include <thread>

#include "core/parallel_linker.h"
#include "eval/harness.h"
#include "util/timer.h"

int main() {
  using namespace mel;
  std::printf("=== parallel batch linking (Sec. 5.2.2 claim) ===\n");
  eval::Harness harness(eval::HarnessOptions{});
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());

  // Batch: every tweet of the corpus once.
  std::vector<kb::Tweet> batch;
  batch.reserve(harness.world().corpus.tweets.size());
  for (const auto& lt : harness.world().corpus.tweets) {
    batch.push_back(lt.tweet);
  }

  // Warm up outside the timers so lazy caches don't skew thread 1.
  linker.WarmUp();

  double base_seconds = 0;
  uint32_t hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u\n", hw);
  std::printf("%-8s %14s %14s %10s\n", "threads", "wall time",
              "tweets/s", "speedup");
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    WallTimer timer;
    auto results = core::LinkTweetsParallel(&linker, batch, threads);
    double seconds = timer.ElapsedSeconds();
    if (threads == 1) base_seconds = seconds;
    std::printf("%-8u %13.2fs %14.0f %9.2fx\n", threads, seconds,
                batch.size() / seconds, base_seconds / seconds);
    // Guard against the compiler discarding the work.
    if (results.size() != batch.size()) return 1;
  }
  std::printf(
      "\nShape check: linking is embarrassingly parallel (no shared state "
      "between mentions); speedup tracks the available cores — flat on a "
      "single-core host, near-linear on multicore.\n");
  return 0;
}

// Reproduces Fig. 5(b): pre-computation time of the naive vs incremental
// (Algorithm 1) transitive-closure constructions, on growing social
// graphs. The naive method is dropped beyond the size where it would blow
// the time budget, just as the paper omits runs exceeding one day.
//
// On top of the paper's algorithm comparison this bench measures the
// thread-pool scaling of each build: every construction runs once on a
// single thread and once on --threads (default: hardware concurrency),
// and the two incremental indexes are saved and byte-compared to prove
// the parallel build is bit-identical to the serial one.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "eval/harness.h"
#include "gen/social_graph_generator.h"
#include "graph/stats.h"
#include "reach/transitive_closure.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mel;
  uint32_t threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      return 1;
    }
  }
  util::ThreadPool pool(threads);
  util::ThreadPool serial_pool(1);

  std::printf("=== Fig. 5(b): naive vs incremental TC construction ===\n");
  std::printf("parallel builds use %u threads (--threads)\n\n",
              pool.num_threads());
  std::printf("%-8s %10s %12s %12s %12s %12s %8s %8s\n", "users", "edges",
              "naive-1t", "naive-par", "inc-1t", "inc-par", "alg-spd",
              "thr-spd");

  // The naive method is O(|V|^2 |E|); keep it within budget.
  constexpr uint32_t kNaiveLimit = 600;
  bool all_identical = true;
  double largest_thread_speedup = 0;
  for (uint32_t users : {100u, 200u, 400u, 800u, 1600u, 3200u}) {
    gen::SocialGenOptions sopts;
    sopts.num_users = users;
    sopts.num_topics = 15;
    sopts.seed = 5;
    auto social = gen::GenerateSocialGraph(sopts);

    double naive_serial_ms = -1;
    double naive_par_ms = -1;
    if (users <= kNaiveLimit) {
      {
        WallTimer timer;
        auto tc = reach::TransitiveClosureIndex::Build(
            &social.graph, 5,
            reach::TransitiveClosureIndex::Construction::kNaive,
            &serial_pool);
        naive_serial_ms = timer.ElapsedMillis();
      }
      {
        WallTimer timer;
        auto tc = reach::TransitiveClosureIndex::Build(
            &social.graph, 5,
            reach::TransitiveClosureIndex::Construction::kNaive, &pool);
        naive_par_ms = timer.ElapsedMillis();
      }
    }
    WallTimer serial_timer;
    auto tc_serial = reach::TransitiveClosureIndex::Build(
        &social.graph, 5,
        reach::TransitiveClosureIndex::Construction::kIncremental,
        &serial_pool);
    double inc_serial_ms = serial_timer.ElapsedMillis();
    WallTimer par_timer;
    auto tc_par = reach::TransitiveClosureIndex::Build(
        &social.graph, 5,
        reach::TransitiveClosureIndex::Construction::kIncremental, &pool);
    double inc_par_ms = par_timer.ElapsedMillis();
    largest_thread_speedup = inc_serial_ms / inc_par_ms;

    // Acceptance check: the parallel build must be bit-identical to the
    // serial one under Save.
    const std::string serial_path = "bench_tc_serial.idx";
    const std::string par_path = "bench_tc_parallel.idx";
    bool identical = false;
    if (tc_serial.Save(serial_path).ok() && tc_par.Save(par_path).ok()) {
      auto a = ReadAll(serial_path);
      identical = !a.empty() && a == ReadAll(par_path);
    }
    all_identical = all_identical && identical;
    std::remove(serial_path.c_str());
    std::remove(par_path.c_str());

    auto fmt_ms = [](double ms, char* buf, size_t len) {
      if (ms >= 0) {
        std::snprintf(buf, len, "%s", HumanNanos(ms * 1e6).c_str());
      } else {
        std::snprintf(buf, len, "-");
      }
    };
    char naive1[32], naivep[32], alg_spd[32];
    fmt_ms(naive_serial_ms, naive1, sizeof(naive1));
    fmt_ms(naive_par_ms, naivep, sizeof(naivep));
    if (naive_par_ms >= 0 && inc_par_ms > 0) {
      std::snprintf(alg_spd, sizeof(alg_spd), "%.0fx",
                    naive_par_ms / inc_par_ms);
    } else {
      std::snprintf(alg_spd, sizeof(alg_spd), "-");
    }
    std::printf("%-8u %10llu %12s %12s %12s %12s %8s %7.1fx%s\n", users,
                static_cast<unsigned long long>(social.graph.num_edges()),
                naive1, naivep, HumanNanos(inc_serial_ms * 1e6).c_str(),
                HumanNanos(inc_par_ms * 1e6).c_str(), alg_spd,
                inc_serial_ms / inc_par_ms, identical ? "" : "  MISMATCH");
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check (Fig. 5b): the incremental Algorithm 1 is "
      "orders of magnitude faster, and the gap widens with graph size; "
      "naive runs beyond %u users are omitted (the paper's "
      "'cannot finish within one day').\n",
      kNaiveLimit);
  std::printf("serial/parallel Save byte-comparison: %s\n",
              all_identical ? "identical" : "MISMATCH");
  std::printf("incremental thread speedup at largest size: %.1fx on %u "
              "threads\n",
              largest_thread_speedup, pool.num_threads());

  const char* metrics_path = "bench_tc_construction.metrics.json";
  if (mel::metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("metrics JSON written to %s\n", metrics_path);
  }
  return all_identical ? 0 : 1;
}

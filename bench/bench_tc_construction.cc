// Reproduces Fig. 5(b): pre-computation time of the naive vs incremental
// (Algorithm 1) transitive-closure constructions, on growing social
// graphs. The naive method is dropped beyond the size where it would blow
// the time budget, just as the paper omits runs exceeding one day.

#include <cstdio>

#include "eval/harness.h"
#include "gen/social_graph_generator.h"
#include "graph/stats.h"
#include "reach/transitive_closure.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 5(b): naive vs incremental TC construction ===\n");
  std::printf("%-8s %10s %14s %14s %10s\n", "users", "edges", "naive",
              "incremental", "speedup");

  // The naive method is O(|V|^2 |E|); keep it within budget.
  constexpr uint32_t kNaiveLimit = 600;
  for (uint32_t users : {100u, 200u, 400u, 800u, 1600u, 3200u}) {
    gen::SocialGenOptions sopts;
    sopts.num_users = users;
    sopts.num_topics = 15;
    sopts.seed = 5;
    auto social = gen::GenerateSocialGraph(sopts);

    double naive_ms = -1;
    if (users <= kNaiveLimit) {
      WallTimer timer;
      auto tc = reach::TransitiveClosureIndex::Build(
          &social.graph, 5,
          reach::TransitiveClosureIndex::Construction::kNaive);
      naive_ms = timer.ElapsedMillis();
    }
    WallTimer timer;
    auto tc = reach::TransitiveClosureIndex::Build(
        &social.graph, 5,
        reach::TransitiveClosureIndex::Construction::kIncremental);
    double inc_ms = timer.ElapsedMillis();

    char naive_buf[32];
    if (naive_ms >= 0) {
      std::snprintf(naive_buf, sizeof(naive_buf), "%s",
                    HumanNanos(naive_ms * 1e6).c_str());
    } else {
      std::snprintf(naive_buf, sizeof(naive_buf), "-");
    }
    char speedup[32];
    if (naive_ms >= 0 && inc_ms > 0) {
      std::snprintf(speedup, sizeof(speedup), "%.0fx", naive_ms / inc_ms);
    } else {
      std::snprintf(speedup, sizeof(speedup), "-");
    }
    std::printf("%-8u %10llu %14s %14s %10s\n", users,
                static_cast<unsigned long long>(social.graph.num_edges()),
                naive_buf, HumanNanos(inc_ms * 1e6).c_str(), speedup);
  }
  std::printf(
      "\nPaper shape check (Fig. 5b): the incremental Algorithm 1 is "
      "orders of magnitude faster, and the gap widens with graph size; "
      "naive runs beyond %u users are omitted (the paper's "
      "'cannot finish within one day').\n",
      kNaiveLimit);
  return 0;
}

// End-to-end quality of the motivating application (Sec. 1, Fig. 1):
// personalized microblog search. A user searches an ambiguous mention;
// the intended entity is the candidate from one of HER interest topics
// (ground truth from the generator). We measure how often the query is
// interpreted as intended and the precision of the returned tweets,
// against a popularity-only search (always the most common meaning).

#include <cstdio>

#include "core/personalized_search.h"
#include "eval/harness.h"

int main() {
  using namespace mel;
  std::printf("=== personalized search quality (Fig. 1 scenario) ===\n");
  eval::Harness harness(eval::HarnessOptions{});
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());
  core::PersonalizedSearch search(&linker, &harness.ckb());

  const auto& world = harness.world();
  const auto& kb_world = world.kb_world;
  const kb::Timestamp now = 90 * kb::kSecondsPerDay;

  uint32_t queries = 0;
  uint32_t ours_intent = 0, pop_intent = 0;
  double ours_precision = 0, pop_precision = 0;
  uint32_t precision_queries = 0;

  for (uint32_t user : harness.test_split().users) {
    // Find an ambiguous surface with a candidate inside one of the
    // user's interest topics: that candidate is the intended meaning.
    for (size_t sid = 0; sid < kb_world.ambiguous_surfaces.size(); ++sid) {
      kb::EntityId intended = kb::kInvalidEntity;
      for (kb::EntityId candidate : kb_world.surface_entities[sid]) {
        for (uint32_t topic : world.social.user_topics[user]) {
          if (kb_world.entity_topic[candidate] == topic) {
            intended = candidate;
            break;
          }
        }
        if (intended != kb::kInvalidEntity) break;
      }
      if (intended == kb::kInvalidEntity) continue;

      const std::string& surface = kb_world.ambiguous_surfaces[sid];
      ++queries;

      // Popularity-only interpretation = the anchor-top candidate.
      kb::EntityId pop_pick = harness.kb().Candidates(surface)[0].entity;
      if (pop_pick == intended) ++pop_intent;

      core::SearchOptions options;
      options.top_k_entities = 1;
      options.top_k_tweets = 10;
      auto result = search.Query(surface, user, now, options);
      if (!result.interpretations.empty() &&
          result.interpretations[0].best() == intended) {
        ++ours_intent;
      }

      // Precision of returned tweets against corpus ground truth.
      auto precision_for = [&](kb::EntityId via_entity) {
        auto postings = harness.ckb().Postings(via_entity);
        uint32_t hits = 0, total = 0;
        for (auto it = postings.rbegin();
             it != postings.rend() && total < 10; ++it) {
          if (it->time > now) continue;
          ++total;
          for (const auto& m : world.corpus.tweets[it->tweet].mentions) {
            if (m.truth == intended) {
              ++hits;
              break;
            }
          }
        }
        return total == 0 ? -1.0 : static_cast<double>(hits) / total;
      };
      if (!result.hits.empty()) {
        double p_ours = precision_for(result.hits[0].entity);
        double p_pop = precision_for(pop_pick);
        if (p_ours >= 0 && p_pop >= 0) {
          ours_precision += p_ours;
          pop_precision += p_pop;
          ++precision_queries;
        }
      }
      break;  // one query per user keeps the mix broad
    }
  }

  std::printf("queries: %u (one ambiguous query per test user)\n", queries);
  std::printf("%-24s %18s %16s\n", "system", "intent match", "precision@10");
  std::printf("%-24s %17.1f%% %16.4f\n", "popularity-only",
              100.0 * pop_intent / queries,
              pop_precision / precision_queries);
  std::printf("%-24s %17.1f%% %16.4f\n", "social-temporal (ours)",
              100.0 * ours_intent / queries,
              ours_precision / precision_queries);
  std::printf(
      "\nShape check: disambiguating the query per user lifts both the "
      "interpretation rate and the precision of the returned tweets over "
      "the one-meaning-for-everyone baseline — the personalized-search "
      "benefit the paper's introduction argues for.\n");
  return 0;
}

// Reproduces Table 5: extended transitive closure vs extended 2-hop cover
// for weighted reachability queries on social graphs of growing size —
// graph statistics, indexing time, index size, and average query time
// over a random query workload. The TC columns are dropped beyond the
// size where its quadratic memory stops being sensible, exactly as the
// paper omits TC for its two largest graphs.
//
// Extras beyond the paper's table: builds run on a shared thread pool
// (--threads N, default hardware concurrency) with a serial-vs-parallel
// scaling section, and a CachedReachability demo shows what the sharded
// read-through cache buys a BFS-priced backend on a repeat-heavy
// workload (the S_in access pattern of Eq. 4).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string_view>
#include <vector>

#include "gen/social_graph_generator.h"
#include "graph/stats.h"
#include "reach/pruned_online_search.h"
#include "reach/reach_cache.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct QueryWorkload {
  std::vector<mel::graph::NodeId> sources;
  std::vector<mel::graph::NodeId> targets;
};

QueryWorkload MakeWorkload(uint32_t num_nodes, size_t count,
                           uint64_t seed) {
  mel::Rng rng(seed);
  QueryWorkload w;
  w.sources.reserve(count);
  w.targets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    w.sources.push_back(
        static_cast<mel::graph::NodeId>(rng.Uniform(num_nodes)));
    w.targets.push_back(
        static_cast<mel::graph::NodeId>(rng.Uniform(num_nodes)));
  }
  return w;
}

// Repeat-heavy variant: queries are drawn from a small pool of distinct
// pairs, like S_in re-querying the influential users of hot candidates.
QueryWorkload MakeRepeatWorkload(uint32_t num_nodes, size_t count,
                                 size_t distinct_pairs, uint64_t seed) {
  auto pool = MakeWorkload(num_nodes, distinct_pairs, seed);
  mel::Rng rng(seed + 1);
  QueryWorkload w;
  w.sources.reserve(count);
  w.targets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t p = rng.Uniform(distinct_pairs);
    w.sources.push_back(pool.sources[p]);
    w.targets.push_back(pool.targets[p]);
  }
  return w;
}

double MeasureQueryNanos(const mel::reach::WeightedReachability& index,
                         const QueryWorkload& w) {
  mel::WallTimer timer;
  double sink = 0;
  for (size_t i = 0; i < w.sources.size(); ++i) {
    sink += index.Score(w.sources[i], w.targets[i]);
  }
  double nanos = static_cast<double>(timer.ElapsedNanos());
  // Keep the computation alive.
  if (sink < -1) std::printf("impossible %f", sink);
  return nanos / w.sources.size();
}

double MeasureScoreOnlyNanos(const mel::reach::WeightedReachability& index,
                             const QueryWorkload& w) {
  mel::WallTimer timer;
  double sink = 0;
  for (size_t i = 0; i < w.sources.size(); ++i) {
    sink += index.ScoreOnly(w.sources[i], w.targets[i]);
  }
  double nanos = static_cast<double>(timer.ElapsedNanos());
  if (sink < -1) std::printf("impossible %f", sink);
  return nanos / w.sources.size();
}

// Pre-overhaul baseline for the A/B: the label layout and materializing
// query path the arena refactor replaced — one heap vector per node per
// side, one heap vector per out-label for its followees, and a query
// that unions min-distance followee sets by concat + sort +
// std::unique. Rebuilt from the arena index so both sides answer from
// byte-identical label content.
struct LegacyTwoHop {
  struct InLabel {
    mel::graph::NodeId node;
    uint32_t dist;
  };
  struct OutLabel {
    mel::graph::NodeId node;
    uint32_t dist;
    std::vector<mel::graph::NodeId> followees;
  };
  std::vector<std::vector<InLabel>> in;
  std::vector<std::vector<OutLabel>> out;
  const mel::graph::DirectedGraph* g = nullptr;
  uint32_t max_hops = 0;

  static LegacyTwoHop FromArena(const mel::reach::TwoHopIndex& index,
                                const mel::graph::DirectedGraph& graph,
                                uint32_t max_hops) {
    LegacyTwoHop legacy;
    legacy.g = &graph;
    legacy.max_hops = max_hops;
    const uint32_t n = graph.num_nodes();
    legacy.in.resize(n);
    legacy.out.resize(n);
    for (uint32_t v = 0; v < n; ++v) {
      for (const auto& il : index.in_labels(v)) {
        legacy.in[v].push_back(InLabel{il.node, il.dist});
      }
      const uint64_t base = index.out_offset(v);
      const auto outs = index.out_labels(v);
      for (size_t i = 0; i < outs.size(); ++i) {
        const auto span = index.followees(base + i);
        legacy.out[v].push_back(OutLabel{
            outs[i].node, outs[i].dist,
            std::vector<mel::graph::NodeId>(span.begin(), span.end())});
      }
    }
    return legacy;
  }

  mel::reach::ReachQueryResult Query(mel::graph::NodeId u,
                                     mel::graph::NodeId v) const {
    constexpr uint32_t kInf = mel::reach::kUnreachableDistance;
    mel::reach::ReachQueryResult result;
    if (u == v) {
      result.distance = 0;
      return result;
    }
    const auto& outs = out[u];
    const auto& ins = in[v];
    uint32_t dmin = kInf;
    {
      size_t i = 0, j = 0;
      while (i < outs.size() && j < ins.size()) {
        if (outs[i].node < ins[j].node) {
          ++i;
        } else if (outs[i].node > ins[j].node) {
          ++j;
        } else {
          dmin = std::min(dmin, outs[i].dist + ins[j].dist);
          ++i;
          ++j;
        }
      }
    }
    for (const OutLabel& ol : outs) {
      if (ol.node == v) dmin = std::min(dmin, ol.dist);
    }
    for (const InLabel& il : ins) {
      if (il.node == u) dmin = std::min(dmin, il.dist);
    }
    if (dmin == kInf || dmin > max_hops) return result;
    result.distance = dmin;
    {
      size_t i = 0, j = 0;
      while (i < outs.size() && j < ins.size()) {
        if (outs[i].node < ins[j].node) {
          ++i;
        } else if (outs[i].node > ins[j].node) {
          ++j;
        } else {
          if (outs[i].dist + ins[j].dist == dmin) {
            result.followees.insert(result.followees.end(),
                                    outs[i].followees.begin(),
                                    outs[i].followees.end());
          }
          ++i;
          ++j;
        }
      }
    }
    for (const OutLabel& ol : outs) {
      if (ol.node == v && ol.dist == dmin) {
        result.followees.insert(result.followees.end(),
                                ol.followees.begin(), ol.followees.end());
      }
    }
    std::sort(result.followees.begin(), result.followees.end());
    result.followees.erase(
        std::unique(result.followees.begin(), result.followees.end()),
        result.followees.end());
    return result;
  }

  double Score(mel::graph::NodeId u, mel::graph::NodeId v) const {
    return mel::reach::WeightedScore(Query(u, v), g->OutDegree(u), u == v);
  }
};

double MeasureLegacyScoreNanos(const LegacyTwoHop& legacy,
                               const QueryWorkload& w) {
  mel::WallTimer timer;
  double sink = 0;
  for (size_t i = 0; i < w.sources.size(); ++i) {
    sink += legacy.Score(w.sources[i], w.targets[i]);
  }
  double nanos = static_cast<double>(timer.ElapsedNanos());
  if (sink < -1) std::printf("impossible %f", sink);
  return nanos / w.sources.size();
}

struct ArenaAbResult {
  uint32_t users = 0;
  size_t queries = 0;
  double legacy_score_ns = 0;
  double arena_score_ns = 0;
  double score_only_ns = 0;
  uint64_t arena_bytes = 0;
  uint64_t legacy_bytes = 0;
};

// Arena layout + count-only fast path A/B on the 2-hop cover: legacy
// (vector-of-vectors) vs arena index bytes, and the legacy materializing
// Score vs arena Score vs arena ScoreOnly query latencies. Results go
// to bench.reach.* gauges in the metrics sidecar and, via the returned
// struct, to the BENCH_reach.json trajectory sidecar; scripts/verify.sh
// runs this section alone via --smoke.
ArenaAbResult RunArenaAb(uint32_t users, size_t queries,
                         mel::util::ThreadPool* pool) {
  using namespace mel;
  gen::SocialGenOptions sopts;
  sopts.num_users = users;
  sopts.num_topics = 15;
  sopts.seed = 5;
  auto social = gen::GenerateSocialGraph(sopts);
  auto two_hop = reach::TwoHopIndex::Build(&social.graph, 5, pool);
  auto legacy = LegacyTwoHop::FromArena(two_hop, social.graph, 5);
  auto workload = MakeWorkload(users, queries, 99);

  // The baseline must agree with the arena paths bitwise, or the A/B is
  // comparing different answers.
  for (size_t i = 0; i < std::min<size_t>(workload.sources.size(), 2000);
       ++i) {
    const auto u = workload.sources[i];
    const auto v = workload.targets[i];
    if (legacy.Score(u, v) != two_hop.Score(u, v) ||
        legacy.Score(u, v) != two_hop.ScoreOnly(u, v)) {
      std::fprintf(stderr, "A/B mismatch at pair (%u, %u)\n", u, v);
      std::abort();
    }
  }

  // Warm-up pass so all measurements see hot caches and sized
  // thread-local scratch.
  MeasureQueryNanos(two_hop, workload);
  const double legacy_score_ns = MeasureLegacyScoreNanos(legacy, workload);
  const double arena_score_ns = MeasureQueryNanos(two_hop, workload);
  const double score_only_ns = MeasureScoreOnlyNanos(two_hop, workload);

  const uint64_t arena_bytes = two_hop.IndexSizeBytes();
  const uint64_t legacy_bytes = two_hop.LegacyIndexSizeBytes();

  std::printf(
      "\n=== Arena layout + count-only path (2-hop, %u users, %zu queries) "
      "===\n",
      users, queries);
  std::printf(
      "index bytes    : legacy %s -> arena %s (%.1f%% smaller)\n",
      HumanBytes(legacy_bytes).c_str(), HumanBytes(arena_bytes).c_str(),
      100.0 * (1.0 - static_cast<double>(arena_bytes) /
                         static_cast<double>(legacy_bytes)));
  std::printf(
      "materializing  : legacy Score %s -> arena Score %s (%.2fx)\n",
      HumanNanos(legacy_score_ns).c_str(),
      HumanNanos(arena_score_ns).c_str(), legacy_score_ns / arena_score_ns);
  std::printf(
      "count-only     : ScoreOnly %s (%.2fx vs legacy materializing, "
      "%.2fx vs arena Score)\n",
      HumanNanos(score_only_ns).c_str(), legacy_score_ns / score_only_ns,
      arena_score_ns / score_only_ns);

  auto& reg = metrics::Registry();
  reg.GetGauge("bench.reach.score_ns")
      ->Set(static_cast<int64_t>(legacy_score_ns));
  reg.GetGauge("bench.reach.arena_score_ns")
      ->Set(static_cast<int64_t>(arena_score_ns));
  reg.GetGauge("bench.reach.score_only_ns")
      ->Set(static_cast<int64_t>(score_only_ns));
  reg.GetGauge("bench.reach.arena_index_bytes")
      ->Set(static_cast<int64_t>(arena_bytes));
  reg.GetGauge("bench.reach.legacy_index_bytes")
      ->Set(static_cast<int64_t>(legacy_bytes));

  ArenaAbResult result;
  result.users = users;
  result.queries = queries;
  result.legacy_score_ns = legacy_score_ns;
  result.arena_score_ns = arena_score_ns;
  result.score_only_ns = score_only_ns;
  result.arena_bytes = arena_bytes;
  result.legacy_bytes = legacy_bytes;
  return result;
}

// Per-PR trajectory sidecar (schema v1; keys checked by verify.sh).
void WriteReachSidecar(const ArenaAbResult& ab, bool smoke) {
  std::ofstream sidecar("BENCH_reach.json");
  mel::JsonWriter w(&sidecar);
  w.BeginObject();
  w.KeyValue("bench", std::string_view("reach"));
  w.KeyValue("schema_version", uint64_t{1});
  w.KeyValue("mode", std::string_view(smoke ? "smoke" : "full"));
  w.KeyValue("users", uint64_t{ab.users});
  w.KeyValue("queries", uint64_t{ab.queries});
  w.KeyValue("legacy_score_ns", ab.legacy_score_ns);
  w.KeyValue("arena_score_ns", ab.arena_score_ns);
  w.KeyValue("score_only_ns", ab.score_only_ns);
  w.KeyValue("arena_index_bytes", ab.arena_bytes);
  w.KeyValue("legacy_index_bytes", ab.legacy_bytes);
  w.EndObject();
  sidecar << "\n";
  std::printf("trajectory written to BENCH_reach.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mel;
  uint32_t threads = 0;  // 0 = hardware concurrency
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--threads N] [--smoke]\n", argv[0]);
      return 1;
    }
  }
  util::ThreadPool pool(threads);
  util::ThreadPool serial_pool(1);

  const char* metrics_path = "bench_reachability_index.metrics.json";
  if (smoke) {
    // CI-sized run: just the arena/count-only A/B, small graph.
    const auto ab = RunArenaAb(/*users=*/800, /*queries=*/40000, &pool);
    WriteReachSidecar(ab, /*smoke=*/true);
    if (mel::metrics::WriteJsonFile(metrics_path).ok()) {
      std::printf("metrics JSON written to %s\n", metrics_path);
    }
    return 0;
  }

  std::printf(
      "=== Table 5: extended transitive closure vs extended 2-hop ===\n");
  std::printf("index builds use %u threads (--threads)\n\n",
              pool.num_threads());
  std::printf("%-8s | %8s %8s %7s %7s | %10s %9s %9s | %10s %9s %9s\n",
              "dataset", "#node", "#edge", "avgdeg", "maxdeg",
              "TC-build", "TC-size", "TC-query",
              "2hop-build", "2hop-size", "2hop-qry");

  constexpr size_t kQueries = 200000;
  // TC needs 5 bytes per node pair and the 2-hop build is ~quadratic on
  // small-world graphs, so the ladder is scaled to keep the whole run in
  // minutes; the paper's ladder covers 4.6K..11.3M nodes with the same
  // relative spacing.
  constexpr uint32_t kTcLimit = 4000;
  struct Config {
    const char* name;
    uint32_t users;
  };
  const Config configs[] = {{"D90", 500},  {"D70", 1000}, {"D50", 1500},
                            {"D30", 2500}, {"D10", 4000}, {"D", 6000},
                            {"Twitter", 8000}};
  for (const Config& config : configs) {
    gen::SocialGenOptions sopts;
    sopts.num_users = config.users;
    sopts.num_topics = 15;
    sopts.seed = 5;
    auto social = gen::GenerateSocialGraph(sopts);
    auto stats = graph::ComputeStats(social.graph);
    auto workload = MakeWorkload(config.users, kQueries, 99);

    char tc_build[24] = "-", tc_size[24] = "-", tc_query[24] = "-";
    if (config.users <= kTcLimit) {
      WallTimer timer;
      auto tc = reach::TransitiveClosureIndex::Build(
          &social.graph, 5,
          reach::TransitiveClosureIndex::Construction::kIncremental,
          &pool);
      std::snprintf(tc_build, sizeof(tc_build), "%s",
                    HumanNanos(timer.ElapsedNanos()).c_str());
      std::snprintf(tc_size, sizeof(tc_size), "%s",
                    HumanBytes(tc.IndexSizeBytes()).c_str());
      std::snprintf(tc_query, sizeof(tc_query), "%s",
                    HumanNanos(MeasureQueryNanos(tc, workload)).c_str());
    }

    WallTimer timer;
    auto two_hop = reach::TwoHopIndex::Build(&social.graph, 5, &pool);
    double hop_build = static_cast<double>(timer.ElapsedNanos());
    double hop_query = MeasureQueryNanos(two_hop, workload);

    std::printf(
        "%-8s | %8u %8llu %7.1f %7u | %10s %9s %9s | %10s %9s %9s\n",
        config.name, stats.num_nodes,
        static_cast<unsigned long long>(stats.num_edges),
        stats.avg_out_degree,
        std::max(stats.max_out_degree, stats.max_in_degree), tc_build,
        tc_size, tc_query, HumanNanos(hop_build).c_str(),
        HumanBytes(two_hop.IndexSizeBytes()).c_str(),
        HumanNanos(hop_query).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check (Table 5): TC answers queries faster but costs "
      "quadratic memory and longer builds; the 2-hop cover shrinks the "
      "index by an order of magnitude, stays query-efficient, and is the "
      "only option for the largest graphs (TC rows '-').\n");

  // --- Build thread scaling: serial vs parallel on one mid-size graph.
  {
    gen::SocialGenOptions sopts;
    sopts.num_users = 2500;
    sopts.num_topics = 15;
    sopts.seed = 5;
    auto social = gen::GenerateSocialGraph(sopts);

    WallTimer tc_serial_timer;
    auto tc_serial = reach::TransitiveClosureIndex::Build(
        &social.graph, 5,
        reach::TransitiveClosureIndex::Construction::kIncremental,
        &serial_pool);
    double tc_serial_ms = tc_serial_timer.ElapsedMillis();
    WallTimer tc_par_timer;
    auto tc_par = reach::TransitiveClosureIndex::Build(
        &social.graph, 5,
        reach::TransitiveClosureIndex::Construction::kIncremental, &pool);
    double tc_par_ms = tc_par_timer.ElapsedMillis();

    WallTimer hop_serial_timer;
    auto hop_serial =
        reach::TwoHopIndex::Build(&social.graph, 5, &serial_pool);
    double hop_serial_ms = hop_serial_timer.ElapsedMillis();
    WallTimer hop_par_timer;
    auto hop_par = reach::TwoHopIndex::Build(&social.graph, 5, &pool);
    double hop_par_ms = hop_par_timer.ElapsedMillis();

    std::printf(
        "\n=== Build thread scaling (2500 users, 1 vs %u threads) ===\n",
        pool.num_threads());
    std::printf("TC incremental : %s -> %s  (%.1fx)\n",
                HumanNanos(tc_serial_ms * 1e6).c_str(),
                HumanNanos(tc_par_ms * 1e6).c_str(),
                tc_serial_ms / tc_par_ms);
    std::printf("2-hop cover    : %s -> %s  (%.1fx)\n",
                HumanNanos(hop_serial_ms * 1e6).c_str(),
                HumanNanos(hop_par_ms * 1e6).c_str(),
                hop_serial_ms / hop_par_ms);
  }

  // --- CachedReachability: what the read-through cache buys a BFS-priced
  // backend once queries repeat (the Eq. 4 S_in access pattern).
  {
    gen::SocialGenOptions sopts;
    sopts.num_users = 1500;
    sopts.num_topics = 15;
    sopts.seed = 5;
    auto social = gen::GenerateSocialGraph(sopts);
    auto base = reach::PrunedOnlineSearch::Build(&social.graph, 5,
                                                 /*num_intervals=*/4,
                                                 /*seed=*/7);
    reach::CachedReachability cached(&base, &social.graph);
    auto repeat = MakeRepeatWorkload(sopts.num_users, kQueries,
                                     /*distinct_pairs=*/2000, 42);
    double base_ns = MeasureQueryNanos(base, repeat);
    double cached_ns = MeasureQueryNanos(cached, repeat);
    std::printf(
        "\n=== CachedReachability over %s (1500 users, %zu queries, "
        "2000 distinct pairs) ===\n",
        base.Name(), kQueries);
    std::printf(
        "uncached %s/query -> cached %s/query (%.1fx); %zu entries "
        "cached, hit/miss counts in reach.cache.* metrics\n",
        HumanNanos(base_ns).c_str(), HumanNanos(cached_ns).c_str(),
        base_ns / cached_ns, cached.ApproxEntries());
  }

  const auto ab = RunArenaAb(/*users=*/4000, /*queries=*/kQueries, &pool);
  WriteReachSidecar(ab, /*smoke=*/false);

  if (mel::metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("metrics JSON written to %s\n", metrics_path);
  }
  return 0;
}

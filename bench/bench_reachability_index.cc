// Reproduces Table 5: extended transitive closure vs extended 2-hop cover
// for weighted reachability queries on social graphs of growing size —
// graph statistics, indexing time, index size, and average query time
// over a random query workload. The TC columns are dropped beyond the
// size where its quadratic memory stops being sensible, exactly as the
// paper omits TC for its two largest graphs.

#include <cstdio>
#include <memory>

#include "gen/social_graph_generator.h"
#include "graph/stats.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

struct QueryWorkload {
  std::vector<mel::graph::NodeId> sources;
  std::vector<mel::graph::NodeId> targets;
};

QueryWorkload MakeWorkload(uint32_t num_nodes, size_t count,
                           uint64_t seed) {
  mel::Rng rng(seed);
  QueryWorkload w;
  w.sources.reserve(count);
  w.targets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    w.sources.push_back(
        static_cast<mel::graph::NodeId>(rng.Uniform(num_nodes)));
    w.targets.push_back(
        static_cast<mel::graph::NodeId>(rng.Uniform(num_nodes)));
  }
  return w;
}

double MeasureQueryNanos(const mel::reach::WeightedReachability& index,
                         const QueryWorkload& w) {
  mel::WallTimer timer;
  double sink = 0;
  for (size_t i = 0; i < w.sources.size(); ++i) {
    sink += index.Score(w.sources[i], w.targets[i]);
  }
  double nanos = static_cast<double>(timer.ElapsedNanos());
  // Keep the computation alive.
  if (sink < -1) std::printf("impossible %f", sink);
  return nanos / w.sources.size();
}

}  // namespace

int main() {
  using namespace mel;
  std::printf(
      "=== Table 5: extended transitive closure vs extended 2-hop ===\n");
  std::printf("%-8s | %8s %8s %7s %7s | %10s %9s %9s | %10s %9s %9s\n",
              "dataset", "#node", "#edge", "avgdeg", "maxdeg",
              "TC-build", "TC-size", "TC-query",
              "2hop-build", "2hop-size", "2hop-qry");

  constexpr size_t kQueries = 200000;
  // TC needs 5 bytes per node pair and the 2-hop build is ~quadratic on
  // small-world graphs, so the ladder is scaled to keep the whole run in
  // minutes; the paper's ladder covers 4.6K..11.3M nodes with the same
  // relative spacing.
  constexpr uint32_t kTcLimit = 4000;
  struct Config {
    const char* name;
    uint32_t users;
  };
  const Config configs[] = {{"D90", 500},  {"D70", 1000}, {"D50", 1500},
                            {"D30", 2500}, {"D10", 4000}, {"D", 6000},
                            {"Twitter", 8000}};
  for (const Config& config : configs) {
    gen::SocialGenOptions sopts;
    sopts.num_users = config.users;
    sopts.num_topics = 15;
    sopts.seed = 5;
    auto social = gen::GenerateSocialGraph(sopts);
    auto stats = graph::ComputeStats(social.graph);
    auto workload = MakeWorkload(config.users, kQueries, 99);

    char tc_build[24] = "-", tc_size[24] = "-", tc_query[24] = "-";
    if (config.users <= kTcLimit) {
      WallTimer timer;
      auto tc = reach::TransitiveClosureIndex::Build(
          &social.graph, 5,
          reach::TransitiveClosureIndex::Construction::kIncremental);
      std::snprintf(tc_build, sizeof(tc_build), "%s",
                    HumanNanos(timer.ElapsedNanos()).c_str());
      std::snprintf(tc_size, sizeof(tc_size), "%s",
                    HumanBytes(tc.IndexSizeBytes()).c_str());
      std::snprintf(tc_query, sizeof(tc_query), "%s",
                    HumanNanos(MeasureQueryNanos(tc, workload)).c_str());
    }

    WallTimer timer;
    auto two_hop = reach::TwoHopIndex::Build(&social.graph, 5);
    double hop_build = static_cast<double>(timer.ElapsedNanos());
    double hop_query = MeasureQueryNanos(two_hop, workload);

    std::printf(
        "%-8s | %8u %8llu %7.1f %7u | %10s %9s %9s | %10s %9s %9s\n",
        config.name, stats.num_nodes,
        static_cast<unsigned long long>(stats.num_edges),
        stats.avg_out_degree,
        std::max(stats.max_out_degree, stats.max_in_degree), tc_build,
        tc_size, tc_query, HumanNanos(hop_build).c_str(),
        HumanBytes(two_hop.IndexSizeBytes()).c_str(),
        HumanNanos(hop_query).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check (Table 5): TC answers queries faster but costs "
      "quadratic memory and longer builds; the 2-hop cover shrinks the "
      "index by an order of magnitude, stays query-efficient, and is the "
      "only option for the largest graphs (TC rows '-').\n");
  return 0;
}

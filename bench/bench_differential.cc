// Coverage and throughput of the differential oracle harness: how many
// randomized workloads per second the sweep replays through every
// production fast path, and how many equivalence checks each case packs.
// The metrics sidecar (bench_differential.metrics.json) exports the
// testing.diff.{cases_total,checks_total,divergences_total} counters so
// dashboards can track harness coverage over time.
//
// Usage: bench_differential [num_cases] (default 25; --smoke = 5)

#include <cstdio>
#include <cstring>
#include <string>

#include "testing/differential_runner.h"
#include "util/metrics.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mel;

  uint32_t num_cases = 25;
  if (argc > 1) {
    if (std::strcmp(argv[1], "--smoke") == 0) {
      num_cases = 5;
    } else {
      num_cases = static_cast<uint32_t>(std::stoul(argv[1]));
    }
  }

  std::printf("=== Differential oracle sweep: %u cases ===\n", num_cases);
  metrics::Registry().Reset();

  WallTimer timer;
  uint64_t checks = 0;
  uint32_t failures = 0;
  for (uint32_t i = 0; i < num_cases; ++i) {
    testing::DiffReport report =
        testing::RunDifferentialCase(0xBE7C4000ull + i);
    checks += report.checks;
    if (!report.ok()) {
      ++failures;
      std::printf("%s\n", report.Summary().c_str());
    }
  }
  const double seconds = timer.ElapsedSeconds();

  std::printf("%-28s %12u\n", "cases", num_cases);
  std::printf("%-28s %12llu\n", "equivalence checks",
              static_cast<unsigned long long>(checks));
  std::printf("%-28s %12.1f\n", "checks / case",
              num_cases == 0 ? 0.0 : static_cast<double>(checks) / num_cases);
  std::printf("%-28s %12.2f\n", "cases / second",
              seconds == 0 ? 0.0 : num_cases / seconds);
  std::printf("%-28s %12u\n", "divergent cases", failures);

  const char* metrics_path = "bench_differential.metrics.json";
  if (metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("\nmetrics written to %s\n", metrics_path);
  }
  return failures == 0 ? 0 : 1;
}

// Reproduces Fig. 4(c): entity-linking accuracy with tf-idf-based vs
// entropy-based user-influence estimation (Sec. 4.1.2).

#include <cstdio>

#include "eval/harness.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 4(c): tf-idf vs entropy influence ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  std::printf("%-10s %10s %10s\n", "method", "tweet", "mention");
  for (auto method : {social::InfluenceMethod::kTfIdf,
                      social::InfluenceMethod::kEntropy}) {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    options.influence_method = method;
    auto acc = harness.Evaluate(options).accuracy();
    std::printf("%-10s %10.4f %10.4f\n",
                method == social::InfluenceMethod::kTfIdf ? "tf-idf"
                                                          : "entropy",
                acc.TweetAccuracy(), acc.MentionAccuracy());
  }
  std::printf(
      "\nPaper shape check (Fig. 4c): the entropy-based estimator matches "
      "or beats the tf-idf estimator (it tolerates incidental postings of "
      "influential users in other communities).\n");
  return 0;
}

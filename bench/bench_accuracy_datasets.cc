// Reproduces Fig. 4(b): entity-linking accuracy when the knowledgebase is
// complemented with tweet datasets of different sizes (D90 smallest ...
// D10 largest). More complemented tweets improve coverage but include
// links from sparser users, whose pre-linking is noisier — the paper's
// quality-vs-coverage trade-off.

#include <cstdio>

#include "core/entity_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"
#include "gen/workload.h"
#include "reach/two_hop_index.h"
#include "recency/propagation_network.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 4(b): accuracy vs complementation dataset ===\n");
  gen::World world = gen::GenerateWorld(eval::StandardWorldOptions(1.0, 1));
  auto reach_index = reach::TwoHopIndex::Build(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.75);
  auto test_split = gen::SampleInactiveUsers(world.corpus, 10, 150, 12);

  std::printf("%-8s %10s %10s %10s %12s\n", "dataset", "#links", "tweet",
              "mention", "complement");
  for (uint32_t theta : {90u, 70u, 50u, 30u, 10u}) {
    auto split = gen::FilterActiveUsers(world.corpus, theta);
    kb::ComplementedKnowledgebase ckb(&world.kb());
    gen::ComplementWithSimulatedLinker(world, split, 1.0, 0.6, 77, &ckb);

    core::LinkerOptions options;
    options.theta1 = 10;
    core::EntityLinker linker(&world.kb(), &ckb, &reach_index, &network,
                              options);
    auto acc = eval::EvaluateOurs(linker, world, test_split).accuracy();
    std::printf("D%-7u %10llu %10.4f %10.4f %12zu users\n", theta,
                static_cast<unsigned long long>(ckb.TotalLinks()),
                acc.TweetAccuracy(), acc.MentionAccuracy(),
                split.users.size());
  }
  std::printf(
      "\nPaper shape check (Fig. 4b): accuracy generally improves from "
      "D90 to D10 as more knowledge is complemented.\n");
  return 0;
}

// Design-choice ablation (DESIGN.md Sec. 5): should the 2-hop labels STORE
// followee sets (the paper's Algorithm 2) or store distances only and
// reconstruct F_uv through Theorem 1 at query time? Compares build time,
// index size, and query latency of the two label layouts plus the
// transitive closure for reference.

#include <cstdio>

#include "gen/social_graph_generator.h"
#include "reach/distance_label_index.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

double MeasureQueryNanos(const mel::reach::WeightedReachability& index,
                         uint32_t num_nodes, size_t queries) {
  mel::Rng rng(99);
  mel::WallTimer timer;
  double sink = 0;
  for (size_t i = 0; i < queries; ++i) {
    sink += index.Score(
        static_cast<mel::graph::NodeId>(rng.Uniform(num_nodes)),
        static_cast<mel::graph::NodeId>(rng.Uniform(num_nodes)));
  }
  if (sink < -1) std::printf("impossible\n");
  return static_cast<double>(timer.ElapsedNanos()) / queries;
}

}  // namespace

int main() {
  using namespace mel;
  std::printf(
      "=== ablation: followee sets stored in labels vs reconstructed ===\n");
  std::printf("%-8s | %-18s %12s %10s %10s\n", "users", "index", "build",
              "size", "query");

  for (uint32_t users : {1000u, 2000u, 4000u}) {
    gen::SocialGenOptions sopts;
    sopts.num_users = users;
    sopts.num_topics = 15;
    sopts.seed = 5;
    auto social = gen::GenerateSocialGraph(sopts);
    constexpr size_t kQueries = 50000;

    {
      WallTimer timer;
      auto index = reach::TwoHopIndex::Build(&social.graph, 5);
      double build = static_cast<double>(timer.ElapsedNanos());
      std::printf("%-8u | %-18s %12s %10s %10s\n", users,
                  "2hop+followees", HumanNanos(build).c_str(),
                  HumanBytes(index.IndexSizeBytes()).c_str(),
                  HumanNanos(MeasureQueryNanos(index, users, kQueries))
                      .c_str());
    }
    {
      WallTimer timer;
      auto index = reach::DistanceLabelIndex::Build(&social.graph, 5);
      double build = static_cast<double>(timer.ElapsedNanos());
      std::printf("%-8u | %-18s %12s %10s %10s\n", users,
                  "2hop dist-only", HumanNanos(build).c_str(),
                  HumanBytes(index.IndexSizeBytes()).c_str(),
                  HumanNanos(MeasureQueryNanos(index, users, kQueries))
                      .c_str());
    }
    {
      WallTimer timer;
      auto index = reach::TransitiveClosureIndex::Build(
          &social.graph, 5,
          reach::TransitiveClosureIndex::Construction::kIncremental);
      double build = static_cast<double>(timer.ElapsedNanos());
      std::printf("%-8u | %-18s %12s %10s %10s\n", users,
                  "transitive closure", HumanNanos(build).c_str(),
                  HumanBytes(index.IndexSizeBytes()).c_str(),
                  HumanNanos(MeasureQueryNanos(index, users, kQueries))
                      .c_str());
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: the distance-only labels build faster and are "
      "smaller, but each weighted query pays outdeg(u) extra label "
      "intersections to reconstruct the followee set — the trade the "
      "paper's Algorithm 2 makes in the other direction.\n");
  return 0;
}

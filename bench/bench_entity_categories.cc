// Reproduces Appendix C.1 ("Different entity categories"): mention
// accuracy per category of the ground-truth entity. The framework uses no
// category-specific features, so accuracies should be similar across
// categories.

#include <cstdio>

#include "eval/harness.h"

int main() {
  using namespace mel;
  std::printf("=== Appendix C.1: accuracy per entity category ===\n");
  eval::HarnessOptions hopts;
  hopts.test_max_users = 400;  // more mentions per category bucket
  eval::Harness harness(hopts);

  auto run = harness.Evaluate(harness.DefaultLinkerOptions());

  uint32_t correct[kb::kNumEntityCategories] = {0};
  uint32_t total[kb::kNumEntityCategories] = {0};
  for (const auto& outcome : run.outcomes) {
    int category =
        static_cast<int>(harness.kb().entity(outcome.truth).category);
    ++total[category];
    if (outcome.correct()) ++correct[category];
  }

  std::printf("%-14s %10s %10s %10s\n", "category", "#mentions", "share",
              "accuracy");
  uint32_t all = 0;
  for (int c = 0; c < kb::kNumEntityCategories; ++c) all += total[c];
  for (int c = 0; c < kb::kNumEntityCategories; ++c) {
    std::printf("%-14s %10u %9.1f%% %10.4f\n",
                kb::EntityCategoryName(static_cast<kb::EntityCategory>(c)),
                total[c], 100.0 * total[c] / all,
                total[c] == 0 ? 0.0
                              : static_cast<double>(correct[c]) / total[c]);
  }
  std::printf(
      "\nPaper shape check (App. C.1): category shares mirror the "
      "paper's annotation mix (Person dominates) and accuracy is similar "
      "across categories — no category-specific features are used.\n");
  return 0;
}

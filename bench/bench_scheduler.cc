// Scheduler A/B: the legacy shared-cursor chunk-pull ParallelFor vs the
// work-stealing executor (per-thread Chase-Lev deques, contiguous initial
// slices, half-range steals, socket-aware victims — see
// docs/PERFORMANCE.md), on three workloads:
//
//   1. skewed synthetic — per-item cost follows a shuffled power law
//      (a few hub-sized items, a long light tail), executed at grain 1.
//      This is the regime the paper's index builds live in: power-law
//      degree distributions force fine grains, and the chunk-pull
//      scheduler then serializes every chunk on one hot cursor line
//      while the tail leaves cores idle. The speedup floor (>= 1.25x at
//      >= 4 hardware threads, full mode only) is asserted here.
//   2. uniform synthetic — equal-cost items at a comfortable grain, as a
//      regression guard: work-stealing must not lose what chunk-pull
//      already handled well (floor 0.90x, same gating).
//   3. the real 2-hop label build on a generated social graph
//      (power-law follower distribution), reported for trajectory
//      tracking (no assert: build times on small graphs are noisy).
//
// Writes two sidecars:
//   bench_scheduler.metrics.json — full registry export (as every bench)
//   BENCH_scheduler.json         — trajectory summary (schema v1; keys
//                                  checked by scripts/verify.sh)
//
// Run:   ./bench/bench_scheduler [--smoke] [--threads N]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/social_graph_generator.h"
#include "reach/two_hop_index.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace mel;

// Cheap deterministic per-item busy work; the result is stored so the
// compiler cannot elide the loop.
inline uint64_t SpinWork(uint64_t seed, uint32_t units) {
  uint64_t x = seed | 1;
  for (uint32_t u = 0; u < units; ++u) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

struct Workload {
  std::vector<uint32_t> units;  // per-item cost
  size_t grain = 1;
  const char* name = "";
};

// Power-law item costs, deterministically shuffled so heavy items are
// scattered through the range (as hub vertices are in a degree-ordered
// pass): item with rank r costs ~ count / (r + 1) units on top of a
// floor of 48 units (~100ns), so the tail items model real light
// vertices rather than free iterations whose cost is pure dispatch.
Workload MakeSkewedWorkload(size_t count) {
  Workload w;
  w.name = "skewed";
  w.grain = 1;
  w.units.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t rank = (i * 2654435761ull) % count;
    w.units[i] = static_cast<uint32_t>(48 + count / (rank + 1));
  }
  return w;
}

Workload MakeUniformWorkload(size_t count) {
  Workload w;
  w.name = "uniform";
  w.grain = 64;
  w.units.assign(count, 12);
  return w;
}

// Best-of-reps wall time for one (pool, workload) pair.
double MeasureMillis(util::ThreadPool& pool, const Workload& w,
                     std::vector<uint64_t>& out, int reps) {
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    pool.ParallelFor(0, w.units.size(), w.grain, [&](size_t i) {
      out[i] = SpinWork(i, w.units[i]);
    });
    best_ms = std::min(best_ms, timer.ElapsedMillis());
  }
  // Fold the outputs into a checksum so the work is observable.
  uint64_t checksum = 0;
  for (uint64_t v : out) checksum ^= v;
  if (checksum == 42) std::printf("(unlikely checksum)\n");
  return best_ms;
}

double MeasureTwoHopBuildMillis(const graph::DirectedGraph* g,
                                util::ThreadPool& pool, int reps) {
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    auto index = reach::TwoHopIndex::Build(g, 5, &pool);
    best_ms = std::min(best_ms, timer.ElapsedMillis());
    if (index.IndexSizeBytes() == 0) std::printf("(empty index)\n");
  }
  return best_ms;
}

uint64_t CounterValue(const char* name) {
  return metrics::Registry().GetCounter(name)->Value();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  uint32_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--threads N]\n", argv[0]);
      return 1;
    }
  }
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (threads == 0) threads = std::max(4u, hw);
  const int reps = smoke ? 2 : 3;
  const size_t skew_items = smoke ? (1u << 15) : (1u << 17);
  const size_t uniform_items = smoke ? (1u << 16) : (1u << 18);
  const uint32_t graph_users = smoke ? 600 : 1500;

  util::ThreadPool::Options chunk_opts;
  chunk_opts.num_threads = threads;
  chunk_opts.scheduler = util::SchedulerKind::kChunkPull;
  util::ThreadPool::Options steal_opts;
  steal_opts.num_threads = threads;
  steal_opts.scheduler = util::SchedulerKind::kWorkStealing;
  util::ThreadPool chunk_pool(chunk_opts);
  util::ThreadPool steal_pool(steal_opts);

  std::printf("=== scheduler A/B: chunk-pull vs work-stealing ===\n");
  std::printf("threads=%u (hardware %u), sockets=%u%s, mode=%s\n", threads,
              hw, steal_pool.num_sockets(),
              steal_pool.pinned() ? " pinned" : "", smoke ? "smoke" : "full");

  // ---- Phase 1+2: synthetic workloads -----------------------------
  const Workload skewed = MakeSkewedWorkload(skew_items);
  const Workload uniform = MakeUniformWorkload(uniform_items);
  std::vector<uint64_t> out(std::max(skew_items, uniform_items));

  // Warm both pools (first regions pay thread wakeup + page faults).
  MeasureMillis(chunk_pool, uniform, out, 1);
  MeasureMillis(steal_pool, uniform, out, 1);

  metrics::Registry().Reset();
  const double skew_chunk_ms = MeasureMillis(chunk_pool, skewed, out, reps);
  const uint64_t steals_before = CounterValue("util.pool.steals_total");
  const uint64_t pops_before = CounterValue("util.pool.local_pops_total");
  const double skew_steal_ms = MeasureMillis(steal_pool, skewed, out, reps);
  const uint64_t skew_steals =
      CounterValue("util.pool.steals_total") - steals_before;
  const uint64_t skew_pops =
      CounterValue("util.pool.local_pops_total") - pops_before;

  const double uniform_chunk_ms =
      MeasureMillis(chunk_pool, uniform, out, reps);
  const double uniform_steal_ms =
      MeasureMillis(steal_pool, uniform, out, reps);

  const double skew_speedup = skew_chunk_ms / skew_steal_ms;
  const double uniform_ratio = uniform_chunk_ms / uniform_steal_ms;

  std::printf("\n%-22s %12s %12s %9s\n", "workload", "chunk-pull",
              "work-steal", "speedup");
  std::printf("%-22s %10.2fms %10.2fms %8.2fx\n", "skewed (grain 1)",
              skew_chunk_ms, skew_steal_ms, skew_speedup);
  std::printf("%-22s %10.2fms %10.2fms %8.2fx\n", "uniform (grain 64)",
              uniform_chunk_ms, uniform_steal_ms, uniform_ratio);
  std::printf("skewed steal path: %llu local pops, %llu steals\n",
              static_cast<unsigned long long>(skew_pops),
              static_cast<unsigned long long>(skew_steals));

  // ---- Phase 3: the real 2-hop label build ------------------------
  gen::SocialGenOptions sopts;
  sopts.num_users = graph_users;
  sopts.num_topics = 15;
  sopts.seed = 5;
  auto social = gen::GenerateSocialGraph(sopts);
  MeasureTwoHopBuildMillis(&social.graph, steal_pool, 1);  // warm
  const double twohop_chunk_ms =
      MeasureTwoHopBuildMillis(&social.graph, chunk_pool, reps);
  const double twohop_steal_ms =
      MeasureTwoHopBuildMillis(&social.graph, steal_pool, reps);
  const double twohop_speedup = twohop_chunk_ms / twohop_steal_ms;
  std::printf("%-22s %10.2fms %10.2fms %8.2fx   (%u users, report-only)\n",
              "2-hop build", twohop_chunk_ms, twohop_steal_ms,
              twohop_speedup, graph_users);

  // ---- Sidecars ---------------------------------------------------
  auto& reg = metrics::Registry();
  reg.GetGauge("bench.scheduler.skew_speedup_x100")
      ->Set(static_cast<int64_t>(skew_speedup * 100));
  reg.GetGauge("bench.scheduler.uniform_ratio_x100")
      ->Set(static_cast<int64_t>(uniform_ratio * 100));
  reg.GetGauge("bench.scheduler.twohop_speedup_x100")
      ->Set(static_cast<int64_t>(twohop_speedup * 100));
  const char* metrics_path = "bench_scheduler.metrics.json";
  if (metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("\nmetrics JSON written to %s\n", metrics_path);
  }

  // The speedup floor only means something on real parallel hardware,
  // in full mode (smoke keeps CI fast and deterministic).
  const bool asserted = !smoke && hw >= 4 && threads >= 4;
  {
    std::ofstream sidecar("BENCH_scheduler.json");
    JsonWriter w(&sidecar);
    w.BeginObject();
    w.KeyValue("bench", std::string_view("scheduler"));
    w.KeyValue("schema_version", uint64_t{1});
    w.KeyValue("mode", std::string_view(smoke ? "smoke" : "full"));
    w.KeyValue("threads", uint64_t{threads});
    w.KeyValue("hw_threads", uint64_t{hw});
    w.KeyValue("sockets", uint64_t{steal_pool.num_sockets()});
    w.KeyValue("pinned", steal_pool.pinned());
    w.KeyValue("skew_items", uint64_t{skew_items});
    w.KeyValue("skew_chunk_ms", skew_chunk_ms);
    w.KeyValue("skew_steal_ms", skew_steal_ms);
    w.KeyValue("skew_speedup", skew_speedup);
    w.KeyValue("skew_steals", skew_steals);
    w.KeyValue("skew_local_pops", skew_pops);
    w.KeyValue("uniform_items", uint64_t{uniform_items});
    w.KeyValue("uniform_chunk_ms", uniform_chunk_ms);
    w.KeyValue("uniform_steal_ms", uniform_steal_ms);
    w.KeyValue("uniform_ratio", uniform_ratio);
    w.KeyValue("twohop_users", uint64_t{graph_users});
    w.KeyValue("twohop_chunk_ms", twohop_chunk_ms);
    w.KeyValue("twohop_steal_ms", twohop_steal_ms);
    w.KeyValue("twohop_speedup", twohop_speedup);
    w.KeyValue("asserted", asserted);
    w.EndObject();
    sidecar << "\n";
    std::printf("trajectory written to BENCH_scheduler.json\n");
  }

  // ---- Acceptance gates -------------------------------------------
  bool ok = true;
  if (asserted) {
    if (skew_speedup < 1.25) {
      std::printf("FAIL: skewed speedup %.2fx below the 1.25x floor\n",
                  skew_speedup);
      ok = false;
    }
    if (uniform_ratio < 0.90) {
      std::printf("FAIL: uniform ratio %.2fx regressed below 0.90x\n",
                  uniform_ratio);
      ok = false;
    }
  } else {
    std::printf(
        "floors not asserted (%s, %u hardware threads); they apply in "
        "full mode at >= 4 hardware threads\n",
        smoke ? "smoke mode" : "full mode", hw);
  }
  return ok ? 0 : 1;
}

// Reproduces Fig. 6(d): sensitivity of the framework to the feature
// weights alpha (interest), beta (recency), gamma (popularity). For each
// alpha, the remaining mass 1 - alpha is split between beta and gamma.

#include <cstdio>

#include "eval/harness.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 6(d): sensitivity to alpha / beta / gamma ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  const double beta_fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::printf("%-8s", "alpha");
  for (double f : beta_fractions) {
    std::printf("  beta/(b+g)=%.2f", f);
  }
  std::printf("\n");

  for (double alpha : {0.1, 0.3, 0.6, 0.9}) {
    std::printf("%-8.1f", alpha);
    for (double f : beta_fractions) {
      core::LinkerOptions options = harness.DefaultLinkerOptions();
      options.alpha = alpha;
      options.beta = (1 - alpha) * f;
      options.gamma = (1 - alpha) * (1 - f);
      auto acc = harness.Evaluate(options).accuracy();
      std::printf("  %15.4f", acc.MentionAccuracy());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check (Fig. 6d): the method is sensitive to the "
      "weights; for each alpha the best column is interior or leans "
      "toward recency (beta > gamma), and mid-to-high alpha rows "
      "dominate — matching the paper's chosen 0.6/0.3/0.1.\n");
  return 0;
}

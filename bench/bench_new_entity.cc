// Reproduces Appendix D: avoiding false positives for new entities /
// new meanings with the beta + gamma score threshold. Mentions issued by
// users with no interest in any existing candidate (simulating a mention
// of an entity the knowledgebase does not know yet) should be suppressed,
// while genuine mentions survive.

#include <cstdio>

#include "eval/harness.h"
#include "graph/graph_builder.h"
#include "reach/naive_reachability.h"
#include "util/random.h"

int main() {
  using namespace mel;
  std::printf("=== Appendix D: new-entity rejection threshold ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  // "Unknown meaning" queries: ambiguous surfaces issued by an isolated
  // user (no followees => no interest in any existing candidate) at a
  // quiet time (no bursts => no recency). Any link produced is a false
  // positive by construction.
  const auto& kb_world = harness.world().kb_world;
  const kb::Timestamp quiet_time = 400 * kb::kSecondsPerDay;
  graph::GraphBuilder lonely_builder(
      harness.world().social.graph.num_nodes() + 1);
  auto lonely_graph = std::move(lonely_builder).Build();
  reach::NaiveReachability lonely_reach(&lonely_graph, 5);
  const kb::UserId lonely_user = lonely_graph.num_nodes() - 1;

  for (bool threshold_on : {false, true}) {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    options.reject_below_interest_threshold = threshold_on;

    // False positives on unknown-meaning queries.
    core::EntityLinker lonely_linker(&harness.kb(), &harness.ckb(),
                                     &lonely_reach, &harness.network(),
                                     options);
    uint32_t fp = 0, flagged = 0, queries = 0;
    for (const auto& surface : kb_world.ambiguous_surfaces) {
      ++queries;
      auto r = lonely_linker.LinkMention(surface, lonely_user, quiet_time);
      if (r.linked()) ++fp;
      if (r.probable_new_entity) ++flagged;
    }

    // Retention of genuine links on the normal test split.
    auto run = harness.Evaluate(options);
    uint32_t linked = 0;
    for (const auto& outcome : run.outcomes) {
      if (outcome.predicted != kb::kInvalidEntity) ++linked;
    }

    std::printf(
        "threshold %-3s | unknown-meaning queries: %u, false positives: "
        "%u (%.1f%%), flagged-as-new: %u | genuine mentions linked: "
        "%u/%zu, mention accuracy: %.4f\n",
        threshold_on ? "ON" : "OFF", queries, fp, 100.0 * fp / queries,
        flagged, linked, run.outcomes.size(),
        run.accuracy().MentionAccuracy());
  }
  std::printf(
      "\nPaper shape check (App. D): with the threshold ON, candidates "
      "scoring <= beta + gamma are suppressed, eliminating the false "
      "positives for unknown meanings while most genuine mentions (whose "
      "authors do show interest) are still linked.\n");
  return 0;
}

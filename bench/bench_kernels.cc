// SIMD kernel A/B: the four vectorized hot loops (sorted-intersection
// merge + gallop, 2-hop min-sum span walk, fuzzy-index probe scan,
// dense-BFS frontier filter) timed with the scalar kernel table against
// the runtime-dispatched table on the same operands.
//
// Operands are workload-shaped, not synthetic best cases: intersection
// runs over inlink lists of a generated knowledgebase biased toward
// popular entities (the candidate sets WLM actually intersects),
// min-sum runs over real TwoHopIndex label arrays, and the probe table
// mirrors SegmentFuzzyIndex's layout (power-of-two, 64-bit keys,
// golden-ratio start slot, linear scan).
//
// Every kernel is checked for bit-identity between the two arms before
// timing — a speedup from a wrong answer is meaningless. Full mode
// asserts the dispatched merge intersection is >= 1.5x scalar when the
// active tier is AVX2 (the contract in docs/PERFORMANCE.md); on hosts
// without AVX2 the assertion is skipped with a logged reason. Results
// go to bench.kernels.* gauges and the BENCH_kernels.json trajectory
// sidecar checked by scripts/verify.sh.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gen/kb_generator.h"
#include "graph/bfs.h"
#include "gen/social_graph_generator.h"
#include "kb/knowledgebase.h"
#include "reach/two_hop_index.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/simd/simd.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using mel::Rng;
using mel::WallTimer;
namespace simd = mel::util::simd;

constexpr uint32_t kMaxHops = 5;

struct KernelAb {
  const char* name = "";
  uint64_t ops = 0;          // kernel invocations per timed arm
  double scalar_ns = 0;      // mean per invocation
  double dispatched_ns = 0;  // mean per invocation
  double speedup = 0;
};

void PrintAb(const KernelAb& r) {
  std::printf("%-10s : scalar %s vs dispatched %s  -> %.2fx  (%llu ops)\n",
              r.name, mel::HumanNanos(r.scalar_ns).c_str(),
              mel::HumanNanos(r.dispatched_ns).c_str(), r.speedup,
              static_cast<unsigned long long>(r.ops));
}

// Times `body` (which runs the whole operand set once) `reps` times and
// returns mean nanoseconds per kernel invocation.
template <typename Body>
double TimeArm(uint32_t reps, uint64_t ops_per_rep, Body&& body) {
  body();  // warm caches and page in operands outside the timer
  WallTimer timer;
  for (uint32_t r = 0; r < reps; ++r) body();
  return static_cast<double>(timer.ElapsedNanos()) /
         static_cast<double>(reps) / static_cast<double>(ops_per_rep);
}

// --- intersection (merge + gallop) -----------------------------------

struct IntersectOperands {
  // Backing lists, then index pairs into them.
  std::vector<std::vector<uint32_t>> lists;
  std::vector<std::pair<uint32_t, uint32_t>> merge_pairs;
  std::vector<std::pair<uint32_t, uint32_t>> gallop_pairs;  // small, large
};

IntersectOperands MakeIntersectOperands(const mel::kb::Knowledgebase& kb,
                                        uint32_t num_pairs, Rng* rng) {
  IntersectOperands ops;
  const uint32_t n = kb.num_entities();

  // Entities ranked by inlink count; WLM's expensive intersections are
  // between the popular candidates of ambiguous surfaces, so pairs are
  // drawn from the most-linked quartile.
  std::vector<uint32_t> by_size(n);
  std::iota(by_size.begin(), by_size.end(), 0u);
  std::sort(by_size.begin(), by_size.end(), [&](uint32_t a, uint32_t b) {
    return kb.Inlinks(a).size() > kb.Inlinks(b).size();
  });
  const uint32_t top = std::max<uint32_t>(2, n / 4);
  for (uint32_t e = 0; e < top; ++e) {
    const auto span = kb.Inlinks(by_size[e]);
    ops.lists.emplace_back(span.begin(), span.end());
  }
  for (uint32_t i = 0; i < num_pairs; ++i) {
    const auto a = static_cast<uint32_t>(rng->Uniform(top));
    const auto b = static_cast<uint32_t>(rng->Uniform(top));
    ops.merge_pairs.emplace_back(a, b);
  }

  // Gallop operands: a short candidate list against a popular entity's
  // full inlink list (the >= 16:1 ratio the dispatcher routes to
  // galloping). Smalls are sampled from the entity-id universe so about
  // half their members hit.
  const uint32_t num_large = std::min<uint32_t>(8, top);
  for (uint32_t i = 0; i < num_pairs; ++i) {
    const uint32_t large = static_cast<uint32_t>(rng->Uniform(num_large));
    const size_t nl = ops.lists[large].size();
    const size_t ns = std::max<size_t>(2, std::min<size_t>(32, nl / 16));
    std::vector<uint32_t> small;
    while (small.size() < ns) {
      const uint32_t x =
          (rng->Next() & 1)
              ? ops.lists[large][rng->Uniform(nl)]
              : static_cast<uint32_t>(rng->Uniform(n));
      small.push_back(x);
      std::sort(small.begin(), small.end());
      small.erase(std::unique(small.begin(), small.end()), small.end());
    }
    ops.lists.push_back(std::move(small));
    ops.gallop_pairs.emplace_back(
        static_cast<uint32_t>(ops.lists.size() - 1), large);
  }
  return ops;
}

KernelAb RunIntersectAb(const IntersectOperands& ops, bool gallop,
                        uint32_t reps, const simd::KernelTable& scalar,
                        const simd::KernelTable& dispatched) {
  const auto& pairs = gallop ? ops.gallop_pairs : ops.merge_pairs;
  auto run = [&](const simd::KernelTable& t) {
    uint64_t sum = 0;
    for (const auto& [ia, ib] : pairs) {
      const auto& a = ops.lists[ia];
      const auto& b = ops.lists[ib];
      sum += gallop ? t.gallop_count(a.data(), a.size(), b.data(), b.size())
                    : t.merge_count(a.data(), a.size(), b.data(), b.size());
    }
    return sum;
  };
  if (run(scalar) != run(dispatched)) {
    std::fprintf(stderr, "FAIL: %s kernel arms disagree\n",
                 gallop ? "gallop" : "merge");
    std::abort();
  }
  KernelAb r;
  r.name = gallop ? "gallop" : "merge";
  r.ops = pairs.size();
  volatile uint64_t sink = 0;
  r.scalar_ns = TimeArm(reps, r.ops, [&] { sink = sink + run(scalar); });
  r.dispatched_ns = TimeArm(reps, r.ops, [&] { sink = sink + run(dispatched); });
  r.speedup = r.scalar_ns / r.dispatched_ns;
  return r;
}

// --- 2-hop min-sum span walk -----------------------------------------

KernelAb RunMinSumAb(const mel::graph::DirectedGraph& g,
                     const mel::reach::TwoHopIndex& two_hop,
                     uint32_t num_pairs, uint32_t reps, Rng* rng,
                     const simd::KernelTable& scalar,
                     const simd::KernelTable& dispatched) {
  const uint32_t n = g.num_nodes();
  std::vector<std::pair<uint32_t, uint32_t>> pairs(num_pairs);
  size_t max_outs = 1;
  for (auto& p : pairs) {
    p = {static_cast<uint32_t>(rng->Uniform(n)),
         static_cast<uint32_t>(rng->Uniform(n))};
    max_outs = std::max(max_outs, two_hop.out_labels(p.first).size());
  }
  std::vector<uint64_t> spans(max_outs), check(max_outs);

  auto run = [&](const simd::KernelTable& t) {
    uint64_t sum = 0;
    for (const auto& [u, v] : pairs) {
      const auto outs = two_hop.out_labels(u);
      const auto ins = two_hop.in_labels(v);
      size_t n_spans = 0;
      sum += t.min_sum_spans(
          reinterpret_cast<const uint64_t*>(outs.data()), outs.size(),
          reinterpret_cast<const uint64_t*>(ins.data()), ins.size(),
          mel::graph::kUnreachable, two_hop.out_offset(u), spans.data(),
          &n_spans);
      sum += n_spans;
    }
    return sum;
  };
  // Bit-identity on spans, not just the checksum, for one sample pair.
  {
    const auto [u, v] = pairs[0];
    const auto outs = two_hop.out_labels(u);
    const auto ins = two_hop.in_labels(v);
    size_t ns = 0, nd = 0;
    scalar.min_sum_spans(reinterpret_cast<const uint64_t*>(outs.data()),
                         outs.size(),
                         reinterpret_cast<const uint64_t*>(ins.data()),
                         ins.size(), mel::graph::kUnreachable,
                         two_hop.out_offset(u), check.data(), &ns);
    dispatched.min_sum_spans(reinterpret_cast<const uint64_t*>(outs.data()),
                             outs.size(),
                             reinterpret_cast<const uint64_t*>(ins.data()),
                             ins.size(), mel::graph::kUnreachable,
                             two_hop.out_offset(u), spans.data(), &nd);
    if (ns != nd || !std::equal(check.begin(), check.begin() + ns,
                                spans.begin())) {
      std::fprintf(stderr, "FAIL: min-sum kernel arms disagree\n");
      std::abort();
    }
  }
  if (run(scalar) != run(dispatched)) {
    std::fprintf(stderr, "FAIL: min-sum checksum arms disagree\n");
    std::abort();
  }
  KernelAb r;
  r.name = "minsum";
  r.ops = num_pairs;
  volatile uint64_t sink = 0;
  r.scalar_ns = TimeArm(reps, r.ops, [&] { sink = sink + run(scalar); });
  r.dispatched_ns = TimeArm(reps, r.ops, [&] { sink = sink + run(dispatched); });
  r.speedup = r.scalar_ns / r.dispatched_ns;
  return r;
}

// --- fuzzy-index probe scan ------------------------------------------

KernelAb RunProbeAb(uint32_t capacity_log2, uint32_t num_probes,
                    uint32_t reps, Rng* rng,
                    const simd::KernelTable& scalar,
                    const simd::KernelTable& dispatched) {
  const size_t cap = size_t{1} << capacity_log2;
  const size_t mask = cap - 1;
  std::vector<uint64_t> keys(cap, 0);
  std::vector<uint64_t> present;
  while (present.size() < cap * 6 / 10) {  // SegmentFuzzyIndex load factor
    const uint64_t k = rng->Next() | 1;
    size_t idx = (k * 0x9E3779B97F4A7C15ull) & mask;
    while (keys[idx] != 0 && keys[idx] != k) idx = (idx + 1) & mask;
    if (keys[idx] == 0) {
      keys[idx] = k;
      present.push_back(k);
    }
  }
  std::vector<std::pair<uint64_t, size_t>> probes(num_probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    const uint64_t key = (i % 2 == 0) ? present[rng->Uniform(present.size())]
                                      : (rng->Next() | 1);
    probes[i] = {key, (key * 0x9E3779B97F4A7C15ull) & mask};
  }
  auto run = [&](const simd::KernelTable& t) {
    uint64_t sum = 0;
    for (const auto& [key, start] : probes) {
      sum += t.probe_scan(keys.data(), mask, key, start);
    }
    return sum;
  };
  if (run(scalar) != run(dispatched)) {
    std::fprintf(stderr, "FAIL: probe kernel arms disagree\n");
    std::abort();
  }
  KernelAb r;
  r.name = "probe";
  r.ops = num_probes;
  volatile uint64_t sink = 0;
  r.scalar_ns = TimeArm(reps, r.ops, [&] { sink = sink + run(scalar); });
  r.dispatched_ns = TimeArm(reps, r.ops, [&] { sink = sink + run(dispatched); });
  r.speedup = r.scalar_ns / r.dispatched_ns;
  return r;
}

// --- dense-BFS frontier filter ---------------------------------------

KernelAb RunFrontierAb(uint32_t num_nodes, uint32_t reps, Rng* rng,
                       const simd::KernelTable& scalar,
                       const simd::KernelTable& dispatched) {
  const size_t nwords = (num_nodes + 63) / 64;
  std::vector<uint64_t> next(nwords), visited(nwords);
  for (auto& x : next) x = rng->Next();
  for (auto& x : visited) x = rng->Next();
  // frontier_and_not is idempotent (andnot with a fixed mask), so both
  // arms can re-apply it in place without per-rep copies polluting the
  // measurement. Bit-identity first:
  {
    std::vector<uint64_t> a = next, b = next;
    scalar.frontier_and_not(a.data(), visited.data(), nwords);
    dispatched.frontier_and_not(b.data(), visited.data(), nwords);
    if (a != b) {
      std::fprintf(stderr, "FAIL: frontier kernel arms disagree\n");
      std::abort();
    }
  }
  KernelAb r;
  r.name = "frontier";
  r.ops = 1;
  r.scalar_ns = TimeArm(reps, r.ops, [&] {
    scalar.frontier_and_not(next.data(), visited.data(), nwords);
  });
  r.dispatched_ns = TimeArm(reps, r.ops, [&] {
    dispatched.frontier_and_not(next.data(), visited.data(), nwords);
  });
  r.speedup = r.scalar_ns / r.dispatched_ns;
  return r;
}

// Per-PR trajectory sidecar (schema v1; keys checked by verify.sh).
void WriteKernelsSidecar(const std::vector<KernelAb>& results, bool smoke) {
  std::ofstream sidecar("BENCH_kernels.json");
  mel::JsonWriter w(&sidecar);
  w.BeginObject();
  w.KeyValue("bench", std::string_view("kernels"));
  w.KeyValue("schema_version", uint64_t{1});
  w.KeyValue("mode", std::string_view(smoke ? "smoke" : "full"));
  w.KeyValue("level",
             std::string_view(simd::LevelName(simd::ActiveLevel())));
  for (const auto& r : results) {
    const std::string prefix(r.name);
    w.KeyValue(prefix + "_scalar_ns", r.scalar_ns);
    w.KeyValue(prefix + "_dispatched_ns", r.dispatched_ns);
    w.KeyValue(prefix + "_speedup", r.speedup);
  }
  w.EndObject();
  sidecar << "\n";
  std::printf("trajectory written to BENCH_kernels.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 1;
    }
  }

  const simd::Level level = simd::ActiveLevel();
  std::printf("=== SIMD kernels (active tier: %s) ===\n",
              simd::LevelName(level));
  const simd::KernelTable& scalar =
      simd::KernelsFor(simd::Level::kScalar);
  const simd::KernelTable& dispatched = simd::Kernels();

  Rng rng(17);

  // Knowledgebase sized so popular entities carry the multi-hundred
  // element inlink lists WLM sees on real corpora (Zipf skew
  // concentrates the 64-per-entity link mass on the head).
  mel::gen::KbGenOptions kopts;
  kopts.num_entities = smoke ? 600 : 4000;
  kopts.links_per_entity = smoke ? 16 : 64;
  kopts.seed = 17;
  auto gen_kb = mel::gen::GenerateKnowledgebase(kopts);
  const auto& kb = gen_kb.knowledgebase;

  mel::gen::SocialGenOptions sopts;
  sopts.num_users = smoke ? 300 : 2000;
  sopts.seed = 17;
  auto social = mel::gen::GenerateSocialGraph(sopts);
  auto two_hop =
      mel::reach::TwoHopIndex::Build(&social.graph, kMaxHops);

  const uint32_t pairs = smoke ? 200 : 2000;
  const uint32_t reps = smoke ? 5 : 40;

  const auto intersect_ops = MakeIntersectOperands(kb, pairs, &rng);
  std::vector<KernelAb> results;
  results.push_back(
      RunIntersectAb(intersect_ops, /*gallop=*/false, reps, scalar,
                     dispatched));
  results.push_back(
      RunIntersectAb(intersect_ops, /*gallop=*/true, reps, scalar,
                     dispatched));
  results.push_back(RunMinSumAb(social.graph, two_hop, pairs, reps, &rng,
                                scalar, dispatched));
  results.push_back(RunProbeAb(smoke ? 10 : 14, pairs * 4, reps, &rng,
                               scalar, dispatched));
  results.push_back(
      RunFrontierAb(sopts.num_users, reps * 2000, &rng, scalar,
                    dispatched));
  for (const auto& r : results) PrintAb(r);

  auto& reg = mel::metrics::Registry();
  for (const auto& r : results) {
    const std::string prefix = std::string("bench.kernels.") + r.name;
    reg.GetGauge(prefix + "_scalar_ns")
        ->Set(static_cast<int64_t>(r.scalar_ns));
    reg.GetGauge(prefix + "_dispatched_ns")
        ->Set(static_cast<int64_t>(r.dispatched_ns));
  }

  WriteKernelsSidecar(results, smoke);

  // Contract: AVX2 merge intersection >= 1.5x scalar at these operand
  // shapes. Only enforceable where the AVX2 tier is actually active.
  if (!smoke) {
    if (level == simd::Level::kAvx2) {
      const double merge_speedup = results[0].speedup;
      if (merge_speedup < 1.5) {
        std::fprintf(stderr,
                     "FAIL: AVX2 merge intersection only %.2fx scalar "
                     "(contract: >= 1.5x)\n",
                     merge_speedup);
        return 1;
      }
    } else {
      std::printf(
          "speedup floor skipped: active tier is %s, contract applies "
          "to avx2 hosts only\n",
          simd::LevelName(level));
    }
  }

  const char* metrics_path = "bench_kernels.metrics.json";
  if (mel::metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("metrics JSON written to %s\n", metrics_path);
  }
  return 0;
}

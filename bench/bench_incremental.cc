// Incremental-maintenance A/B: what does a single follow-edge delta cost
// with ReachMaintainer patching the reachability indexes in place, versus
// rebuilding every index from scratch (the only option before the
// mutation API existed)?
//
//   patch   : ReachMaintainer::ApplyDelta — graph splice + two bounded
//             BFS frontiers + per-index OnGraphMutation hooks.
//   rebuild : graph splice + TransitiveClosureIndex::Build +
//             TwoHopIndex::Build + DistanceLabelIndex::Build.
//
// Inserts and erases are measured separately because they sit on
// different maintenance paths: an insert patches every index through the
// closed form d'(a,b) = min(d(a,b), d(a,u) + 1 + d(v,b)); an erase has
// no closed form for the pruned label covers, so the 2-hop and
// distance-label indexes rebuild (kRebuilt) while the transitive closure
// still patches. Full mode asserts the insert path is >= 5x faster than
// per-delta rebuilds — the contract claimed in docs/PERFORMANCE.md.
// Results go to bench.incremental.* gauges and the
// BENCH_incremental.json trajectory sidecar checked by scripts/verify.sh.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

#include "gen/social_graph_generator.h"
#include "graph/directed_graph.h"
#include "graph/mutation.h"
#include "reach/distance_label_index.h"
#include "reach/reach_maintainer.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using mel::graph::NodeId;

constexpr uint32_t kMaxHops = 5;

struct AbResult {
  uint32_t users = 0;
  uint32_t num_deltas = 0;        // per direction (insert / erase)
  double patch_insert_ns = 0;     // mean per delta
  double rebuild_insert_ns = 0;   // mean per delta
  double patch_erase_ns = 0;      // mean per delta
  double rebuild_erase_ns = 0;    // mean per delta
  double insert_speedup = 0;
  double erase_speedup = 0;
};

// Fresh builds of the three indexed backends; the unit of the rebuild arm.
double TimeFullRebuild(const mel::graph::DirectedGraph& g) {
  mel::WallTimer timer;
  auto tc = mel::reach::TransitiveClosureIndex::Build(
      &g, kMaxHops,
      mel::reach::TransitiveClosureIndex::Construction::kIncremental);
  auto two_hop = mel::reach::TwoHopIndex::Build(&g, kMaxHops);
  auto dli = mel::reach::DistanceLabelIndex::Build(&g, kMaxHops);
  const double ns = static_cast<double>(timer.ElapsedNanos());
  // Keep the builds observable so the compiler cannot drop them.
  if (tc.IndexSizeBytes() + two_hop.IndexSizeBytes() + dli.IndexSizeBytes() ==
      0) {
    std::fprintf(stderr, "impossible: empty indexes\n");
    std::abort();
  }
  return ns;
}

AbResult RunIncrementalAb(uint32_t users, uint32_t num_deltas) {
  using namespace mel;
  gen::SocialGenOptions sopts;
  sopts.num_users = users;
  sopts.num_topics = 15;
  sopts.seed = 5;
  auto social = gen::GenerateSocialGraph(sopts);

  // Pick num_deltas edges that do not exist yet: inserted left to right,
  // then erased right to left, so both arms replay identical deltas.
  std::vector<std::pair<NodeId, NodeId>> fresh_edges;
  {
    Rng rng(99);
    while (fresh_edges.size() < num_deltas) {
      const auto u = static_cast<NodeId>(rng.Uniform(users));
      const auto v = static_cast<NodeId>(rng.Uniform(users));
      if (u == v || social.graph.HasEdge(u, v)) continue;
      bool dup = false;
      for (const auto& e : fresh_edges) {
        if (e.first == u && e.second == v) dup = true;
      }
      if (!dup) fresh_edges.emplace_back(u, v);
    }
  }

  AbResult result;
  result.users = users;
  result.num_deltas = num_deltas;

  // --- patch arm: one maintainer carries its indexes through all deltas.
  {
    graph::DirectedGraph g = social.graph;
    auto tc = reach::TransitiveClosureIndex::Build(
        &g, kMaxHops,
        reach::TransitiveClosureIndex::Construction::kIncremental);
    auto two_hop = reach::TwoHopIndex::Build(&g, kMaxHops);
    auto dli = reach::DistanceLabelIndex::Build(&g, kMaxHops);
    reach::ReachMaintainer maintainer(&g, kMaxHops);
    maintainer.Register(&tc);
    maintainer.Register(&two_hop);
    maintainer.Register(&dli);

    auto apply_all = [&](graph::EdgeDelta::Op op, bool reversed) {
      WallTimer timer;
      for (uint32_t i = 0; i < num_deltas; ++i) {
        const auto& e = fresh_edges[reversed ? num_deltas - 1 - i : i];
        graph::EdgeDelta delta;
        delta.op = op;
        delta.u = e.first;
        delta.v = e.second;
        if (!maintainer.ApplyDelta(delta).applied) {
          std::fprintf(stderr, "patch arm: delta unexpectedly a no-op\n");
          std::abort();
        }
      }
      return static_cast<double>(timer.ElapsedNanos()) / num_deltas;
    };
    result.patch_insert_ns =
        apply_all(graph::EdgeDelta::Op::kInsert, /*reversed=*/false);
    result.patch_erase_ns =
        apply_all(graph::EdgeDelta::Op::kErase, /*reversed=*/true);
  }

  // --- rebuild arm: same deltas, full index builds after each.
  {
    graph::DirectedGraph g = social.graph;
    double total = 0;
    for (const auto& e : fresh_edges) {
      if (!g.InsertEdge(e.first, e.second)) std::abort();
      total += TimeFullRebuild(g);
    }
    result.rebuild_insert_ns = total / num_deltas;
    total = 0;
    for (uint32_t i = num_deltas; i-- > 0;) {
      const auto& e = fresh_edges[i];
      if (!g.EraseEdge(e.first, e.second)) std::abort();
      total += TimeFullRebuild(g);
    }
    result.rebuild_erase_ns = total / num_deltas;
  }

  result.insert_speedup = result.rebuild_insert_ns / result.patch_insert_ns;
  result.erase_speedup = result.rebuild_erase_ns / result.patch_erase_ns;

  std::printf("\n=== Incremental maintenance (%u users, %u deltas/dir) ===\n",
              users, num_deltas);
  std::printf("insert : patch %s vs rebuild %s  -> %.1fx\n",
              HumanNanos(result.patch_insert_ns).c_str(),
              HumanNanos(result.rebuild_insert_ns).c_str(),
              result.insert_speedup);
  std::printf("erase  : patch %s vs rebuild %s  -> %.1fx\n",
              HumanNanos(result.patch_erase_ns).c_str(),
              HumanNanos(result.rebuild_erase_ns).c_str(),
              result.erase_speedup);

  auto& reg = metrics::Registry();
  reg.GetGauge("bench.incremental.patch_insert_ns")
      ->Set(static_cast<int64_t>(result.patch_insert_ns));
  reg.GetGauge("bench.incremental.rebuild_insert_ns")
      ->Set(static_cast<int64_t>(result.rebuild_insert_ns));
  reg.GetGauge("bench.incremental.patch_erase_ns")
      ->Set(static_cast<int64_t>(result.patch_erase_ns));
  reg.GetGauge("bench.incremental.rebuild_erase_ns")
      ->Set(static_cast<int64_t>(result.rebuild_erase_ns));
  return result;
}

// Patched indexes must equal fresh builds after a full insert+erase
// round trip (the graph is back to its start state) — a cheap sanity
// gate before trusting the timing comparison.
void VerifyRoundTrip(uint32_t users) {
  using namespace mel;
  gen::SocialGenOptions sopts;
  sopts.num_users = users;
  sopts.num_topics = 15;
  sopts.seed = 5;
  auto social = gen::GenerateSocialGraph(sopts);
  graph::DirectedGraph g = social.graph;
  auto tc = reach::TransitiveClosureIndex::Build(
      &g, kMaxHops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  reach::ReachMaintainer maintainer(&g, kMaxHops);
  maintainer.Register(&tc);

  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    const auto u = static_cast<NodeId>(rng.Uniform(users));
    const auto v = static_cast<NodeId>(rng.Uniform(users));
    if (u == v || g.HasEdge(u, v)) continue;
    graph::EdgeDelta ins{graph::EdgeDelta::Op::kInsert, u, v};
    graph::EdgeDelta era{graph::EdgeDelta::Op::kErase, u, v};
    if (!maintainer.ApplyDelta(ins).applied) std::abort();
    if (!maintainer.ApplyDelta(era).applied) std::abort();
  }
  auto fresh = reach::TransitiveClosureIndex::Build(
      &g, kMaxHops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  Rng check_rng(11);
  for (int i = 0; i < 5000; ++i) {
    const auto u = static_cast<NodeId>(check_rng.Uniform(users));
    const auto v = static_cast<NodeId>(check_rng.Uniform(users));
    if (tc.Distance(u, v) != fresh.Distance(u, v) ||
        tc.Score(u, v) != fresh.Score(u, v)) {
      std::fprintf(stderr, "round-trip mismatch at pair (%u, %u)\n", u, v);
      std::abort();
    }
  }
}

// Per-PR trajectory sidecar (schema v1; keys checked by verify.sh).
void WriteIncrementalSidecar(const AbResult& r, bool smoke) {
  std::ofstream sidecar("BENCH_incremental.json");
  mel::JsonWriter w(&sidecar);
  w.BeginObject();
  w.KeyValue("bench", std::string_view("incremental"));
  w.KeyValue("schema_version", uint64_t{1});
  w.KeyValue("mode", std::string_view(smoke ? "smoke" : "full"));
  w.KeyValue("users", uint64_t{r.users});
  w.KeyValue("num_deltas", uint64_t{r.num_deltas});
  w.KeyValue("patch_insert_ns", r.patch_insert_ns);
  w.KeyValue("rebuild_insert_ns", r.rebuild_insert_ns);
  w.KeyValue("patch_erase_ns", r.patch_erase_ns);
  w.KeyValue("rebuild_erase_ns", r.rebuild_erase_ns);
  w.KeyValue("insert_speedup", r.insert_speedup);
  w.KeyValue("erase_speedup", r.erase_speedup);
  w.EndObject();
  sidecar << "\n";
  std::printf("trajectory written to BENCH_incremental.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 1;
    }
  }

  // Full mode = the standard harness at scale 1.0 (800 users).
  const uint32_t users = smoke ? 300 : 800;
  const uint32_t num_deltas = smoke ? 6 : 40;
  VerifyRoundTrip(users);
  const auto result = RunIncrementalAb(users, num_deltas);
  WriteIncrementalSidecar(result, smoke);

  if (!smoke && result.insert_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: insert patch only %.1fx faster than per-delta "
                 "rebuilds (contract: >= 5x)\n",
                 result.insert_speedup);
    return 1;
  }

  const char* metrics_path = "bench_incremental.metrics.json";
  if (mel::metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("metrics JSON written to %s\n", metrics_path);
  }
  return 0;
}

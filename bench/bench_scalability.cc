// Reproduces Fig. 5(d): linking time as the knowledgebase is complemented
// with increasingly larger tweet datasets (D90 ... D10). After
// restricting reachability checks to influential users and recency
// propagation to clusters, linking time should stay nearly flat.

#include <cstdio>

#include "core/entity_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"
#include "gen/workload.h"
#include "reach/two_hop_index.h"
#include "recency/propagation_network.h"
#include "util/string_util.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 5(d): linking time vs complemented KB size ===\n");
  gen::World world = gen::GenerateWorld(eval::StandardWorldOptions(1.0, 1));
  auto reach_index = reach::TwoHopIndex::Build(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.75);
  auto test_split = gen::SampleInactiveUsers(world.corpus, 10, 150, 12);

  std::printf("%-8s %12s %14s %14s\n", "dataset", "#links", "per mention",
              "per tweet");
  for (uint32_t theta : {90u, 70u, 50u, 30u, 10u}) {
    auto split = gen::FilterActiveUsers(world.corpus, theta);
    kb::ComplementedKnowledgebase ckb(&world.kb());
    gen::ComplementWithSimulatedLinker(world, split, 1.0, 0.6, 77, &ckb);
    core::LinkerOptions options;
    options.theta1 = 10;
    core::EntityLinker linker(&world.kb(), &ckb, &reach_index, &network,
                              options);
    auto run = eval::EvaluateOurs(linker, world, test_split);
    std::printf("D%-7u %12llu %14s %14s\n", theta,
                static_cast<unsigned long long>(ckb.TotalLinks()),
                HumanNanos(run.NanosPerMention()).c_str(),
                HumanNanos(run.NanosPerTweet()).c_str());
  }
  std::printf(
      "\nPaper shape check (Fig. 5d): per-mention time stays nearly flat "
      "as the complemented dataset grows ~10x, because reachability is "
      "restricted to influential users and recency propagation to "
      "clusters of highly related entities.\n");
  return 0;
}

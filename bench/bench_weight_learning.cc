// Extension of Appendix C.2: instead of manually fixing alpha/beta/gamma,
// learn them from labeled data (the option the paper mentions but leaves
// to future work). Dtest is split into a validation half (for learning)
// and a held-out half (for the comparison).

#include <cstdio>

#include "eval/harness.h"
#include "eval/runner.h"
#include "eval/weight_learner.h"

int main() {
  using namespace mel;
  std::printf("=== learned vs manual feature weights ===\n");
  eval::HarnessOptions hopts;
  hopts.test_max_users = 300;  // enough users for two healthy halves
  eval::Harness harness(hopts);

  auto [validation, held_out] = gen::SplitDataset(
      harness.world().corpus, harness.test_split(), 0.5, 17);
  std::printf("validation: %zu users, held-out test: %zu users\n",
              validation.users.size(), held_out.users.size());

  auto evaluate = [&](double alpha, double beta, double gamma) {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    options.alpha = alpha;
    options.beta = beta;
    options.gamma = gamma;
    auto linker = harness.MakeLinker(options);
    return eval::EvaluateOurs(linker, harness.world(), held_out)
        .accuracy();
  };

  auto manual = evaluate(0.6, 0.3, 0.1);
  std::printf("\nmanual  (0.60/0.30/0.10): held-out mention=%.4f tweet=%.4f\n",
              manual.MentionAccuracy(), manual.TweetAccuracy());

  auto learned = eval::LearnWeights(&harness, validation, 0.1);
  std::printf(
      "learned (%.2f/%.2f/%.2f): validation=%.4f\n", learned.alpha,
      learned.beta, learned.gamma, learned.validation_accuracy);
  auto learned_acc = evaluate(learned.alpha, learned.beta, learned.gamma);
  std::printf("learned on held-out:      mention=%.4f tweet=%.4f\n",
              learned_acc.MentionAccuracy(), learned_acc.TweetAccuracy());

  std::printf(
      "\nShape check: the learned weights match or beat the manual "
      "setting on the held-out half, and respect beta > gamma (recency "
      "over popularity, as in the paper). On this synthetic corpus the "
      "optimum leans further toward recency than the paper's 0.6/0.3/0.1 "
      "because generated bursts are cleaner than real Twitter chatter — "
      "see the Fig. 6(d) sensitivity sweep.\n");
  return 0;
}

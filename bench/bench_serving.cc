// Serving-loop benchmark: sustained QPS and tail latency of the online
// LinkService (src/serve/) under the interactive-feedback workload of
// Sec. 3.2.2 — every second link is confirmed by its author, so the
// knowledgebase (and with it the recency/influence caches) evolves while
// queries are in flight.
//
// Three phases:
//   1. identity   — batched responses must be BIT-identical to calling
//                   LinkMention one at a time (asserted, not eyeballed).
//   2. closed A/B — one-at-a-time serving (max_batch=1, every feedback is
//                   its own epoch barrier) vs micro-batched serving
//                   (max_batch=32, barriers amortized across the batch).
//                   Both modes replay the same links and the same
//                   confirmations; afterwards both knowledge states must
//                   answer probe queries bit-identically. The speedup
//                   floor is asserted.
//   3. open loop  — Poisson-free constant-rate arrivals at ~1.5x the
//                   measured capacity with the shed policy: reports
//                   goodput, shed fraction, and latency tails.
//
// Writes two sidecars:
//   bench_serving.metrics.json  — full registry export (as every bench)
//   BENCH_serving.json          — the serving trajectory summary
//                                 (schema: docs/PERFORMANCE.md)
//
// Run:   ./bench/bench_serving [--smoke] [--scale=X] [--batch=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "eval/runner.h"
#include "serve/link_service.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace {

using namespace mel;

bool BitIdentical(const core::MentionLinkResult& a,
                  const core::MentionLinkResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  if (a.probable_new_entity != b.probable_new_entity) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].entity != b.ranked[i].entity) return false;
    if (a.ranked[i].score != b.ranked[i].score) return false;
    if (a.ranked[i].interest != b.ranked[i].interest) return false;
    if (a.ranked[i].recency != b.ranked[i].recency) return false;
    if (a.ranked[i].popularity != b.ranked[i].popularity) return false;
  }
  return true;
}

struct Confirmation {
  kb::EntityId entity;
  kb::Tweet tweet;
};

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles HistogramPercentiles(const char* name) {
  auto snapshot = metrics::Registry().Snapshot();
  for (const auto& [n, h] : snapshot.histograms) {
    if (n == name && h.count > 0) {
      return {h.Percentile(50), h.Percentile(95), h.Percentile(99)};
    }
  }
  return {};
}

core::EntityLinker FreshLinker(eval::Harness* harness,
                               kb::ComplementedKnowledgebase* ckb) {
  return core::EntityLinker(&harness->kb(), ckb, &harness->reachability(),
                            &harness->network(),
                            harness->DefaultLinkerOptions());
}

// Replays `requests` with a confirmation after every `feedback_every`-th
// link, in waves of `wave` asynchronous submissions (wave=1 degenerates
// to fully closed-loop one-at-a-time serving). Returns links/second.
double RunClosedLoop(serve::LinkService* service,
                     const std::vector<serve::LinkRequest>& requests,
                     const std::vector<Confirmation>& confirmations,
                     size_t feedback_every, size_t wave) {
  WallTimer timer;
  std::vector<std::future<serve::LinkResponse>> futures;
  std::vector<std::future<uint64_t>> acks;
  size_t next_feedback = 0;
  for (size_t i = 0; i < requests.size();) {
    const size_t end = std::min(requests.size(), i + wave);
    for (; i < end; ++i) {
      futures.push_back(service->Submit(requests[i]));
      if ((i + 1) % feedback_every == 0 &&
          next_feedback < confirmations.size()) {
        const Confirmation& c = confirmations[next_feedback++];
        acks.push_back(service->SubmitFeedback(c.entity, c.tweet));
      }
    }
    for (auto& f : futures) {
      if (f.get().status != serve::ServeStatus::kOk) {
        std::printf("FAIL: closed-loop request not served\n");
        std::exit(1);
      }
    }
    futures.clear();
  }
  for (auto& a : acks) {
    if (a.get() == serve::kFeedbackRejected) {
      std::printf("FAIL: feedback rejected during closed loop\n");
      std::exit(1);
    }
  }
  return requests.size() / timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double scale = 0;
  uint32_t max_batch = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    }
    if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      max_batch = static_cast<uint32_t>(std::atoi(argv[i] + 8));
    }
  }
  if (scale <= 0) scale = smoke ? 0.4 : 1.0;
  const size_t feedback_every = 2;

  std::printf("=== serving: micro-batched epochs vs one-at-a-time ===\n");
  std::printf("mode=%s scale=%.2f max_batch=%u feedback_every=%zu\n",
              smoke ? "smoke" : "full", scale, max_batch, feedback_every);

  eval::HarnessOptions hopts;
  hopts.scale = scale;
  eval::Harness harness(hopts);

  // Workload: every test-split mention issued at a single evaluation
  // instant just past the corpus, confirmations drawn from ground truth.
  const auto& tweets = harness.world().corpus.tweets;
  kb::Timestamp eval_now = 0;
  for (const auto& lt : tweets) {
    eval_now = std::max(eval_now, lt.tweet.time);
  }
  eval_now += 60;

  std::vector<serve::LinkRequest> requests;
  std::vector<Confirmation> confirmations;
  kb::TweetId next_tweet_id = 10000000;
  for (uint32_t idx : harness.test_split().tweet_indices) {
    for (const auto& m : tweets[idx].mentions) {
      serve::LinkRequest r;
      r.mention = m.surface;
      r.user = tweets[idx].tweet.user;
      r.now = eval_now;
      requests.push_back(std::move(r));
      if (requests.size() % feedback_every == 0) {
        kb::Tweet t = tweets[idx].tweet;
        t.id = next_tweet_id++;
        t.time = eval_now - 30;
        confirmations.push_back({m.truth, t});
      }
    }
  }
  const size_t limit = smoke ? 240 : requests.size();
  if (requests.size() > limit) requests.resize(limit);
  if (confirmations.size() > limit / feedback_every) {
    confirmations.resize(limit / feedback_every);
  }
  std::printf("workload: %zu links + %zu confirmations\n", requests.size(),
              confirmations.size());

  // ---- Phase 1: batched == sequential, bit for bit ----------------
  bool identity_ok = true;
  {
    core::EntityLinker linker =
        harness.MakeLinker(harness.DefaultLinkerOptions());
    linker.WarmUp();
    const size_t probe_n = std::min<size_t>(requests.size(), 200);
    std::vector<core::MentionLinkResult> reference;
    reference.reserve(probe_n);
    for (size_t i = 0; i < probe_n; ++i) {
      reference.push_back(linker.LinkMention(
          requests[i].mention, requests[i].user, requests[i].now));
    }
    serve::ServeOptions sopts;
    sopts.max_batch = max_batch;
    sopts.queue_capacity = probe_n;
    serve::LinkService service(&linker, sopts);
    std::vector<std::future<serve::LinkResponse>> futures;
    for (size_t i = 0; i < probe_n; ++i) {
      futures.push_back(service.Submit(requests[i]));
    }
    for (size_t i = 0; i < probe_n; ++i) {
      serve::LinkResponse r = futures[i].get();
      if (r.status != serve::ServeStatus::kOk ||
          !BitIdentical(reference[i], r.result)) {
        identity_ok = false;
      }
    }
    std::printf("\nbatched bit-identical to sequential: %s (%zu probes)\n",
                identity_ok ? "yes" : "NO", probe_n);
  }

  // ---- Phase 2: closed-loop A/B under interactive feedback --------
  // Both modes start from an EMPTY complemented KB and replay the same
  // confirmation schedule, so the knowledge states must converge.
  metrics::Registry().Reset();
  kb::ComplementedKnowledgebase ckb_one(&harness.kb());
  core::EntityLinker linker_one = FreshLinker(&harness, &ckb_one);
  double qps_one = 0;
  {
    serve::ServeOptions sopts;
    sopts.max_batch = 1;
    sopts.queue_capacity = 4;
    serve::LinkService service(&linker_one, sopts);
    RunClosedLoop(&service, requests, confirmations, feedback_every,
                  /*wave=*/1);  // warm pass
    qps_one = RunClosedLoop(&service, requests, confirmations,
                            feedback_every, /*wave=*/1);
  }

  metrics::Registry().Reset();
  kb::ComplementedKnowledgebase ckb_batched(&harness.kb());
  core::EntityLinker linker_batched = FreshLinker(&harness, &ckb_batched);
  double qps_batched = 0;
  Percentiles link_latency, queue_wait;
  uint64_t barriers = 0;
  {
    serve::ServeOptions sopts;
    sopts.max_batch = max_batch;
    sopts.queue_capacity = 2 * max_batch;
    serve::LinkService service(&linker_batched, sopts);
    const size_t wave = 2 * max_batch;
    RunClosedLoop(&service, requests, confirmations, feedback_every,
                  wave);  // warm pass
    const uint64_t barriers_before =
        metrics::Registry().GetCounter("serve.barriers_total")->Value();
    qps_batched = RunClosedLoop(&service, requests, confirmations,
                                feedback_every, wave);
    barriers =
        metrics::Registry().GetCounter("serve.barriers_total")->Value() -
        barriers_before;
    link_latency = HistogramPercentiles("serve.link_latency_ns");
    queue_wait = HistogramPercentiles("serve.queue_wait_ns");
  }
  const double speedup = qps_batched / qps_one;

  // Same confirmations -> same complemented knowledge: probe both final
  // states and require bit-identical answers.
  bool state_identical = true;
  {
    linker_one.WarmUp();
    linker_batched.WarmUp();
    const size_t probe_n = std::min<size_t>(requests.size(), 100);
    for (size_t i = 0; i < probe_n; ++i) {
      auto a = linker_one.LinkMention(requests[i].mention, requests[i].user,
                                      requests[i].now);
      auto b = linker_batched.LinkMention(
          requests[i].mention, requests[i].user, requests[i].now);
      if (!BitIdentical(a, b)) state_identical = false;
    }
  }

  std::printf("\n%-34s %10.0f links/s\n", "one-at-a-time (max_batch=1)",
              qps_one);
  std::printf("%-34s %10.0f links/s\n", "micro-batched", qps_batched);
  std::printf("%-34s %9.2fx\n", "speedup", speedup);
  std::printf("%-34s %10llu\n", "epoch barriers (batched run)",
              static_cast<unsigned long long>(barriers));
  std::printf("%-34s %10s\n", "final states bit-identical",
              state_identical ? "yes" : "NO");
  std::printf("link latency p50/p95/p99: %.0f / %.0f / %.0f us\n",
              link_latency.p50 / 1e3, link_latency.p95 / 1e3,
              link_latency.p99 / 1e3);

  // ---- Phase 3: open loop with load shedding ----------------------
  const double target_qps = 1.5 * qps_batched;
  const size_t open_n = smoke ? 300 : 2000;
  uint64_t open_ok = 0, open_shed = 0;
  double open_goodput = 0;
  Percentiles open_latency;
  {
    metrics::Registry().Reset();
    kb::ComplementedKnowledgebase ckb(&harness.kb());
    core::EntityLinker linker = FreshLinker(&harness, &ckb);
    serve::ServeOptions sopts;
    sopts.max_batch = max_batch;
    sopts.queue_capacity = 64;
    sopts.policy = serve::AdmissionPolicy::kShed;
    serve::LinkService service(&linker, sopts);

    const auto interarrival = std::chrono::nanoseconds(
        static_cast<int64_t>(1e9 / std::max(target_qps, 1.0)));
    std::vector<std::future<serve::LinkResponse>> futures;
    futures.reserve(open_n);
    WallTimer timer;
    auto next_arrival = std::chrono::steady_clock::now();
    for (size_t i = 0; i < open_n; ++i) {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += interarrival;
      futures.push_back(service.Submit(requests[i % requests.size()]));
      // Same feedback mix as the closed loop: without the barrier work
      // the service would absorb any offered rate and nothing would shed.
      if ((i + 1) % feedback_every == 0) {
        const Confirmation& c = confirmations[(i / feedback_every) %
                                              confirmations.size()];
        kb::Tweet t = c.tweet;
        t.id = next_tweet_id++;
        service.SubmitFeedback(c.entity, t);
      }
    }
    for (auto& f : futures) {
      switch (f.get().status) {
        case serve::ServeStatus::kOk: ++open_ok; break;
        case serve::ServeStatus::kOverloaded: ++open_shed; break;
        default: break;
      }
    }
    open_goodput = open_ok / timer.ElapsedSeconds();
    open_latency = HistogramPercentiles("serve.link_latency_ns");
  }
  std::printf("\n=== open loop @ %.0f links/s offered (shed policy) ===\n",
              target_qps);
  std::printf("%-34s %10llu\n", "served ok",
              static_cast<unsigned long long>(open_ok));
  std::printf("%-34s %10llu (%.1f%%)\n", "shed",
              static_cast<unsigned long long>(open_shed),
              100.0 * open_shed / open_n);
  std::printf("%-34s %10.0f links/s\n", "goodput", open_goodput);
  std::printf("served latency p50/p95/p99: %.0f / %.0f / %.0f us\n",
              open_latency.p50 / 1e3, open_latency.p95 / 1e3,
              open_latency.p99 / 1e3);

  // ---- Sidecars ---------------------------------------------------
  auto& reg = metrics::Registry();
  reg.GetGauge("bench.serving.qps_one_at_a_time")
      ->Set(static_cast<int64_t>(qps_one));
  reg.GetGauge("bench.serving.qps_batched")
      ->Set(static_cast<int64_t>(qps_batched));
  reg.GetGauge("bench.serving.speedup_x100")
      ->Set(static_cast<int64_t>(speedup * 100));
  reg.GetGauge("bench.serving.identity_ok")->Set(identity_ok ? 1 : 0);
  const char* metrics_path = "bench_serving.metrics.json";
  if (eval::ExportMetricsJson(metrics_path)) {
    std::printf("\nmetrics JSON written to %s\n", metrics_path);
  }

  {
    std::ofstream out("BENCH_serving.json");
    JsonWriter w(&out);
    w.BeginObject();
    w.KeyValue("bench", std::string_view("serving"));
    w.KeyValue("schema_version", uint64_t{1});
    w.KeyValue("mode", std::string_view(smoke ? "smoke" : "full"));
    w.KeyValue("scale", scale);
    w.KeyValue("max_batch", uint64_t{max_batch});
    w.KeyValue("feedback_every", uint64_t{feedback_every});
    w.KeyValue("links", uint64_t{requests.size()});
    w.KeyValue("identity_ok", identity_ok);
    w.KeyValue("state_identical", state_identical);
    w.KeyValue("qps_one_at_a_time", qps_one);
    w.KeyValue("qps_batched", qps_batched);
    w.KeyValue("speedup", speedup);
    w.KeyValue("epoch_barriers", barriers);
    w.Key("link_latency_ns");
    w.BeginObject();
    w.KeyValue("p50", link_latency.p50);
    w.KeyValue("p95", link_latency.p95);
    w.KeyValue("p99", link_latency.p99);
    w.EndObject();
    w.Key("queue_wait_ns");
    w.BeginObject();
    w.KeyValue("p50", queue_wait.p50);
    w.KeyValue("p95", queue_wait.p95);
    w.KeyValue("p99", queue_wait.p99);
    w.EndObject();
    w.Key("open_loop");
    w.BeginObject();
    w.KeyValue("target_qps", target_qps);
    w.KeyValue("offered", uint64_t{open_n});
    w.KeyValue("served_ok", open_ok);
    w.KeyValue("shed", open_shed);
    w.KeyValue("goodput_qps", open_goodput);
    w.KeyValue("p99_latency_ns", open_latency.p99);
    w.EndObject();
    w.EndObject();
    out << "\n";
    std::printf("trajectory written to BENCH_serving.json\n");
  }

  // ---- Acceptance gates -------------------------------------------
  const double floor = smoke ? 1.05 : 1.3;
  bool ok = true;
  if (!identity_ok) {
    std::printf("FAIL: batched results diverged from sequential\n");
    ok = false;
  }
  if (!state_identical) {
    std::printf("FAIL: final knowledge states diverged across modes\n");
    ok = false;
  }
  if (speedup < floor) {
    std::printf("FAIL: speedup %.2fx below the %.2fx floor\n", speedup,
                floor);
    ok = false;
  }
  return ok ? 0 : 1;
}

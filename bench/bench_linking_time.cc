// Reproduces Fig. 5(a): average time to link a single mention and a whole
// tweet for the on-the-fly method, the collective method, and ours.
//
// Also the reference producer of the observability export: the metrics
// registry is reset after world construction, so the sidecar JSON
// (bench_linking_time.metrics.json) holds exactly the per-stage counters
// and latency histograms of the measured evaluation runs. docs/METRICS.md
// walks through this file's output.

#include <cstdio>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace {

void PrintStage(const char* name, const mel::metrics::Histogram::Snapshot& h) {
  std::printf("%-32s %10llu %12s %12s %12s\n", name,
              static_cast<unsigned long long>(h.count),
              mel::HumanNanos(h.Percentile(50)).c_str(),
              mel::HumanNanos(h.Percentile(95)).c_str(),
              mel::HumanNanos(h.Percentile(99)).c_str());
}

}  // namespace

int main() {
  using namespace mel;
  std::printf("=== Fig. 5(a): linking time per mention / per tweet ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  baseline::OnTheFlyLinker on_the_fly(&harness.kb(), &harness.wlm(),
                                      baseline::OnTheFlyOptions{});
  baseline::CollectiveLinker collective(&harness.kb(), &harness.wlm(),
                                        baseline::CollectiveOptions{});

  // Drop the counts accumulated during world construction and baseline
  // warm-up: the export should describe the measured runs only.
  metrics::Registry().Reset();

  auto otf = eval::EvaluateOnTheFly(on_the_fly, harness.world(),
                                    harness.test_split());
  auto col = eval::EvaluateCollective(collective, harness.world(),
                                      harness.test_split());
  auto ours = harness.Evaluate(harness.DefaultLinkerOptions());

  std::printf("%-14s %14s %14s\n", "method", "per mention", "per tweet");
  std::printf("%-14s %14s %14s\n", "On-the-fly",
              HumanNanos(otf.NanosPerMention()).c_str(),
              HumanNanos(otf.NanosPerTweet()).c_str());
  std::printf("%-14s %14s %14s\n", "Collective",
              HumanNanos(col.NanosPerMention()).c_str(),
              HumanNanos(col.NanosPerTweet()).c_str());
  std::printf("%-14s %14s %14s\n", "Ours",
              HumanNanos(ours.NanosPerMention()).c_str(),
              HumanNanos(ours.NanosPerTweet()).c_str());

  // Per-stage breakdown of "Ours" from the observability layer. Only
  // *_ns histograms are durations; the rest (fan-outs, iteration counts)
  // are plain magnitudes.
  auto snapshot = metrics::Registry().Snapshot();
  std::printf("\n=== per-stage latency (ours) ===\n");
  std::printf("%-32s %10s %12s %12s %12s\n", "stage", "count", "p50", "p95",
              "p99");
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count > 0 && name.ends_with("_ns")) PrintStage(name.c_str(), h);
  }
  std::printf("\n=== per-stage magnitudes (ours) ===\n");
  std::printf("%-32s %10s %12s %12s %12s\n", "distribution", "count", "p50",
              "p95", "p99");
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0 || name.ends_with("_ns")) continue;
    std::printf("%-32s %10llu %12.0f %12.0f %12.0f\n", name.c_str(),
                static_cast<unsigned long long>(h.count), h.Percentile(50),
                h.Percentile(95), h.Percentile(99));
  }

  const char* metrics_path = "bench_linking_time.metrics.json";
  if (eval::ExportMetricsJson(metrics_path)) {
    std::printf("\nmetrics JSON written to %s\n", metrics_path);
  }

  std::printf(
      "\nPaper shape check (Fig. 5a): ours is slower than the intra-tweet "
      "baselines on tiny test histories but stays well under the 0.5 ms "
      "per tweet real-time budget discussed in Sec. 5.2.2: %s per tweet.\n",
      HumanNanos(ours.NanosPerTweet()).c_str());
  return 0;
}

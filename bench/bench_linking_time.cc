// Reproduces Fig. 5(a): average time to link a single mention and a whole
// tweet for the on-the-fly method, the collective method, and ours.

#include <cstdio>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"
#include "util/string_util.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 5(a): linking time per mention / per tweet ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  baseline::OnTheFlyLinker on_the_fly(&harness.kb(), &harness.wlm(),
                                      baseline::OnTheFlyOptions{});
  baseline::CollectiveLinker collective(&harness.kb(), &harness.wlm(),
                                        baseline::CollectiveOptions{});

  auto otf = eval::EvaluateOnTheFly(on_the_fly, harness.world(),
                                    harness.test_split());
  auto col = eval::EvaluateCollective(collective, harness.world(),
                                      harness.test_split());
  auto ours = harness.Evaluate(harness.DefaultLinkerOptions());

  std::printf("%-14s %14s %14s\n", "method", "per mention", "per tweet");
  std::printf("%-14s %14s %14s\n", "On-the-fly",
              HumanNanos(otf.NanosPerMention()).c_str(),
              HumanNanos(otf.NanosPerTweet()).c_str());
  std::printf("%-14s %14s %14s\n", "Collective",
              HumanNanos(col.NanosPerMention()).c_str(),
              HumanNanos(col.NanosPerTweet()).c_str());
  std::printf("%-14s %14s %14s\n", "Ours",
              HumanNanos(ours.NanosPerMention()).c_str(),
              HumanNanos(ours.NanosPerTweet()).c_str());

  std::printf(
      "\nPaper shape check (Fig. 5a): ours is slower than the intra-tweet "
      "baselines on tiny test histories but stays well under the 0.5 ms "
      "per tweet real-time budget discussed in Sec. 5.2.2: %s per tweet.\n",
      HumanNanos(ours.NanosPerTweet()).c_str());
  return 0;
}

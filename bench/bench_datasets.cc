// Reproduces Table 2: statistics of the tweet datasets D10..D90 and the
// inactive-user test split Dtest.

#include <cstdio>

#include "eval/harness.h"
#include "gen/workload.h"

int main() {
  using namespace mel;
  std::printf("=== Table 2: statistics of tweet datasets ===\n");
  gen::World world = gen::GenerateWorld(eval::StandardWorldOptions(1.0, 1));

  std::printf("%-8s %10s %10s %10s %16s\n", "dataset", "#user", "#tweet",
              "#mention", "mentions/tweet");
  for (uint32_t theta : {10u, 30u, 50u, 70u, 90u}) {
    auto split = gen::FilterActiveUsers(world.corpus, theta);
    auto stats = gen::ComputeSplitStats(world.corpus, split);
    std::printf("%-8s %10u %10u %10u %16.2f\n", split.name.c_str(),
                stats.num_users, stats.num_tweets, stats.num_mentions,
                stats.mentions_per_tweet);
  }
  auto dtest = gen::SampleInactiveUsers(world.corpus, 10, 200, 12);
  auto stats = gen::ComputeSplitStats(world.corpus, dtest);
  std::printf("%-8s %10u %10u %10u %16.2f\n", "Dtest", stats.num_users,
              stats.num_tweets, stats.num_mentions,
              stats.mentions_per_tweet);
  std::printf(
      "\nPaper shape check: user counts shrink sharply as theta grows "
      "(Zipf activity) and Dtest users average only a few tweets.\n");
  return 0;
}

// Reproduces Fig. 4(d): necessity and performance of the recency
// propagation model — linking accuracy with and without reinforcement of
// recency between related entities (Eq. 11), plus a lambda ablation.

#include <cstdio>

#include "eval/harness.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 4(d): recency propagation on/off ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  std::printf("%-24s %10s %10s\n", "configuration", "tweet", "mention");
  {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    options.enable_recency_propagation = false;
    auto acc = harness.Evaluate(options).accuracy();
    std::printf("%-24s %10.4f %10.4f\n", "without propagation",
                acc.TweetAccuracy(), acc.MentionAccuracy());
  }
  {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    auto acc = harness.Evaluate(options).accuracy();
    std::printf("%-24s %10.4f %10.4f\n", "with propagation",
                acc.TweetAccuracy(), acc.MentionAccuracy());
  }

  std::printf("\n--- ablation: damping lambda of Eq. 11 ---\n");
  std::printf("%-8s %10s %10s\n", "lambda", "tweet", "mention");
  for (double lambda : {0.5, 0.65, 0.8, 0.95, 1.0}) {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    options.propagator.lambda = lambda;
    auto acc = harness.Evaluate(options).accuracy();
    std::printf("%-8.2f %10.4f %10.4f\n", lambda, acc.TweetAccuracy(),
                acc.MentionAccuracy());
  }
  std::printf(
      "\nPaper shape check (Fig. 4d): propagation does not hurt and "
      "usually helps — bursts on related entities (ICML) lift entities "
      "with no burst of their own (the ML expert). lambda=1 disables "
      "reinforcement entirely.\n");
  return 0;
}

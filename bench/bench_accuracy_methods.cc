// Reproduces Fig. 4(a): accuracy of the on-the-fly method [14], the
// collective method [2], and our framework on the inactive-user test set,
// at both mention and tweet granularity.

#include <cstdio>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 4(a): accuracy vs state-of-the-art methods ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  baseline::OnTheFlyLinker on_the_fly(&harness.kb(), &harness.wlm(),
                                      baseline::OnTheFlyOptions{});
  baseline::CollectiveLinker collective(&harness.kb(), &harness.wlm(),
                                        baseline::CollectiveOptions{});

  auto otf_run = eval::EvaluateOnTheFly(on_the_fly, harness.world(),
                                        harness.test_split());
  auto col_run = eval::EvaluateCollective(collective, harness.world(),
                                          harness.test_split());
  auto ours_run = harness.Evaluate(harness.DefaultLinkerOptions());
  auto otf = otf_run.accuracy();
  auto col = col_run.accuracy();
  auto ours = ours_run.accuracy();

  std::printf("%-14s %10s %10s\n", "method", "tweet", "mention");
  std::printf("%-14s %10.4f %10.4f\n", "On-the-fly", otf.TweetAccuracy(),
              otf.MentionAccuracy());
  std::printf("%-14s %10.4f %10.4f\n", "Collective", col.TweetAccuracy(),
              col.MentionAccuracy());
  std::printf("%-14s %10.4f %10.4f\n", "Ours", ours.TweetAccuracy(),
              ours.MentionAccuracy());

  // Paired bootstrap on the shared mention set: is the margin solid?
  auto vs_col = eval::BootstrapAccuracyDifference(
      ours_run.outcomes, col_run.outcomes, 2000, 0.95, 11);
  auto vs_otf = eval::BootstrapAccuracyDifference(
      ours_run.outcomes, otf_run.outcomes, 2000, 0.95, 12);
  std::printf(
      "\nmention-accuracy margin (95%% paired bootstrap):\n"
      "  ours - collective: %+0.4f [%+0.4f, %+0.4f]%s\n"
      "  ours - on-the-fly: %+0.4f [%+0.4f, %+0.4f]%s\n",
      vs_col.mean, vs_col.lo, vs_col.hi,
      vs_col.ExcludesZero() ? "  (significant)" : "",
      vs_otf.mean, vs_otf.lo, vs_otf.hi,
      vs_otf.ExcludesZero() ? "  (significant)" : "");

  std::printf(
      "\nPaper shape check (Fig. 4a): Ours > Collective > On-the-fly on "
      "both series; mention accuracy above tweet accuracy everywhere.\n");
  return 0;
}

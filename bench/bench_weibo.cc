// Reproduces Fig. 6(a)/(b): generalizability to a Sina-Weibo-like
// microblog — denser mentions per posting (~2.3 vs ~1.4) — comparing
// accuracy and per-tweet linking time of the three methods.

#include <cstdio>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"
#include "gen/workload.h"
#include "util/string_util.h"

int main() {
  using namespace mel;
  std::printf(
      "=== Fig. 6(a)/(b): Sina-Weibo-like corpus (dense mentions) ===\n");
  eval::HarnessOptions hopts;
  hopts.extra_mention_prob = 0.7;  // ~2.3 mentions per posting
  eval::Harness harness(hopts);

  auto stats = gen::ComputeSplitStats(
      harness.world().corpus,
      gen::FilterActiveUsers(harness.world().corpus, 1));
  std::printf("corpus: %.2f mentions per posting\n",
              stats.mentions_per_tweet);

  baseline::OnTheFlyLinker on_the_fly(&harness.kb(), &harness.wlm(),
                                      baseline::OnTheFlyOptions{});
  baseline::CollectiveLinker collective(&harness.kb(), &harness.wlm(),
                                        baseline::CollectiveOptions{});
  auto otf = eval::EvaluateOnTheFly(on_the_fly, harness.world(),
                                    harness.test_split());
  auto col = eval::EvaluateCollective(collective, harness.world(),
                                      harness.test_split());
  auto ours = harness.Evaluate(harness.DefaultLinkerOptions());

  std::printf("%-14s %10s %10s %14s\n", "method", "tweet", "mention",
              "per tweet");
  auto print_row = [](const char* name, const eval::EvalRun& run) {
    auto acc = run.accuracy();
    std::printf("%-14s %10.4f %10.4f %14s\n", name, acc.TweetAccuracy(),
                acc.MentionAccuracy(),
                HumanNanos(run.NanosPerTweet()).c_str());
  };
  print_row("On-the-fly", otf);
  print_row("Collective", col);
  print_row("Ours", ours);
  std::printf(
      "\nPaper shape check (Fig. 6a/b): ours still wins, but with a "
      "smaller margin than on the sparse-mention corpus — denser postings "
      "make intra-tweet topical coherence more reliable for the "
      "baselines. Per-tweet time stays within the real-time budget.\n");
  return 0;
}

// Deployment ablation: exact sliding-window recency (binary search over
// full posting lists) vs the streaming BurstTracker (O(1) bucketed ring
// counters). The tracker is a *current-time* structure, so the
// comparison replays the corpus in timestamp order: complemented links
// are fed to the tracker as they "arrive" and each test mention is
// linked at its own timestamp.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/entity_linker.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "recency/burst_tracker.h"
#include "util/string_util.h"

int main() {
  using namespace mel;
  std::printf(
      "=== recency backends: exact posting lists vs streaming rings ===\n");
  eval::Harness harness(eval::HarnessOptions{});
  const auto options = harness.DefaultLinkerOptions();

  // All complemented links as a time-ordered stream.
  struct Event {
    kb::Timestamp time;
    kb::EntityId entity;
  };
  std::vector<Event> stream;
  uint64_t postings_bytes = 0;
  for (kb::EntityId e = 0; e < harness.kb().num_entities(); ++e) {
    for (const auto& posting : harness.ckb().Postings(e)) {
      stream.push_back(Event{posting.time, e});
      postings_bytes += sizeof(kb::Posting);
    }
  }
  std::sort(stream.begin(), stream.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });

  recency::BurstTracker tracker(harness.kb().num_entities(), options.tau,
                                /*num_buckets=*/16, options.theta1);
  core::EntityLinker exact_linker(&harness.kb(), &harness.ckb(),
                                  &harness.reachability(),
                                  &harness.network(), options);
  core::EntityLinker stream_linker(&harness.kb(), &harness.ckb(),
                                   &harness.reachability(),
                                   &harness.network(), options, &tracker);

  // Replay: feed the tracker up to each test tweet's timestamp, then
  // link with both backends at that instant.
  std::vector<eval::MentionOutcome> exact_outcomes, stream_outcomes;
  size_t fed = 0;
  for (uint32_t ti : harness.test_split().tweet_indices) {
    const auto& lt = harness.world().corpus.tweets[ti];
    while (fed < stream.size() && stream[fed].time <= lt.tweet.time) {
      tracker.Observe(stream[fed].entity, stream[fed].time);
      ++fed;
    }
    for (const auto& label : lt.mentions) {
      auto exact = exact_linker.LinkMention(label.surface, lt.tweet.user,
                                            lt.tweet.time);
      auto streamed = stream_linker.LinkMention(label.surface,
                                                lt.tweet.user,
                                                lt.tweet.time);
      exact_outcomes.push_back({ti, label.truth, exact.best()});
      stream_outcomes.push_back({ti, label.truth, streamed.best()});
    }
  }

  auto exact_acc = eval::Summarize(exact_outcomes);
  auto stream_acc = eval::Summarize(stream_outcomes);
  std::printf("%-24s %10s %10s %12s\n", "backend", "tweet", "mention",
              "recency mem");
  std::printf("%-24s %10.4f %10.4f %12s\n", "posting lists (exact)",
              exact_acc.TweetAccuracy(), exact_acc.MentionAccuracy(),
              HumanBytes(postings_bytes).c_str());
  std::printf("%-24s %10.4f %10.4f %12s\n", "burst tracker (stream)",
              stream_acc.TweetAccuracy(), stream_acc.MentionAccuracy(),
              HumanBytes(tracker.MemoryUsageBytes()).c_str());

  auto diff = eval::BootstrapAccuracyDifference(exact_outcomes,
                                                stream_outcomes, 2000,
                                                0.95, 5);
  std::printf(
      "exact - streaming mention accuracy: %+0.4f [%+0.4f, %+0.4f]\n",
      diff.mean, diff.lo, diff.hi);

  std::printf(
      "\nShape check: replayed in stream order, the O(1) rings track the "
      "exact backend closely at a third of the memory — the bucketed "
      "window edge is a benign approximation.\n");
  return 0;
}

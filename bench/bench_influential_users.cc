// Reproduces Fig. 5(c): linking time (and accuracy) as the number of
// influential users per community grows; k = 0 checks reachability with
// the ENTIRE community (Eq. 3), the strategy influential-user detection
// exists to avoid.

#include <cstdio>

#include "eval/harness.h"
#include "util/string_util.h"

int main() {
  using namespace mel;
  std::printf("=== Fig. 5(c): varying #influential users ===\n");
  eval::Harness harness(eval::HarnessOptions{});

  std::printf("%-18s %14s %10s\n", "k (influential)", "per mention",
              "mention acc");
  for (uint32_t k : {1u, 2u, 5u, 10u, 20u, 50u, 0u}) {
    core::LinkerOptions options = harness.DefaultLinkerOptions();
    options.top_k_influential = k;
    auto run = harness.Evaluate(options);
    char label[32];
    if (k == 0) {
      std::snprintf(label, sizeof(label), "whole community");
    } else {
      std::snprintf(label, sizeof(label), "%u", k);
    }
    std::printf("%-18s %14s %10.4f\n", label,
                HumanNanos(run.NanosPerMention()).c_str(),
                run.accuracy().MentionAccuracy());
  }
  std::printf(
      "\nPaper shape check (Fig. 5c): time grows with the number of "
      "users checked; restricting to the top influential users preserves "
      "accuracy while bounding cost.\n");
  return 0;
}

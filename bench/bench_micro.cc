// Google-benchmark microbenchmarks of the hot online-inference paths:
// weighted reachability queries per backend, candidate generation (exact
// and fuzzy), influence ranking, recency scoring, and end-to-end mention
// linking.
//
// BM_LinkMention vs BM_LinkMentionNoMetrics quantifies the observability
// overhead (the acceptance budget is 5%); on exit the accumulated
// registry is exported to bench_micro.metrics.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "eval/harness.h"
#include "reach/distance_label_index.h"
#include "reach/naive_reachability.h"
#include "reach/pruned_online_search.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "recency/burst_tracker.h"
#include "social/influence.h"
#include "util/metrics.h"
#include "util/random.h"

namespace {

using namespace mel;

// One lazily constructed shared world for every microbenchmark.
eval::Harness& SharedHarness() {
  static eval::Harness* harness = [] {
    eval::HarnessOptions options;
    options.scale = 1.0;
    return new eval::Harness(options);
  }();
  return *harness;
}

void BM_ReachabilityNaive(benchmark::State& state) {
  auto& harness = SharedHarness();
  const auto& g = harness.world().social.graph;
  reach::NaiveReachability naive(&g, 5);
  Rng rng(1);
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    auto v = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    benchmark::DoNotOptimize(naive.Score(u, v));
  }
}
BENCHMARK(BM_ReachabilityNaive);

void BM_ReachabilityTransitiveClosure(benchmark::State& state) {
  auto& harness = SharedHarness();
  const auto& g = harness.world().social.graph;
  static auto tc = reach::TransitiveClosureIndex::Build(
      &g, 5, reach::TransitiveClosureIndex::Construction::kIncremental);
  Rng rng(1);
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    auto v = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    benchmark::DoNotOptimize(tc.Score(u, v));
  }
}
BENCHMARK(BM_ReachabilityTransitiveClosure);

void BM_ReachabilityTwoHop(benchmark::State& state) {
  auto& harness = SharedHarness();
  const auto& g = harness.world().social.graph;
  const auto& index = harness.reachability();
  Rng rng(1);
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    auto v = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    benchmark::DoNotOptimize(index.Score(u, v));
  }
}
BENCHMARK(BM_ReachabilityTwoHop);

void BM_ReachabilityDistanceOnly(benchmark::State& state) {
  auto& harness = SharedHarness();
  const auto& g = harness.world().social.graph;
  static auto index = reach::DistanceLabelIndex::Build(&g, 5);
  Rng rng(1);
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    auto v = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    benchmark::DoNotOptimize(index.Score(u, v));
  }
}
BENCHMARK(BM_ReachabilityDistanceOnly);

void BM_ReachabilityPrunedOnline(benchmark::State& state) {
  auto& harness = SharedHarness();
  const auto& g = harness.world().social.graph;
  static auto index = reach::PrunedOnlineSearch::Build(&g, 5, 3, 1);
  Rng rng(1);
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    auto v = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    benchmark::DoNotOptimize(index.Score(u, v));
  }
}
BENCHMARK(BM_ReachabilityPrunedOnline);

void BM_BurstTrackerObserve(benchmark::State& state) {
  recency::BurstTracker tracker(1000, 3 * kb::kSecondsPerDay, 16, 10);
  Rng rng(2);
  kb::Timestamp t = 0;
  for (auto _ : state) {
    t += static_cast<kb::Timestamp>(rng.Uniform(120));
    tracker.Observe(static_cast<kb::EntityId>(rng.Uniform(1000)), t);
  }
  benchmark::DoNotOptimize(tracker.ApproxRecentCount(0, t));
}
BENCHMARK(BM_BurstTrackerObserve);

void BM_RecencyWindowQuery(benchmark::State& state) {
  auto& harness = SharedHarness();
  recency::SlidingWindowRecency window(&harness.ckb(),
                                       3 * kb::kSecondsPerDay, 10);
  Rng rng(3);
  const kb::Timestamp now = 90 * kb::kSecondsPerDay;
  const uint32_t n = harness.kb().num_entities();
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.RecentCount(
        static_cast<kb::EntityId>(rng.Uniform(n)), now));
  }
}
BENCHMARK(BM_RecencyWindowQuery);

void BM_CandidateGenerationExact(benchmark::State& state) {
  auto& harness = SharedHarness();
  core::CandidateGenerator gen(&harness.kb(), 1);
  const auto& surfaces = harness.world().kb_world.ambiguous_surfaces;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen.Generate(surfaces[rng.Uniform(surfaces.size())]));
  }
}
BENCHMARK(BM_CandidateGenerationExact);

void BM_CandidateGenerationFuzzy(benchmark::State& state) {
  auto& harness = SharedHarness();
  core::CandidateGenerator gen(&harness.kb(), 1);
  const auto& surfaces = harness.world().kb_world.ambiguous_surfaces;
  Rng rng(3);
  for (auto _ : state) {
    // Misspell one character to force the fuzzy path.
    std::string surface = surfaces[rng.Uniform(surfaces.size())];
    surface[rng.Uniform(surface.size())] = '0';
    benchmark::DoNotOptimize(gen.Generate(surface));
  }
}
BENCHMARK(BM_CandidateGenerationFuzzy);

void BM_InfluenceTopK(benchmark::State& state) {
  auto& harness = SharedHarness();
  social::InfluenceEstimator influence(&harness.ckb(),
                                       social::InfluenceMethod::kEntropy);
  const auto& kb_world = harness.world().kb_world;
  Rng rng(4);
  for (auto _ : state) {
    size_t sid = rng.Uniform(kb_world.surface_entities.size());
    const auto& candidates = kb_world.surface_entities[sid];
    benchmark::DoNotOptimize(influence.TopInfluential(
        candidates[0], candidates, static_cast<uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_InfluenceTopK)->Arg(1)->Arg(5)->Arg(20);

void BM_LinkMention(benchmark::State& state) {
  auto& harness = SharedHarness();
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());
  const auto& corpus = harness.world().corpus;
  const auto& split = harness.test_split();
  Rng rng(5);
  for (auto _ : state) {
    const auto& lt =
        corpus.tweets[split.tweet_indices[rng.Uniform(
            split.tweet_indices.size())]];
    const auto& m = lt.mentions[rng.Uniform(lt.mentions.size())];
    benchmark::DoNotOptimize(
        linker.LinkMention(m.surface, lt.tweet.user, lt.tweet.time));
  }
}
BENCHMARK(BM_LinkMention);

// Identical workload with the observability layer disabled — the pair
// bounds the instrumentation overhead of EntityLinker::LinkMention.
void BM_LinkMentionNoMetrics(benchmark::State& state) {
  auto& harness = SharedHarness();
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());
  const auto& corpus = harness.world().corpus;
  const auto& split = harness.test_split();
  Rng rng(5);
  metrics::SetEnabled(false);
  for (auto _ : state) {
    const auto& lt =
        corpus.tweets[split.tweet_indices[rng.Uniform(
            split.tweet_indices.size())]];
    const auto& m = lt.mentions[rng.Uniform(lt.mentions.size())];
    benchmark::DoNotOptimize(
        linker.LinkMention(m.surface, lt.tweet.user, lt.tweet.time));
  }
  metrics::SetEnabled(true);
}
BENCHMARK(BM_LinkMentionNoMetrics);

// Cache A/B of the recency memoization on the same workload as
// BM_LinkMention: together with BM_LinkMention (cache on by default) the
// pair shows the speedup; with BM_LinkMentionNoMetrics the overhead.
void BM_LinkMentionRecencyCacheOff(benchmark::State& state) {
  auto& harness = SharedHarness();
  auto options = harness.DefaultLinkerOptions();
  options.propagator.enable_cache = false;
  auto linker = harness.MakeLinker(options);
  const auto& corpus = harness.world().corpus;
  const auto& split = harness.test_split();
  Rng rng(5);
  for (auto _ : state) {
    const auto& lt =
        corpus.tweets[split.tweet_indices[rng.Uniform(
            split.tweet_indices.size())]];
    const auto& m = lt.mentions[rng.Uniform(lt.mentions.size())];
    benchmark::DoNotOptimize(
        linker.LinkMention(m.surface, lt.tweet.user, lt.tweet.time));
  }
}
BENCHMARK(BM_LinkMentionRecencyCacheOff);

// The isolated propagation stage: CandidateScores with the memoization
// off (Arg 0) and on (Arg 1) at a fixed query time — the steady state of
// a query burst, where every cached run after the first is a hit.
void BM_RecencyCandidateScores(benchmark::State& state) {
  auto& harness = SharedHarness();
  recency::PropagatorOptions popts;
  popts.enable_cache = state.range(0) != 0;
  recency::SlidingWindowRecency window(&harness.ckb(),
                                       3 * kb::kSecondsPerDay, 10);
  recency::RecencyPropagator propagator(&harness.network(), &window, popts);
  const auto& kb_world = harness.world().kb_world;
  const kb::Timestamp now = 90 * kb::kSecondsPerDay;
  Rng rng(7);
  for (auto _ : state) {
    size_t sid = rng.Uniform(kb_world.surface_entities.size());
    const auto& candidates = kb_world.surface_entities[sid];
    benchmark::DoNotOptimize(
        propagator.CandidateScores(candidates, now, true));
  }
}
BENCHMARK(BM_RecencyCandidateScores)->Arg(0)->Arg(1);

void BM_LinkTweet(benchmark::State& state) {
  auto& harness = SharedHarness();
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());
  const auto& corpus = harness.world().corpus;
  const auto& split = harness.test_split();
  Rng rng(6);
  for (auto _ : state) {
    const auto& lt =
        corpus.tweets[split.tweet_indices[rng.Uniform(
            split.tweet_indices.size())]];
    benchmark::DoNotOptimize(linker.LinkTweet(lt.tweet));
  }
}
BENCHMARK(BM_LinkTweet);

}  // namespace

// BENCHMARK_MAIN plus a metrics sidecar: everything the benchmarks drove
// through the pipeline is exported for offline inspection.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* metrics_path = "bench_micro.metrics.json";
  if (mel::metrics::WriteJsonFile(metrics_path).ok()) {
    std::printf("metrics JSON written to %s\n", metrics_path);
  }
  return 0;
}

// Reproduces Fig. 6(c): accuracy of the three methods as tweet length
// (number of entity mentions per tweet) varies from 1 to 4. Mentions are
// linked independently in our framework, so its accuracy should stay
// stable, while the baselines improve with more intra-tweet context.

#include <cstdio>
#include <map>
#include <vector>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "eval/harness.h"
#include "eval/runner.h"

namespace {

// Mention accuracy stratified by the number of labeled mentions in the
// tweet.
std::map<size_t, std::pair<uint32_t, uint32_t>> Stratify(
    const mel::eval::EvalRun& run, const mel::gen::World& world) {
  std::map<size_t, std::pair<uint32_t, uint32_t>> buckets;
  for (const auto& outcome : run.outcomes) {
    size_t length = world.corpus.tweets[outcome.tweet_index].mentions.size();
    auto& [correct, total] = buckets[length];
    ++total;
    if (outcome.correct()) ++correct;
  }
  return buckets;
}

}  // namespace

int main() {
  using namespace mel;
  std::printf("=== Fig. 6(c): accuracy vs tweet length ===\n");
  eval::HarnessOptions hopts;
  hopts.extra_mention_prob = 0.55;  // populate the longer buckets
  hopts.test_max_users = 400;
  eval::Harness harness(hopts);

  baseline::OnTheFlyLinker on_the_fly(&harness.kb(), &harness.wlm(),
                                      baseline::OnTheFlyOptions{});
  baseline::CollectiveLinker collective(&harness.kb(), &harness.wlm(),
                                        baseline::CollectiveOptions{});
  auto otf = Stratify(eval::EvaluateOnTheFly(on_the_fly, harness.world(),
                                             harness.test_split()),
                      harness.world());
  auto col = Stratify(eval::EvaluateCollective(collective, harness.world(),
                                               harness.test_split()),
                      harness.world());
  auto ours = Stratify(harness.Evaluate(harness.DefaultLinkerOptions()),
                       harness.world());

  std::printf("%-8s %10s %12s %12s %8s\n", "length", "On-the-fly",
              "Collective", "Ours", "#ment");
  for (size_t length = 1; length <= 4; ++length) {
    auto ratio = [&](std::map<size_t, std::pair<uint32_t, uint32_t>>& m) {
      auto [correct, total] = m[length];
      return total == 0 ? 0.0 : static_cast<double>(correct) / total;
    };
    std::printf("%-8zu %10.4f %12.4f %12.4f %8u\n", length, ratio(otf),
                ratio(col), ratio(ours), ours[length].second);
  }
  std::printf(
      "\nPaper shape check (Fig. 6c): our accuracy stays stable across "
      "lengths (mentions are linked independently); the baselines are "
      "weakest at length 1, where topical coherence has nothing to vote "
      "with, and improve as tweets carry more mentions.\n");
  return 0;
}

// Before/after harness of the query hot-path overhaul: end-to-end
// mention-linking throughput with the recency memoization disabled
// (baseline — every LinkMention reruns the Eq. 11 power iteration) vs
// enabled (optimized — one iteration per cluster per window state).
//
// The workload replays the test split's mentions as a query burst at one
// evaluation instant: the steady state of a streaming deployment, where
// queries vastly outnumber cache invalidations (new links, window
// advances). A slice of the mentions is misspelled so the run also
// exercises the packed-key segment-index probing.
//
// Also verifies that the parallel PropagationNetwork::Build is
// byte-identical to the serial one, and writes all measurements to
// bench_query_hotpath.metrics.json:
//   bench.hotpath.baseline_mentions_per_sec
//   bench.hotpath.optimized_mentions_per_sec
//   bench.hotpath.speedup_x100
//   bench.hotpath.parallel_build_identical

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "eval/harness.h"
#include "eval/runner.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct Query {
  std::string mention;
  mel::kb::UserId user;
  mel::kb::Timestamp now;
};

// Introduces one character substitution, pushing the mention off the
// exact surface table and onto the fuzzy candidate path.
std::string Misspell(const std::string& s, mel::Rng* rng) {
  std::string out = s;
  const size_t pos = rng->Uniform(out.size());
  char repl = static_cast<char>('a' + rng->Uniform(26));
  if (repl == out[pos]) repl = repl == 'z' ? 'a' : repl + 1;
  out[pos] = repl;
  return out;
}

double MeasureMentionsPerSec(const mel::core::EntityLinker& linker,
                             const std::vector<Query>& queries,
                             uint32_t rounds) {
  mel::WallTimer timer;
  uint64_t linked = 0;
  for (uint32_t r = 0; r < rounds; ++r) {
    for (const Query& q : queries) {
      auto result = linker.LinkMention(q.mention, q.user, q.now);
      linked += result.linked() ? 1 : 0;
    }
  }
  const double secs = timer.ElapsedSeconds();
  (void)linked;
  return rounds * queries.size() / secs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mel;
  bool smoke = false;
  double theta2 = 0.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--theta2=", 9) == 0) {
      theta2 = std::atof(argv[i] + 9);
    }
  }

  eval::HarnessOptions hopts;
  // Below the harness default of 0.75 (which stands in for the paper's
  // theta2 = 0.6 on the synthetic WLM distribution): a denser propagation
  // network makes the Eq. 11 iteration the dominant per-query cost, which
  // is exactly the regime the memoization targets. The stage breakdown at
  // the end shows where the time goes either way.
  hopts.theta2 = theta2;
  hopts.scale = smoke ? 0.5 : 1.0;
  const uint32_t rounds = smoke ? 2 : 5;
  std::printf("=== query hot-path: cache-off baseline vs cache-on ===\n");
  std::printf("scale=%.1f theta2=%.2f rounds=%u\n", hopts.scale,
              hopts.theta2, rounds);
  eval::Harness harness(hopts);

  // Parallel network build must be byte-identical to serial regardless of
  // thread count.
  util::ThreadPool serial_pool(1);
  util::ThreadPool wide_pool(3);
  auto serial_net = recency::PropagationNetwork::Build(
      harness.kb(), hopts.theta2, &serial_pool);
  auto parallel_net = recency::PropagationNetwork::Build(
      harness.kb(), hopts.theta2, &wide_pool);
  const bool identical = serial_net.IdenticalTo(parallel_net) &&
                         parallel_net.IdenticalTo(harness.network());
  std::printf("parallel build identical to serial: %s\n",
              identical ? "yes" : "NO");

  // Replay workload: every ground-truth mention of the test split, issued
  // at one evaluation instant shortly after the corpus ends. ~18% of the
  // mentions are misspelled to exercise the fuzzy probing path.
  const auto& tweets = harness.world().corpus.tweets;
  kb::Timestamp eval_now = 0;
  for (const auto& lt : tweets) {
    eval_now = std::max(eval_now, lt.tweet.time);
  }
  eval_now += 60;
  Rng rng(20150605);
  std::vector<Query> queries;
  for (uint32_t idx : harness.test_split().tweet_indices) {
    for (const auto& m : tweets[idx].mentions) {
      Query q{m.surface, tweets[idx].tweet.user, eval_now};
      if (m.surface.size() >= 4 && rng.Bernoulli(0.18)) {
        q.mention = Misspell(m.surface, &rng);
      }
      queries.push_back(std::move(q));
    }
  }
  std::printf("workload: %zu mentions x %u rounds\n", queries.size(),
              rounds);

  core::LinkerOptions baseline_opts = harness.DefaultLinkerOptions();
  baseline_opts.propagator.enable_cache = false;
  core::LinkerOptions optimized_opts = harness.DefaultLinkerOptions();
  optimized_opts.propagator.enable_cache = true;

  core::EntityLinker baseline = harness.MakeLinker(baseline_opts);
  core::EntityLinker optimized = harness.MakeLinker(optimized_opts);
  baseline.WarmUp();
  optimized.WarmUp();
  // One untimed pass per linker: fills the influential-user cache and the
  // recency cache, so both measurements are steady-state.
  MeasureMentionsPerSec(baseline, queries, 1);
  MeasureMentionsPerSec(optimized, queries, 1);

  metrics::Registry().Reset();
  const double base_qps = MeasureMentionsPerSec(baseline, queries, rounds);
  const double opt_qps = MeasureMentionsPerSec(optimized, queries, rounds);
  const double speedup = opt_qps / base_qps;

  std::printf("\n%-28s %14.0f mentions/s\n", "baseline (cache off)",
              base_qps);
  std::printf("%-28s %14.0f mentions/s\n", "optimized (cache on)", opt_qps);
  std::printf("%-28s %13.2fx\n", "speedup", speedup);

  auto snapshot = metrics::Registry().Snapshot();
  std::printf("\n=== cache behaviour over the measured runs ===\n");
  auto counter_value = [&snapshot](const char* name) -> uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  for (const char* name :
       {"recency.cache.hits_total", "recency.cache.misses_total",
        "recency.cache.invalidations_total", "candgen.exact_hits_total",
        "candgen.fuzzy.fallbacks_total", "text.fuzzy.probes_total"}) {
    std::printf("%-36s %12llu\n", name,
                static_cast<unsigned long long>(counter_value(name)));
  }
  std::printf("\n=== stage p50 over both measured runs ===\n");
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0 || !name.ends_with("_ns")) continue;
    std::printf("%-36s %10llu x %12.0f ns\n", name.c_str(),
                static_cast<unsigned long long>(h.count), h.Percentile(50));
  }

  auto& reg = metrics::Registry();
  reg.GetGauge("bench.hotpath.baseline_mentions_per_sec")
      ->Set(static_cast<int64_t>(base_qps));
  reg.GetGauge("bench.hotpath.optimized_mentions_per_sec")
      ->Set(static_cast<int64_t>(opt_qps));
  reg.GetGauge("bench.hotpath.speedup_x100")
      ->Set(static_cast<int64_t>(speedup * 100));
  reg.GetGauge("bench.hotpath.parallel_build_identical")
      ->Set(identical ? 1 : 0);

  const char* metrics_path = "bench_query_hotpath.metrics.json";
  if (eval::ExportMetricsJson(metrics_path)) {
    std::printf("\nmetrics JSON written to %s\n", metrics_path);
  }

  // Per-PR trajectory sidecar (schema v1; keys checked by verify.sh).
  {
    std::ofstream sidecar("BENCH_hotpath.json");
    JsonWriter w(&sidecar);
    w.BeginObject();
    w.KeyValue("bench", std::string_view("hotpath"));
    w.KeyValue("schema_version", uint64_t{1});
    w.KeyValue("mode", std::string_view(smoke ? "smoke" : "full"));
    w.KeyValue("scale", hopts.scale);
    w.KeyValue("theta2", hopts.theta2);
    w.KeyValue("mentions", uint64_t{queries.size()});
    w.KeyValue("rounds", uint64_t{rounds});
    w.KeyValue("baseline_mentions_per_sec", base_qps);
    w.KeyValue("optimized_mentions_per_sec", opt_qps);
    w.KeyValue("speedup", speedup);
    w.KeyValue("parallel_build_identical", identical);
    w.EndObject();
    sidecar << "\n";
    std::printf("trajectory written to BENCH_hotpath.json\n");
  }
  if (!identical) {
    std::printf("FAIL: parallel network build diverged from serial\n");
    return 1;
  }
  return 0;
}

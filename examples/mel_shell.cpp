// Interactive shell over a generated world: link mentions, inspect
// scores, search, and teach the system with feedback — a hands-on tour of
// the whole online-inference pipeline.
//
// Build & run:   ./examples/mel_shell
// Commands:
//   link <user_id> <mention words...>   disambiguate a mention
//   tweet <user_id> <text...>           detect + link all mentions
//   search <user_id> <query...>         personalized search
//   confirm <user_id> <entity_id>       feedback: user's last text was
//                                       about this entity (now = latest)
//   entity <entity_id>                  show entity details
//   surfaces                            list a few ambiguous surfaces
//   save-index <path>                   build the 2-hop reachability index
//                                       over the world's social graph and
//                                       save it as a MEL3 container
//   load-mmap <path>                    memory-map a saved MEL3 index
//                                       (zero-copy; see docs/PERFORMANCE.md)
//   stats [path]                        dump the metrics registry as JSON
//                                       (to stdout, or to a file); includes
//                                       mapped-index stats when one is live,
//                                       and the SIMD tier/dispatch counters
//   stats-reset                         zero all pipeline metrics
//   quit                                exit
// EOF exits, so the binary is safe to run non-interactively.

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "core/personalized_search.h"
#include "eval/harness.h"
#include "reach/reach_metrics.h"
#include "reach/two_hop_index.h"
#include "util/metrics.h"
#include "util/mmap_file.h"
#include "util/simd/simd.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace mel;

void ShowRanked(const eval::Harness& harness,
                const core::MentionLinkResult& result) {
  if (!result.linked()) {
    std::printf("  no candidates%s\n",
                result.probable_new_entity ? " (probable new entity)" : "");
    return;
  }
  for (const auto& s : result.ranked) {
    std::printf("  [%4u] %-24s score=%.3f (int=%.2f rec=%.2f pop=%.2f)\n",
                s.entity, harness.kb().entity(s.entity).name.c_str(),
                s.score, s.interest, s.recency, s.popularity);
  }
}

}  // namespace

int main() {
  std::printf("Generating the synthetic world (scale 0.5)...\n");
  eval::HarnessOptions hopts;
  hopts.scale = 0.5;
  eval::Harness harness(hopts);
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());
  core::PersonalizedSearch search(&linker, &harness.ckb());
  const kb::Timestamp now = 90 * kb::kSecondsPerDay;
  kb::TweetId next_tweet_id = 10000000;
  // Held across commands so the mapping's lifetime can be poked at
  // interactively; replaced wholesale by each `load-mmap`.
  std::optional<reach::TwoHopIndex> mapped_index;

  std::printf(
      "Ready. %u entities, %zu surface forms, %u users. Type 'surfaces' "
      "for ambiguous mentions to play with, 'quit' to exit.\n",
      harness.kb().num_entities(), harness.kb().num_surface_forms(),
      harness.world().social.graph.num_nodes());

  std::string line;
  while (std::printf("mel> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;

    if (command == "quit" || command == "exit") break;

    if (command == "stats") {
      // Every command so far has flowed through the instrumented pipeline;
      // this is the live per-stage accounting (see docs/METRICS.md).
      std::string path;
      if (in >> path) {
        if (metrics::WriteJsonFile(path).ok()) {
          std::printf("  metrics written to %s\n", path.c_str());
        } else {
          std::printf("  cannot write %s\n", path.c_str());
        }
      } else {
        std::printf("%s\n",
                    metrics::Registry().Snapshot().ToJson().c_str());
      }
      // Hot-path summary (docs/PERFORMANCE.md): recency memoization and
      // candidate-generation fallback behaviour at a glance.
      auto counter = [](const char* name) {
        return metrics::Registry().GetCounter(name)->Value();
      };
      const uint64_t hits = counter("recency.cache.hits_total");
      const uint64_t misses = counter("recency.cache.misses_total");
      const uint64_t probes = hits + misses;
      std::printf(
          "  recency cache: %llu hits / %llu misses (%.0f%% hit rate), "
          "%llu invalidations\n",
          static_cast<unsigned long long>(hits),
          static_cast<unsigned long long>(misses),
          probes > 0 ? 100.0 * static_cast<double>(hits) /
                           static_cast<double>(probes)
                     : 0.0,
          static_cast<unsigned long long>(
              counter("recency.cache.invalidations_total")));
      std::printf(
          "  candidates: %llu exact hits, %llu fuzzy fallbacks "
          "(%llu unmatched)\n",
          static_cast<unsigned long long>(
              counter("candgen.exact_hits_total")),
          static_cast<unsigned long long>(
              counter("candgen.fuzzy.fallbacks_total")),
          static_cast<unsigned long long>(
              counter("candgen.fuzzy.unmatched_total")));
      // Mapped-index tier (docs/PERFORMANCE.md): what the reach.mmap.*
      // gauges say about the most recent index load in this process.
      auto gauge = [](const char* name) {
        return metrics::Registry().GetGauge(name)->Value();
      };
      const int64_t load_mode = gauge("reach.mmap.load_mode");
      const char* mode_name =
          load_mode == reach::kLoadModeMapped
              ? "mapped"
              : (load_mode == reach::kLoadModeCopied ? "copied" : "built");
      std::printf("  index load mode: %s", mode_name);
      if (mapped_index.has_value() && mapped_index->IsMapped()) {
        std::printf(", %s mapped (advice=%s)",
                    HumanBytes(mapped_index->MappedBytes()).c_str(),
                    util::MmapFile::AdviceName(
                        static_cast<util::MmapFile::Advice>(
                            gauge("reach.mmap.advice"))));
      }
      std::printf("\n");
      // SIMD kernel layer (docs/PERFORMANCE.md): active tier plus how
      // often each vectorized hot loop was dispatched.
      std::printf(
          "  simd: tier=%s, %llu merges, %llu gallops, %llu min-sum "
          "walks, %llu probes, %llu dense BFS levels\n",
          util::simd::LevelName(util::simd::ActiveLevel()),
          static_cast<unsigned long long>(
              counter("util.simd.merge_dispatch_total")),
          static_cast<unsigned long long>(
              counter("util.simd.gallop_dispatch_total")),
          static_cast<unsigned long long>(
              counter("util.simd.minsum_dispatch_total")),
          static_cast<unsigned long long>(
              counter("util.simd.probe_dispatch_total")),
          static_cast<unsigned long long>(
              counter("util.simd.frontier_dense_levels_total")));
      continue;
    }

    if (command == "save-index") {
      std::string path;
      if (!(in >> path)) {
        std::printf("  usage: save-index <path>\n");
        continue;
      }
      WallTimer timer;
      auto index =
          reach::TwoHopIndex::Build(&harness.world().social.graph, 5);
      const double build_ns = static_cast<double>(timer.ElapsedNanos());
      timer.Restart();
      auto status = index.Save(path);
      if (!status.ok()) {
        std::printf("  save failed: %s\n", status.message().c_str());
        continue;
      }
      std::printf(
          "  built 2-hop index (%s arenas) in %s, saved MEL3 container "
          "to %s in %s\n",
          HumanBytes(index.IndexSizeBytes()).c_str(),
          HumanNanos(build_ns).c_str(), path.c_str(),
          HumanNanos(static_cast<double>(timer.ElapsedNanos())).c_str());
      continue;
    }

    if (command == "load-mmap") {
      std::string path;
      if (!(in >> path)) {
        std::printf("  usage: load-mmap <path>\n");
        continue;
      }
      WallTimer timer;
      auto loaded = reach::TwoHopIndex::LoadMapped(
          path, &harness.world().social.graph);
      if (!loaded.ok()) {
        std::printf("  load-mmap failed: %s\n",
                    loaded.status().message().c_str());
        continue;
      }
      mapped_index.emplace(std::move(loaded).value());
      std::printf(
          "  mapped %s in %s (zero-copy; pages fault in on demand). "
          "'stats' shows the reach.mmap.* gauges.\n",
          HumanBytes(mapped_index->MappedBytes()).c_str(),
          HumanNanos(static_cast<double>(timer.ElapsedNanos())).c_str());
      continue;
    }

    if (command == "stats-reset") {
      metrics::Registry().Reset();
      std::printf("  metrics reset\n");
      continue;
    }

    if (command == "surfaces") {
      const auto& surfaces = harness.world().kb_world.ambiguous_surfaces;
      for (size_t i = 0; i < std::min<size_t>(8, surfaces.size()); ++i) {
        auto cands = harness.kb().Candidates(surfaces[i]);
        std::printf("  %-16s -> %zu candidates\n", surfaces[i].c_str(),
                    cands.size());
      }
      continue;
    }

    if (command == "entity") {
      uint32_t id;
      if (!(in >> id) || id >= harness.kb().num_entities()) {
        std::printf("  usage: entity <id 0..%u>\n",
                    harness.kb().num_entities() - 1);
        continue;
      }
      const auto& rec = harness.kb().entity(id);
      std::printf("  name=%s category=%s linked_tweets=%u community=%zu\n",
                  rec.name.c_str(), kb::EntityCategoryName(rec.category),
                  harness.ckb().LinkedTweetCount(id),
                  harness.ckb().Community(id).size());
      continue;
    }

    uint32_t user;
    if (!(in >> user) ||
        user >= harness.world().social.graph.num_nodes()) {
      std::printf("  usage: %s <user_id> <text>\n", command.c_str());
      continue;
    }
    std::string rest;
    std::getline(in, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (command == "link") {
      ShowRanked(harness, linker.LinkMention(rest, user, now));
    } else if (command == "tweet") {
      kb::Tweet tweet;
      tweet.id = next_tweet_id++;
      tweet.user = user;
      tweet.time = now;
      tweet.text = rest;
      auto result = linker.LinkTweet(tweet);
      if (result.mentions.empty()) std::printf("  no mentions detected\n");
      for (const auto& mention : result.mentions) {
        std::printf("  mention '%s':\n", mention.surface.c_str());
        ShowRanked(harness, mention);
      }
    } else if (command == "search") {
      auto result = search.Query(rest, user, now, {});
      for (const auto& interp : result.interpretations) {
        std::printf("  '%s' interpreted as %s\n", interp.surface.c_str(),
                    interp.linked()
                        ? harness.kb().entity(interp.best()).name.c_str()
                        : "(nothing)");
      }
      for (const auto& hit : result.hits) {
        std::printf(
            "  [day %lld, user %u] %.60s\n",
            static_cast<long long>(hit.time / kb::kSecondsPerDay),
            hit.author,
            harness.world().corpus.tweets[hit.tweet].tweet.text.c_str());
      }
      if (result.hits.empty()) std::printf("  no results\n");
    } else if (command == "confirm") {
      uint32_t entity;
      std::istringstream entity_in(rest);
      if (!(entity_in >> entity) || entity >= harness.kb().num_entities()) {
        std::printf("  usage: confirm <user_id> <entity_id>\n");
        continue;
      }
      kb::Tweet tweet;
      tweet.id = next_tweet_id++;
      tweet.user = user;
      tweet.time = now;
      linker.ConfirmLink(entity, tweet);
      std::printf("  learned: user %u tweeted about %s (links now %u)\n",
                  user, harness.kb().entity(entity).name.c_str(),
                  harness.ckb().LinkedTweetCount(entity));
    } else {
      std::printf("  unknown command '%s'\n", command.c_str());
    }
  }
  std::printf("bye\n");
  return 0;
}

// mel_serve: line-oriented front end of the online LinkService — the
// operational surface described in docs/SERVING.md. Requests are
// admitted into the bounded queue, dispatched in micro-batches, and
// feedback is applied at epoch barriers; `pause`/`resume` expose the
// batching machinery interactively.
//
// Build & run:   ./examples/mel_serve [--scale=X] [--batch=N]
//                                     [--queue=N] [--policy=block|shed|
//                                      deadline] [--workers=N]
//
// Protocol (one command per line on stdin, replies on stdout):
//   link <user> <mention...>     queue a mention; prints "queued #k"
//   sync <user> <mention...>     link synchronously, print the result
//   feedback <entity> <user>     author confirms entity (epoch barrier)
//   wait                         drain: resolve and print queued links
//   pause | resume               hold / release dispatch (batch demo)
//   epoch                        current feedback epoch
//   stats                        serve.* counters and latency tails
//   help | quit
//
// Example session (see docs/SERVING.md for a commented transcript):
//   pause
//   link 7 alicesmithx0
//   link 9 alicesmithx0
//   resume
//   wait
//   feedback 42 7
//   sync 7 alicesmithx0

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "serve/link_service.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace {

using namespace mel;

struct Queued {
  size_t id;
  std::string mention;
  std::future<serve::LinkResponse> future;
};

void PrintResponse(const std::string& mention,
                   const serve::LinkResponse& r) {
  if (r.status != serve::ServeStatus::kOk) {
    std::printf("  %-20s -> %s\n", mention.c_str(),
                serve::ServeStatusName(r.status));
    return;
  }
  std::printf("  %-20s epoch=%llu batch=%u wait=%lldus", mention.c_str(),
              static_cast<unsigned long long>(r.epoch), r.batch_size,
              static_cast<long long>(r.queue_wait_ns / 1000));
  if (r.result.ranked.empty()) {
    std::printf("  (no candidate%s)\n",
                r.result.probable_new_entity ? "; probable new entity" : "");
    return;
  }
  std::printf("\n");
  const size_t top = std::min<size_t>(r.result.ranked.size(), 3);
  for (size_t i = 0; i < top; ++i) {
    const auto& s = r.result.ranked[i];
    std::printf("    #%zu entity=%u score=%.4f (in=%.3f r=%.3f p=%.3f)\n",
                i + 1, s.entity, s.score, s.interest, s.recency,
                s.popularity);
  }
}

void PrintStats() {
  auto snapshot = metrics::Registry().Snapshot();
  std::printf("  counters:\n");
  for (const auto& [name, v] : snapshot.counters) {
    if (name.rfind("serve.", 0) == 0) {
      std::printf("    %-32s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    }
  }
  std::printf("  gauges:\n");
  for (const auto& [name, v] : snapshot.gauges) {
    if (name.rfind("serve.", 0) == 0) {
      std::printf("    %-32s %12lld\n", name.c_str(),
                  static_cast<long long>(v));
    }
  }
  std::printf("  distributions:\n");
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.rfind("serve.", 0) != 0 || h.count == 0) continue;
    const bool nanos = name.size() > 3 &&
                       name.compare(name.size() - 3, 3, "_ns") == 0;
    const double unit = nanos ? 1e3 : 1.0;
    std::printf("    %-32s p50=%-8.0f p95=%-8.0f p99=%-8.0f %s\n",
                name.c_str(), h.Percentile(50) / unit,
                h.Percentile(95) / unit, h.Percentile(99) / unit,
                nanos ? "us" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  serve::ServeOptions sopts;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      sopts.max_batch = static_cast<uint32_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--queue=", 8) == 0) {
      sopts.queue_capacity = static_cast<size_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      sopts.num_workers = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      const char* p = argv[i] + 9;
      if (std::strcmp(p, "shed") == 0) {
        sopts.policy = serve::AdmissionPolicy::kShed;
      } else if (std::strcmp(p, "deadline") == 0) {
        sopts.policy = serve::AdmissionPolicy::kDeadline;
        sopts.default_deadline_ns = int64_t{2} * 1000 * 1000 * 1000;
      }
    }
  }

  std::printf("Generating the synthetic microblog world (scale %.2f)...\n",
              scale);
  eval::HarnessOptions hopts;
  hopts.scale = scale;
  eval::Harness harness(hopts);
  core::EntityLinker linker =
      harness.MakeLinker(harness.DefaultLinkerOptions());

  kb::Timestamp now = 0;
  for (const auto& lt : harness.world().corpus.tweets) {
    now = std::max(now, lt.tweet.time);
  }
  now += 60;

  serve::LinkService service(&linker, sopts);
  std::printf(
      "serving: max_batch=%u queue=%zu policy=%s workers=%u\n"
      "try e.g.:  sync 7 %s\n"
      "type 'help' for the protocol.\n",
      sopts.max_batch, sopts.queue_capacity,
      serve::AdmissionPolicyName(sopts.policy), sopts.num_workers,
      harness.world().kb_world.ambiguous_surfaces.front().c_str());

  std::vector<Queued> pending;
  size_t next_id = 1;
  kb::TweetId next_tweet_id = 90000000;
  std::string line;
  std::printf("mel-serve> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd.empty()) {
      // fallthrough to prompt
    } else if (cmd == "link" || cmd == "sync") {
      uint32_t user = 0;
      std::string mention, word;
      in >> user;
      while (in >> word) {
        if (!mention.empty()) mention += ' ';
        mention += word;
      }
      if (mention.empty()) {
        std::printf("  usage: %s <user> <mention...>\n", cmd.c_str());
      } else {
        serve::LinkRequest request;
        request.mention = mention;
        request.user = user;
        request.now = now;
        if (cmd == "sync") {
          PrintResponse(mention, service.LinkSync(std::move(request)));
        } else {
          Queued q;
          q.id = next_id++;
          q.mention = mention;
          q.future = service.Submit(std::move(request));
          std::printf("  queued #%zu (depth now %zu)\n", q.id,
                      pending.size() + 1);
          pending.push_back(std::move(q));
        }
      }
    } else if (cmd == "feedback") {
      uint32_t entity = 0, user = 0;
      in >> entity >> user;
      kb::Tweet tweet;
      tweet.id = next_tweet_id++;
      tweet.user = user;
      tweet.time = now;
      auto ack = service.SubmitFeedback(entity, tweet);
      const uint64_t epoch = ack.get();
      if (epoch == serve::kFeedbackRejected) {
        std::printf("  feedback rejected (service stopped)\n");
      } else {
        std::printf("  confirmed entity %u; visible from epoch %llu\n",
                    entity, static_cast<unsigned long long>(epoch));
      }
    } else if (cmd == "wait") {
      service.Resume();  // a paused queue would never drain
      for (Queued& q : pending) {
        std::printf("  #%zu:\n", q.id);
        PrintResponse(q.mention, q.future.get());
      }
      pending.clear();
    } else if (cmd == "pause") {
      service.Pause();
      std::printf("  dispatch paused; links queue until 'resume'\n");
    } else if (cmd == "resume") {
      service.Resume();
      std::printf("  dispatch resumed\n");
    } else if (cmd == "epoch") {
      std::printf("  epoch %llu\n",
                  static_cast<unsigned long long>(service.epoch()));
    } else if (cmd == "stats") {
      PrintStats();
    } else if (cmd == "help") {
      std::printf(
          "  link <user> <mention...> | sync <user> <mention...> |\n"
          "  feedback <entity> <user> | wait | pause | resume |\n"
          "  epoch | stats | quit\n");
    } else {
      std::printf("  unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    std::printf("mel-serve> ");
    std::fflush(stdout);
  }
  service.Resume();
  for (Queued& q : pending) {
    PrintResponse(q.mention, q.future.get());
  }
  std::printf("\nbye (%llu links served, final epoch %llu)\n",
              static_cast<unsigned long long>(service.completed_ok()),
              static_cast<unsigned long long>(service.epoch()));
  return 0;
}

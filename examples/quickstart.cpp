// Quickstart: build a tiny knowledgebase and social network by hand,
// complement it with a few tweets, and disambiguate the mention "jordan"
// for two different users — the paper's Fig. 1 scenario in ~100 lines.
//
// Build & run:   ./examples/quickstart

#include <cstdio>

#include "core/entity_linker.h"
#include "graph/graph_builder.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "reach/naive_reachability.h"
#include "recency/propagation_network.h"

int main() {
  using namespace mel;

  // 1. Knowledgebase: entities, surface forms, hyperlinks.
  kb::Knowledgebase kbase;
  auto player = kbase.AddEntity("Michael Jordan (basketball)",
                                kb::EntityCategory::kPerson,
                                {"basketball", "bulls", "nba", "dunk"});
  auto expert = kbase.AddEntity("Michael Jordan (machine learning)",
                                kb::EntityCategory::kPerson,
                                {"machine", "learning", "berkeley"});
  auto country = kbase.AddEntity("Jordan (country)",
                                 kb::EntityCategory::kLocation,
                                 {"country", "amman", "middle", "east"});
  auto nba = kbase.AddEntity("NBA", kb::EntityCategory::kCompany,
                             {"basketball", "league"});
  auto icml = kbase.AddEntity("ICML", kb::EntityCategory::kCompany,
                              {"machine", "learning", "conference"});

  kbase.AddSurfaceForm("Jordan", player, 120);
  kbase.AddSurfaceForm("Jordan", expert, 15);
  kbase.AddSurfaceForm("Jordan", country, 60);
  kbase.AddSurfaceForm("NBA", nba, 80);
  kbase.AddSurfaceForm("ICML", icml, 25);

  // Hyperlink co-citations make {player, nba} and {expert, icml}
  // topically related under WLM.
  for (int i = 0; i < 3; ++i) {
    auto a = kbase.AddEntity("sports article", kb::EntityCategory::kMovieMusic, {});
    kbase.AddHyperlink(a, player);
    kbase.AddHyperlink(a, nba);
    auto b = kbase.AddEntity("ml article", kb::EntityCategory::kMovieMusic, {});
    kbase.AddHyperlink(b, expert);
    kbase.AddHyperlink(b, icml);
  }
  kbase.Finalize();

  // 2. Complemented knowledgebase: tweets linked to entities offline.
  kb::ComplementedKnowledgebase ckb(&kbase);
  // User 1 = @NBAOfficial tweets about the player; user 2 is an ML
  // researcher tweeting about the expert.
  for (int i = 0; i < 8; ++i) {
    ckb.AddLink(player, kb::Posting{static_cast<kb::TweetId>(i), 1,
                                    i * 3600});
  }
  for (int i = 0; i < 5; ++i) {
    ckb.AddLink(expert, kb::Posting{static_cast<kb::TweetId>(100 + i), 2,
                                    i * 3600});
  }

  // 3. Followee-follower network: user 10 follows the NBA hub, user 11
  // follows the ML researcher.
  graph::GraphBuilder builder(12);
  builder.AddEdge(10, 1);
  builder.AddEdge(11, 2);
  auto social = std::move(builder).Build();
  reach::NaiveReachability reachability(&social, /*max_hops=*/5);

  // 4. Recency propagation network over the knowledgebase.
  auto network = recency::PropagationNetwork::Build(kbase, /*theta2=*/0.3);

  // 5. The linker.
  core::LinkerOptions options;
  options.theta1 = 3;  // tiny corpus: three recent tweets form a burst
  core::EntityLinker linker(&kbase, &ckb, &reachability, &network, options);

  auto show = [&](const char* who, kb::UserId user, kb::Timestamp now) {
    auto result = linker.LinkMention("Jordan", user, now);
    std::printf("%s asks for \"Jordan\" -> %s\n", who,
                result.linked()
                    ? kbase.entity(result.best()).name.c_str()
                    : "(no link)");
    for (const auto& s : result.ranked) {
      std::printf("    %-38s score=%.3f (interest=%.2f recency=%.2f "
                  "popularity=%.2f)\n",
                  kbase.entity(s.entity).name.c_str(), s.score, s.interest,
                  s.recency, s.popularity);
    }
  };

  std::printf("--- user interest disambiguates ---\n");
  show("basketball fan (user 10)", 10, 50000);
  show("ml student     (user 11)", 11, 50000);

  // 6. A burst of ICML tweets — weeks after the old chatter has left the
  // 3-day recency window — shifts recency toward the expert, even for a
  // user with no social signal at all.
  std::printf("\n--- an ICML burst shifts recency ---\n");
  const kb::Timestamp icml_week = 30 * kb::kSecondsPerDay;
  show("stranger      (user 5) ", 5, icml_week);
  for (int i = 0; i < 6; ++i) {
    ckb.AddLink(icml, kb::Posting{static_cast<kb::TweetId>(200 + i), 2,
                                  icml_week + i});
  }
  show("stranger during ICML   ", 5, icml_week + 100);
  return 0;
}

// Personalized microblog search (the paper's motivating application,
// Sec. 1 / Fig. 1): a keyword query containing an ambiguous entity
// mention is linked to the right entity *per user*, and the tweets
// associated with the top entities in the complemented knowledgebase are
// returned as the personalized result set.
//
// Build & run:   ./examples/personalized_search

#include <cstdio>

#include "eval/harness.h"

int main() {
  using namespace mel;
  std::printf("Generating the synthetic microblog world...\n");
  eval::HarnessOptions hopts;
  hopts.scale = 0.5;
  eval::Harness harness(hopts);
  auto linker = harness.MakeLinker(harness.DefaultLinkerOptions());
  const auto& kb_world = harness.world().kb_world;

  // Pick an ambiguous surface whose candidates live in different topics,
  // and two users interested in those different topics.
  const auto& surface = kb_world.ambiguous_surfaces[0];
  auto candidates = harness.kb().Candidates(surface);
  std::printf("\nQuery mention: \"%s\" (%zu candidate entities)\n",
              surface.c_str(), candidates.size());
  for (const auto& c : candidates) {
    std::printf("  candidate: %-24s topic=%u anchors=%u\n",
                harness.kb().entity(c.entity).name.c_str(),
                kb_world.entity_topic[c.entity], c.anchor_count);
  }

  // Find one user per candidate topic (first two topics).
  const auto& social = harness.world().social;
  kb::Timestamp now = 60 * kb::kSecondsPerDay;
  int shown = 0;
  for (const auto& c : candidates) {
    uint32_t topic = kb_world.entity_topic[c.entity];
    if (topic >= social.topic_users.size() ||
        social.topic_users[topic].empty()) {
      continue;
    }
    kb::UserId user = social.topic_users[topic].back();
    auto result = linker.LinkMention(surface, user, now);
    if (!result.linked()) continue;
    std::printf(
        "\nuser %u (interested in topic %u) searches \"%s\":\n", user,
        topic, surface.c_str());
    std::printf("  linked to: %s (score %.3f)\n",
                harness.kb().entity(result.best()).name.c_str(),
                result.ranked[0].score);

    // Personalized search result: tweets linked to the top entity.
    auto postings = harness.ckb().Postings(result.best());
    std::printf("  result set: %zu tweets linked to this entity; "
                "most recent:\n", postings.size());
    size_t count = 0;
    for (auto it = postings.rbegin(); it != postings.rend() && count < 3;
         ++it, ++count) {
      const auto& tweet =
          harness.world().corpus.tweets[it->tweet].tweet;
      std::printf("    [t=%lldd, user %u] %.72s\n",
                  static_cast<long long>(it->time / kb::kSecondsPerDay),
                  it->user, tweet.text.c_str());
    }
    if (++shown == 3) break;
  }

  std::printf(
      "\nThe same query returns different, interest-aligned entities per "
      "user — the personalized-search behaviour of Fig. 1.\n");
  return 0;
}

// Streaming entity linking (the online-inference loop of Fig. 2), now
// riding the serving layer: tweets arrive in timestamp order, each wave
// of mentions is admitted into the LinkService's bounded queue and
// dispatched as micro-batches, and the (simulated) author confirmations
// flow back through SubmitFeedback — applied at epoch barriers between
// batches, so the knowledgebase complements itself while queries are in
// flight. The example reports throughput, the number of feedback epochs,
// and how accuracy warms up as knowledge accumulates.
//
// NOTE: this example originally drove core::EntityLinker directly
// (LinkMention + ConfirmLink inline); it was ported to serve::LinkService
// when the serving layer landed. The observable difference is that a
// confirmation becomes visible at the next epoch barrier instead of
// before the very next mention — the trade the serving loop makes for
// micro-batched throughput (docs/SERVING.md).
//
// Build & run:   ./examples/streaming_linker

#include <cstdio>
#include <future>
#include <vector>

#include "eval/harness.h"
#include "serve/link_service.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace mel;
  std::printf("Generating the synthetic microblog world...\n");
  gen::World world = gen::GenerateWorld(eval::StandardWorldOptions(1.0, 3));
  auto reachability = reach::TwoHopIndex::Build(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.75);

  // Start from an EMPTY complemented knowledgebase: everything the linker
  // knows it learns from the stream itself.
  kb::ComplementedKnowledgebase ckb(&world.kb());
  core::LinkerOptions options;
  options.theta1 = 10;
  core::EntityLinker linker(&world.kb(), &ckb, &reachability, &network,
                            options);

  serve::ServeOptions sopts;
  sopts.max_batch = 16;
  sopts.queue_capacity = 64;
  serve::LinkService service(&linker, sopts);

  const size_t total = world.corpus.tweets.size();
  const size_t report_every = total / 8;
  size_t mentions = 0, correct = 0;
  size_t window_mentions = 0, window_correct = 0;
  WallTimer timer;

  // One wave = a micro-batch worth of stream: submit its mentions
  // asynchronously (the service batches them), then drain, score, and
  // feed the confirmations back so the next wave links against the
  // complemented state.
  struct InFlight {
    std::future<serve::LinkResponse> response;
    kb::EntityId truth;
    uint32_t tweet_index;
  };
  std::vector<InFlight> wave;
  auto drain_wave = [&] {
    for (InFlight& f : wave) {
      serve::LinkResponse r = f.response.get();
      ++mentions;
      ++window_mentions;
      if (r.status == serve::ServeStatus::kOk &&
          r.result.best() == f.truth) {
        ++correct;
        ++window_correct;
      }
      // The author confirms the true entity (interactive feedback of
      // Sec. 3.2.2); the write lands at the next epoch barrier.
      service.SubmitFeedback(f.truth,
                             world.corpus.tweets[f.tweet_index].tweet);
    }
    wave.clear();
    service.WaitIdle();  // all confirmations of this wave are in
  };

  std::printf("\nstreaming %zu tweets in timestamp order...\n", total);
  std::printf("%-12s %14s %16s\n", "progress", "window acc",
              "cumulative acc");
  for (size_t i = 0; i < total; ++i) {
    const auto& lt = world.corpus.tweets[i];
    for (const auto& label : lt.mentions) {
      serve::LinkRequest request;
      request.mention = label.surface;
      request.user = lt.tweet.user;
      request.now = lt.tweet.time;
      wave.push_back({service.Submit(std::move(request)), label.truth,
                      static_cast<uint32_t>(i)});
    }
    if (wave.size() >= sopts.max_batch) drain_wave();
    if ((i + 1) % report_every == 0 || i + 1 == total) {
      drain_wave();
      std::printf("%5zu%%       %14.4f %16.4f\n", (i + 1) * 100 / total,
                  static_cast<double>(window_correct) / window_mentions,
                  static_cast<double>(correct) / mentions);
      window_mentions = window_correct = 0;
    }
  }
  service.Stop();
  double elapsed = timer.ElapsedSeconds();
  std::printf(
      "\nprocessed %zu mentions in %.1fs -> %.0f tweets/s (%s per "
      "mention)\n",
      mentions, elapsed, total / elapsed,
      HumanNanos(elapsed * 1e9 / mentions).c_str());
  std::printf(
      "served across %llu feedback epochs; accuracy warms up as the "
      "stream complements the knowledgebase — the cold-start behaviour "
      "discussed in Appendix D.\n",
      static_cast<unsigned long long>(service.epoch()));
  return 0;
}

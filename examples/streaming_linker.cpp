// Streaming entity linking (the online-inference loop of Fig. 2): tweets
// arrive in timestamp order; each is linked on the fly, the (simulated)
// author confirms the result, and the confirmed link immediately
// complements the knowledgebase — so popularity, recency, and communities
// evolve with the stream. The example reports throughput and how linking
// accuracy warms up as knowledge accumulates.
//
// Build & run:   ./examples/streaming_linker

#include <cstdio>

#include "core/entity_linker.h"
#include "eval/harness.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace mel;
  std::printf("Generating the synthetic microblog world...\n");
  gen::World world = gen::GenerateWorld(eval::StandardWorldOptions(1.0, 3));
  auto reachability = reach::TwoHopIndex::Build(&world.social.graph, 5);
  auto network = recency::PropagationNetwork::Build(world.kb(), 0.75);

  // Start from an EMPTY complemented knowledgebase: everything the linker
  // knows it learns from the stream itself.
  kb::ComplementedKnowledgebase ckb(&world.kb());
  core::LinkerOptions options;
  options.theta1 = 10;
  core::EntityLinker linker(&world.kb(), &ckb, &reachability, &network,
                            options);

  const size_t total = world.corpus.tweets.size();
  const size_t report_every = total / 8;
  size_t mentions = 0, correct = 0;
  size_t window_mentions = 0, window_correct = 0;
  WallTimer timer;

  std::printf("\nstreaming %zu tweets in timestamp order...\n", total);
  std::printf("%-12s %14s %16s\n", "progress", "window acc", "cumulative acc");
  for (size_t i = 0; i < total; ++i) {
    const auto& lt = world.corpus.tweets[i];
    for (const auto& label : lt.mentions) {
      auto result =
          linker.LinkMention(label.surface, lt.tweet.user, lt.tweet.time);
      ++mentions;
      ++window_mentions;
      if (result.best() == label.truth) {
        ++correct;
        ++window_correct;
      }
      // The author confirms the true entity (interactive feedback of
      // Sec. 3.2.2); the knowledgebase learns online.
      linker.ConfirmLink(label.truth, lt.tweet);
    }
    if ((i + 1) % report_every == 0) {
      std::printf("%5zu%%       %14.4f %16.4f\n", (i + 1) * 100 / total,
                  static_cast<double>(window_correct) / window_mentions,
                  static_cast<double>(correct) / mentions);
      window_mentions = window_correct = 0;
    }
  }
  double elapsed = timer.ElapsedSeconds();
  std::printf(
      "\nprocessed %zu mentions in %.1fs -> %.0f tweets/s (%s per "
      "mention)\n",
      mentions, elapsed, total / elapsed,
      HumanNanos(elapsed * 1e9 / mentions).c_str());
  std::printf(
      "Accuracy warms up as the stream complements the knowledgebase — "
      "the cold-start behaviour discussed in Appendix D.\n");
  return 0;
}

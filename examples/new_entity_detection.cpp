// New-entity / new-meaning handling (Appendix D): with the beta + gamma
// score threshold enabled, a mention whose author shows no interest in
// any existing meaning is *not* force-linked; instead it is flagged as a
// probable new entity, the user is (conceptually) asked to define it, and
// the knowledgebase warms up through confirmed links.
//
// Build & run:   ./examples/new_entity_detection

#include <cstdio>

#include "core/entity_linker.h"
#include "eval/harness.h"
#include "graph/graph_builder.h"
#include "reach/naive_reachability.h"

int main() {
  using namespace mel;
  std::printf("Generating the synthetic microblog world...\n");
  eval::HarnessOptions hopts;
  hopts.scale = 0.5;
  eval::Harness harness(hopts);

  // A brand-new user with no followees: the linker can learn nothing
  // about her interests from the social graph.
  graph::GraphBuilder builder(harness.world().social.graph.num_nodes() + 1);
  auto isolated_graph = std::move(builder).Build();
  reach::NaiveReachability isolated_reach(&isolated_graph, 5);
  kb::UserId newcomer = isolated_graph.num_nodes() - 1;

  core::LinkerOptions options = harness.DefaultLinkerOptions();
  options.reject_below_interest_threshold = true;
  core::EntityLinker linker(&harness.kb(), &harness.ckb(), &isolated_reach,
                            &harness.network(), options);

  const auto& surface = harness.world().kb_world.ambiguous_surfaces[3];
  const kb::Timestamp quiet = 400 * kb::kSecondsPerDay;  // after all bursts

  std::printf("\nnewcomer posts: \"... %s ...\" (no social signal, no "
              "burst)\n", surface.c_str());
  auto result = linker.LinkMention(surface, newcomer, quiet);
  if (!result.linked() && result.probable_new_entity) {
    std::printf(
        "-> every existing meaning scored <= beta + gamma = %.2f: flagged "
        "as a PROBABLE NEW ENTITY.\n",
        options.beta + options.gamma);
    std::printf("-> the system would now ask the author to define the new "
                "meaning interactively (Appendix D).\n");
  } else {
    std::printf("-> unexpectedly linked to %s\n",
                harness.kb().entity(result.best()).name.c_str());
  }

  // Warm-up: once the author confirms a few links, the same mention
  // resolves (popularity now carries her confirmed history).
  std::printf("\nthe author confirms 30 tweets about candidate #0; the "
              "system warms up...\n");
  auto cands = harness.kb().Candidates(surface);
  core::LinkerOptions warm = options;
  warm.alpha = 0;  // rely on the learned popularity/recency only
  warm.beta = 0.5;
  warm.gamma = 0.5;
  warm.reject_below_interest_threshold = false;
  core::EntityLinker warm_linker(&harness.kb(), &harness.ckb(),
                                 &isolated_reach, &harness.network(), warm);
  for (int i = 0; i < 30; ++i) {
    kb::Tweet t;
    t.id = 2000000 + i;
    t.user = newcomer;
    t.time = quiet + i * 60;
    warm_linker.ConfirmLink(cands[0].entity, t);
  }
  auto after = warm_linker.LinkMention(surface, newcomer, quiet + 3600);
  std::printf("-> now links to: %s\n",
              after.linked()
                  ? harness.kb().entity(after.best()).name.c_str()
                  : "(still nothing)");
  return 0;
}

#include "text/tokenizer.h"

#include <cctype>

namespace mel::text {

namespace {

bool IsWordChar(unsigned char c) { return std::isalnum(c) != 0; }

}  // namespace

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (!IsWordChar(c)) {
      ++i;
      continue;
    }
    size_t begin = i;
    std::string word;
    while (i < n) {
      unsigned char cur = static_cast<unsigned char>(text[i]);
      if (IsWordChar(cur)) {
        word.push_back(static_cast<char>(std::tolower(cur)));
        ++i;
      } else if (cur == '\'' && i + 1 < n &&
                 IsWordChar(static_cast<unsigned char>(text[i + 1]))) {
        // Keep intra-word apostrophes ("o'neal").
        word.push_back('\'');
        ++i;
      } else {
        break;
      }
    }
    tokens.push_back(Token{std::move(word), begin, i});
  }
  return tokens;
}

std::vector<std::string> TokenizeToStrings(std::string_view text) {
  std::vector<std::string> out;
  for (auto& t : Tokenize(text)) out.push_back(std::move(t.text));
  return out;
}

}  // namespace mel::text

#ifndef MEL_TEXT_EDIT_DISTANCE_H_
#define MEL_TEXT_EDIT_DISTANCE_H_

#include <cstdint>
#include <string_view>

namespace mel::text {

/// Levenshtein distance between a and b (insert/delete/substitute, unit
/// costs). O(|a|·|b|) time, O(min(|a|,|b|)) space.
uint32_t EditDistance(std::string_view a, std::string_view b);

/// Banded variant: returns the exact distance if it is <= max_distance,
/// otherwise any value > max_distance (early exit). Used by the fuzzy
/// candidate-generation path where only near matches matter.
uint32_t BoundedEditDistance(std::string_view a, std::string_view b,
                             uint32_t max_distance);

/// Normalized edit similarity in [0, 1]:
/// 1 - distance / max(|a|, |b|); 1.0 when both strings are empty.
double EditSimilarity(std::string_view a, std::string_view b);

}  // namespace mel::text

#endif  // MEL_TEXT_EDIT_DISTANCE_H_

#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace mel::text {

uint32_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter one
  const size_t m = b.size();
  std::vector<uint32_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    uint32_t diag = row[0];
    row[0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= m; ++j) {
      uint32_t next_diag = row[j];
      uint32_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = next_diag;
    }
  }
  return row[m];
}

uint32_t BoundedEditDistance(std::string_view a, std::string_view b,
                             uint32_t max_distance) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t n = a.size(), m = b.size();
  if (n - m > max_distance) return max_distance + 1;
  const uint32_t kBig = max_distance + 1;
  std::vector<uint32_t> row(m + 1, kBig);
  for (size_t j = 0; j <= std::min<size_t>(m, max_distance); ++j) {
    row[j] = static_cast<uint32_t>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    // Only cells with |i - j| <= max_distance can hold values within the
    // bound; restrict the scan to that band.
    size_t lo = i > max_distance ? i - max_distance : 0;
    size_t hi = std::min(m, i + max_distance);
    uint32_t diag = lo > 0 ? row[lo - 1] : static_cast<uint32_t>(i - 1);
    if (lo == 0) {
      diag = static_cast<uint32_t>(i - 1);
    }
    uint32_t row_min = kBig;
    uint32_t prev_left = (lo == 0) ? static_cast<uint32_t>(i) : kBig;
    if (lo == 0) {
      row[0] = std::min<uint32_t>(static_cast<uint32_t>(i), kBig);
      row_min = row[0];
    }
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      uint32_t next_diag = row[j];
      uint32_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      uint32_t del = next_diag == kBig ? kBig : next_diag + 1;
      uint32_t ins = prev_left == kBig ? kBig : prev_left + 1;
      uint32_t v = std::min({del, ins, sub});
      if (v > kBig) v = kBig;
      row[j] = v;
      prev_left = v;
      diag = next_diag;
      row_min = std::min(row_min, v);
    }
    // Cells just outside the band must not leak stale small values into the
    // next row's diagonal reads.
    if (hi < m) row[hi + 1] = kBig;
    if (row_min > max_distance) return kBig;
  }
  return row[m];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t longest = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace mel::text

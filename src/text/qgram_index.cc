#include "text/qgram_index.h"

#include <algorithm>
#include <memory>

#include "text/edit_distance.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/simd/simd.h"

namespace mel::text {

namespace {

struct FuzzyMetrics {
  metrics::Counter* lookups;
  metrics::Counter* probes;
  metrics::Counter* matches;
  metrics::Histogram* candidate_fanout;
};

const FuzzyMetrics& GetFuzzyMetrics() {
  static const FuzzyMetrics m = [] {
    auto& reg = metrics::Registry();
    FuzzyMetrics fm;
    fm.lookups = reg.GetCounter("text.fuzzy.lookups_total");
    fm.probes = reg.GetCounter("text.fuzzy.probes_total");
    fm.matches = reg.GetCounter("text.fuzzy.matches_total");
    fm.candidate_fanout = reg.GetHistogram("text.fuzzy.candidate_fanout");
    return fm;
  }();
  return m;
}

// Closed-form boundaries of part `i` when a string of the given length is
// split into `parts` near-equal segments, remainder spread over the first
// ones. Matches the cumulative layout used at index time; parts past the
// string's end come back with len == 0.
inline void SegmentBounds(uint32_t length, uint32_t parts, uint32_t i,
                          uint32_t* pos, uint32_t* len) {
  const uint32_t base = length / parts;
  const uint32_t extra = length % parts;
  *len = base + (i < extra ? 1 : 0);
  *pos = i * base + std::min(i, extra);
}

constexpr uint64_t kHashMask = (uint64_t{1} << 46) - 1;

// Per-query scratch, reused across lookups on the same thread so the hot
// path allocates nothing (mirrors graph::BfsScratch::ThreadLocal). The
// `seen` bitmap is always left all-zero on exit — Lookup clears exactly
// the entries it touched — so sharing one scratch across index instances
// is safe.
struct FuzzyLookupScratch {
  std::vector<uint32_t> candidates;
  std::vector<uint8_t> seen;

  static FuzzyLookupScratch& ThreadLocal(size_t num_entries) {
    thread_local std::unique_ptr<FuzzyLookupScratch> scratch;
    if (scratch == nullptr) scratch = std::make_unique<FuzzyLookupScratch>();
    if (scratch->seen.size() < num_entries) {
      scratch->seen.resize(num_entries, 0);
    }
    return *scratch;
  }
};

}  // namespace

SegmentFuzzyIndex::SegmentFuzzyIndex(uint32_t max_distance)
    : max_distance_(max_distance) {
  MEL_CHECK_MSG(max_distance < 64,
                "segment index must fit 6 bits of the packed key");
}

uint64_t SegmentFuzzyIndex::PackKey(uint32_t length, uint32_t seg_idx,
                                    std::string_view seg_text) {
  // FNV-1a over the segment text, high bits folded into the 46-bit field.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : seg_text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h = (h ^ (h >> 46)) & kHashMask;
  return (static_cast<uint64_t>(length) << 52) |
         (static_cast<uint64_t>(seg_idx) << 46) | h;
}

// Every probe below is the same vectorized slot scan: ProbeScanU64
// returns the first slot (linear-probe order, wrapping at the power-of-
// two capacity) whose key matches or is empty — Find treats "empty
// first" as a miss, Insert as the slot to claim. The load-factor cap
// keeps at least 30% of slots empty, so the scan always terminates.

const std::vector<uint32_t>* SegmentFuzzyIndex::Find(uint64_t key) const {
  if (slot_keys_.empty()) return nullptr;
  const size_t mask = slot_keys_.size() - 1;
  const size_t idx = util::simd::ProbeScanU64(
      slot_keys_.data(), mask, key, (key * 0x9E3779B97F4A7C15ull) & mask);
  return slot_keys_[idx] == key ? &slot_ids_[idx] : nullptr;
}

void SegmentFuzzyIndex::Grow() {
  const size_t new_cap = slot_keys_.empty() ? 1024 : slot_keys_.size() * 2;
  std::vector<uint64_t> old_keys;
  std::vector<std::vector<uint32_t>> old_ids;
  old_keys.swap(slot_keys_);
  old_ids.swap(slot_ids_);
  slot_keys_.assign(new_cap, 0);
  slot_ids_.assign(new_cap, {});
  const size_t mask = new_cap - 1;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    const uint64_t key = old_keys[i];
    if (key == 0) continue;
    // Keys are unique per table, so the scan stops at an empty slot.
    const size_t idx = util::simd::ProbeScanU64(
        slot_keys_.data(), mask, key, (key * 0x9E3779B97F4A7C15ull) & mask);
    slot_keys_[idx] = key;
    slot_ids_[idx] = std::move(old_ids[i]);
  }
}

void SegmentFuzzyIndex::Insert(uint64_t key, uint32_t id) {
  // Keep load factor under 0.7 so linear-probe chains stay short.
  if (slot_keys_.empty() || (table_used_ + 1) * 10 > slot_keys_.size() * 7) {
    Grow();
  }
  const size_t mask = slot_keys_.size() - 1;
  const size_t idx = util::simd::ProbeScanU64(
      slot_keys_.data(), mask, key, (key * 0x9E3779B97F4A7C15ull) & mask);
  if (slot_keys_[idx] == 0) {
    slot_keys_[idx] = key;
    ++table_used_;
  }
  slot_ids_[idx].push_back(id);
}

void SegmentFuzzyIndex::Add(std::string_view s, uint32_t payload) {
  MEL_CHECK_MSG(s.size() < 4096, "indexed strings must be short");
  if (s.empty()) {
    entries_.push_back(Entry{std::string(s), payload});
    return;
  }
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  entries_.push_back(Entry{std::string(s), payload});
  const uint32_t length = static_cast<uint32_t>(s.size());
  const uint32_t parts = max_distance_ + 1;
  for (uint32_t i = 0; i < parts; ++i) {
    uint32_t pos, len;
    SegmentBounds(length, parts, i, &pos, &len);
    // Strings shorter than `parts` leave trailing segments empty. They are
    // indexed anyway: an empty segment is trivially preserved by any edit
    // script, so it is the pigeonhole witness for short entries whose only
    // non-empty segments were all touched by edits.
    Insert(PackKey(length, i, s.substr(pos, len)), id);
  }
}

std::vector<uint32_t> SegmentFuzzyIndex::Lookup(
    std::string_view query, uint32_t max_threshold) const {
  MEL_CHECK(max_threshold <= max_distance_);
  const FuzzyMetrics& fm = GetFuzzyMetrics();
  fm.lookups->Increment();

  FuzzyLookupScratch& scratch = FuzzyLookupScratch::ThreadLocal(
      entries_.size());
  const uint32_t qlen = static_cast<uint32_t>(query.size());
  const uint32_t lo_len = qlen > max_threshold ? qlen - max_threshold : 0;
  const uint32_t hi_len = qlen + max_threshold;
  const uint32_t parts = max_distance_ + 1;
  uint64_t probe_count = 0;
  for (uint32_t length = std::max(1u, lo_len); length <= hi_len; ++length) {
    for (uint32_t i = 0; i < parts; ++i) {
      uint32_t pos, len;
      SegmentBounds(length, parts, i, &pos, &len);
      if (len == 0) {
        // Empty segment of a short entry: content-independent, one probe.
        ++probe_count;
        if (const std::vector<uint32_t>* ids =
                Find(PackKey(length, i, std::string_view()))) {
          for (uint32_t id : *ids) {
            if (scratch.seen[id]) continue;
            scratch.seen[id] = 1;
            scratch.candidates.push_back(id);
          }
        }
        continue;
      }
      if (qlen < len) continue;
      // A matching segment can only shift by +- max_threshold in the query.
      const uint32_t q_lo = pos > max_threshold ? pos - max_threshold : 0;
      const uint32_t q_hi =
          std::min<uint32_t>(pos + max_threshold, qlen - len);
      for (uint32_t qpos = q_lo; qpos <= q_hi; ++qpos) {
        ++probe_count;
        const std::vector<uint32_t>* ids =
            Find(PackKey(length, i, query.substr(qpos, len)));
        if (ids == nullptr) continue;
        for (uint32_t id : *ids) {
          if (scratch.seen[id]) continue;
          scratch.seen[id] = 1;
          scratch.candidates.push_back(id);
        }
      }
    }
  }
  fm.probes->Increment(probe_count);
  // Fan-out = distinct strings surviving the pigeonhole filter, i.e. how
  // many banded edit-distance verifications this lookup pays for.
  if (metrics::Enabled()) {
    fm.candidate_fanout->Record(scratch.candidates.size());
  }

  std::vector<uint32_t> payloads;
  for (uint32_t id : scratch.candidates) {
    scratch.seen[id] = 0;  // restore the all-zero invariant as we go
    const Entry& e = entries_[id];
    if (BoundedEditDistance(query, e.str, max_threshold) <= max_threshold) {
      payloads.push_back(e.payload);
    }
  }
  scratch.candidates.clear();
  std::sort(payloads.begin(), payloads.end());
  payloads.erase(std::unique(payloads.begin(), payloads.end()),
                 payloads.end());
  fm.matches->Increment(payloads.size());
  return payloads;
}

uint64_t SegmentFuzzyIndex::MemoryUsageBytes() const {
  uint64_t total = 0;
  for (const auto& e : entries_) total += sizeof(Entry) + e.str.capacity();
  total += slot_keys_.capacity() * sizeof(uint64_t);
  total += slot_ids_.capacity() * sizeof(std::vector<uint32_t>);
  for (const auto& ids : slot_ids_) {
    total += ids.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace mel::text

#include "text/qgram_index.h"

#include <algorithm>

#include "text/edit_distance.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace mel::text {

namespace {

struct FuzzyMetrics {
  metrics::Counter* lookups;
  metrics::Counter* matches;
  metrics::Histogram* candidate_fanout;
};

const FuzzyMetrics& GetFuzzyMetrics() {
  static const FuzzyMetrics m = [] {
    auto& reg = metrics::Registry();
    FuzzyMetrics fm;
    fm.lookups = reg.GetCounter("text.fuzzy.lookups_total");
    fm.matches = reg.GetCounter("text.fuzzy.matches_total");
    fm.candidate_fanout = reg.GetHistogram("text.fuzzy.candidate_fanout");
    return fm;
  }();
  return m;
}

}  // namespace

SegmentFuzzyIndex::SegmentFuzzyIndex(uint32_t max_distance)
    : max_distance_(max_distance) {}

std::vector<std::pair<uint32_t, uint32_t>> SegmentFuzzyIndex::Segments(
    uint32_t length) const {
  const uint32_t parts = max_distance_ + 1;
  std::vector<std::pair<uint32_t, uint32_t>> segs;
  if (length == 0) return segs;
  uint32_t base = length / parts;
  uint32_t extra = length % parts;
  uint32_t pos = 0;
  for (uint32_t i = 0; i < parts && pos < length; ++i) {
    uint32_t len = base + (i < extra ? 1 : 0);
    if (len == 0) continue;
    segs.emplace_back(pos, len);
    pos += len;
  }
  return segs;
}

std::string SegmentFuzzyIndex::MakeKey(uint32_t length, uint32_t seg_idx,
                                       std::string_view seg_text) {
  std::string key;
  key.reserve(seg_text.size() + 8);
  key.push_back(static_cast<char>('0' + (length % 64)));
  key.push_back(static_cast<char>('0' + (length / 64)));
  key.push_back(static_cast<char>('0' + seg_idx));
  key.push_back('|');
  key.append(seg_text);
  return key;
}

void SegmentFuzzyIndex::Add(std::string_view s, uint32_t payload) {
  MEL_CHECK_MSG(s.size() < 4096, "indexed strings must be short");
  uint32_t id = static_cast<uint32_t>(entries_.size());
  entries_.push_back(Entry{std::string(s), payload});
  auto segs = Segments(static_cast<uint32_t>(s.size()));
  for (uint32_t i = 0; i < segs.size(); ++i) {
    auto [pos, len] = segs[i];
    seg_to_entries_[MakeKey(static_cast<uint32_t>(s.size()), i,
                            s.substr(pos, len))]
        .push_back(id);
  }
}

std::vector<uint32_t> SegmentFuzzyIndex::Lookup(
    std::string_view query, uint32_t max_threshold) const {
  MEL_CHECK(max_threshold <= max_distance_);
  std::vector<uint32_t> candidate_entries;
  const uint32_t qlen = static_cast<uint32_t>(query.size());
  const uint32_t lo_len = qlen > max_threshold ? qlen - max_threshold : 0;
  const uint32_t hi_len = qlen + max_threshold;
  for (uint32_t length = std::max(1u, lo_len); length <= hi_len; ++length) {
    auto segs = Segments(length);
    for (uint32_t i = 0; i < segs.size(); ++i) {
      auto [pos, len] = segs[i];
      // A matching segment can only shift by +- max_threshold in the query.
      uint32_t q_lo = pos > max_threshold ? pos - max_threshold : 0;
      uint32_t q_hi = std::min<uint32_t>(
          pos + max_threshold, qlen >= len ? qlen - len : 0);
      if (qlen < len) continue;
      for (uint32_t qpos = q_lo; qpos <= q_hi; ++qpos) {
        auto it = seg_to_entries_.find(
            MakeKey(length, i, query.substr(qpos, len)));
        if (it == seg_to_entries_.end()) continue;
        candidate_entries.insert(candidate_entries.end(), it->second.begin(),
                                 it->second.end());
      }
    }
  }
  std::sort(candidate_entries.begin(), candidate_entries.end());
  candidate_entries.erase(
      std::unique(candidate_entries.begin(), candidate_entries.end()),
      candidate_entries.end());
  const FuzzyMetrics& fm = GetFuzzyMetrics();
  fm.lookups->Increment();
  // Fan-out = distinct strings surviving the pigeonhole filter, i.e. how
  // many banded edit-distance verifications this lookup pays for.
  if (metrics::Enabled()) {
    fm.candidate_fanout->Record(candidate_entries.size());
  }

  std::vector<uint32_t> payloads;
  for (uint32_t id : candidate_entries) {
    const Entry& e = entries_[id];
    if (BoundedEditDistance(query, e.str, max_threshold) <= max_threshold) {
      payloads.push_back(e.payload);
    }
  }
  std::sort(payloads.begin(), payloads.end());
  payloads.erase(std::unique(payloads.begin(), payloads.end()),
                 payloads.end());
  fm.matches->Increment(payloads.size());
  return payloads;
}

uint64_t SegmentFuzzyIndex::MemoryUsageBytes() const {
  uint64_t total = 0;
  for (const auto& e : entries_) total += sizeof(Entry) + e.str.capacity();
  for (const auto& [key, vec] : seg_to_entries_) {
    total += key.capacity() + vec.capacity() * sizeof(uint32_t) + 48;
  }
  return total;
}

}  // namespace mel::text

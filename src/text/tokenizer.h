#ifndef MEL_TEXT_TOKENIZER_H_
#define MEL_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace mel::text {

/// \brief A token with its byte span in the original text.
struct Token {
  std::string text;     // lowercased token
  size_t begin = 0;     // byte offset of first character
  size_t end = 0;       // byte offset one past the last character
};

/// \brief Splits microblog text into lowercase word tokens.
///
/// Tweets are informal: the tokenizer keeps alphanumeric runs (plus
/// apostrophes inside words, so "o'neal" stays one token), drops
/// punctuation, and lowercases everything. '@' and '#' prefixes are
/// stripped but the following word is kept, matching how knowledge-based
/// NER treats @usernames and #hashtags as potential mentions.
std::vector<Token> Tokenize(std::string_view text);

/// Convenience: token strings only.
std::vector<std::string> TokenizeToStrings(std::string_view text);

}  // namespace mel::text

#endif  // MEL_TEXT_TOKENIZER_H_

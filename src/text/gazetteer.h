#ifndef MEL_TEXT_GAZETTEER_H_
#define MEL_TEXT_GAZETTEER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/tokenizer.h"

namespace mel::text {

/// \brief A mention detected in a piece of text.
struct DetectedMention {
  std::string surface;      // normalized (lowercase, space-joined) form
  uint32_t surface_id = 0;  // payload registered with AddSurfaceForm
  size_t token_begin = 0;   // index of first token
  size_t token_end = 0;     // one past last token
};

/// \brief Knowledge-based named-entity recognizer (Longest-Cover).
///
/// Implements the unsupervised, dictionary-driven NER the paper adopts as
/// its pre-step (Appendix A): scan the text left to right and greedily take
/// the longest token sequence that matches a knowledgebase surface form.
/// Matched spans do not overlap.
class Gazetteer {
 public:
  Gazetteer() = default;

  /// Registers a surface form (any capitalization; it is normalized).
  /// Multi-word forms match as contiguous token sequences.
  void AddSurfaceForm(std::string_view surface, uint32_t surface_id);

  /// Longest-cover scan over the text.
  std::vector<DetectedMention> Detect(std::string_view text) const;

  /// Longest-cover scan over pre-tokenized text.
  std::vector<DetectedMention> DetectTokens(
      const std::vector<Token>& tokens) const;

  size_t num_surface_forms() const { return forms_.size(); }

 private:
  static std::string JoinTokens(const std::vector<Token>& tokens,
                                size_t begin, size_t end);

  std::unordered_map<std::string, uint32_t> forms_;
  // All proper prefixes (in tokens) of registered forms; lets the scanner
  // stop extending a span as soon as no longer form can match.
  std::unordered_set<std::string> prefixes_;
  size_t max_tokens_ = 0;
};

}  // namespace mel::text

#endif  // MEL_TEXT_GAZETTEER_H_

#include "text/gazetteer.h"

#include <algorithm>

namespace mel::text {

namespace {

std::string NormalizeForm(std::string_view surface) {
  auto tokens = Tokenize(surface);
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += tokens[i].text;
  }
  return out;
}

}  // namespace

void Gazetteer::AddSurfaceForm(std::string_view surface,
                               uint32_t surface_id) {
  std::string norm = NormalizeForm(surface);
  if (norm.empty()) return;
  size_t num_tokens =
      1 + static_cast<size_t>(std::count(norm.begin(), norm.end(), ' '));
  max_tokens_ = std::max(max_tokens_, num_tokens);
  forms_[norm] = surface_id;
  // Register every token-prefix so the scanner can prune extensions.
  size_t pos = 0;
  while ((pos = norm.find(' ', pos)) != std::string::npos) {
    prefixes_.insert(norm.substr(0, pos));
    ++pos;
  }
}

std::string Gazetteer::JoinTokens(const std::vector<Token>& tokens,
                                  size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) out.push_back(' ');
    out += tokens[i].text;
  }
  return out;
}

std::vector<DetectedMention> Gazetteer::Detect(std::string_view text) const {
  return DetectTokens(Tokenize(text));
}

std::vector<DetectedMention> Gazetteer::DetectTokens(
    const std::vector<Token>& tokens) const {
  std::vector<DetectedMention> mentions;
  size_t i = 0;
  while (i < tokens.size()) {
    // Extend the candidate span as long as it is still a prefix of some
    // registered form; remember the longest exact match seen.
    size_t best_end = 0;
    uint32_t best_id = 0;
    std::string span;
    size_t j = i;
    while (j < tokens.size() && (j - i) < max_tokens_) {
      if (j > i) span.push_back(' ');
      span += tokens[j].text;
      ++j;
      auto it = forms_.find(span);
      if (it != forms_.end()) {
        best_end = j;
        best_id = it->second;
      }
      if (!prefixes_.contains(span)) break;
    }
    if (best_end > 0) {
      DetectedMention m;
      m.surface = JoinTokens(tokens, i, best_end);
      m.surface_id = best_id;
      m.token_begin = i;
      m.token_end = best_end;
      mentions.push_back(std::move(m));
      i = best_end;  // longest-cover: matched spans do not overlap
    } else {
      ++i;
    }
  }
  return mentions;
}

}  // namespace mel::text

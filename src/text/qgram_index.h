#ifndef MEL_TEXT_QGRAM_INDEX_H_
#define MEL_TEXT_QGRAM_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mel::text {

/// \brief Segment-based fuzzy string index (pigeonhole filtering).
///
/// Implements the "segment-based index ... fuzzy matching based on edit
/// distance similarity" the paper adopts for candidate generation from
/// misspelled mentions (Sec. 3.2.2, following Li et al., ICDE 2014).
///
/// Each indexed string of length L is split into (max_distance + 1)
/// near-equal segments. If ed(query, s) <= max_distance then, by the
/// pigeonhole principle, at least one segment of s occurs verbatim in the
/// query at a position shifted by at most max_distance. Lookup probes the
/// few admissible (length, segment, substring) keys and verifies survivors
/// with a banded edit-distance computation.
class SegmentFuzzyIndex {
 public:
  /// \param max_distance maximum edit distance served by Lookup.
  explicit SegmentFuzzyIndex(uint32_t max_distance);

  /// Adds a string with a caller-chosen payload id. Strings may repeat.
  void Add(std::string_view s, uint32_t payload);

  /// Returns payloads of all indexed strings within edit distance
  /// max_threshold of the query, where max_threshold <= max_distance
  /// given at construction. Results are deduplicated.
  std::vector<uint32_t> Lookup(std::string_view query,
                               uint32_t max_threshold) const;

  size_t num_entries() const { return entries_.size(); }

  /// Approximate heap footprint in bytes.
  uint64_t MemoryUsageBytes() const;

 private:
  struct Entry {
    std::string str;
    uint32_t payload;
  };

  // Deterministic segment boundaries for a string of the given length:
  // (max_distance_ + 1) segments, remainder spread over the first ones.
  std::vector<std::pair<uint32_t, uint32_t>> Segments(uint32_t length) const;

  static std::string MakeKey(uint32_t length, uint32_t seg_idx,
                             std::string_view seg_text);

  uint32_t max_distance_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::vector<uint32_t>> seg_to_entries_;
};

}  // namespace mel::text

#endif  // MEL_TEXT_QGRAM_INDEX_H_

#ifndef MEL_TEXT_QGRAM_INDEX_H_
#define MEL_TEXT_QGRAM_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mel::text {

/// \brief Segment-based fuzzy string index (pigeonhole filtering).
///
/// Implements the "segment-based index ... fuzzy matching based on edit
/// distance similarity" the paper adopts for candidate generation from
/// misspelled mentions (Sec. 3.2.2, following Li et al., ICDE 2014).
///
/// Each indexed string of length L is split into (max_distance + 1)
/// near-equal segments. If ed(query, s) <= max_distance then, by the
/// pigeonhole principle, at least one segment of s occurs verbatim in the
/// query at a position shifted by at most max_distance. Lookup probes the
/// few admissible (length, segment, substring) keys and verifies survivors
/// with a banded edit-distance computation.
///
/// Probes are allocation-free: a (length, segment) probe is a packed
/// 64-bit key — [length:12][seg_idx:6][seg-hash:46] — into an
/// open-addressed table, and per-query working state (candidate list,
/// dedup bitmap) lives in thread-local scratch. Hash collisions merely
/// admit extra candidates; every survivor is verified against the stored
/// string, so results are exact. Lookup is safe from any number of
/// threads concurrently; Add must not race with Lookup.
class SegmentFuzzyIndex {
 public:
  /// \param max_distance maximum edit distance served by Lookup
  ///        (must be < 64 so a segment index fits the packed key).
  explicit SegmentFuzzyIndex(uint32_t max_distance);

  /// Adds a string with a caller-chosen payload id. Strings may repeat.
  void Add(std::string_view s, uint32_t payload);

  /// Returns payloads of all indexed strings within edit distance
  /// max_threshold of the query, where max_threshold <= max_distance
  /// given at construction. Results are deduplicated.
  std::vector<uint32_t> Lookup(std::string_view query,
                               uint32_t max_threshold) const;

  size_t num_entries() const { return entries_.size(); }

  /// Approximate heap footprint in bytes.
  uint64_t MemoryUsageBytes() const;

  /// The packed probe key — [length:12][seg_idx:6][FNV-1a fold:46] — for a
  /// segment of a string of the given total length. Exposed so regression
  /// tests can construct deliberate hash collisions and assert that the
  /// index still verifies every candidate by true edit distance.
  static uint64_t PackedProbeKey(uint32_t length, uint32_t seg_idx,
                                 std::string_view seg_text) {
    return PackKey(length, seg_idx, seg_text);
  }

 private:
  struct Entry {
    std::string str;
    uint32_t payload;
  };

  static uint64_t PackKey(uint32_t length, uint32_t seg_idx,
                          std::string_view seg_text);

  const std::vector<uint32_t>* Find(uint64_t key) const;
  void Insert(uint64_t key, uint32_t id);
  void Grow();

  uint32_t max_distance_;
  std::vector<Entry> entries_;
  // Open-addressed segment table in structure-of-arrays layout: the
  // packed keys live in their own flat array so the probe loop scans
  // them with the vectorized ProbeScanU64 kernel (several slots per
  // compare) instead of striding over interleaved key+vector buckets.
  // slot_ids_[i] holds the postings of slot_keys_[i]; key == 0 marks an
  // empty slot (valid packed keys always carry length >= 1 in the high
  // bits, so 0 never collides with real data).
  std::vector<uint64_t> slot_keys_;
  std::vector<std::vector<uint32_t>> slot_ids_;
  size_t table_used_ = 0;
};

}  // namespace mel::text

#endif  // MEL_TEXT_QGRAM_INDEX_H_

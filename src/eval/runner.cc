#include "eval/runner.h"

#include <cstdio>
#include <unordered_map>

#include "util/metrics.h"
#include "util/timer.h"

namespace mel::eval {

void ComplementWithCollective(const gen::World& world,
                              const gen::DatasetSplit& split,
                              const baseline::CollectiveLinker& linker,
                              kb::ComplementedKnowledgebase* ckb) {
  for (uint32_t user : split.users) {
    const auto& indices = world.corpus.tweets_by_user[user];
    std::vector<kb::Tweet> tweets;
    tweets.reserve(indices.size());
    for (uint32_t ti : indices) {
      tweets.push_back(world.corpus.tweets[ti].tweet);
    }
    auto results = linker.LinkUserTweets(tweets);
    for (size_t i = 0; i < results.size(); ++i) {
      for (const auto& mention : results[i].mentions) {
        if (!mention.linked()) continue;
        ckb->AddLink(mention.best(),
                     kb::Posting{tweets[i].id, tweets[i].user,
                                 tweets[i].time});
      }
    }
  }
}

std::vector<kb::EntityId> AlignPredictions(
    const core::TweetLinkResult& prediction,
    const std::vector<gen::LabeledMention>& labels) {
  std::vector<kb::EntityId> aligned(labels.size(), kb::kInvalidEntity);
  std::vector<bool> consumed(prediction.mentions.size(), false);
  for (size_t li = 0; li < labels.size(); ++li) {
    for (size_t pi = 0; pi < prediction.mentions.size(); ++pi) {
      if (consumed[pi]) continue;
      if (prediction.mentions[pi].surface == labels[li].surface) {
        consumed[pi] = true;
        aligned[li] = prediction.mentions[pi].best();
        break;
      }
    }
  }
  return aligned;
}

EvalRun EvaluateOurs(const core::EntityLinker& linker,
                     const gen::World& world,
                     const gen::DatasetSplit& split) {
  // Per-tweet latency of the evaluated pipeline; the per-stage breakdown
  // inside each LinkMention lands in the linker.* metrics.
  static metrics::Histogram* tweet_ns =
      metrics::Registry().GetHistogram("eval.ours.tweet_ns");
  static metrics::Counter* mentions_evaluated =
      metrics::Registry().GetCounter("eval.ours.mentions_total");
  EvalRun run;
  WallTimer timer;
  for (uint32_t ti : split.tweet_indices) {
    const gen::LabeledTweet& lt = world.corpus.tweets[ti];
    if (lt.mentions.empty()) continue;
    ++run.num_tweets;
    metrics::ScopedStageTimer tweet_timer(tweet_ns);
    for (const auto& label : lt.mentions) {
      auto result =
          linker.LinkMention(label.surface, lt.tweet.user, lt.tweet.time);
      run.outcomes.push_back(
          MentionOutcome{ti, label.truth, result.best()});
      mentions_evaluated->Increment();
    }
  }
  run.total_nanos = static_cast<double>(timer.ElapsedNanos());
  return run;
}

EvalRun EvaluateOnTheFly(const baseline::OnTheFlyLinker& linker,
                         const gen::World& world,
                         const gen::DatasetSplit& split) {
  EvalRun run;
  WallTimer timer;
  for (uint32_t ti : split.tweet_indices) {
    const gen::LabeledTweet& lt = world.corpus.tweets[ti];
    if (lt.mentions.empty()) continue;
    ++run.num_tweets;
    auto prediction = linker.LinkTweet(lt.tweet);
    auto aligned = AlignPredictions(prediction, lt.mentions);
    for (size_t i = 0; i < lt.mentions.size(); ++i) {
      run.outcomes.push_back(
          MentionOutcome{ti, lt.mentions[i].truth, aligned[i]});
    }
  }
  run.total_nanos = static_cast<double>(timer.ElapsedNanos());
  return run;
}

EvalRun EvaluateCollective(const baseline::CollectiveLinker& linker,
                           const gen::World& world,
                           const gen::DatasetSplit& split) {
  EvalRun run;
  WallTimer timer;
  for (uint32_t user : split.users) {
    // Batch exactly the split's tweets of this user.
    std::vector<uint32_t> indices;
    for (uint32_t ti : split.tweet_indices) {
      if (world.corpus.tweets[ti].tweet.user == user) indices.push_back(ti);
    }
    if (indices.empty()) continue;
    std::vector<kb::Tweet> tweets;
    tweets.reserve(indices.size());
    for (uint32_t ti : indices) {
      tweets.push_back(world.corpus.tweets[ti].tweet);
    }
    auto results = linker.LinkUserTweets(tweets);
    for (size_t i = 0; i < indices.size(); ++i) {
      const gen::LabeledTweet& lt = world.corpus.tweets[indices[i]];
      if (lt.mentions.empty()) continue;
      ++run.num_tweets;
      auto aligned = AlignPredictions(results[i], lt.mentions);
      for (size_t mi = 0; mi < lt.mentions.size(); ++mi) {
        run.outcomes.push_back(MentionOutcome{indices[i],
                                              lt.mentions[mi].truth,
                                              aligned[mi]});
      }
    }
  }
  run.total_nanos = static_cast<double>(timer.ElapsedNanos());
  return run;
}

bool ExportMetricsJson(const std::string& path) {
  Status status = metrics::WriteJsonFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics export to %s failed: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace mel::eval

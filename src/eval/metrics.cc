#include "eval/metrics.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/logging.h"
#include "util/random.h"

namespace mel::eval {

std::string Accuracy::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "mention=%.4f (%u/%u) tweet=%.4f (%u/%u)",
                MentionAccuracy(), correct_mentions, mentions,
                TweetAccuracy(), correct_tweets, tweets);
  return buf;
}

Accuracy Summarize(const std::vector<MentionOutcome>& outcomes) {
  Accuracy acc;
  std::unordered_map<uint32_t, bool> tweet_all_correct;
  for (const MentionOutcome& o : outcomes) {
    ++acc.mentions;
    bool ok = o.correct();
    if (ok) ++acc.correct_mentions;
    auto [it, inserted] = tweet_all_correct.try_emplace(o.tweet_index, ok);
    if (!inserted) it->second = it->second && ok;
  }
  acc.tweets = static_cast<uint32_t>(tweet_all_correct.size());
  for (const auto& [tweet, all_ok] : tweet_all_correct) {
    if (all_ok) ++acc.correct_tweets;
  }
  return acc;
}

namespace {

BootstrapInterval Percentiles(std::vector<double>* samples,
                              double confidence) {
  std::sort(samples->begin(), samples->end());
  BootstrapInterval interval;
  double total = 0;
  for (double s : *samples) total += s;
  interval.mean = total / samples->size();
  double tail = (1.0 - confidence) / 2;
  size_t lo_idx = static_cast<size_t>(tail * (samples->size() - 1));
  size_t hi_idx =
      static_cast<size_t>((1.0 - tail) * (samples->size() - 1));
  interval.lo = (*samples)[lo_idx];
  interval.hi = (*samples)[hi_idx];
  return interval;
}

}  // namespace

BootstrapInterval BootstrapMentionAccuracy(
    const std::vector<MentionOutcome>& outcomes, uint32_t resamples,
    double confidence, uint64_t seed) {
  MEL_CHECK(!outcomes.empty() && resamples > 0);
  Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(resamples);
  for (uint32_t r = 0; r < resamples; ++r) {
    uint32_t correct = 0;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[rng.Uniform(outcomes.size())].correct()) ++correct;
    }
    samples.push_back(static_cast<double>(correct) / outcomes.size());
  }
  return Percentiles(&samples, confidence);
}

BootstrapInterval BootstrapAccuracyDifference(
    const std::vector<MentionOutcome>& a,
    const std::vector<MentionOutcome>& b, uint32_t resamples,
    double confidence, uint64_t seed) {
  MEL_CHECK(!a.empty() && !b.empty() && resamples > 0);
  Rng rng(seed);
  const bool paired = a.size() == b.size();
  std::vector<double> samples;
  samples.reserve(resamples);
  for (uint32_t r = 0; r < resamples; ++r) {
    double diff = 0;
    if (paired) {
      int32_t delta = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        size_t pick = rng.Uniform(a.size());
        delta += static_cast<int32_t>(a[pick].correct()) -
                 static_cast<int32_t>(b[pick].correct());
      }
      diff = static_cast<double>(delta) / a.size();
    } else {
      uint32_t ca = 0, cb = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[rng.Uniform(a.size())].correct()) ++ca;
      }
      for (size_t i = 0; i < b.size(); ++i) {
        if (b[rng.Uniform(b.size())].correct()) ++cb;
      }
      diff = static_cast<double>(ca) / a.size() -
             static_cast<double>(cb) / b.size();
    }
    samples.push_back(diff);
  }
  return Percentiles(&samples, confidence);
}

}  // namespace mel::eval

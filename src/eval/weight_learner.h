#ifndef MEL_EVAL_WEIGHT_LEARNER_H_
#define MEL_EVAL_WEIGHT_LEARNER_H_

#include "core/entity_linker.h"
#include "eval/harness.h"
#include "gen/workload.h"

namespace mel::eval {

/// \brief Weights learned from labeled data plus their validation score.
struct LearnedWeights {
  double alpha = 0;
  double beta = 0;
  double gamma = 0;
  double validation_accuracy = 0;
};

/// \brief Learns the Eq.-1 feature weights from labeled mentions — the
/// alternative to manual tuning the paper mentions in Sec. 3.2.2 and
/// Appendix C.2.
///
/// Two-stage simplex search: a coarse grid over
/// {(a, b, g) : a + b + g = 1, a, b, g in step * Z}, followed by a local
/// refinement around the winner at a third of the step. Accuracy is
/// measured by mention accuracy on the validation split.
///
/// \param harness the wired experiment world (supplies linkers)
/// \param validation labeled mentions to optimize on (must be disjoint
///        from the final test split for an honest comparison)
/// \param step coarse grid resolution in (0, 1); 0.1 is plenty
LearnedWeights LearnWeights(Harness* harness,
                            const gen::DatasetSplit& validation,
                            double step);

}  // namespace mel::eval

#endif  // MEL_EVAL_WEIGHT_LEARNER_H_

#include "eval/harness.h"

#include <cmath>

#include "baseline/collective_linker.h"

namespace mel::eval {

gen::WorldOptions StandardWorldOptions(double scale, uint64_t seed) {
  gen::WorldOptions options;
  options.kb.num_entities = static_cast<uint32_t>(500 * scale);
  options.kb.num_topics =
      std::max<uint32_t>(5, static_cast<uint32_t>(15 * std::sqrt(scale)));
  options.kb.num_ambiguous_surfaces = static_cast<uint32_t>(150 * scale);
  options.kb.seed = seed * 3 + 1;
  options.social.num_users = static_cast<uint32_t>(800 * scale);
  options.social.seed = seed * 3 + 2;
  options.tweets.num_tweets = static_cast<uint32_t>(9000 * scale);
  options.tweets.seed = seed * 3 + 3;
  return options;
}

Harness::Harness(const HarnessOptions& options) : options_(options) {
  gen::WorldOptions wopts =
      StandardWorldOptions(options.scale, options.seed);
  wopts.tweets.extra_mention_prob = options.extra_mention_prob;
  world_ = gen::GenerateWorld(wopts);
  wlm_ = std::make_unique<kb::WlmRelatedness>(&world_.kb());

  active_ = gen::FilterActiveUsers(world_.corpus,
                                   options.complement_min_tweets);
  test_ = gen::SampleInactiveUsers(world_.corpus, options.test_max_tweets,
                                   options.test_max_users,
                                   options.seed * 7 + 5);

  ckb_ = std::make_unique<kb::ComplementedKnowledgebase>(&world_.kb());
  switch (options.complementation) {
    case HarnessOptions::Complementation::kSimulatedLinker:
      gen::ComplementWithSimulatedLinker(world_, active_, options.base_noise,
                                         options.max_noise,
                                         options.seed * 7 + 6, ckb_.get());
      break;
    case HarnessOptions::Complementation::kOracle:
      gen::ComplementWithOracle(world_, active_, 0.0, options.seed * 7 + 6,
                                ckb_.get());
      break;
    case HarnessOptions::Complementation::kCollective: {
      baseline::CollectiveLinker collective(&world_.kb(), wlm_.get(),
                                            baseline::CollectiveOptions{});
      ComplementWithCollective(world_, active_, collective, ckb_.get());
      break;
    }
  }

  reach_ = std::make_unique<reach::TwoHopIndex>(
      reach::TwoHopIndex::Build(&world_.social.graph, options.max_hops));
  network_ = std::make_unique<recency::PropagationNetwork>(
      recency::PropagationNetwork::Build(world_.kb(), options.theta2));
}

core::LinkerOptions Harness::DefaultLinkerOptions() const {
  core::LinkerOptions options;
  options.theta1 = 10;
  return options;
}

core::EntityLinker Harness::MakeLinker(const core::LinkerOptions& options) {
  return core::EntityLinker(&world_.kb(), ckb_.get(), reach_.get(),
                            network_.get(), options);
}

EvalRun Harness::Evaluate(const core::LinkerOptions& options) {
  core::EntityLinker linker = MakeLinker(options);
  return EvaluateOurs(linker, world_, test_);
}

}  // namespace mel::eval

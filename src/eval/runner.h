#ifndef MEL_EVAL_RUNNER_H_
#define MEL_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "core/entity_linker.h"
#include "eval/metrics.h"
#include "gen/workload.h"
#include "kb/complemented_kb.h"

namespace mel::eval {

/// \brief Offline complementation via the collective pre-linker (Fig. 2):
/// links every tweet of the split with the Collective method [2], batched
/// per user, and inserts the winning entities into the complemented
/// knowledgebase. This reproduces the realistic setting where the
/// complemented KB contains linking mistakes (the Fig. 4(b) trade-off).
void ComplementWithCollective(const gen::World& world,
                              const gen::DatasetSplit& split,
                              const baseline::CollectiveLinker& linker,
                              kb::ComplementedKnowledgebase* ckb);

/// Evaluates the proposed linker on the split's tweets: every ground-truth
/// mention is linked via LinkMention(surface, author, timestamp).
EvalRun EvaluateOurs(const core::EntityLinker& linker,
                     const gen::World& world,
                     const gen::DatasetSplit& split);

/// Evaluates the on-the-fly baseline: tweets are linked one by one, and
/// predictions are aligned to ground-truth mentions by surface form.
EvalRun EvaluateOnTheFly(const baseline::OnTheFlyLinker& linker,
                         const gen::World& world,
                         const gen::DatasetSplit& split);

/// Evaluates the collective baseline: the split's tweets are batched per
/// author and linked jointly.
EvalRun EvaluateCollective(const baseline::CollectiveLinker& linker,
                           const gen::World& world,
                           const gen::DatasetSplit& split);

/// Aligns a tweet-level prediction with ground-truth labels by surface:
/// the i-th label matches the first unconsumed predicted mention with the
/// same surface (kInvalidEntity when none matches).
std::vector<kb::EntityId> AlignPredictions(
    const core::TweetLinkResult& prediction,
    const std::vector<gen::LabeledMention>& labels);

/// Snapshots the global metrics registry (per-stage counters and latency
/// histograms accumulated by the pipeline, see docs/METRICS.md) and
/// writes the JSON export to `path`. Returns false and logs to stderr on
/// I/O failure. Benchmarks call metrics::Registry().Reset() before the
/// measured section so the export covers only that section.
bool ExportMetricsJson(const std::string& path);

}  // namespace mel::eval

#endif  // MEL_EVAL_RUNNER_H_

#ifndef MEL_EVAL_METRICS_H_
#define MEL_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/types.h"

namespace mel::eval {

/// \brief Outcome of linking one ground-truth mention.
struct MentionOutcome {
  uint32_t tweet_index = 0;           // index into the corpus
  kb::EntityId truth = kb::kInvalidEntity;
  kb::EntityId predicted = kb::kInvalidEntity;

  bool correct() const {
    return predicted != kb::kInvalidEntity && predicted == truth;
  }
};

/// \brief Mention- and tweet-level accuracy (the two series of Fig. 4(a)).
/// A tweet counts as correct only when ALL of its mentions are correct.
struct Accuracy {
  uint32_t mentions = 0;
  uint32_t correct_mentions = 0;
  uint32_t tweets = 0;
  uint32_t correct_tweets = 0;

  double MentionAccuracy() const {
    return mentions == 0 ? 0 : static_cast<double>(correct_mentions) / mentions;
  }
  double TweetAccuracy() const {
    return tweets == 0 ? 0 : static_cast<double>(correct_tweets) / tweets;
  }
  std::string ToString() const;
};

/// Aggregates outcomes into accuracy; outcomes of one tweet must share the
/// same tweet_index (order does not matter).
Accuracy Summarize(const std::vector<MentionOutcome>& outcomes);

/// \brief A bootstrap confidence interval.
struct BootstrapInterval {
  double mean = 0;
  double lo = 0;
  double hi = 0;

  bool ExcludesZero() const { return lo > 0 || hi < 0; }
};

/// Percentile-bootstrap confidence interval of the mention accuracy
/// (resampling mentions with replacement).
BootstrapInterval BootstrapMentionAccuracy(
    const std::vector<MentionOutcome>& outcomes, uint32_t resamples,
    double confidence, uint64_t seed);

/// Percentile-bootstrap interval of accuracy(a) - accuracy(b). When the
/// two systems were evaluated on the SAME mentions in the same order,
/// resampling is paired (per-mention), which is much tighter.
BootstrapInterval BootstrapAccuracyDifference(
    const std::vector<MentionOutcome>& a,
    const std::vector<MentionOutcome>& b, uint32_t resamples,
    double confidence, uint64_t seed);

/// \brief A full evaluation run: per-mention outcomes plus wall time.
struct EvalRun {
  std::vector<MentionOutcome> outcomes;
  double total_nanos = 0;
  uint32_t num_tweets = 0;

  Accuracy accuracy() const { return Summarize(outcomes); }
  double NanosPerMention() const {
    return outcomes.empty() ? 0 : total_nanos / outcomes.size();
  }
  double NanosPerTweet() const {
    return num_tweets == 0 ? 0 : total_nanos / num_tweets;
  }
};

}  // namespace mel::eval

#endif  // MEL_EVAL_METRICS_H_

#include "eval/weight_learner.h"

#include <algorithm>
#include <cmath>

#include "eval/runner.h"

namespace mel::eval {

namespace {

double EvaluateWeights(Harness* harness, const gen::DatasetSplit& split,
                       double alpha, double beta, double gamma) {
  core::LinkerOptions options = harness->DefaultLinkerOptions();
  options.alpha = alpha;
  options.beta = beta;
  options.gamma = gamma;
  core::EntityLinker linker = harness->MakeLinker(options);
  return EvaluateOurs(linker, harness->world(), split)
      .accuracy()
      .MentionAccuracy();
}

}  // namespace

LearnedWeights LearnWeights(Harness* harness,
                            const gen::DatasetSplit& validation,
                            double step) {
  LearnedWeights best;
  auto consider = [&](double alpha, double beta) {
    double gamma = 1.0 - alpha - beta;
    if (alpha < -1e-9 || beta < -1e-9 || gamma < -1e-9) return;
    alpha = std::clamp(alpha, 0.0, 1.0);
    beta = std::clamp(beta, 0.0, 1.0);
    gamma = std::clamp(gamma, 0.0, 1.0);
    double accuracy =
        EvaluateWeights(harness, validation, alpha, beta, gamma);
    if (accuracy > best.validation_accuracy) {
      best = LearnedWeights{alpha, beta, gamma, accuracy};
    }
  };

  // Stage 1: coarse simplex grid.
  const int steps = static_cast<int>(std::round(1.0 / step));
  for (int a = 0; a <= steps; ++a) {
    for (int b = 0; a + b <= steps; ++b) {
      consider(a * step, b * step);
    }
  }

  // Stage 2: refine around the coarse winner.
  const double fine = step / 3.0;
  const double alpha0 = best.alpha;
  const double beta0 = best.beta;
  for (int da = -2; da <= 2; ++da) {
    for (int db = -2; db <= 2; ++db) {
      consider(alpha0 + da * fine, beta0 + db * fine);
    }
  }
  return best;
}

}  // namespace mel::eval

#ifndef MEL_EVAL_HARNESS_H_
#define MEL_EVAL_HARNESS_H_

#include <memory>

#include "core/entity_linker.h"
#include "eval/runner.h"
#include "gen/workload.h"
#include "kb/complemented_kb.h"
#include "kb/wlm.h"
#include "reach/two_hop_index.h"
#include "recency/propagation_network.h"

namespace mel::eval {

/// \brief Configuration of the standard experiment harness. The defaults
/// are the calibrated synthetic stand-in for the paper's Twitter setup
/// (Sec. 5.1): sizes scale linearly with `scale`.
struct HarnessOptions {
  /// Linear size multiplier (1 = 500 entities / 800 users / 9000 tweets).
  double scale = 1.0;
  /// Activity threshold of the complementation split (paper: D10).
  uint32_t complement_min_tweets = 10;
  /// How the offline complementation is performed.
  enum class Complementation {
    kSimulatedLinker,  // ground truth + per-user independent noise
    kOracle,           // ground truth (upper bound)
    kCollective,       // the real CollectiveLinker (slow, correlated errors)
  };
  Complementation complementation = Complementation::kSimulatedLinker;
  /// Noise model of the simulated pre-linker (see
  /// gen::ComplementWithSimulatedLinker).
  double base_noise = 1.0;
  double max_noise = 0.6;
  /// WLM threshold for the recency propagation network. 0.75 plays the
  /// role of the paper's theta2 = 0.6 on the synthetic WLM distribution.
  double theta2 = 0.75;
  /// Hop bound H of the reachability indexes.
  uint32_t max_hops = 5;
  /// Test split: users with fewer than this many tweets, capped count.
  uint32_t test_max_tweets = 10;
  uint32_t test_max_users = 150;
  uint64_t seed = 1;
  /// Mentions per posting; raise to ~2.3 for the Sina Weibo variant
  /// (Appendix C.1).
  double extra_mention_prob = 0.3;
};

/// \brief A fully wired experiment world: generated data, complemented
/// knowledgebase, reachability index, propagation network, and splits.
/// Construct once per benchmark/test; create linkers with MakeLinker.
class Harness {
 public:
  explicit Harness(const HarnessOptions& options);

  const gen::World& world() const { return world_; }
  const kb::Knowledgebase& kb() const { return world_.kb(); }
  const kb::WlmRelatedness& wlm() const { return *wlm_; }
  kb::ComplementedKnowledgebase& ckb() { return *ckb_; }
  const reach::TwoHopIndex& reachability() const { return *reach_; }
  const recency::PropagationNetwork& network() const { return *network_; }
  const gen::DatasetSplit& active_split() const { return active_; }
  const gen::DatasetSplit& test_split() const { return test_; }
  const HarnessOptions& options() const { return options_; }

  /// Default linker options matched to this harness (theta1 = 10, H = 5).
  core::LinkerOptions DefaultLinkerOptions() const;

  /// A linker wired against this harness' state.
  core::EntityLinker MakeLinker(const core::LinkerOptions& options);

  /// Evaluates a linker configuration on the test split.
  EvalRun Evaluate(const core::LinkerOptions& options);

 private:
  HarnessOptions options_;
  gen::World world_;
  std::unique_ptr<kb::WlmRelatedness> wlm_;
  gen::DatasetSplit active_;
  gen::DatasetSplit test_;
  std::unique_ptr<kb::ComplementedKnowledgebase> ckb_;
  std::unique_ptr<reach::TwoHopIndex> reach_;
  std::unique_ptr<recency::PropagationNetwork> network_;
};

/// The standard world options at the given scale (before harness wiring);
/// exposed so benchmarks can tweak single knobs.
gen::WorldOptions StandardWorldOptions(double scale, uint64_t seed);

}  // namespace mel::eval

#endif  // MEL_EVAL_HARNESS_H_

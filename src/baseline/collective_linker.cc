#include "baseline/collective_linker.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace mel::baseline {

namespace {

size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  size_t count = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// One candidate node of the user's interest graph.
struct GraphNode {
  kb::EntityId entity;
  size_t tweet_index;
  size_t mention_index;
  double commonness;
  double context;
};

}  // namespace

CollectiveLinker::CollectiveLinker(const kb::Knowledgebase* kb,
                                   const kb::WlmRelatedness* wlm,
                                   const CollectiveOptions& options)
    : kb_(kb),
      wlm_(wlm),
      options_(options),
      candidate_generator_(kb, options.fuzzy_max_edits) {
  MEL_CHECK(kb != nullptr && wlm != nullptr);
  entity_tokens_.resize(kb->num_entities());
  for (kb::EntityId e = 0; e < kb->num_entities(); ++e) {
    entity_tokens_[e] = kb->entity(e).description;
    std::sort(entity_tokens_[e].begin(), entity_tokens_[e].end());
    entity_tokens_[e].erase(
        std::unique(entity_tokens_[e].begin(), entity_tokens_[e].end()),
        entity_tokens_[e].end());
  }
}

std::vector<core::TweetLinkResult> CollectiveLinker::LinkUserTweets(
    std::span<const kb::Tweet> tweets) const {
  std::vector<core::TweetLinkResult> results(tweets.size());

  // Detect mentions and gather the candidate graph nodes.
  std::vector<GraphNode> nodes;
  std::vector<std::vector<std::pair<std::string, std::vector<size_t>>>>
      mention_nodes(tweets.size());  // per tweet: (surface, node indices)
  for (size_t ti = 0; ti < tweets.size(); ++ti) {
    std::vector<uint32_t> tweet_tokens;
    for (const auto& tok : text::Tokenize(tweets[ti].text)) {
      uint32_t id = kb_->vocab().Find(tok.text);
      if (id != kb::Vocabulary::kMissing) tweet_tokens.push_back(id);
    }
    std::sort(tweet_tokens.begin(), tweet_tokens.end());
    tweet_tokens.erase(
        std::unique(tweet_tokens.begin(), tweet_tokens.end()),
        tweet_tokens.end());

    auto detected = candidate_generator_.DetectMentions(tweets[ti].text);
    for (size_t mi = 0; mi < detected.size(); ++mi) {
      auto cands = candidate_generator_.Generate(detected[mi].surface);
      double total = 0;
      for (const auto& c : cands) total += c.anchor_count;
      std::vector<size_t> node_indices;
      for (const auto& c : cands) {
        GraphNode node;
        node.entity = c.entity;
        node.tweet_index = ti;
        node.mention_index = mi;
        node.commonness = total > 0 ? c.anchor_count / total
                                    : 1.0 / std::max<size_t>(1, cands.size());
        const auto& desc = entity_tokens_[c.entity];
        // Coverage of tweet tokens by the description (see
        // OnTheFlyLinker::ContextSimilarity for the rationale).
        size_t inter = IntersectionSize(tweet_tokens, desc);
        node.context = tweet_tokens.empty()
                           ? 0
                           : static_cast<double>(inter) / tweet_tokens.size();
        node_indices.push_back(nodes.size());
        nodes.push_back(node);
      }
      mention_nodes[ti].emplace_back(detected[mi].surface,
                                     std::move(node_indices));
    }
  }

  const size_t n = nodes.size();
  if (n == 0) return results;

  // Initial interest: popularity prior + context similarity, normalized.
  std::vector<double> initial(n);
  double init_total = 0;
  for (size_t i = 0; i < n; ++i) {
    initial[i] = options_.w_commonness * nodes[i].commonness +
                 options_.w_context * nodes[i].context;
    init_total += initial[i];
  }
  if (init_total > 0) {
    for (double& v : initial) v /= init_total;
  }

  // Dense WLM edge weights between candidates of different mentions.
  // (User histories in the evaluation are small; active users pay the
  // quadratic cost — which is exactly the efficiency drawback of the
  // collective method that the paper's Fig. 5(a) discusses.)
  std::vector<double> weights(n * n, 0.0);
  std::vector<double> row_sums(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (nodes[i].tweet_index == nodes[j].tweet_index &&
          nodes[i].mention_index == nodes[j].mention_index) {
        continue;  // candidates of the same mention do not reinforce
      }
      double w = nodes[i].entity == nodes[j].entity
                     ? 1.0
                     : wlm_->Relatedness(nodes[i].entity, nodes[j].entity);
      weights[i * n + j] = w;
      weights[j * n + i] = w;
      row_sums[i] += w;
      row_sums[j] += w;
    }
  }

  // PageRank-like interest propagation.
  std::vector<double> current = initial;
  std::vector<double> next(n);
  for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
    double delta = 0;
    for (size_t i = 0; i < n; ++i) {
      double pulled = 0;
      if (row_sums[i] > 0) {
        for (size_t j = 0; j < n; ++j) {
          if (weights[i * n + j] > 0) {
            pulled += weights[i * n + j] / row_sums[i] * current[j];
          }
        }
      }
      next[i] = options_.restart * initial[i] +
                (1 - options_.restart) * pulled;
      delta += std::abs(next[i] - current[i]);
    }
    current.swap(next);
    if (delta < options_.convergence_epsilon) break;
  }

  // Rank candidates per mention by final interest.
  for (size_t ti = 0; ti < tweets.size(); ++ti) {
    for (const auto& [surface, node_indices] : mention_nodes[ti]) {
      core::MentionLinkResult mr;
      mr.surface = surface;
      std::vector<core::ScoredEntity> scored;
      for (size_t ni : node_indices) {
        core::ScoredEntity s;
        s.entity = nodes[ni].entity;
        s.score = current[ni];
        s.popularity = nodes[ni].commonness;
        scored.push_back(s);
      }
      std::stable_sort(scored.begin(), scored.end(),
                       [](const core::ScoredEntity& a,
                          const core::ScoredEntity& b) {
                         return a.score > b.score;
                       });
      if (scored.size() > options_.top_k_results) {
        scored.resize(options_.top_k_results);
      }
      mr.ranked = std::move(scored);
      results[ti].mentions.push_back(std::move(mr));
    }
  }
  return results;
}

}  // namespace mel::baseline

#ifndef MEL_BASELINE_ON_THE_FLY_LINKER_H_
#define MEL_BASELINE_ON_THE_FLY_LINKER_H_

#include <cstdint>
#include <vector>

#include "core/candidate_generator.h"
#include "core/entity_linker.h"
#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "kb/wlm.h"

namespace mel::baseline {

/// \brief Options for the TAGME-style baseline.
struct OnTheFlyOptions {
  /// Weights of the intra-tweet features: anchor commonness (the
  /// popularity prior), context similarity between tweet text and entity
  /// description, and topical coherence with the other mentions' candidates.
  double w_commonness = 0.4;
  double w_context = 0.3;
  double w_coherence = 0.3;
  uint32_t fuzzy_max_edits = 1;
  uint32_t top_k_results = 3;
};

/// \brief Reimplementation of the "On-the-fly" comparator [14]
/// (Ferragina & Scaiella, TAGME): links each tweet in isolation using only
/// intra-tweet features — entity popularity in the knowledgebase, context
/// similarity, and topical coherence between candidate entities of
/// co-occurring mentions.
///
/// It is the fastest method of Fig. 5(a) and the weakest of Fig. 4(a):
/// tweets rarely carry enough context for these features to disambiguate.
class OnTheFlyLinker {
 public:
  /// kb and wlm must outlive the linker.
  OnTheFlyLinker(const kb::Knowledgebase* kb, const kb::WlmRelatedness* wlm,
                 const OnTheFlyOptions& options);

  core::TweetLinkResult LinkTweet(const kb::Tweet& tweet) const;

  const core::CandidateGenerator& candidate_generator() const {
    return candidate_generator_;
  }

 private:
  /// Jaccard similarity between the tweet's token-id set and the entity
  /// description's token-id set.
  double ContextSimilarity(const std::vector<uint32_t>& tweet_tokens,
                           kb::EntityId entity) const;

  const kb::Knowledgebase* kb_;
  const kb::WlmRelatedness* wlm_;
  OnTheFlyOptions options_;
  core::CandidateGenerator candidate_generator_;
  // Sorted unique description token ids per entity, for fast Jaccard.
  std::vector<std::vector<uint32_t>> entity_tokens_;
};

}  // namespace mel::baseline

#endif  // MEL_BASELINE_ON_THE_FLY_LINKER_H_

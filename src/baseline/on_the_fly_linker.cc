#include "baseline/on_the_fly_linker.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace mel::baseline {

namespace {

// Sorted-set intersection size.
size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  size_t count = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::vector<uint32_t> TweetTokenIds(const kb::Knowledgebase& kb,
                                    const std::string& text) {
  std::vector<uint32_t> ids;
  for (const auto& tok : text::Tokenize(text)) {
    uint32_t id = kb.vocab().Find(tok.text);
    if (id != kb::Vocabulary::kMissing) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

OnTheFlyLinker::OnTheFlyLinker(const kb::Knowledgebase* kb,
                               const kb::WlmRelatedness* wlm,
                               const OnTheFlyOptions& options)
    : kb_(kb),
      wlm_(wlm),
      options_(options),
      candidate_generator_(kb, options.fuzzy_max_edits) {
  MEL_CHECK(kb != nullptr && wlm != nullptr);
  entity_tokens_.resize(kb->num_entities());
  for (kb::EntityId e = 0; e < kb->num_entities(); ++e) {
    entity_tokens_[e] = kb->entity(e).description;
    std::sort(entity_tokens_[e].begin(), entity_tokens_[e].end());
    entity_tokens_[e].erase(
        std::unique(entity_tokens_[e].begin(), entity_tokens_[e].end()),
        entity_tokens_[e].end());
  }
}

double OnTheFlyLinker::ContextSimilarity(
    const std::vector<uint32_t>& tweet_tokens, kb::EntityId entity) const {
  const auto& desc = entity_tokens_[entity];
  if (tweet_tokens.empty() || desc.empty()) return 0;
  // Coverage of the tweet's (in-vocabulary) tokens by the entity's
  // description. Tweets are far shorter than articles, so symmetric
  // Jaccard would be dominated by the description length and carry
  // almost no signal.
  size_t inter = IntersectionSize(tweet_tokens, desc);
  return static_cast<double>(inter) / tweet_tokens.size();
}

core::TweetLinkResult OnTheFlyLinker::LinkTweet(
    const kb::Tweet& tweet) const {
  core::TweetLinkResult result;
  auto detected = candidate_generator_.DetectMentions(tweet.text);
  std::vector<uint32_t> tweet_tokens = TweetTokenIds(*kb_, tweet.text);

  // Candidates (+ commonness priors) per detected mention.
  std::vector<std::vector<kb::Candidate>> per_mention;
  std::vector<std::vector<double>> commonness;
  per_mention.reserve(detected.size());
  for (const auto& d : detected) {
    per_mention.push_back(candidate_generator_.Generate(d.surface));
    const auto& cands = per_mention.back();
    double total = 0;
    for (const auto& c : cands) total += c.anchor_count;
    std::vector<double> priors(cands.size(), 0.0);
    for (size_t i = 0; i < cands.size(); ++i) {
      priors[i] = total > 0 ? cands[i].anchor_count / total
                            : 1.0 / static_cast<double>(cands.size());
    }
    commonness.push_back(std::move(priors));
  }

  for (size_t mi = 0; mi < detected.size(); ++mi) {
    core::MentionLinkResult mention_result;
    mention_result.surface = detected[mi].surface;
    const auto& cands = per_mention[mi];
    std::vector<core::ScoredEntity> scored(cands.size());
    for (size_t ci = 0; ci < cands.size(); ++ci) {
      kb::EntityId e = cands[ci].entity;
      // TAGME-style voting: every other mention votes for e with its
      // candidates' relatedness, weighted by their commonness priors.
      double coherence = 0;
      size_t voters = 0;
      for (size_t mj = 0; mj < detected.size(); ++mj) {
        if (mj == mi || per_mention[mj].empty()) continue;
        double vote = 0;
        for (size_t cj = 0; cj < per_mention[mj].size(); ++cj) {
          vote += commonness[mj][cj] *
                  wlm_->Relatedness(e, per_mention[mj][cj].entity);
        }
        coherence += vote;
        ++voters;
      }
      if (voters > 0) coherence /= static_cast<double>(voters);

      scored[ci].entity = e;
      scored[ci].popularity = commonness[mi][ci];
      scored[ci].score = options_.w_commonness * commonness[mi][ci] +
                         options_.w_context *
                             ContextSimilarity(tweet_tokens, e) +
                         options_.w_coherence * coherence;
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const core::ScoredEntity& a,
                        const core::ScoredEntity& b) {
                       return a.score > b.score;
                     });
    if (scored.size() > options_.top_k_results) {
      scored.resize(options_.top_k_results);
    }
    mention_result.ranked = std::move(scored);
    result.mentions.push_back(std::move(mention_result));
  }
  return result;
}

}  // namespace mel::baseline

#ifndef MEL_BASELINE_COLLECTIVE_LINKER_H_
#define MEL_BASELINE_COLLECTIVE_LINKER_H_

#include <span>
#include <vector>

#include "core/candidate_generator.h"
#include "core/entity_linker.h"
#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "kb/wlm.h"

namespace mel::baseline {

/// \brief Options for the collective baseline.
struct CollectiveOptions {
  /// Restart weight of the interest-propagation iteration: how much of
  /// the initial (intra-tweet) score is preserved each round. Lower
  /// values lean harder on the user's cross-tweet interest distribution.
  double restart = 0.3;
  uint32_t max_iterations = 15;
  double convergence_epsilon = 1e-6;
  /// Weights of the initial score (popularity prior + context similarity).
  double w_commonness = 0.6;
  double w_context = 0.4;
  uint32_t fuzzy_max_edits = 1;
  uint32_t top_k_results = 3;
};

/// \brief Reimplementation of the "Collective" comparator [2] (Shen et
/// al., KDD 2013): batch entity linking over ALL tweets of one user.
///
/// Every candidate entity of every mention across the user's tweet history
/// becomes a node of an interest graph whose edges are WLM relatedness;
/// initial scores combine popularity and context similarity, and a
/// PageRank-like iteration propagates the user's interest distribution
/// between topically related candidates. Entities with the largest final
/// interest win.
///
/// Also serves as the offline complementation step of Fig. 2: the
/// eval::ComplementKnowledgebase helper feeds its output links into a
/// ComplementedKnowledgebase.
class CollectiveLinker {
 public:
  /// kb and wlm must outlive the linker.
  CollectiveLinker(const kb::Knowledgebase* kb, const kb::WlmRelatedness* wlm,
                   const CollectiveOptions& options);

  /// Links all tweets of a single user jointly. The i-th result aligns
  /// with tweets[i].
  std::vector<core::TweetLinkResult> LinkUserTweets(
      std::span<const kb::Tweet> tweets) const;

  const core::CandidateGenerator& candidate_generator() const {
    return candidate_generator_;
  }

 private:
  const kb::Knowledgebase* kb_;
  const kb::WlmRelatedness* wlm_;
  CollectiveOptions options_;
  core::CandidateGenerator candidate_generator_;
  std::vector<std::vector<uint32_t>> entity_tokens_;
};

}  // namespace mel::baseline

#endif  // MEL_BASELINE_COLLECTIVE_LINKER_H_

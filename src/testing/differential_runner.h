#ifndef MEL_TESTING_DIFFERENTIAL_RUNNER_H_
#define MEL_TESTING_DIFFERENTIAL_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/random_workload.h"

namespace mel::testing {

struct DiffOptions {
  /// Sampled (u, v) reachability pairs per case.
  uint32_t reach_pair_samples = 200;
  /// Sampled entity pairs for the WLM check.
  uint32_t wlm_pair_samples = 120;
  /// Entities whose influential-user ranking is verified.
  uint32_t influence_entity_samples = 12;
  /// Extra fuzzy-lookup probes beyond the workload's own queries.
  uint32_t fuzzy_probe_samples = 40;
  /// Sampled (u, v) pairs per incremental-maintenance checkpoint.
  uint32_t mutation_pair_samples = 120;
  /// Approximate number of from-scratch-rebuild checkpoints inside the
  /// mutation replay (positions are randomized per seed; the final event
  /// is always a checkpoint).
  uint32_t mutation_checkpoints = 4;
  /// Stop collecting divergences after this many (the case has failed
  /// either way; the first few messages carry the repro).
  uint32_t max_divergences = 8;
};

/// \brief Outcome of one differential case. ok() means every production
/// configuration agreed with every other and with the oracles.
struct DiffReport {
  uint64_t seed = 0;
  uint64_t checks = 0;
  std::vector<std::string> divergences;

  bool ok() const { return divergences.empty(); }

  /// Human-readable failure report: every divergence plus the replay
  /// line ("replay: MakeRandomWorkload(0x<seed>)"). Empty-ish on pass.
  std::string Summary() const;
};

/// \brief Replays one randomized workload through every production
/// configuration pair and the mel::testing oracles:
///
///  * reachability — naive BFS, TC-incremental, TC-naive, TC built on a
///    1-thread pool, 2-hop cover, distance-label ablation,
///    pruned-online-search, and the sharded read-through cache, all
///    against the forward-BFS oracle (full V^2 for the TC variants,
///    sampled pairs elsewhere); every backend additionally proves
///    CountQuery == |oracle F_uv| and ScoreOnly bitwise-equal to Score;
///  * fuzzy candidate generation — SegmentFuzzyIndex::Lookup against the
///    brute-force edit-distance scan;
///  * WLM — CSR merge/gallop intersection against std::set_intersection;
///  * propagation network — pooled vs 1-thread Build via IdenticalTo;
///  * recency — sliding-window counts against the linear-scan oracle,
///    and the propagator with cache on vs off vs the dense-matrix
///    power iteration;
///  * influence — TopInfluential against the posting-list oracle;
///  * the full Eq.-1 pipeline — one EntityLinker per backend
///    configuration (each with its own identically-complemented CKB and
///    the same interleaved ConfirmLink feedback) against
///    OracleLinkMention;
///  * incremental maintenance (only when the workload carries mutation
///    events) — the mutation stream is replayed through a live graph
///    copy and reach::ReachMaintainer, and at randomized checkpoints
///    every patched index is exact-checked against a from-scratch
///    rebuild on the mutated graph (full V^2 for the transitive
///    closure, sampled pairs with the live-graph BFS backend as ground
///    truth elsewhere), the invalidated cache against its base, and the
///    incrementally-fed BurstTracker against a dense replay oracle of
///    the stamped-ring semantics.
///
/// Exact equality is demanded wherever implementations share the same
/// arithmetic (cache on/off, serial/pooled, naive vs 2-hop vs pruned);
/// a tiny tolerance absorbs float storage (transitive closure) and
/// summation-order differences (oracle vs production).
///
/// Counts are exported as testing.diff.{cases_total,checks_total,
/// divergences_total}.
DiffReport RunDifferentialCase(const RandomWorkload& workload,
                               const DiffOptions& options = {});

/// Convenience: generate the workload from `seed`, then run it.
DiffReport RunDifferentialCase(uint64_t seed,
                               const RandomWorkloadOptions& wopts = {},
                               const DiffOptions& options = {});

}  // namespace mel::testing

#endif  // MEL_TESTING_DIFFERENTIAL_RUNNER_H_

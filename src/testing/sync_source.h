#ifndef MEL_TESTING_SYNC_SOURCE_H_
#define MEL_TESTING_SYNC_SOURCE_H_

#include <shared_mutex>

#include "kb/types.h"
#include "recency/recency_source.h"

namespace mel::testing {

/// \brief Reader/writer decorator around a RecencySource for concurrency
/// tests that mix queries with online feedback.
///
/// LinkMention is only contract-safe for concurrent use between
/// mutations (the WarmUp contract); the freshness test in
/// differential_test.cc deliberately runs readers WHILE a writer bumps
/// the CKB. The decorator makes that legal: every read accessor (and
/// Epoch/WindowToken, which the propagation cache consults) takes a
/// shared lock, and mutations run under Mutate(), which takes the
/// exclusive lock. The interesting property — that the recency cache
/// never serves a vector staler than the epoch a reader observed — is
/// NOT provided by the lock; the lock only removes data races so the
/// epoch protocol itself is what the test exercises (under TSan).
class SynchronizedRecencySource : public recency::RecencySource {
 public:
  /// The base source must outlive this object.
  explicit SynchronizedRecencySource(const recency::RecencySource* base)
      : base_(base) {}

  uint32_t RecentCount(kb::EntityId e, kb::Timestamp now) const override {
    std::shared_lock lock(mu_);
    return base_->RecentCount(e, now);
  }
  double BurstMass(kb::EntityId e, kb::Timestamp now) const override {
    std::shared_lock lock(mu_);
    return base_->BurstMass(e, now);
  }
  uint64_t Epoch() const override {
    std::shared_lock lock(mu_);
    return base_->Epoch();
  }
  uint64_t WindowToken(kb::Timestamp now) const override {
    std::shared_lock lock(mu_);
    return base_->WindowToken(now);
  }

  /// Runs `fn` (which may mutate the underlying CKB / tracker) under the
  /// exclusive lock, serialized against every read accessor above.
  template <typename Fn>
  void Mutate(Fn&& fn) {
    std::unique_lock lock(mu_);
    fn();
  }

 private:
  mutable std::shared_mutex mu_;
  const recency::RecencySource* base_;
};

}  // namespace mel::testing

#endif  // MEL_TESTING_SYNC_SOURCE_H_

#include "testing/oracle.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "text/edit_distance.h"
#include "util/logging.h"

namespace mel::testing {

namespace {

// Forward BFS distances from `start`, bounded by max_hops. A fresh
// dense distance array per call; kUnreachableDistance marks untouched
// nodes.
std::vector<uint32_t> ForwardBfs(const graph::DirectedGraph& g,
                                 graph::NodeId start, uint32_t max_hops) {
  std::vector<uint32_t> dist(g.num_nodes(), reach::kUnreachableDistance);
  std::vector<graph::NodeId> frontier{start};
  dist[start] = 0;
  for (uint32_t hop = 0; hop < max_hops && !frontier.empty(); ++hop) {
    std::vector<graph::NodeId> next;
    for (graph::NodeId x : frontier) {
      for (graph::NodeId y : g.OutNeighbors(x)) {
        if (dist[y] == reach::kUnreachableDistance) {
          dist[y] = hop + 1;
          next.push_back(y);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

constexpr double kEntropySmoothing = 1.0;  // matches social/influence.cc

}  // namespace

uint32_t OracleDistance(const graph::DirectedGraph& g, graph::NodeId u,
                        graph::NodeId v, uint32_t max_hops) {
  return ForwardBfs(g, u, max_hops)[v];
}

reach::ReachQueryResult OracleReachQuery(const graph::DirectedGraph& g,
                                         graph::NodeId u, graph::NodeId v,
                                         uint32_t max_hops) {
  reach::ReachQueryResult result;
  if (u == v) {
    result.distance = 0;
    return result;
  }
  const uint32_t duv = OracleDistance(g, u, v, max_hops);
  if (duv == reach::kUnreachableDistance) return result;
  result.distance = duv;
  // Followee t lies on a shortest path iff d(t, v) == duv - 1, each
  // distance established by its own independent forward BFS (the
  // production backends get all of them from one backward BFS).
  for (graph::NodeId t : g.OutNeighbors(u)) {
    if (t == v || OracleDistance(g, t, v, max_hops) == duv - 1) {
      result.followees.push_back(t);
    }
  }
  return result;
}

double OracleReachScore(const graph::DirectedGraph& g, graph::NodeId u,
                        graph::NodeId v, uint32_t max_hops) {
  return reach::WeightedScore(OracleReachQuery(g, u, v, max_hops),
                              g.OutDegree(u), u == v);
}

uint32_t OracleRecentCount(const kb::ComplementedKnowledgebase& ckb,
                           kb::EntityId e, kb::Timestamp now,
                           kb::Timestamp tau) {
  uint32_t count = 0;
  for (const kb::Posting& p : ckb.Postings(e)) {
    if (p.time >= now - tau && p.time <= now) ++count;
  }
  return count;
}

double OracleBurstMass(const kb::ComplementedKnowledgebase& ckb,
                       kb::EntityId e, kb::Timestamp now, kb::Timestamp tau,
                       uint32_t theta1) {
  const uint32_t count = OracleRecentCount(ckb, e, now, tau);
  return count >= theta1 ? static_cast<double>(count) : 0.0;
}

std::vector<double> OraclePropagateCluster(
    const recency::PropagationNetwork& network,
    const recency::RecencySource& source, uint32_t cluster,
    kb::Timestamp now, const recency::PropagatorOptions& options) {
  auto members = network.ClusterMembers(cluster);
  const size_t m = members.size();

  std::vector<double> initial(m, 0.0);
  double total = 0;
  for (size_t i = 0; i < m; ++i) {
    initial[i] = source.BurstMass(members[i], now);
    total += initial[i];
  }
  if (total == 0 || m == 1) return initial;

  // Materialize the full m x m row-stochastic matrix P (the production
  // iteration walks sparse adjacency instead).
  std::vector<double> p(m * m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (const auto& edge : network.Neighbors(members[i])) {
      p[i * m + network.MemberIndex(edge.target)] = edge.probability;
    }
  }

  std::vector<double> current = initial;
  std::vector<double> next(m);
  const double lambda = options.lambda;
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0;
    for (size_t i = 0; i < m; ++i) {
      double pulled = 0;
      for (size_t j = 0; j < m; ++j) pulled += p[i * m + j] * current[j];
      next[i] = lambda * initial[i] + (1 - lambda) * pulled;
      delta += std::abs(next[i] - current[i]);
    }
    current.swap(next);
    if (delta < options.convergence_epsilon) break;
  }
  return current;
}

std::vector<double> OracleCandidateScores(
    const recency::PropagationNetwork& network,
    const recency::RecencySource& source,
    std::span<const kb::EntityId> candidates, kb::Timestamp now,
    bool enable_propagation, const recency::PropagatorOptions& options) {
  std::vector<double> raw(candidates.size(), 0.0);
  if (!enable_propagation) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      raw[i] = source.BurstMass(candidates[i], now);
    }
  } else {
    std::vector<std::pair<uint32_t, std::vector<double>>> cluster_results;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const uint32_t cluster = network.Cluster(candidates[i]);
      const std::vector<double>* result = nullptr;
      for (const auto& [cid, values] : cluster_results) {
        if (cid == cluster) {
          result = &values;
          break;
        }
      }
      if (result == nullptr) {
        cluster_results.emplace_back(
            cluster,
            OraclePropagateCluster(network, source, cluster, now, options));
        result = &cluster_results.back().second;
      }
      raw[i] = (*result)[network.MemberIndex(candidates[i])];
    }
  }
  double total = 0;
  for (double v : raw) total += v;
  if (total > 0) {
    for (double& v : raw) v /= total;
  }
  return raw;
}

uint32_t OracleUserTweetCount(const kb::ComplementedKnowledgebase& ckb,
                              kb::EntityId e, kb::UserId u) {
  uint32_t count = 0;
  for (const kb::Posting& p : ckb.Postings(e)) {
    if (p.user == u) ++count;
  }
  return count;
}

namespace {

double OracleDiscriminativeness(const kb::ComplementedKnowledgebase& ckb,
                                kb::UserId u,
                                std::span<const kb::EntityId> candidates,
                                social::InfluenceMethod method) {
  if (method == social::InfluenceMethod::kTfIdf) {
    uint32_t mentioned = 0;
    for (kb::EntityId e : candidates) {
      if (OracleUserTweetCount(ckb, e, u) > 0) ++mentioned;
    }
    if (mentioned == 0) return 0;
    return std::log(static_cast<double>(candidates.size()) / mentioned);
  }
  double total = 0;
  for (kb::EntityId e : candidates) total += OracleUserTweetCount(ckb, e, u);
  if (total == 0) return 0;
  double entropy = 0;
  for (kb::EntityId e : candidates) {
    const uint32_t c = OracleUserTweetCount(ckb, e, u);
    if (c == 0) continue;
    const double p = c / total;
    entropy -= p * std::log(p);
  }
  return 1.0 / (entropy + kEntropySmoothing);
}

}  // namespace

double OracleInfluence(const kb::ComplementedKnowledgebase& ckb,
                       kb::UserId u, kb::EntityId entity,
                       std::span<const kb::EntityId> candidates,
                       social::InfluenceMethod method) {
  const size_t community_tweets = ckb.Postings(entity).size();
  if (community_tweets == 0) return 0;
  const uint32_t user_tweets = OracleUserTweetCount(ckb, entity, u);
  if (user_tweets == 0) return 0;
  const double share =
      static_cast<double>(user_tweets) / static_cast<double>(community_tweets);
  return share * OracleDiscriminativeness(ckb, u, candidates, method);
}

std::vector<social::InfluentialUser> OracleTopInfluential(
    const kb::ComplementedKnowledgebase& ckb, kb::EntityId entity,
    std::span<const kb::EntityId> candidates, uint32_t top_k,
    social::InfluenceMethod method) {
  // Rebuild the community U_e from the raw posting list (the production
  // path maintains it incrementally).
  std::map<kb::UserId, uint32_t> community;
  for (const kb::Posting& p : ckb.Postings(entity)) ++community[p.user];

  std::vector<social::InfluentialUser> scored;
  scored.reserve(community.size());
  for (const auto& [user, count] : community) {
    (void)count;
    scored.push_back(social::InfluentialUser{
        user, OracleInfluence(ckb, user, entity, candidates, method)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const social::InfluentialUser& a,
               const social::InfluentialUser& b) {
              if (a.influence != b.influence) return a.influence > b.influence;
              return a.user < b.user;
            });
  if (top_k != 0 && top_k < scored.size()) scored.resize(top_k);
  return scored;
}

uint32_t OracleInlinkIntersection(const kb::Knowledgebase& kb,
                                  kb::EntityId a, kb::EntityId b) {
  auto ia = kb.Inlinks(a);
  auto ib = kb.Inlinks(b);
  std::vector<kb::EntityId> inter;
  std::set_intersection(ia.begin(), ia.end(), ib.begin(), ib.end(),
                        std::back_inserter(inter));
  return static_cast<uint32_t>(inter.size());
}

double OracleWlmRelatedness(const kb::Knowledgebase& kb, kb::EntityId a,
                            kb::EntityId b) {
  if (a == b) return 1.0;
  const double na = static_cast<double>(kb.Inlinks(a).size());
  const double nb = static_cast<double>(kb.Inlinks(b).size());
  if (na == 0 || nb == 0) return 0.0;
  const double inter = static_cast<double>(OracleInlinkIntersection(kb, a, b));
  if (inter == 0) return 0.0;
  const double log_total =
      std::log(static_cast<double>(std::max<uint32_t>(2, kb.num_entities())));
  const double denom = log_total - std::log(std::min(na, nb));
  if (denom <= 0) return 1.0;
  const double rel =
      1.0 - (std::log(std::max(na, nb)) - std::log(inter)) / denom;
  return std::clamp(rel, 0.0, 1.0);
}

std::vector<uint32_t> OracleFuzzySurfaces(const kb::Knowledgebase& kb,
                                          std::string_view mention,
                                          uint32_t max_edits) {
  std::vector<uint32_t> out;
  const auto& surfaces = kb.surfaces();
  for (uint32_t sid = 0; sid < surfaces.size(); ++sid) {
    if (text::EditDistance(mention, surfaces[sid]) <= max_edits) {
      out.push_back(sid);
    }
  }
  return out;  // ascending surface id, like SegmentFuzzyIndex::Lookup
}

std::vector<kb::Candidate> OracleGenerateCandidates(
    const kb::Knowledgebase& kb, std::string_view mention,
    uint32_t fuzzy_max_edits) {
  auto exact = kb.Candidates(mention);
  if (!exact.empty()) return {exact.begin(), exact.end()};
  if (fuzzy_max_edits == 0) return {};
  std::vector<kb::Candidate> merged;
  for (uint32_t sid : OracleFuzzySurfaces(kb, mention, fuzzy_max_edits)) {
    for (const kb::Candidate& c : kb.CandidatesBySurfaceId(sid)) {
      auto it = std::find_if(
          merged.begin(), merged.end(),
          [&](const kb::Candidate& m) { return m.entity == c.entity; });
      if (it == merged.end()) {
        merged.push_back(c);
      } else {
        it->anchor_count += c.anchor_count;
      }
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const kb::Candidate& a, const kb::Candidate& b) {
                     return a.anchor_count > b.anchor_count;
                   });
  return merged;
}

core::MentionLinkResult OracleLinkMention(
    const kb::Knowledgebase& kb, const kb::ComplementedKnowledgebase& ckb,
    const recency::PropagationNetwork& network,
    const reach::WeightedReachability& reachability,
    std::string_view mention, kb::UserId user, kb::Timestamp now,
    const core::LinkerOptions& options) {
  core::MentionLinkResult result;
  result.surface = std::string(mention);

  std::vector<kb::Candidate> candidates =
      OracleGenerateCandidates(kb, mention, options.fuzzy_max_edits);
  if (candidates.empty()) return result;

  std::vector<kb::EntityId> entities;
  entities.reserve(candidates.size());
  for (const auto& c : candidates) entities.push_back(c.entity);

  // S_p (Eq. 2): tweet-count share, counts taken from posting-list sizes.
  std::vector<double> popularity(entities.size(), 0.0);
  {
    double total = 0;
    for (size_t i = 0; i < entities.size(); ++i) {
      popularity[i] = static_cast<double>(ckb.Postings(entities[i]).size());
      total += popularity[i];
    }
    if (total > 0) {
      for (double& p : popularity) p /= total;
    }
  }

  // S_r (Eq. 9 + Eq. 11): linear-scan burst mass, dense power iteration.
  const OracleRecencySource source(&ckb, options.tau, options.theta1);
  std::vector<double> recency_scores = OracleCandidateScores(
      network, source, entities, now, options.enable_recency_propagation,
      options.propagator);

  // S_in (Eq. 8): mean reachability to the oracle-ranked influential
  // users (always the online ranking — the oracle has no offline index).
  std::vector<double> interest(entities.size(), 0.0);
  {
    double total = 0;
    for (size_t i = 0; i < entities.size(); ++i) {
      auto influential =
          OracleTopInfluential(ckb, entities[i], entities,
                               options.top_k_influential,
                               options.influence_method);
      if (!influential.empty()) {
        double sum = 0;
        for (const auto& inf : influential) {
          sum += reachability.Score(user, inf.user);
        }
        interest[i] = sum / static_cast<double>(influential.size());
      }
      total += interest[i];
    }
    if (total > 0) {
      for (double& v : interest) v /= total;
    }
  }

  std::vector<core::ScoredEntity> scored(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    core::ScoredEntity& s = scored[i];
    s.entity = entities[i];
    s.interest = interest[i];
    s.recency = recency_scores[i];
    s.popularity = popularity[i];
    s.score = options.alpha * s.interest + options.beta * s.recency +
              options.gamma * s.popularity;
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const core::ScoredEntity& a,
                      const core::ScoredEntity& b) {
                     return a.score > b.score;
                   });

  if (options.reject_below_interest_threshold) {
    const double threshold = options.beta + options.gamma;
    auto first_bad = std::find_if(scored.begin(), scored.end(),
                                  [&](const core::ScoredEntity& s) {
                                    return s.score <= threshold;
                                  });
    if (first_bad == scored.begin()) result.probable_new_entity = true;
    scored.erase(first_bad, scored.end());
  }

  if (scored.size() > options.top_k_results) {
    scored.resize(options.top_k_results);
  }
  result.ranked = std::move(scored);
  return result;
}

}  // namespace mel::testing

#ifndef MEL_TESTING_ORACLE_H_
#define MEL_TESTING_ORACLE_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/entity_linker.h"
#include "graph/directed_graph.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "reach/weighted_reachability.h"
#include "recency/propagation_network.h"
#include "recency/recency_propagator.h"
#include "recency/recency_source.h"
#include "social/influence.h"

namespace mel::testing {

/// \file
/// Deliberately naive, single-threaded reference implementations of the
/// paper's equations, written straight from PAPER.md with no sharing of
/// code or data structures with the production paths.
///
/// These oracles are the ground truth of the differential harness: every
/// index, cache, and parallel construction in src/ must agree with them
/// (exactly where the PRs claimed byte-identity, within a tiny float
/// tolerance where storage precision differs). They favour obvious
/// correctness over speed — per-query BFS storms, dense matrices, full
/// scans — and are only ever run on the small randomized worlds of
/// RandomWorkload.

// ---------------------------------------------------------------------------
// Eq. 4 / Eq. 5 — weighted reachability by plain forward BFS.
// ---------------------------------------------------------------------------

/// Shortest-path distance from u to v by an unadorned forward BFS over
/// OutNeighbors, bounded by max_hops. Returns reach::kUnreachableDistance
/// beyond the bound. Allocates its own queue/visited arrays every call —
/// no scratch reuse, no Theorem-1 backward trick.
uint32_t OracleDistance(const graph::DirectedGraph& g, graph::NodeId u,
                        graph::NodeId v, uint32_t max_hops);

/// Eq. 5: distance plus the followees of u on at least one shortest path.
/// F_uv is derived from first principles — followee t participates iff
/// d(u,v) = 1 + d(t,v), established by one independent forward BFS from
/// every followee of u (not by reusing the backward-BFS distance field the
/// production NaiveReachability exploits).
reach::ReachQueryResult OracleReachQuery(const graph::DirectedGraph& g,
                                         graph::NodeId u, graph::NodeId v,
                                         uint32_t max_hops);

/// Eq. 4 with the paper's conventions (R(u,u)=1, direct followees 1,
/// unreachable 0).
double OracleReachScore(const graph::DirectedGraph& g, graph::NodeId u,
                        graph::NodeId v, uint32_t max_hops);

/// WeightedReachability adapter over the oracle, so it can stand in for
/// any production backend inside a full linker pipeline.
class OracleReachability : public reach::WeightedReachability {
 public:
  OracleReachability(const graph::DirectedGraph* g, uint32_t max_hops)
      : g_(g), max_hops_(max_hops) {}

  double Score(graph::NodeId u, graph::NodeId v) const override {
    return OracleReachScore(*g_, u, v, max_hops_);
  }
  reach::ReachQueryResult Query(graph::NodeId u,
                                graph::NodeId v) const override {
    return OracleReachQuery(*g_, u, v, max_hops_);
  }
  uint64_t IndexSizeBytes() const override { return 0; }
  const char* Name() const override { return "oracle-forward-bfs"; }

 private:
  const graph::DirectedGraph* g_;
  uint32_t max_hops_;
};

// ---------------------------------------------------------------------------
// Eq. 9 — sliding-window burst detection by full posting-list scan.
// ---------------------------------------------------------------------------

/// |D_e^tau| at `now` by a linear scan of the entity's posting list (no
/// binary search, no bucketing).
uint32_t OracleRecentCount(const kb::ComplementedKnowledgebase& ckb,
                           kb::EntityId e, kb::Timestamp now,
                           kb::Timestamp tau);

/// Thresholded burst mass: the Eq. 9 numerator (count when >= theta1,
/// else 0).
double OracleBurstMass(const kb::ComplementedKnowledgebase& ckb,
                       kb::EntityId e, kb::Timestamp now, kb::Timestamp tau,
                       uint32_t theta1);

/// RecencySource adapter over the linear-scan oracle. Reports kNoEpoch so
/// no propagator ever memoizes oracle results.
class OracleRecencySource : public recency::RecencySource {
 public:
  OracleRecencySource(const kb::ComplementedKnowledgebase* ckb,
                      kb::Timestamp tau, uint32_t theta1)
      : ckb_(ckb), tau_(tau), theta1_(theta1) {}

  uint32_t RecentCount(kb::EntityId e, kb::Timestamp now) const override {
    return OracleRecentCount(*ckb_, e, now, tau_);
  }
  double BurstMass(kb::EntityId e, kb::Timestamp now) const override {
    return OracleBurstMass(*ckb_, e, now, tau_, theta1_);
  }

 private:
  const kb::ComplementedKnowledgebase* ckb_;
  kb::Timestamp tau_;
  uint32_t theta1_;
};

// ---------------------------------------------------------------------------
// Eq. 11 — recency propagation by dense power iteration.
// ---------------------------------------------------------------------------

/// Propagated recency of a cluster's members via S^i = lambda * S^0 +
/// (1 - lambda) * P * S^{i-1}, with P materialized as a dense m x m row
/// matrix (the production path walks sparse adjacency). Iteration count
/// and convergence test mirror PropagatorOptions.
std::vector<double> OraclePropagateCluster(
    const recency::PropagationNetwork& network,
    const recency::RecencySource& source, uint32_t cluster,
    kb::Timestamp now, const recency::PropagatorOptions& options);

/// The CandidateScores convenience (Eq. 9 normalization over the
/// candidate set, dense Eq. 11 per distinct cluster).
std::vector<double> OracleCandidateScores(
    const recency::PropagationNetwork& network,
    const recency::RecencySource& source,
    std::span<const kb::EntityId> candidates, kb::Timestamp now,
    bool enable_propagation, const recency::PropagatorOptions& options);

// ---------------------------------------------------------------------------
// Eq. 6 / Eq. 7 — user influence from raw posting lists.
// ---------------------------------------------------------------------------

/// |D_e^u| by counting the user's occurrences in the posting list (the
/// production path keeps an incremental per-user map).
uint32_t OracleUserTweetCount(const kb::ComplementedKnowledgebase& ckb,
                              kb::EntityId e, kb::UserId u);

/// Inf(u, U_e) of Eq. 6 (tf-idf) or Eq. 7 (entropy, smoothing +1 as in
/// production) in the context of the candidate set.
double OracleInfluence(const kb::ComplementedKnowledgebase& ckb,
                       kb::UserId u, kb::EntityId entity,
                       std::span<const kb::EntityId> candidates,
                       social::InfluenceMethod method);

/// Top-k most influential users of the entity's community, ties broken by
/// ascending user id (the production tie-break). top_k == 0 ranks the
/// whole community.
std::vector<social::InfluentialUser> OracleTopInfluential(
    const kb::ComplementedKnowledgebase& ckb, kb::EntityId entity,
    std::span<const kb::EntityId> candidates, uint32_t top_k,
    social::InfluenceMethod method);

// ---------------------------------------------------------------------------
// Eq. 10 — WLM topical relatedness by std::set_intersection.
// ---------------------------------------------------------------------------

/// |A_a intersect A_b| via materialized std::set_intersection (no merge /
/// gallop switching).
uint32_t OracleInlinkIntersection(const kb::Knowledgebase& kb,
                                  kb::EntityId a, kb::EntityId b);

/// Eq. 10, clamped to [0, 1]; same conventions as production (self
/// relatedness 1, empty inlinks or empty intersection 0).
double OracleWlmRelatedness(const kb::Knowledgebase& kb, kb::EntityId a,
                            kb::EntityId b);

// ---------------------------------------------------------------------------
// Fuzzy candidate generation — brute-force edit-distance scan.
// ---------------------------------------------------------------------------

/// Ids of every surface form within edit distance max_edits of the
/// mention, by a full O(|surfaces|) EditDistance scan. Sorted ascending
/// (the segment index returns the same order).
std::vector<uint32_t> OracleFuzzySurfaces(const kb::Knowledgebase& kb,
                                          std::string_view mention,
                                          uint32_t max_edits);

/// The full candidate-generation contract: exact surface lookup, then the
/// brute-force fuzzy fallback with anchor counts accumulated across
/// matching surfaces, sorted by descending anchor count (stable).
std::vector<kb::Candidate> OracleGenerateCandidates(
    const kb::Knowledgebase& kb, std::string_view mention,
    uint32_t fuzzy_max_edits);

// ---------------------------------------------------------------------------
// Eq. 1 — the full scoring pipeline, composed from the oracles above.
// ---------------------------------------------------------------------------

/// Links one mention with every feature computed by the reference
/// implementations (oracle candidates, popularity share from posting-list
/// sizes, dense Eq. 11 recency, Eq. 8 interest over oracle influential
/// users and the given reachability). Applies the Appendix-D
/// `beta + gamma` rejection when options.reject_below_interest_threshold
/// is set. Mirrors core::EntityLinker::LinkMention semantics exactly.
core::MentionLinkResult OracleLinkMention(
    const kb::Knowledgebase& kb, const kb::ComplementedKnowledgebase& ckb,
    const recency::PropagationNetwork& network,
    const reach::WeightedReachability& reachability,
    std::string_view mention, kb::UserId user, kb::Timestamp now,
    const core::LinkerOptions& options);

}  // namespace mel::testing

#endif  // MEL_TESTING_ORACLE_H_

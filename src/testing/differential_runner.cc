#include "testing/differential_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

#include "core/entity_linker.h"
#include "kb/wlm.h"
#include "reach/distance_label_index.h"
#include "reach/naive_reachability.h"
#include "reach/pruned_online_search.h"
#include "reach/reach_cache.h"
#include "reach/reach_maintainer.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "recency/burst_tracker.h"
#include "recency/recency_propagator.h"
#include "recency/sliding_window.h"
#include "testing/oracle.h"
#include "text/qgram_index.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/simd/simd.h"
#include "util/thread_pool.h"

namespace mel::testing {

namespace {

// Float storage (transitive closure) vs double arithmetic.
constexpr double kFloatTol = 1e-6;
// Oracle vs production: same math, different summation order.
constexpr double kOracleTol = 1e-9;
// Full pipeline through the float-storing reachability backend.
constexpr double kPipelineFloatTol = 3e-6;

// DeriveSeed streams private to the runner (the workload owns 16..19).
enum SeedStream : uint64_t {
  kReachPairStream = 32,
  kFuzzyProbeStream = 33,
  kWlmPairStream = 34,
  kInfluenceStream = 35,
  kPrunedBuildStream = 36,
  kMutationCheckStream = 37,
  kSimdKernelStream = 38,
};

struct DiffMetrics {
  metrics::Counter* cases;
  metrics::Counter* checks;
  metrics::Counter* divergences;
};

const DiffMetrics& GetDiffMetrics() {
  static const DiffMetrics m = [] {
    auto& reg = metrics::Registry();
    DiffMetrics dm;
    dm.cases = reg.GetCounter("testing.diff.cases_total");
    dm.checks = reg.GetCounter("testing.diff.checks_total");
    dm.divergences = reg.GetCounter("testing.diff.divergences_total");
    return dm;
  }();
  return m;
}

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool Near(double a, double b, double tol) { return std::abs(a - b) <= tol; }

/// Collects divergences with the context needed to replay them.
class Recorder {
 public:
  Recorder(DiffReport* report, uint32_t max_divergences)
      : report_(report), max_divergences_(max_divergences) {}

  bool full() const {
    return report_->divergences.size() >= max_divergences_;
  }

  /// Registers one comparison; on failure records `detail` (the repro
  /// dump: check name, operands, both values).
  void Check(bool ok, const std::string& detail) {
    ++report_->checks;
    if (ok || full()) return;
    report_->divergences.push_back(detail);
  }

 private:
  DiffReport* report_;
  uint32_t max_divergences_;
};

std::string DescribeQueryResult(const reach::ReachQueryResult& r) {
  std::ostringstream os;
  if (!r.reachable()) return "{unreachable}";
  os << "{d=" << r.distance << " F=[";
  for (size_t i = 0; i < r.followees.size(); ++i) {
    if (i) os << ",";
    os << r.followees[i];
  }
  os << "]}";
  return os.str();
}

bool SameQueryResult(const reach::ReachQueryResult& a,
                     const reach::ReachQueryResult& b) {
  return a.distance == b.distance && a.followees == b.followees;
}

std::string DescribeRanked(const core::MentionLinkResult& r) {
  std::ostringstream os;
  if (r.probable_new_entity) os << "[new-entity] ";
  for (const auto& s : r.ranked) os << s.entity << ":" << s.score << " ";
  return os.str();
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

void CheckReachability(const RandomWorkload& w, const DiffOptions& opts,
                       Recorder& rec) {
  const graph::DirectedGraph& g = w.world.social.graph;
  const uint32_t n = g.num_nodes();

  util::ThreadPool serial_pool(1);
  reach::NaiveReachability naive(&g, w.max_hops);
  auto tc_inc = reach::TransitiveClosureIndex::Build(
      &g, w.max_hops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  auto tc_naive = reach::TransitiveClosureIndex::Build(
      &g, w.max_hops, reach::TransitiveClosureIndex::Construction::kNaive);
  auto tc_serial = reach::TransitiveClosureIndex::Build(
      &g, w.max_hops,
      reach::TransitiveClosureIndex::Construction::kIncremental,
      &serial_pool);
  auto two_hop = reach::TwoHopIndex::Build(&g, w.max_hops);
  auto dli = reach::DistanceLabelIndex::Build(&g, w.max_hops);
  auto pruned = reach::PrunedOnlineSearch::Build(
      &g, w.max_hops, 3, DeriveSeed(w.seed, kPrunedBuildStream));
  reach::CachedReachability cached(&naive, &g);

  // Save -> mmap-load -> query round trip: the zero-copy mapped views of
  // both arena backends must be query-for-query identical to the
  // heap-built indexes (and hence to the oracle below).
  const std::string two_hop_path =
      "/tmp/mel_diff_2hop_" + Hex(w.seed) + ".mel3";
  const std::string dli_path =
      "/tmp/mel_diff_dli_" + Hex(w.seed) + ".mel3";
  MEL_CHECK(two_hop.Save(two_hop_path).ok());
  MEL_CHECK(dli.Save(dli_path).ok());
  auto two_hop_mapped_r = reach::TwoHopIndex::LoadMapped(two_hop_path, &g);
  auto dli_mapped_r = reach::DistanceLabelIndex::LoadMapped(dli_path, &g);
  MEL_CHECK(two_hop_mapped_r.ok());
  MEL_CHECK(dli_mapped_r.ok());
  const auto& two_hop_mapped = two_hop_mapped_r.value();
  const auto& dli_mapped = dli_mapped_r.value();
  MEL_CHECK(two_hop_mapped.IsMapped());
  MEL_CHECK(dli_mapped.IsMapped());

  // Full V^2 agreement of the three TC constructions. Identical math on
  // identical inputs — scores must match bit for bit, distances exactly.
  for (graph::NodeId u = 0; u < n && !rec.full(); ++u) {
    for (graph::NodeId v = 0; v < n && !rec.full(); ++v) {
      const double inc = tc_inc.Score(u, v);
      const double nav = tc_naive.Score(u, v);
      const double ser = tc_serial.Score(u, v);
      rec.Check(inc == nav && inc == ser,
                "tc-construction-mismatch u=" + std::to_string(u) +
                    " v=" + std::to_string(v) +
                    " incremental=" + std::to_string(inc) +
                    " naive=" + std::to_string(nav) +
                    " serial-pool=" + std::to_string(ser));
      const uint32_t di = tc_inc.Distance(u, v);
      rec.Check(
          di == tc_naive.Distance(u, v) && di == tc_serial.Distance(u, v),
          "tc-distance-mismatch u=" + std::to_string(u) +
              " v=" + std::to_string(v));
    }
  }

  // Sampled pairs across every backend vs the forward-BFS oracle.
  Rng rng(DeriveSeed(w.seed, kReachPairStream));
  for (uint32_t i = 0; i < opts.reach_pair_samples && !rec.full(); ++i) {
    graph::NodeId u = static_cast<graph::NodeId>(rng.Uniform(n));
    graph::NodeId v;
    const uint64_t kind = rng.Uniform(8);
    if (kind == 0) {
      v = u;  // R(u, u) = 1 convention
    } else if (kind == 1 && g.OutDegree(u) > 0) {
      auto nb = g.OutNeighbors(u);  // direct followee: R = 1 convention
      v = nb[rng.Uniform(nb.size())];
    } else {
      v = static_cast<graph::NodeId>(rng.Uniform(n));
    }
    const std::string where =
        " u=" + std::to_string(u) + " v=" + std::to_string(v);

    const auto oracle_q = OracleReachQuery(g, u, v, w.max_hops);
    const double oracle_s = OracleReachScore(g, u, v, w.max_hops);

    auto check_exact = [&](const char* name,
                           const reach::WeightedReachability& backend) {
      const auto q = backend.Query(u, v);
      rec.Check(SameQueryResult(q, oracle_q),
                std::string(name) + "-query-mismatch" + where + " got " +
                    DescribeQueryResult(q) + " oracle " +
                    DescribeQueryResult(oracle_q));
      const double s = backend.Score(u, v);
      rec.Check(s == oracle_s, std::string(name) + "-score-mismatch" +
                                   where + " got " + std::to_string(s) +
                                   " oracle " + std::to_string(oracle_s));
      // Count-only fast path: (distance, |F_uv|) must match the oracle
      // set exactly, and ScoreOnly must be bitwise-equal to Score (both
      // funnel through WeightedScoreFromCount).
      const auto cq = backend.CountQuery(u, v);
      rec.Check(cq.distance == oracle_q.distance &&
                    cq.followee_count == oracle_q.followees.size(),
                std::string(name) + "-count-query-mismatch" + where +
                    " got {d=" + std::to_string(cq.distance) + " n=" +
                    std::to_string(cq.followee_count) + "} oracle " +
                    DescribeQueryResult(oracle_q));
      const double so = backend.ScoreOnly(u, v);
      rec.Check(so == s, std::string(name) + "-score-only-mismatch" +
                             where + " got " + std::to_string(so) +
                             " score " + std::to_string(s));
    };
    check_exact("naive", naive);
    check_exact("two-hop", two_hop);
    check_exact("two-hop-mmap", two_hop_mapped);
    check_exact("dist-label", dli);
    check_exact("dist-label-mmap", dli_mapped);
    check_exact("pruned-online", pruned);
    check_exact("cached", cached);
    check_exact("cached-hit", cached);  // second call exercises the hit path

    const auto tc_q = tc_inc.Query(u, v);
    rec.Check(SameQueryResult(tc_q, oracle_q),
              "tc-query-mismatch" + where + " got " +
                  DescribeQueryResult(tc_q) + " oracle " +
                  DescribeQueryResult(oracle_q));
    rec.Check(Near(tc_inc.Score(u, v), oracle_s, kFloatTol),
              "tc-score-mismatch" + where + " got " +
                  std::to_string(tc_inc.Score(u, v)) + " oracle " +
                  std::to_string(oracle_s));
    // TC count path: distances and counts are integers, so exact even
    // though the stored scores are floats; ScoreOnly reads the same
    // matrix cell as Score, hence bitwise equality.
    const auto tc_cq = tc_inc.CountQuery(u, v);
    rec.Check(tc_cq.distance == oracle_q.distance &&
                  tc_cq.followee_count == oracle_q.followees.size(),
              "tc-count-query-mismatch" + where + " got {d=" +
                  std::to_string(tc_cq.distance) + " n=" +
                  std::to_string(tc_cq.followee_count) + "} oracle " +
                  DescribeQueryResult(oracle_q));
    rec.Check(tc_inc.ScoreOnly(u, v) == tc_inc.Score(u, v),
              "tc-score-only-mismatch" + where);
  }

  // Unlink the round-trip files; the live mappings keep their pages.
  std::remove(two_hop_path.c_str());
  std::remove(dli_path.c_str());
}

// ---------------------------------------------------------------------------
// Fuzzy candidate generation
// ---------------------------------------------------------------------------

void CheckFuzzy(const RandomWorkload& w, const DiffOptions& opts,
                Recorder& rec) {
  const kb::Knowledgebase& kb = w.world.kb();
  const uint32_t max_edits = w.linker.fuzzy_max_edits;
  text::SegmentFuzzyIndex index(std::max(1u, max_edits));
  const auto& surfaces = kb.surfaces();
  for (uint32_t sid = 0; sid < surfaces.size(); ++sid) {
    index.Add(surfaces[sid], sid);
  }

  std::vector<std::string> probes;
  for (const auto& q : w.queries) probes.push_back(q.mention);
  Rng rng(DeriveSeed(w.seed, kFuzzyProbeStream));
  for (uint32_t i = 0; i < opts.fuzzy_probe_samples && !surfaces.empty();
       ++i) {
    std::string s = surfaces[rng.Uniform(surfaces.size())];
    // 1 .. max_edits+1 random edits: within threshold and one beyond, to
    // exercise both the must-match and the must-not-match side.
    const uint32_t edits =
        1 + static_cast<uint32_t>(rng.Uniform(max_edits + 1));
    for (uint32_t e = 0; e < edits; ++e) {
      const uint64_t op = rng.Uniform(3);
      const size_t pos = s.empty() ? 0 : rng.Uniform(s.size());
      const char c = static_cast<char>('a' + rng.Uniform(26));
      if (s.empty() || op == 0) {
        s.insert(s.begin() + static_cast<ptrdiff_t>(pos), c);
      } else if (op == 1) {
        s[pos] = c;
      } else {
        s.erase(s.begin() + static_cast<ptrdiff_t>(pos));
      }
    }
    probes.push_back(std::move(s));
  }

  for (const std::string& probe : probes) {
    if (rec.full()) break;
    const auto got = index.Lookup(probe, max_edits);
    const auto want = OracleFuzzySurfaces(kb, probe, max_edits);
    rec.Check(got == want,
              "fuzzy-lookup-mismatch probe=\"" + probe + "\" got " +
                  std::to_string(got.size()) + " surfaces, oracle " +
                  std::to_string(want.size()));
  }
}

// ---------------------------------------------------------------------------
// WLM + propagation network
// ---------------------------------------------------------------------------

void CheckWlmAndNetwork(const RandomWorkload& w, const DiffOptions& opts,
                        Recorder& rec) {
  const kb::Knowledgebase& kb = w.world.kb();
  kb::WlmRelatedness wlm(&kb);
  Rng rng(DeriveSeed(w.seed, kWlmPairStream));
  const uint32_t n = kb.num_entities();
  for (uint32_t i = 0; i < opts.wlm_pair_samples && !rec.full(); ++i) {
    const auto a = static_cast<kb::EntityId>(rng.Uniform(n));
    const auto b = static_cast<kb::EntityId>(rng.Uniform(n));
    rec.Check(
        wlm.InlinkIntersection(a, b) == OracleInlinkIntersection(kb, a, b),
        "wlm-intersection-mismatch a=" + std::to_string(a) +
            " b=" + std::to_string(b));
    const double got = wlm.Relatedness(a, b);
    const double want = OracleWlmRelatedness(kb, a, b);
    rec.Check(Near(got, want, 1e-12),
              "wlm-relatedness-mismatch a=" + std::to_string(a) +
                  " b=" + std::to_string(b) + " got " +
                  std::to_string(got) + " oracle " + std::to_string(want));
  }

  util::ThreadPool serial_pool(1);
  auto pooled = recency::PropagationNetwork::Build(kb, w.theta2);
  auto serial =
      recency::PropagationNetwork::Build(kb, w.theta2, &serial_pool);
  rec.Check(pooled.IdenticalTo(serial) && serial.IdenticalTo(pooled),
            "network-build-nondeterministic theta2=" +
                std::to_string(w.theta2) +
                " pooled edges=" + std::to_string(pooled.num_edges()) +
                " serial edges=" + std::to_string(serial.num_edges()));
}

// ---------------------------------------------------------------------------
// Recency: window counts, propagator cache on/off, dense oracle
// ---------------------------------------------------------------------------

void CheckRecency(const RandomWorkload& w, Recorder& rec) {
  const kb::Knowledgebase& kb = w.world.kb();
  kb::ComplementedKnowledgebase ckb(&kb);
  ComplementForWorkload(w, &ckb);

  auto network = recency::PropagationNetwork::Build(kb, w.theta2);
  recency::SlidingWindowRecency window(&ckb, w.linker.tau, w.linker.theta1);
  const OracleRecencySource oracle_source(&ckb, w.linker.tau,
                                          w.linker.theta1);

  recency::PropagatorOptions cache_on = w.linker.propagator;
  cache_on.enable_cache = true;
  recency::PropagatorOptions cache_off = w.linker.propagator;
  cache_off.enable_cache = false;
  recency::RecencyPropagator prop_on(&network, &window, cache_on);
  recency::RecencyPropagator prop_off(&network, &window, cache_off);

  for (const auto& q : w.queries) {
    if (rec.full()) break;

    // Eq. 9 inputs agree entity by entity (binary-search window vs scan).
    bool counts_ok = true;
    kb::EntityId bad = 0;
    for (kb::EntityId e = 0; e < kb.num_entities(); ++e) {
      if (window.RecentCount(e, q.now) !=
              OracleRecentCount(ckb, e, q.now, w.linker.tau) ||
          window.BurstMass(e, q.now) !=
              OracleBurstMass(ckb, e, q.now, w.linker.tau,
                              w.linker.theta1)) {
        counts_ok = false;
        bad = e;
        break;
      }
    }
    rec.Check(counts_ok, "recent-count-mismatch e=" + std::to_string(bad) +
                             " now=" + std::to_string(q.now));

    // Eq. 11 over the query's candidate set: cache on == cache off
    // bitwise (same ComputeCluster), both near the dense oracle.
    const auto candidates =
        OracleGenerateCandidates(kb, q.mention, w.linker.fuzzy_max_edits);
    if (candidates.empty()) continue;
    std::vector<kb::EntityId> entities;
    for (const auto& c : candidates) entities.push_back(c.entity);

    for (bool propagate : {true, false}) {
      const auto on = prop_on.CandidateScores(entities, q.now, propagate);
      const auto off = prop_off.CandidateScores(entities, q.now, propagate);
      rec.Check(on == off,
                "recency-cache-mismatch mention=\"" + q.mention +
                    "\" now=" + std::to_string(q.now) +
                    " propagate=" + std::to_string(propagate));
      const auto dense = OracleCandidateScores(
          network, oracle_source, entities, q.now, propagate,
          w.linker.propagator);
      for (size_t i = 0; i < entities.size(); ++i) {
        if (!Near(on[i], dense[i], kOracleTol)) {
          rec.Check(false,
                    "recency-oracle-mismatch mention=\"" + q.mention +
                        "\" entity=" + std::to_string(entities[i]) +
                        " now=" + std::to_string(q.now) + " got " +
                        std::to_string(on[i]) + " dense-oracle " +
                        std::to_string(dense[i]));
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Influence
// ---------------------------------------------------------------------------

void CheckInfluence(const RandomWorkload& w, const DiffOptions& opts,
                    Recorder& rec) {
  const kb::Knowledgebase& kb = w.world.kb();
  kb::ComplementedKnowledgebase ckb(&kb);
  ComplementForWorkload(w, &ckb);
  social::InfluenceEstimator estimator(&ckb, w.linker.influence_method);

  Rng rng(DeriveSeed(w.seed, kInfluenceStream));
  const uint32_t n = kb.num_entities();
  for (uint32_t i = 0; i < opts.influence_entity_samples && !rec.full();
       ++i) {
    const auto entity = static_cast<kb::EntityId>(rng.Uniform(n));
    // Candidate context: the entity plus up to three random others —
    // the discriminativeness term needs a non-trivial E_m.
    std::vector<kb::EntityId> context{entity};
    const uint64_t extra = rng.Uniform(4);
    for (uint64_t j = 0; j < extra; ++j) {
      const auto other = static_cast<kb::EntityId>(rng.Uniform(n));
      if (std::find(context.begin(), context.end(), other) ==
          context.end()) {
        context.push_back(other);
      }
    }

    const auto prod = estimator.TopInfluential(entity, context,
                                               w.linker.top_k_influential);
    const auto want = OracleTopInfluential(ckb, entity, context,
                                           w.linker.top_k_influential,
                                           w.linker.influence_method);
    rec.Check(prod.size() == want.size(),
              "influence-size-mismatch entity=" + std::to_string(entity) +
                  " got " + std::to_string(prod.size()) + " oracle " +
                  std::to_string(want.size()));
    if (prod.size() != want.size()) continue;
    for (size_t j = 0; j < prod.size(); ++j) {
      // The production pipeline multiplies count * (1/total) where the
      // oracle divides; near-equal users may swap positions, so accept a
      // user mismatch when the two influence values are within tolerance.
      const bool same_user = prod[j].user == want[j].user;
      const bool near_tie =
          Near(prod[j].influence, want[j].influence, kOracleTol);
      if (!(same_user ? near_tie : near_tie)) {
        rec.Check(false,
                  "influence-rank-mismatch entity=" +
                      std::to_string(entity) + " pos=" + std::to_string(j) +
                      " got user=" + std::to_string(prod[j].user) + " inf=" +
                      std::to_string(prod[j].influence) + " oracle user=" +
                      std::to_string(want[j].user) + " inf=" +
                      std::to_string(want[j].influence));
        break;
      }
      rec.Check(true, "");
    }
  }
}

// ---------------------------------------------------------------------------
// Full Eq.-1 pipeline across backend configurations
// ---------------------------------------------------------------------------

/// Tolerant comparison of two MentionLinkResults as entity -> features
/// maps (relative ranking across configurations may legally differ only
/// through fp noise, which the map view ignores). With the Appendix-D
/// rejection enabled, an entity missing on one side is excused when its
/// score sits within `tol` of the beta + gamma knife edge.
void CompareRanked(const core::MentionLinkResult& a, const char* a_name,
                   const core::MentionLinkResult& b, const char* b_name,
                   const RandomWorkload& w, size_t query_index, double tol,
                   Recorder& rec) {
  const std::string where = std::string("query#") +
                            std::to_string(query_index) + " \"" +
                            w.queries[query_index].mention + "\" " + a_name +
                            " vs " + b_name;
  std::map<kb::EntityId, const core::ScoredEntity*> ma, mb;
  for (const auto& s : a.ranked) ma[s.entity] = &s;
  for (const auto& s : b.ranked) mb[s.entity] = &s;

  const double threshold = w.linker.beta + w.linker.gamma;
  bool knife_edge = false;
  auto one_sided_ok = [&](const core::ScoredEntity& s) {
    if (!w.linker.reject_below_interest_threshold) return false;
    if (Near(s.score, threshold, tol)) {
      knife_edge = true;
      return true;
    }
    return false;
  };

  for (const auto& [entity, sa] : ma) {
    auto it = mb.find(entity);
    if (it == mb.end()) {
      rec.Check(one_sided_ok(*sa),
                "pipeline-entity-missing " + where + " entity=" +
                    std::to_string(entity) + " only in " + a_name +
                    " score=" + std::to_string(sa->score) + " [" +
                    DescribeRanked(a) + "| " + DescribeRanked(b) + "]");
      continue;
    }
    const core::ScoredEntity& sb = *it->second;
    const bool close = Near(sa->score, sb.score, tol) &&
                       Near(sa->interest, sb.interest, tol) &&
                       Near(sa->recency, sb.recency, tol) &&
                       Near(sa->popularity, sb.popularity, tol);
    rec.Check(close, "pipeline-feature-mismatch " + where + " entity=" +
                         std::to_string(entity) + " " + a_name + " score=" +
                         std::to_string(sa->score) + " interest=" +
                         std::to_string(sa->interest) + " recency=" +
                         std::to_string(sa->recency) + " popularity=" +
                         std::to_string(sa->popularity) + " " + b_name +
                         " score=" + std::to_string(sb.score) +
                         " interest=" + std::to_string(sb.interest) +
                         " recency=" + std::to_string(sb.recency) +
                         " popularity=" + std::to_string(sb.popularity));
  }
  for (const auto& [entity, sb] : mb) {
    if (ma.count(entity)) continue;
    rec.Check(one_sided_ok(*sb),
              "pipeline-entity-missing " + where + " entity=" +
                  std::to_string(entity) + " only in " + b_name +
                  " score=" + std::to_string(sb->score));
  }
  // A knife-edge candidate set may legitimately flip the all-rejected
  // flag; otherwise the verdict must agree.
  if (!knife_edge) {
    rec.Check(a.probable_new_entity == b.probable_new_entity,
              "pipeline-new-entity-mismatch " + where + " " + a_name + "=" +
                  std::to_string(a.probable_new_entity) + " " + b_name +
                  "=" + std::to_string(b.probable_new_entity));
  }
}

/// Exact comparison: same backend, different caching configuration —
/// every double must match bit for bit, order included.
void CompareExact(const core::MentionLinkResult& a, const char* a_name,
                  const core::MentionLinkResult& b, const char* b_name,
                  const RandomWorkload& w, size_t query_index,
                  Recorder& rec) {
  const std::string where = std::string("query#") +
                            std::to_string(query_index) + " \"" +
                            w.queries[query_index].mention + "\" " + a_name +
                            " vs " + b_name;
  bool same = a.ranked.size() == b.ranked.size() &&
              a.probable_new_entity == b.probable_new_entity;
  for (size_t i = 0; same && i < a.ranked.size(); ++i) {
    const auto& x = a.ranked[i];
    const auto& y = b.ranked[i];
    same = x.entity == y.entity && x.score == y.score &&
           x.interest == y.interest && x.recency == y.recency &&
           x.popularity == y.popularity;
  }
  rec.Check(same, "pipeline-exact-mismatch " + where + " [" +
                      DescribeRanked(a) + "| " + DescribeRanked(b) + "]");
}

void CheckFullPipeline(const RandomWorkload& w, Recorder& rec) {
  const kb::Knowledgebase& kb = w.world.kb();
  const graph::DirectedGraph& g = w.world.social.graph;

  auto network = recency::PropagationNetwork::Build(kb, w.theta2);

  reach::NaiveReachability naive(&g, w.max_hops);
  auto tc = reach::TransitiveClosureIndex::Build(
      &g, w.max_hops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  auto two_hop = reach::TwoHopIndex::Build(&g, w.max_hops);
  auto dli = reach::DistanceLabelIndex::Build(&g, w.max_hops);
  auto pruned = reach::PrunedOnlineSearch::Build(
      &g, w.max_hops, 3, DeriveSeed(w.seed, kPrunedBuildStream));
  reach::CachedReachability cached(&naive, &g);
  OracleReachability oracle_reach(&g, w.max_hops);

  struct Config {
    const char* name;
    const reach::WeightedReachability* backend;
    bool use_influential_index;
    bool enable_recency_cache;
    double tol;  // vs the oracle pipeline
  };
  const Config configs[] = {
      {"naive+index+cache", &naive, true, true, kOracleTol},
      {"naive+online+nocache", &naive, false, false, kOracleTol},
      {"tc-incremental", &tc, true, true, kPipelineFloatTol},
      {"two-hop", &two_hop, true, true, kOracleTol},
      {"dist-label", &dli, true, true, kOracleTol},
      {"pruned-online", &pruned, true, true, kOracleTol},
      {"cached-naive", &cached, false, true, kOracleTol},
  };
  constexpr size_t kNumConfigs = std::size(configs);

  // Every configuration owns a CKB replica filled by the identical
  // deterministic complementation (ConfirmLink mutates per-linker state,
  // so sharing one CKB would entangle the configurations).
  std::vector<std::unique_ptr<kb::ComplementedKnowledgebase>> ckbs;
  std::vector<std::unique_ptr<core::EntityLinker>> linkers;
  for (const Config& cfg : configs) {
    auto ckb = std::make_unique<kb::ComplementedKnowledgebase>(&kb);
    ComplementForWorkload(w, ckb.get());
    core::LinkerOptions lo = w.linker;
    lo.use_influential_index = cfg.use_influential_index;
    lo.propagator.enable_cache = cfg.enable_recency_cache;
    linkers.push_back(std::make_unique<core::EntityLinker>(
        &kb, ckb.get(), cfg.backend, &network, lo));
    ckbs.push_back(std::move(ckb));
  }
  kb::ComplementedKnowledgebase oracle_ckb(&kb);
  ComplementForWorkload(w, &oracle_ckb);

  size_t next_feedback = 0;
  for (size_t qi = 0; qi < w.queries.size() && !rec.full(); ++qi) {
    // Interleaved online feedback, applied through every configuration's
    // ConfirmLink and to the oracle's CKB.
    while (next_feedback < w.feedback.size() &&
           w.feedback[next_feedback].before_query <= qi) {
      const FeedbackEvent& ev = w.feedback[next_feedback];
      for (auto& linker : linkers) linker->ConfirmLink(ev.entity, ev.tweet);
      oracle_ckb.AddLink(ev.entity, kb::Posting{ev.tweet.id, ev.tweet.user,
                                                ev.tweet.time});
      ++next_feedback;
    }

    const WorkloadQuery& q = w.queries[qi];
    core::MentionLinkResult results[kNumConfigs];
    for (size_t c = 0; c < kNumConfigs; ++c) {
      results[c] = linkers[c]->LinkMention(q.mention, q.user, q.now);
    }
    const core::MentionLinkResult oracle_result =
        OracleLinkMention(kb, oracle_ckb, network, oracle_reach, q.mention,
                          q.user, q.now, w.linker);

    // Same backend, different cache configuration: bitwise identical.
    CompareExact(results[0], configs[0].name, results[1], configs[1].name,
                 w, qi, rec);
    // cached(naive) serves naive's exact query results: bitwise identical
    // to the uncached naive configuration with the same index setting.
    CompareExact(results[1], configs[1].name, results[6], configs[6].name,
                 w, qi, rec);

    // Everything against the oracle pipeline, tolerance per backend.
    for (size_t c = 0; c < kNumConfigs; ++c) {
      CompareRanked(results[c], configs[c].name, oracle_result, "oracle", w,
                    qi, configs[c].tol, rec);
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental maintenance: mutation replay vs from-scratch rebuilds
// ---------------------------------------------------------------------------

/// Dense reference of BurstTracker's stamped-ring semantics: per-entity
/// head bucket plus an unbounded bucket->count map. A bucket whose slot
/// was reclaimed by a newer one (head - b >= slots) is excluded by the
/// same window predicate the query applies, so map and ring agree on
/// every ApproxRecentCount — this is a genuine oracle for the lazy
/// O(1) retirement, not a second copy of the ring code.
class BurstReplayOracle {
 public:
  BurstReplayOracle(uint32_t num_entities, kb::Timestamp tau,
                    kb::Timestamp bucket_width, uint32_t slots)
      : tau_(tau), bucket_width_(bucket_width), slots_(slots) {
    entities_.resize(num_entities);
  }

  void Observe(kb::EntityId e, kb::Timestamp t) {
    Entity& ent = entities_[e];
    const int64_t b = static_cast<int64_t>(t / bucket_width_);
    if (ent.head >= 0 && ent.head - b >= slots_) return;  // expired drop
    ent.head = std::max(ent.head, b);
    ent.buckets[b] += 1;
  }

  uint32_t RecentCount(kb::EntityId e, kb::Timestamp now) const {
    const Entity& ent = entities_[e];
    if (ent.head < 0) return 0;
    const int64_t now_b = static_cast<int64_t>(now / bucket_width_);
    const int64_t oldest_b = static_cast<int64_t>(
        std::max<kb::Timestamp>(0, now - tau_) / bucket_width_);
    uint32_t total = 0;
    for (const auto& [b, count] : ent.buckets) {
      if (b < oldest_b || b > now_b) continue;
      if (b > ent.head || ent.head - b >= slots_) continue;
      total += count;
    }
    return total;
  }

 private:
  struct Entity {
    int64_t head = -1;
    std::map<int64_t, uint32_t> buckets;
  };
  kb::Timestamp tau_;
  kb::Timestamp bucket_width_;
  int64_t slots_;
  std::vector<Entity> entities_;
};

void CheckIncrementalMaintenance(const RandomWorkload& w,
                                 const DiffOptions& opts, Recorder& rec) {
  if (w.mutations.empty()) return;
  const kb::Knowledgebase& kb = w.world.kb();
  graph::DirectedGraph live = w.world.social.graph;  // mutable copy

  // Backends maintained in place across the whole replay.
  reach::NaiveReachability naive(&live, w.max_hops);  // BFS on live graph
  auto tc = reach::TransitiveClosureIndex::Build(
      &live, w.max_hops,
      reach::TransitiveClosureIndex::Construction::kIncremental);
  auto two_hop = reach::TwoHopIndex::Build(&live, w.max_hops);
  auto dli = reach::DistanceLabelIndex::Build(&live, w.max_hops);
  const uint64_t pruned_seed = DeriveSeed(w.seed, kPrunedBuildStream);
  auto pruned =
      reach::PrunedOnlineSearch::Build(&live, w.max_hops, 3, pruned_seed);
  reach::CachedReachability cached(&naive, &live);

  reach::ReachMaintainer maintainer(&live, w.max_hops);
  maintainer.Register(&naive);  // kUnaffected: queries the live graph
  maintainer.Register(&tc);
  maintainer.Register(&two_hop);
  maintainer.Register(&dli);
  maintainer.Register(&pruned);
  maintainer.Register(&cached);  // after its base; precise invalidation

  const uint32_t n = live.num_nodes();
  Rng rng(DeriveSeed(w.seed, kMutationCheckStream));
  auto sample_pair = [&](graph::NodeId* u, graph::NodeId* v) {
    *u = static_cast<graph::NodeId>(rng.Uniform(n));
    const uint64_t kind = rng.Uniform(8);
    if (kind == 0) {
      *v = *u;
    } else if (kind == 1 && live.OutDegree(*u) > 0) {
      auto nb = live.OutNeighbors(*u);
      *v = nb[rng.Uniform(nb.size())];
    } else {
      *v = static_cast<graph::NodeId>(rng.Uniform(n));
    }
  };

  // Warm the cache so the invalidation path has entries to drop.
  for (uint32_t i = 0; i < opts.mutation_pair_samples; ++i) {
    graph::NodeId u, v;
    sample_pair(&u, &v);
    (void)cached.Query(u, v);
    (void)cached.ScoreOnly(u, v);
  }

  // Tweet ingestion feeds the streaming burst counter; the oracle
  // replays the identical stream through the dense reference.
  constexpr uint32_t kBurstBuckets = 16;
  recency::BurstTracker burst(kb.num_entities(), w.linker.tau,
                              kBurstBuckets, w.linker.theta1);
  BurstReplayOracle burst_oracle(kb.num_entities(), w.linker.tau,
                                 burst.bucket_width(), kBurstBuckets + 1);
  kb::Timestamp last_post_time = 0;

  const size_t num_events = w.mutations.size();
  const double checkpoint_p =
      std::min(1.0, static_cast<double>(opts.mutation_checkpoints) /
                        static_cast<double>(num_events));
  for (size_t i = 0; i < num_events && !rec.full(); ++i) {
    const MutationEvent& ev = w.mutations[i];
    const std::string at = " event#" + std::to_string(i);
    if (ev.kind == MutationEvent::Kind::kAddPost) {
      burst.Observe(ev.entity, ev.tweet.time);
      burst_oracle.Observe(ev.entity, ev.tweet.time);
      last_post_time = std::max(last_post_time, ev.tweet.time);
    } else {
      graph::EdgeDelta delta;
      delta.op = ev.kind == MutationEvent::Kind::kAddEdge
                     ? graph::EdgeDelta::Op::kInsert
                     : graph::EdgeDelta::Op::kErase;
      delta.u = ev.u;
      delta.v = ev.v;
      const auto applied = maintainer.ApplyDelta(delta);
      // The generator guarantees every event is effective (inserted
      // edges are absent, erased edges present) — a no-op here means
      // the simulated edge set diverged from the real graph.
      rec.Check(applied.applied,
                "mutation-noop" + at + " u=" + std::to_string(ev.u) +
                    " v=" + std::to_string(ev.v));
    }

    const bool checkpoint =
        (i + 1 == num_events) || rng.Bernoulli(checkpoint_p);
    if (!checkpoint) continue;

    // --- from-scratch oracles on the mutated graph ---------------------
    auto tc_fresh = reach::TransitiveClosureIndex::Build(
        &live, w.max_hops,
        reach::TransitiveClosureIndex::Construction::kIncremental);
    auto two_hop_fresh = reach::TwoHopIndex::Build(&live, w.max_hops);
    auto dli_fresh = reach::DistanceLabelIndex::Build(&live, w.max_hops);

    // Transitive closure: full V^2 exact agreement, scores bit for bit
    // (patch and rebuild both funnel WeightedScoreFromCount on integer
    // inputs).
    for (graph::NodeId u = 0; u < n && !rec.full(); ++u) {
      for (graph::NodeId v = 0; v < n && !rec.full(); ++v) {
        rec.Check(tc.Distance(u, v) == tc_fresh.Distance(u, v),
                  "tc-patch-distance-mismatch" + at + " u=" +
                      std::to_string(u) + " v=" + std::to_string(v) +
                      " patched=" + std::to_string(tc.Distance(u, v)) +
                      " fresh=" + std::to_string(tc_fresh.Distance(u, v)));
        rec.Check(tc.Score(u, v) == tc_fresh.Score(u, v),
                  "tc-patch-score-mismatch" + at + " u=" +
                      std::to_string(u) + " v=" + std::to_string(v) +
                      " patched=" + std::to_string(tc.Score(u, v)) +
                      " fresh=" + std::to_string(tc_fresh.Score(u, v)));
      }
    }

    // Label indexes, pruned search, and the invalidated cache: sampled
    // pairs against the live-graph BFS backend (ground truth) and the
    // fresh rebuilds. A patched label index may carry MORE labels than
    // the fresh build — equality is demanded of query results only.
    for (uint32_t s = 0; s < opts.mutation_pair_samples && !rec.full();
         ++s) {
      graph::NodeId u, v;
      sample_pair(&u, &v);
      const std::string where = at + " u=" + std::to_string(u) +
                                " v=" + std::to_string(v);
      const auto want = naive.Query(u, v);
      const double want_score = naive.ScoreOnly(u, v);
      auto check = [&](const char* name,
                       const reach::WeightedReachability& backend) {
        const auto got = backend.Query(u, v);
        rec.Check(SameQueryResult(got, want),
                  std::string(name) + "-patch-query-mismatch" + where +
                      " got " + DescribeQueryResult(got) + " want " +
                      DescribeQueryResult(want));
        const double score = backend.ScoreOnly(u, v);
        rec.Check(score == want_score,
                  std::string(name) + "-patch-score-mismatch" + where +
                      " got " + std::to_string(score) + " want " +
                      std::to_string(want_score));
      };
      check("two-hop", two_hop);
      check("two-hop-fresh", two_hop_fresh);
      check("dist-label", dli);
      check("dist-label-fresh", dli_fresh);
      check("pruned-online", pruned);
      check("cached", cached);
      check("cached-hit", cached);
    }

    // Burst counter vs the dense replay oracle, probed at query times
    // and just after the newest ingested post.
    std::vector<kb::Timestamp> probes;
    if (last_post_time > 0) probes.push_back(last_post_time + 1);
    for (int p = 0; p < 3 && !w.queries.empty(); ++p) {
      probes.push_back(w.queries[rng.Uniform(w.queries.size())].now);
    }
    for (kb::Timestamp now : probes) {
      if (rec.full()) break;
      for (kb::EntityId e = 0; e < kb.num_entities(); ++e) {
        const uint32_t got = burst.ApproxRecentCount(e, now);
        const uint32_t want = burst_oracle.RecentCount(e, now);
        if (got != want) {
          rec.Check(false, "burst-replay-mismatch" + at + " e=" +
                               std::to_string(e) + " now=" +
                               std::to_string(now) + " got " +
                               std::to_string(got) + " oracle " +
                               std::to_string(want));
          break;
        }
        rec.Check(true, "");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD kernel tiers: every supported vectorized table vs scalar
// ---------------------------------------------------------------------------

/// Replays every vectorized kernel tier the host+build supports against
/// the scalar table on workload-derived operands — real WLM inlink
/// lists, real 2-hop label arrays — plus synthesized probe tables and
/// frontier words. This is the vectorized/scalar half of the oracle
/// sweep the kernels' bit-identity contract promises (simd_types.h).
void CheckSimdKernels(const RandomWorkload& w, const DiffOptions& opts,
                      Recorder& rec) {
  namespace simd = util::simd;
  std::vector<simd::Level> vec_levels;
  for (simd::Level l : {simd::Level::kSse4, simd::Level::kAvx2}) {
    if (simd::LevelSupported(l)) vec_levels.push_back(l);
  }
  if (vec_levels.empty()) return;
  const simd::KernelTable& scalar = simd::KernelsFor(simd::Level::kScalar);

  Rng rng(DeriveSeed(w.seed, kSimdKernelStream));
  const kb::Knowledgebase& kb = w.world.kb();
  const graph::DirectedGraph& g = w.world.social.graph;
  auto two_hop = reach::TwoHopIndex::Build(&g, w.max_hops);

  // Intersection kernels on real inlink lists (the WLM operand shape).
  for (uint32_t i = 0; i < opts.wlm_pair_samples && !rec.full(); ++i) {
    const auto a = static_cast<kb::EntityId>(rng.Uniform(kb.num_entities()));
    const auto b = static_cast<kb::EntityId>(rng.Uniform(kb.num_entities()));
    const auto la = kb.Inlinks(a);
    const auto lb = kb.Inlinks(b);
    const uint32_t want_merge =
        scalar.merge_count(la.data(), la.size(), lb.data(), lb.size());
    const uint32_t want_gallop =
        scalar.gallop_count(la.data(), la.size(), lb.data(), lb.size());
    for (simd::Level l : vec_levels) {
      const simd::KernelTable& t = simd::KernelsFor(l);
      rec.Check(t.merge_count(la.data(), la.size(), lb.data(), lb.size()) ==
                    want_merge,
                std::string("simd-merge-mismatch level=") +
                    simd::LevelName(l) + " a=" + std::to_string(a) +
                    " b=" + std::to_string(b));
      rec.Check(t.gallop_count(la.data(), la.size(), lb.data(),
                               lb.size()) == want_gallop,
                std::string("simd-gallop-mismatch level=") +
                    simd::LevelName(l) + " a=" + std::to_string(a) +
                    " b=" + std::to_string(b));
    }
  }

  // Min-sum span kernel on real 2-hop label arrays.
  const uint32_t n = g.num_nodes();
  std::vector<uint64_t> want_spans, got_spans;
  for (uint32_t i = 0; i < opts.reach_pair_samples && !rec.full(); ++i) {
    const auto u = static_cast<graph::NodeId>(rng.Uniform(n));
    const auto v = static_cast<graph::NodeId>(rng.Uniform(n));
    const auto outs = two_hop.out_labels(u);
    const auto ins = two_hop.in_labels(v);
    const auto* outs64 = reinterpret_cast<const uint64_t*>(outs.data());
    const auto* ins64 = reinterpret_cast<const uint64_t*>(ins.data());
    const uint32_t seed = static_cast<uint32_t>(rng.Uniform(6));
    const uint64_t base = two_hop.out_offset(u);
    want_spans.resize(outs.size());
    got_spans.resize(outs.size());
    size_t want_n = 0, got_n = 0;
    const uint32_t want_dmin =
        scalar.min_sum_spans(outs64, outs.size(), ins64, ins.size(), seed,
                             base, want_spans.data(), &want_n);
    for (simd::Level l : vec_levels) {
      const uint32_t got_dmin = simd::KernelsFor(l).min_sum_spans(
          outs64, outs.size(), ins64, ins.size(), seed, base,
          got_spans.data(), &got_n);
      rec.Check(got_dmin == want_dmin && got_n == want_n &&
                    std::equal(want_spans.begin(),
                               want_spans.begin() +
                                   static_cast<ptrdiff_t>(want_n),
                               got_spans.begin()),
                std::string("simd-minsum-mismatch level=") +
                    simd::LevelName(l) + " u=" + std::to_string(u) +
                    " v=" + std::to_string(v));
    }
  }

  // Probe-scan kernel on a synthesized open-addressed table (same
  // multiplier and load factor as SegmentFuzzyIndex).
  constexpr size_t kCap = 256;
  constexpr size_t kMask = kCap - 1;
  std::vector<uint64_t> keys(kCap, 0);
  std::vector<uint64_t> present;
  for (size_t i = 0; i < kCap * 6 / 10; ++i) {
    const uint64_t k = rng.Next() | 1;
    size_t idx = (k * 0x9E3779B97F4A7C15ull) & kMask;
    while (keys[idx] != 0 && keys[idx] != k) idx = (idx + 1) & kMask;
    if (keys[idx] == 0) {
      keys[idx] = k;
      present.push_back(k);
    }
  }
  for (uint32_t i = 0; i < opts.fuzzy_probe_samples && !rec.full(); ++i) {
    const uint64_t key = (i % 2 == 0 && !present.empty())
                             ? present[rng.Uniform(present.size())]
                             : (rng.Next() | 1);
    const size_t start = rng.Uniform(kCap);
    const size_t want = scalar.probe_scan(keys.data(), kMask, key, start);
    for (simd::Level l : vec_levels) {
      rec.Check(
          simd::KernelsFor(l).probe_scan(keys.data(), kMask, key, start) ==
              want,
          std::string("simd-probe-mismatch level=") + simd::LevelName(l) +
              " key=" + Hex(key) + " start=" + std::to_string(start));
    }
  }

  // Frontier kernel on random bit words (including non-multiple-of-lane
  // word counts for the tail path).
  for (size_t nwords : {1u, 3u, 5u, 16u, 33u}) {
    if (rec.full()) break;
    std::vector<uint64_t> next(nwords), visited(nwords);
    for (auto& x : next) x = rng.Next();
    for (auto& x : visited) x = rng.Next();
    std::vector<uint64_t> want = next;
    scalar.frontier_and_not(want.data(), visited.data(), nwords);
    for (simd::Level l : vec_levels) {
      std::vector<uint64_t> got = next;
      simd::KernelsFor(l).frontier_and_not(got.data(), visited.data(),
                                           nwords);
      rec.Check(got == want,
                std::string("simd-frontier-mismatch level=") +
                    simd::LevelName(l) +
                    " nwords=" + std::to_string(nwords));
    }
  }
}

}  // namespace

std::string DiffReport::Summary() const {
  std::ostringstream os;
  os << "differential case seed=" << Hex(seed) << ": " << checks
     << " checks, " << divergences.size() << " divergences";
  for (const auto& d : divergences) os << "\n  DIVERGENCE: " << d;
  if (!divergences.empty()) {
    os << "\n  replay: MakeRandomWorkload(" << Hex(seed) << ")";
  }
  return os.str();
}

DiffReport RunDifferentialCase(const RandomWorkload& workload,
                               const DiffOptions& options) {
  DiffReport report;
  report.seed = workload.seed;
  Recorder rec(&report, options.max_divergences);

  CheckReachability(workload, options, rec);
  CheckFuzzy(workload, options, rec);
  CheckWlmAndNetwork(workload, options, rec);
  CheckRecency(workload, rec);
  CheckInfluence(workload, options, rec);
  CheckFullPipeline(workload, rec);
  CheckIncrementalMaintenance(workload, options, rec);
  CheckSimdKernels(workload, options, rec);

  const DiffMetrics& dm = GetDiffMetrics();
  dm.cases->Increment();
  dm.checks->Increment(report.checks);
  dm.divergences->Increment(report.divergences.size());
  return report;
}

DiffReport RunDifferentialCase(uint64_t seed,
                               const RandomWorkloadOptions& wopts,
                               const DiffOptions& options) {
  return RunDifferentialCase(MakeRandomWorkload(seed, wopts), options);
}

}  // namespace mel::testing

#include "testing/random_workload.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "util/random.h"

namespace mel::testing {

namespace {

// DeriveSeed streams used by the workload machinery. Streams 0..2 are
// claimed by gen::WithMasterSeed; everything here starts at 16.
enum SeedStream : uint64_t {
  kParamsStream = 16,
  kQueryStream = 17,
  kFeedbackStream = 18,
  kComplementStream = 19,
  kMutationStream = 20,
};

// A mention guaranteed to miss both the exact and the fuzzy path: 40
// characters is farther (in length alone) from every generated surface
// than any fuzzy_max_edits under test.
std::string UnmatchableMention(Rng* rng) {
  std::string s;
  for (int i = 0; i < 40; ++i) {
    s.push_back(static_cast<char>('a' + rng->Uniform(26)));
  }
  return s;
}

// One random character edit (substitute / insert / delete).
std::string Typo(std::string s, Rng* rng) {
  if (s.empty()) return s;
  const uint64_t op = rng->Uniform(3);
  const size_t pos = rng->Uniform(s.size());
  const char c = static_cast<char>('a' + rng->Uniform(26));
  if (op == 0) {
    s[pos] = c;
  } else if (op == 1) {
    s.insert(s.begin() + static_cast<ptrdiff_t>(pos), c);
  } else {
    s.erase(s.begin() + static_cast<ptrdiff_t>(pos));
  }
  return s;
}

}  // namespace

RandomWorkload MakeRandomWorkload(uint64_t seed,
                                  const RandomWorkloadOptions& options) {
  RandomWorkload w;
  w.seed = seed;

  Rng params(DeriveSeed(seed, kParamsStream));
  const double scale = options.scale;
  auto scaled = [&](uint32_t base, uint32_t spread) {
    return static_cast<uint32_t>(
        std::max(1.0, scale * (base + params.Uniform(spread))));
  };

  // --- world ------------------------------------------------------------
  gen::WorldOptions wo;
  wo.kb.num_entities = scaled(40, 80);
  wo.kb.num_topics = 4 + static_cast<uint32_t>(params.Uniform(6));
  wo.kb.num_ambiguous_surfaces = std::max(4u, wo.kb.num_entities / 3);
  wo.kb.max_candidates_per_surface =
      2 + static_cast<uint32_t>(params.Uniform(4));
  wo.kb.links_per_entity = 4 + static_cast<uint32_t>(params.Uniform(7));
  wo.kb.cross_topic_link_prob = 0.02 + 0.08 * params.UniformDouble();
  wo.social.num_users = scaled(40, 80);
  wo.social.avg_followees = 5 + 7 * params.UniformDouble();
  wo.social.hubs_per_topic = 1 + static_cast<uint32_t>(params.Uniform(2));
  wo.tweets.num_tweets = scaled(300, 600);
  wo.tweets.duration =
      (20 + static_cast<kb::Timestamp>(params.Uniform(21))) *
      kb::kSecondsPerDay;
  wo.tweets.num_burst_events = 3 + static_cast<uint32_t>(params.Uniform(6));
  wo.tweets.typo_prob = 0.05;
  w.world = gen::GenerateWorld(gen::WithMasterSeed(wo, seed));

  // --- offline complementation -----------------------------------------
  w.split = gen::FilterActiveUsers(w.world.corpus, 0);  // the whole corpus
  w.noise_rate = 0.1 * params.UniformDouble();
  w.complement_seed = DeriveSeed(seed, kComplementStream);

  // --- framework parameters ---------------------------------------------
  core::LinkerOptions& lo = w.linker;
  {
    // Random point on the (alpha, beta, gamma) simplex.
    double a = params.UniformDouble();
    double b = params.UniformDouble();
    if (a > b) std::swap(a, b);
    lo.alpha = a;
    lo.beta = b - a;
    lo.gamma = 1.0 - b;
  }
  lo.tau = (1 + static_cast<kb::Timestamp>(params.Uniform(5))) *
           kb::kSecondsPerDay;
  lo.theta1 = 2 + static_cast<uint32_t>(params.Uniform(11));
  lo.top_k_influential = static_cast<uint32_t>(params.Uniform(9));  // 0..8
  lo.top_k_results = 256;  // see header: defeat fp-near-tie truncation
  lo.influence_method = params.Bernoulli(0.5)
                            ? social::InfluenceMethod::kEntropy
                            : social::InfluenceMethod::kTfIdf;
  lo.enable_recency_propagation = params.Bernoulli(0.8);
  lo.fuzzy_max_edits = 1 + static_cast<uint32_t>(params.Uniform(2));
  lo.reject_below_interest_threshold = params.Bernoulli(0.5);
  lo.propagator.lambda = 0.5 + 0.45 * params.UniformDouble();
  lo.propagator.max_iterations =
      8 + static_cast<uint32_t>(params.Uniform(16));
  lo.propagator.convergence_epsilon = 0.0;  // fixed iteration count
  w.theta2 = 0.4 + 0.3 * params.UniformDouble();
  w.max_hops = 4 + static_cast<uint32_t>(params.Uniform(3));

  // --- query stream ------------------------------------------------------
  Rng qrng(DeriveSeed(seed, kQueryStream));
  const auto& surfaces = w.world.kb().surfaces();
  const auto& ambiguous = w.world.kb_world.ambiguous_surfaces;
  const kb::Timestamp t_end =
      wo.tweets.start_time + wo.tweets.duration + 2 * kb::kSecondsPerDay;
  for (uint32_t q = 0; q < options.num_queries; ++q) {
    WorkloadQuery query;
    const uint64_t kind = qrng.Uniform(10);
    if (kind < 4 && !surfaces.empty()) {
      query.mention = surfaces[qrng.Uniform(surfaces.size())];
    } else if (kind < 6 && !ambiguous.empty()) {
      query.mention = ambiguous[qrng.Uniform(ambiguous.size())];
    } else if (kind < 9 && !surfaces.empty()) {
      query.mention = Typo(surfaces[qrng.Uniform(surfaces.size())], &qrng);
    } else {
      query.mention = UnmatchableMention(&qrng);
    }
    query.user = static_cast<kb::UserId>(
        qrng.Uniform(w.world.social.graph.num_nodes()));
    query.now = wo.tweets.start_time +
                static_cast<kb::Timestamp>(qrng.Uniform(
                    static_cast<uint64_t>(t_end - wo.tweets.start_time)));
    w.queries.push_back(std::move(query));
  }

  // --- feedback events ---------------------------------------------------
  Rng frng(DeriveSeed(seed, kFeedbackStream));
  for (uint32_t i = 0; i < options.num_feedback_events; ++i) {
    FeedbackEvent ev;
    ev.before_query =
        static_cast<uint32_t>(frng.Uniform(options.num_queries + 1));
    ev.entity = static_cast<kb::EntityId>(
        frng.Uniform(w.world.kb().num_entities()));
    ev.tweet.id = 1000000 + i;
    ev.tweet.user = static_cast<kb::UserId>(
        frng.Uniform(w.world.social.graph.num_nodes()));
    ev.tweet.time = wo.tweets.start_time +
                    static_cast<kb::Timestamp>(frng.Uniform(
                        static_cast<uint64_t>(t_end - wo.tweets.start_time)));
    w.feedback.push_back(ev);
  }
  std::stable_sort(w.feedback.begin(), w.feedback.end(),
                   [](const FeedbackEvent& a, const FeedbackEvent& b) {
                     return a.before_query < b.before_query;
                   });

  // --- graph / corpus mutation events ------------------------------------
  if (options.num_mutation_events > 0) {
    Rng mrng(DeriveSeed(seed, kMutationStream));
    const graph::DirectedGraph& g = w.world.social.graph;
    const uint32_t num_users = g.num_nodes();
    // Simulated evolving edge set, seeded from the generated graph:
    // `edges` samples erasures, `present` screens insertions, and both
    // track the stream as it is generated so every event is effective at
    // its position (no-op-free replay is part of the contract).
    std::vector<std::pair<kb::UserId, kb::UserId>> edges;
    std::set<std::pair<kb::UserId, kb::UserId>> present;
    for (graph::NodeId u = 0; u < num_users; ++u) {
      for (graph::NodeId v : g.OutNeighbors(u)) {
        edges.emplace_back(u, v);
        present.emplace(u, v);
      }
    }
    // Effectiveness is guaranteed in stream order, so the events must
    // STAY in generation order: drawing the before_query positions up
    // front and assigning them sorted keeps the stream both ordered and
    // no-op-free (a post-hoc sort could swap an insert/erase pair of the
    // same edge).
    std::vector<uint32_t> positions(options.num_mutation_events);
    for (auto& p : positions) {
      p = static_cast<uint32_t>(mrng.Uniform(options.num_queries + 1));
    }
    std::sort(positions.begin(), positions.end());
    for (uint32_t i = 0; i < options.num_mutation_events; ++i) {
      MutationEvent ev;
      ev.before_query = positions[i];
      const uint64_t kind = mrng.Uniform(10);
      bool placed = false;
      if (kind < 3 && !edges.empty()) {
        const size_t idx = mrng.Uniform(edges.size());
        ev.kind = MutationEvent::Kind::kRemoveEdge;
        ev.u = edges[idx].first;
        ev.v = edges[idx].second;
        present.erase(edges[idx]);
        edges[idx] = edges.back();
        edges.pop_back();
        placed = true;
      } else if (kind < 7 && num_users > 1) {
        for (int attempt = 0; attempt < 16 && !placed; ++attempt) {
          const auto u = static_cast<kb::UserId>(mrng.Uniform(num_users));
          const auto v = static_cast<kb::UserId>(mrng.Uniform(num_users));
          if (u == v || present.count({u, v})) continue;
          ev.kind = MutationEvent::Kind::kAddEdge;
          ev.u = u;
          ev.v = v;
          edges.emplace_back(u, v);
          present.emplace(u, v);
          placed = true;
        }
      }
      if (!placed) {  // kAddPost, or the fallback for a saturated graph
        ev.kind = MutationEvent::Kind::kAddPost;
        ev.entity = static_cast<kb::EntityId>(
            mrng.Uniform(w.world.kb().num_entities()));
        ev.tweet.id = 2000000 + i;
        ev.tweet.user = static_cast<kb::UserId>(mrng.Uniform(num_users));
        ev.tweet.time =
            wo.tweets.start_time +
            static_cast<kb::Timestamp>(mrng.Uniform(
                static_cast<uint64_t>(t_end - wo.tweets.start_time)));
      }
      w.mutations.push_back(ev);
    }
  }
  return w;
}

void ComplementForWorkload(const RandomWorkload& workload,
                           kb::ComplementedKnowledgebase* ckb) {
  gen::ComplementWithOracle(workload.world, workload.split,
                            workload.noise_rate, workload.complement_seed,
                            ckb);
}

}  // namespace mel::testing

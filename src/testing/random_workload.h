#ifndef MEL_TESTING_RANDOM_WORKLOAD_H_
#define MEL_TESTING_RANDOM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/entity_linker.h"
#include "gen/workload.h"
#include "kb/complemented_kb.h"
#include "kb/types.h"

namespace mel::testing {

/// \brief One mention query of a differential case.
struct WorkloadQuery {
  std::string mention;
  kb::UserId user = 0;
  kb::Timestamp now = 0;
};

/// \brief One online-feedback event (a user-confirmed link), applied
/// before queries[before_query] through every configuration under test.
struct FeedbackEvent {
  uint32_t before_query = 0;
  kb::EntityId entity = kb::kInvalidEntity;
  kb::Tweet tweet;
};

/// \brief One incremental-maintenance event: a follow-edge mutation or a
/// tweet ingestion, applied before queries[before_query]. Edge events are
/// generated against a simulated evolving edge set, so at its position in
/// the stream a kRemoveEdge always names a live edge and a kAddEdge a
/// missing non-loop one — replaying the stream through
/// graph::DirectedGraph::InsertEdge / EraseEdge never no-ops.
struct MutationEvent {
  enum class Kind : uint8_t { kAddEdge, kRemoveEdge, kAddPost };
  uint32_t before_query = 0;
  Kind kind = Kind::kAddEdge;
  /// Follow-edge endpoints (kAddEdge / kRemoveEdge only).
  kb::UserId u = 0;
  kb::UserId v = 0;
  /// Ingested tweet (kAddPost only).
  kb::EntityId entity = kb::kInvalidEntity;
  kb::Tweet tweet;
};

struct RandomWorkloadOptions {
  uint32_t num_queries = 24;
  uint32_t num_feedback_events = 8;
  /// Interleaved graph/corpus mutations (default 0: pre-mutation
  /// workloads stay bit-identical; the events draw from their own
  /// DeriveSeed stream, so enabling them changes no other field either).
  uint32_t num_mutation_events = 0;
  /// Multiplier on world sizes (1.0 = a few dozen entities/users and a
  /// few hundred tweets — small enough for the V^2 and per-query-BFS
  /// oracle checks to stay fast).
  double scale = 1.0;
};

/// \brief A fully deterministic differential-test case: a synthetic
/// world, randomized framework parameters, a query stream, and
/// interleaved feedback — all derived from ONE uint64 seed.
///
/// Bit-reproducibility is the contract: MakeRandomWorkload(seed) returns
/// an identical workload on every run and thread count (every generator
/// seeds a private Rng via DeriveSeed; nothing reads global RNG state),
/// so a failure report only ever needs to print the seed.
struct RandomWorkload {
  uint64_t seed = 0;

  gen::World world;
  /// All tweets of the corpus (the offline-complementation input).
  gen::DatasetSplit split;
  /// Fraction of offline links flipped to a wrong co-candidate.
  double noise_rate = 0;
  uint64_t complement_seed = 0;

  /// Randomized framework parameters. top_k_results is pinned high (256)
  /// so backend comparisons never hinge on a truncation near-tie, and
  /// propagator.convergence_epsilon is pinned to 0 so every
  /// implementation runs the same fixed iteration count (a tolerance-
  /// close delta must not let one implementation stop an iteration
  /// early).
  core::LinkerOptions linker;
  /// Propagation-network threshold theta2 and reachability hop bound H.
  double theta2 = 0.6;
  uint32_t max_hops = 5;

  std::vector<WorkloadQuery> queries;
  /// Sorted by before_query (stable).
  std::vector<FeedbackEvent> feedback;
  /// Sorted by before_query (stable). Empty unless
  /// RandomWorkloadOptions::num_mutation_events > 0.
  std::vector<MutationEvent> mutations;
};

RandomWorkload MakeRandomWorkload(uint64_t seed,
                                  const RandomWorkloadOptions& options = {});

/// Replays the workload's offline complementation into `ckb`. Every
/// configuration under test gets its OWN ComplementedKnowledgebase
/// (ConfirmLink mutates per-linker state), each filled by this exact
/// same deterministic sequence.
void ComplementForWorkload(const RandomWorkload& workload,
                           kb::ComplementedKnowledgebase* ckb);

}  // namespace mel::testing

#endif  // MEL_TESTING_RANDOM_WORKLOAD_H_

#ifndef MEL_GEN_KB_GENERATOR_H_
#define MEL_GEN_KB_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/knowledgebase.h"
#include "util/random.h"

namespace mel::gen {

/// \brief Parameters of the synthetic knowledgebase.
///
/// The generator substitutes for the Wikipedia dump of Sec. 5.1.1. It
/// reproduces the structural properties the algorithms depend on:
/// many-to-many mention/entity ambiguity, Zipfian entity popularity,
/// topic-clustered hyperlinks (so WLM relatedness is meaningful), and
/// surface-form variety (canonical names plus shared nicknames).
struct KbGenOptions {
  uint32_t num_entities = 2000;
  uint32_t num_topics = 40;
  /// Number of ambiguous surface forms shared by several entities (the
  /// "Jordan" effect). Each maps to 2..max_candidates entities.
  uint32_t num_ambiguous_surfaces = 600;
  uint32_t max_candidates_per_surface = 6;
  /// Zipf skew of entity popularity (drives anchor counts).
  double popularity_skew = 1.0;
  /// Hyperlinks per entity and the chance a link crosses topics.
  uint32_t links_per_entity = 12;
  double cross_topic_link_prob = 0.02;
  /// Description length and topic vocabulary size (tokens per topic).
  uint32_t description_tokens = 25;
  uint32_t topic_vocabulary = 150;
  uint64_t seed = 42;
};

/// \brief A generated knowledgebase plus the ground-truth structure the
/// tweet generator and the benchmarks need.
struct GeneratedKb {
  kb::Knowledgebase knowledgebase;
  /// Topic of each entity.
  std::vector<uint32_t> entity_topic;
  /// Popularity weight of each entity (Zipf mass, larger = more popular).
  std::vector<double> entity_popularity;
  /// The ambiguous surface forms, and for each the entities sharing it.
  std::vector<std::string> ambiguous_surfaces;
  std::vector<std::vector<kb::EntityId>> surface_entities;
  /// For each entity, indices into ambiguous_surfaces it participates in.
  std::vector<std::vector<uint32_t>> entity_ambiguous_surfaces;
  /// Entities grouped by topic.
  std::vector<std::vector<kb::EntityId>> topic_entities;
  /// Canonical (unique) surface of each entity.
  std::vector<std::string> canonical_surface;
};

/// Generates a finalized knowledgebase per the options.
GeneratedKb GenerateKnowledgebase(const KbGenOptions& options);

/// Produces a pronounceable pseudo-name from the rng (e.g. "morandel").
std::string SyntheticName(Rng* rng);

}  // namespace mel::gen

#endif  // MEL_GEN_KB_GENERATOR_H_

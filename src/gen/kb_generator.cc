#include "gen/kb_generator.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace mel::gen {

namespace {

constexpr const char* kSyllables[] = {
    "ka", "mo", "ri", "ta", "lu", "ven", "dor", "mi", "sa", "rel",
    "an", "jo", "ber", "chi", "na", "tor", "el", "gra", "vin", "zu",
};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

kb::EntityCategory SampleCategory(Rng* rng) {
  // Matches the category mix reported in Appendix C.1 of the paper:
  // Person 71.35%, Movie&Music 15.4%, Location 8.38%, Company 2.6%,
  // Product 2.27%.
  double u = rng->UniformDouble();
  if (u < 0.7135) return kb::EntityCategory::kPerson;
  if (u < 0.8675) return kb::EntityCategory::kMovieMusic;
  if (u < 0.9513) return kb::EntityCategory::kLocation;
  if (u < 0.9773) return kb::EntityCategory::kCompany;
  return kb::EntityCategory::kProduct;
}

std::string TopicToken(uint32_t topic, uint32_t index) {
  return "t" + std::to_string(topic) + "w" + std::to_string(index);
}

}  // namespace

std::string SyntheticName(Rng* rng) {
  size_t count = 2 + rng->Uniform(3);
  std::string name;
  for (size_t i = 0; i < count; ++i) {
    name += kSyllables[rng->Uniform(kNumSyllables)];
  }
  return name;
}

GeneratedKb GenerateKnowledgebase(const KbGenOptions& options) {
  MEL_CHECK(options.num_entities > 0 && options.num_topics > 0);
  Rng rng(options.seed);
  GeneratedKb out;
  const uint32_t n = options.num_entities;

  // Topic assignment (skewed sizes) and Zipf popularity by entity id.
  ZipfSampler topic_sampler(options.num_topics, 0.8);
  ZipfSampler popularity(n, options.popularity_skew);
  out.entity_topic.resize(n);
  out.entity_popularity.resize(n);
  out.topic_entities.resize(options.num_topics);
  out.entity_ambiguous_surfaces.resize(n);
  out.canonical_surface.resize(n);

  kb::Knowledgebase& kbase = out.knowledgebase;
  for (kb::EntityId e = 0; e < n; ++e) {
    uint32_t topic = static_cast<uint32_t>(topic_sampler.Sample(&rng));
    out.entity_topic[e] = topic;
    out.entity_popularity[e] = popularity.Probability(e);
    out.topic_entities[topic].push_back(e);

    std::vector<std::string> description;
    description.reserve(options.description_tokens);
    for (uint32_t k = 0; k < options.description_tokens; ++k) {
      description.push_back(TopicToken(
          topic, static_cast<uint32_t>(rng.Uniform(options.topic_vocabulary))));
    }
    // A couple of entity-unique context tokens.
    description.push_back("eid" + std::to_string(e) + "a");
    description.push_back("eid" + std::to_string(e) + "b");

    kb::EntityId id = kbase.AddEntity(SyntheticName(&rng),
                                      SampleCategory(&rng), description);
    MEL_CHECK(id == e);

    // Unique two-token canonical surface ("fullname"); the 'q' marker
    // keeps it disjoint from the ambiguous-surface namespace and the
    // two-token shape exercises multi-token gazetteer matching.
    out.canonical_surface[e] =
        SyntheticName(&rng) + " q" + std::to_string(e);
    uint32_t anchors = 1 + static_cast<uint32_t>(
                               5000.0 * out.entity_popularity[e]);
    kbase.AddSurfaceForm(out.canonical_surface[e], e, anchors);
  }

  // Ambiguous surface forms shared by several entities — the core
  // disambiguation difficulty ("Jordan" -> country, shoe, player, expert).
  out.ambiguous_surfaces.reserve(options.num_ambiguous_surfaces);
  out.surface_entities.reserve(options.num_ambiguous_surfaces);
  for (uint32_t s = 0; s < options.num_ambiguous_surfaces; ++s) {
    std::string surface = SyntheticName(&rng) + "x" + std::to_string(s);
    uint32_t fanout =
        2 + static_cast<uint32_t>(
                rng.Uniform(std::max(1u, options.max_candidates_per_surface - 1)));
    std::unordered_set<kb::EntityId> chosen;
    std::unordered_set<uint32_t> topics_used;
    for (uint32_t attempt = 0; attempt < fanout * 8 && chosen.size() < fanout;
         ++attempt) {
      kb::EntityId e = static_cast<kb::EntityId>(popularity.Sample(&rng));
      if (chosen.contains(e)) continue;
      // Prefer entities from distinct topics, as real ambiguous names
      // usually cross domains.
      if (topics_used.contains(out.entity_topic[e]) &&
          rng.UniformDouble() < 0.8) {
        continue;
      }
      chosen.insert(e);
      topics_used.insert(out.entity_topic[e]);
    }
    if (chosen.size() < 2) continue;
    std::vector<kb::EntityId> entities(chosen.begin(), chosen.end());
    std::sort(entities.begin(), entities.end());
    for (kb::EntityId e : entities) {
      uint32_t anchors =
          1 + static_cast<uint32_t>(3000.0 * out.entity_popularity[e] *
                                    (0.5 + rng.UniformDouble()));
      kbase.AddSurfaceForm(surface, e, anchors);
      out.entity_ambiguous_surfaces[e].push_back(
          static_cast<uint32_t>(out.ambiguous_surfaces.size()));
    }
    out.ambiguous_surfaces.push_back(std::move(surface));
    out.surface_entities.push_back(std::move(entities));
  }

  // Hyperlinks: mostly within topic, popularity-biased targets, so WLM
  // clusters entities by topic.
  std::vector<ZipfSampler> topic_pop;
  topic_pop.reserve(options.num_topics);
  for (uint32_t t = 0; t < options.num_topics; ++t) {
    topic_pop.emplace_back(std::max<size_t>(1, out.topic_entities[t].size()),
                           options.popularity_skew);
  }
  for (kb::EntityId e = 0; e < n; ++e) {
    for (uint32_t l = 0; l < options.links_per_entity; ++l) {
      kb::EntityId target;
      if (rng.UniformDouble() < options.cross_topic_link_prob) {
        target = static_cast<kb::EntityId>(popularity.Sample(&rng));
      } else {
        uint32_t topic = out.entity_topic[e];
        const auto& members = out.topic_entities[topic];
        if (members.size() < 2) continue;
        target = members[topic_pop[topic].Sample(&rng)];
      }
      if (target != e) kbase.AddHyperlink(e, target);
    }
  }

  kbase.Finalize();
  return out;
}

}  // namespace mel::gen

#include "gen/tweet_generator.h"

#include <algorithm>

#include "util/logging.h"

namespace mel::gen {

namespace {

// Applies a single-character substitution typo.
std::string ApplyTypo(const std::string& s, Rng* rng) {
  if (s.empty()) return s;
  std::string out = s;
  size_t pos = rng->Uniform(out.size());
  char replacement = static_cast<char>('a' + rng->Uniform(26));
  if (out[pos] == replacement) replacement = replacement == 'z' ? 'a' : replacement + 1;
  if (out[pos] == ' ') return out;  // keep token structure intact
  out[pos] = replacement;
  return out;
}

}  // namespace

Corpus GenerateTweets(const GeneratedKb& kb_world,
                      const GeneratedSocial& social,
                      const TweetGenOptions& options) {
  Rng rng(options.seed);
  Corpus corpus;
  const kb::Knowledgebase& kbase = kb_world.knowledgebase;
  const uint32_t num_users =
      static_cast<uint32_t>(social.user_topics.size());
  const uint32_t num_topics =
      static_cast<uint32_t>(kb_world.topic_entities.size());
  MEL_CHECK(num_users > 0);

  // Burst events on popular entities, spread over the timeline.
  ZipfSampler entity_pop(kbase.num_entities(), 1.0);
  for (uint32_t i = 0; i < options.num_burst_events; ++i) {
    BurstEvent event;
    event.entity = static_cast<kb::EntityId>(entity_pop.Sample(&rng));
    event.begin = options.start_time +
                  static_cast<kb::Timestamp>(
                      rng.Uniform(static_cast<uint64_t>(options.duration)));
    event.end = event.begin + options.burst_duration;
    corpus.events.push_back(event);
  }

  ZipfSampler activity(num_users, options.activity_skew);
  std::vector<ZipfSampler> topic_entity_pop;
  topic_entity_pop.reserve(num_topics);
  for (uint32_t t = 0; t < num_topics; ++t) {
    topic_entity_pop.emplace_back(
        std::max<size_t>(1, kb_world.topic_entities[t].size()),
        options.entity_skew);
  }

  auto sample_topic_entity = [&](uint32_t topic) -> kb::EntityId {
    const auto& members = kb_world.topic_entities[topic];
    if (members.empty()) return kb::kInvalidEntity;
    return members[topic_entity_pop[topic].Sample(&rng)];
  };

  auto surface_for = [&](kb::EntityId e) -> std::string {
    const auto& ambiguous = kb_world.entity_ambiguous_surfaces[e];
    std::string surface;
    if (!ambiguous.empty() &&
        rng.UniformDouble() < options.ambiguous_surface_prob) {
      surface = kb_world.ambiguous_surfaces[ambiguous[rng.Uniform(
          ambiguous.size())]];
    } else {
      surface = kb_world.canonical_surface[e];
    }
    if (options.typo_prob > 0 && rng.Bernoulli(options.typo_prob)) {
      surface = ApplyTypo(surface, &rng);
    }
    return surface;
  };

  auto append_context = [&](kb::EntityId e, std::string* text) {
    const auto& description = kbase.entity(e).description;
    for (uint32_t k = 0; k < options.description_tokens; ++k) {
      if (description.empty()) break;
      text->push_back(' ');
      text->append(
          kbase.vocab().Word(description[rng.Uniform(description.size())]));
    }
  };

  corpus.tweets.reserve(options.num_tweets);
  for (uint32_t i = 0; i < options.num_tweets; ++i) {
    LabeledTweet lt;
    lt.tweet.user = static_cast<kb::UserId>(activity.Sample(&rng));
    lt.tweet.time =
        options.start_time +
        static_cast<kb::Timestamp>(
            rng.Uniform(static_cast<uint64_t>(options.duration)));

    // Entity choice: bursting entity, else a topic from the author's
    // interests (or a random one for topic diversity).
    kb::EntityId entity = kb::kInvalidEntity;
    if (rng.UniformDouble() < options.burst_tweet_prob) {
      std::vector<const BurstEvent*> active;
      for (const auto& event : corpus.events) {
        if (lt.tweet.time >= event.begin && lt.tweet.time < event.end) {
          active.push_back(&event);
        }
      }
      if (!active.empty()) {
        const BurstEvent* event = active[rng.Uniform(active.size())];
        if (rng.UniformDouble() < options.burst_capture_prob) {
          entity = event->entity;
        } else {
          entity = sample_topic_entity(kb_world.entity_topic[event->entity]);
        }
        // Bursts engage the topic's audience: usually re-sample the
        // author from users interested in the bursting topic.
        if (entity != kb::kInvalidEntity &&
            rng.UniformDouble() < options.burst_author_affinity) {
          uint32_t topic = kb_world.entity_topic[entity];
          const auto& audience = social.topic_users[topic];
          if (!audience.empty()) {
            lt.tweet.user = audience[rng.Uniform(audience.size())];
          }
        }
      }
    }
    if (entity == kb::kInvalidEntity) {
      uint32_t topic;
      const auto& interests = social.user_topics[lt.tweet.user];
      if (interests.empty() || rng.UniformDouble() < options.offtopic_prob) {
        topic = static_cast<uint32_t>(rng.Uniform(num_topics));
      } else {
        topic = interests[rng.Uniform(interests.size())];
      }
      entity = sample_topic_entity(topic);
      if (entity == kb::kInvalidEntity) entity = 0;
      // Hub accounts produce a sizable share of each topic's tweets.
      const auto& hubs = social.topic_hubs[kb_world.entity_topic[entity]];
      if (!hubs.empty() && rng.UniformDouble() < options.hub_author_prob) {
        lt.tweet.user = hubs[rng.Uniform(hubs.size())];
      }
    }

    // First mention + optional coherent extra mentions from its topic.
    std::vector<kb::EntityId> mention_entities{entity};
    while (rng.UniformDouble() < options.extra_mention_prob &&
           mention_entities.size() < 4) {
      kb::EntityId extra =
          sample_topic_entity(kb_world.entity_topic[entity]);
      if (extra == kb::kInvalidEntity) break;
      if (std::find(mention_entities.begin(), mention_entities.end(),
                    extra) != mention_entities.end()) {
        break;
      }
      mention_entities.push_back(extra);
    }

    std::string text = "nz" + std::to_string(rng.Uniform(100000));
    for (kb::EntityId e : mention_entities) {
      std::string surface = surface_for(e);
      text.push_back(' ');
      text.append(surface);
      append_context(e, &text);
      lt.mentions.push_back(LabeledMention{std::move(surface), e});
    }
    for (uint32_t k = 0; k < options.noise_tokens; ++k) {
      text.append(" nz" + std::to_string(rng.Uniform(100000)));
    }
    // Misleading in-vocabulary tokens from random entities' descriptions.
    for (uint32_t k = 0; k < options.confuser_tokens; ++k) {
      const auto& desc =
          kbase.entity(static_cast<kb::EntityId>(
                           rng.Uniform(kbase.num_entities())))
              .description;
      if (desc.empty()) continue;
      text.push_back(' ');
      text.append(kbase.vocab().Word(desc[rng.Uniform(desc.size())]));
    }
    lt.tweet.text = std::move(text);
    corpus.tweets.push_back(std::move(lt));
  }

  // Stream order: sort by time, then assign ids and group by author.
  std::stable_sort(corpus.tweets.begin(), corpus.tweets.end(),
                   [](const LabeledTweet& a, const LabeledTweet& b) {
                     return a.tweet.time < b.tweet.time;
                   });
  corpus.tweets_by_user.resize(num_users);
  for (uint32_t i = 0; i < corpus.tweets.size(); ++i) {
    corpus.tweets[i].tweet.id = i;
    corpus.tweets_by_user[corpus.tweets[i].tweet.user].push_back(i);
  }
  return corpus;
}

}  // namespace mel::gen

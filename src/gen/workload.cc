#include "gen/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mel::gen {

World GenerateWorld(WorldOptions options) {
  options.social.num_topics = options.kb.num_topics;
  World world;
  world.kb_world = GenerateKnowledgebase(options.kb);
  world.social = GenerateSocialGraph(options.social);
  world.corpus = GenerateTweets(world.kb_world, world.social, options.tweets);
  return world;
}

WorldOptions WithMasterSeed(WorldOptions options, uint64_t master_seed) {
  options.kb.seed = DeriveSeed(master_seed, 0);
  options.social.seed = DeriveSeed(master_seed, 1);
  options.tweets.seed = DeriveSeed(master_seed, 2);
  return options;
}

DatasetSplit FilterActiveUsers(const Corpus& corpus, uint32_t min_tweets) {
  DatasetSplit split;
  split.name = "D" + std::to_string(min_tweets);
  split.min_tweets = min_tweets;
  for (uint32_t u = 0; u < corpus.tweets_by_user.size(); ++u) {
    const auto& tweets = corpus.tweets_by_user[u];
    if (tweets.size() < min_tweets) continue;
    split.users.push_back(u);
    split.tweet_indices.insert(split.tweet_indices.end(), tweets.begin(),
                               tweets.end());
  }
  std::sort(split.tweet_indices.begin(), split.tweet_indices.end());
  return split;
}

DatasetSplit SampleInactiveUsers(const Corpus& corpus,
                                 uint32_t max_tweets_per_user,
                                 uint32_t max_users, uint64_t seed) {
  DatasetSplit split;
  split.name = "Dtest";
  Rng rng(seed);
  std::vector<uint32_t> eligible;
  for (uint32_t u = 0; u < corpus.tweets_by_user.size(); ++u) {
    const auto& tweets = corpus.tweets_by_user[u];
    if (tweets.empty() || tweets.size() >= max_tweets_per_user) continue;
    // Keep users with at least one mention-bearing tweet.
    bool has_mention = false;
    for (uint32_t ti : tweets) {
      if (!corpus.tweets[ti].mentions.empty()) {
        has_mention = true;
        break;
      }
    }
    if (has_mention) eligible.push_back(u);
  }
  rng.Shuffle(&eligible);
  if (eligible.size() > max_users) eligible.resize(max_users);
  std::sort(eligible.begin(), eligible.end());
  split.users = eligible;
  for (uint32_t u : split.users) {
    for (uint32_t ti : corpus.tweets_by_user[u]) {
      if (!corpus.tweets[ti].mentions.empty()) {
        split.tweet_indices.push_back(ti);
      }
    }
  }
  std::sort(split.tweet_indices.begin(), split.tweet_indices.end());
  return split;
}

std::pair<DatasetSplit, DatasetSplit> SplitDataset(
    const Corpus& corpus, const DatasetSplit& split, double first_fraction,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> users = split.users;
  rng.Shuffle(&users);
  size_t cut = static_cast<size_t>(users.size() * first_fraction);
  DatasetSplit first, second;
  first.name = split.name + "-a";
  second.name = split.name + "-b";
  first.min_tweets = second.min_tweets = split.min_tweets;
  first.users.assign(users.begin(), users.begin() + cut);
  second.users.assign(users.begin() + cut, users.end());
  std::sort(first.users.begin(), first.users.end());
  std::sort(second.users.begin(), second.users.end());
  auto fill = [&](DatasetSplit* out) {
    for (uint32_t u : out->users) {
      for (uint32_t ti : corpus.tweets_by_user[u]) {
        if (std::binary_search(split.tweet_indices.begin(),
                               split.tweet_indices.end(), ti)) {
          out->tweet_indices.push_back(ti);
        }
      }
    }
    std::sort(out->tweet_indices.begin(), out->tweet_indices.end());
  };
  fill(&first);
  fill(&second);
  return {std::move(first), std::move(second)};
}

void ComplementWithOracle(const World& world, const DatasetSplit& split,
                          double noise_rate, uint64_t seed,
                          kb::ComplementedKnowledgebase* ckb) {
  MEL_CHECK(ckb != nullptr);
  Rng rng(seed);
  const kb::Knowledgebase& kbase = world.kb();
  for (uint32_t ti : split.tweet_indices) {
    const LabeledTweet& lt = world.corpus.tweets[ti];
    for (const LabeledMention& m : lt.mentions) {
      kb::EntityId target = m.truth;
      if (noise_rate > 0 && rng.Bernoulli(noise_rate)) {
        // Mis-link to a random co-candidate of the same surface, the way
        // an imperfect offline linker would.
        auto candidates = kbase.Candidates(m.surface);
        if (candidates.size() > 1) {
          kb::EntityId wrong =
              candidates[rng.Uniform(candidates.size())].entity;
          if (wrong != target) target = wrong;
        }
      }
      ckb->AddLink(target, kb::Posting{lt.tweet.id, lt.tweet.user,
                                       lt.tweet.time});
    }
  }
}

void ComplementWithSimulatedLinker(const World& world,
                                   const DatasetSplit& split,
                                   double base_noise, double max_noise,
                                   uint64_t seed,
                                   kb::ComplementedKnowledgebase* ckb) {
  MEL_CHECK(ckb != nullptr);
  Rng rng(seed);
  const kb::Knowledgebase& kbase = world.kb();
  for (uint32_t ti : split.tweet_indices) {
    const LabeledTweet& lt = world.corpus.tweets[ti];
    size_t history =
        world.corpus.tweets_by_user[lt.tweet.user].size();
    double noise = std::min(
        max_noise, base_noise / std::sqrt(static_cast<double>(
                                   std::max<size_t>(1, history))));
    for (const LabeledMention& m : lt.mentions) {
      kb::EntityId target = m.truth;
      if (rng.Bernoulli(noise)) {
        auto candidates = kbase.Candidates(m.surface);
        if (candidates.size() > 1) {
          kb::EntityId wrong =
              candidates[rng.Uniform(candidates.size())].entity;
          if (wrong != target) target = wrong;
        }
      }
      ckb->AddLink(target, kb::Posting{lt.tweet.id, lt.tweet.user,
                                       lt.tweet.time});
    }
  }
}

SplitStats ComputeSplitStats(const Corpus& corpus,
                             const DatasetSplit& split) {
  SplitStats stats;
  stats.num_users = static_cast<uint32_t>(split.users.size());
  stats.num_tweets = static_cast<uint32_t>(split.tweet_indices.size());
  for (uint32_t ti : split.tweet_indices) {
    stats.num_mentions +=
        static_cast<uint32_t>(corpus.tweets[ti].mentions.size());
  }
  stats.mentions_per_tweet =
      stats.num_tweets == 0
          ? 0
          : static_cast<double>(stats.num_mentions) / stats.num_tweets;
  return stats;
}

}  // namespace mel::gen

#ifndef MEL_GEN_TWEET_GENERATOR_H_
#define MEL_GEN_TWEET_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gen/kb_generator.h"
#include "gen/social_graph_generator.h"
#include "kb/types.h"
#include "util/random.h"

namespace mel::gen {

/// \brief A ground-truth-labeled mention inside a generated tweet.
struct LabeledMention {
  std::string surface;            // as it appears in the text
  kb::EntityId truth = kb::kInvalidEntity;
};

/// \brief A generated tweet with its mention labels.
struct LabeledTweet {
  kb::Tweet tweet;
  std::vector<LabeledMention> mentions;
};

/// \brief A burst event: a window during which one entity dominates its
/// topic's conversation (an NBA finals game, an ICML edition, ...).
struct BurstEvent {
  kb::EntityId entity = kb::kInvalidEntity;
  kb::Timestamp begin = 0;
  kb::Timestamp end = 0;
};

/// \brief Parameters of the synthetic tweet stream.
struct TweetGenOptions {
  uint32_t num_tweets = 50000;
  kb::Timestamp start_time = 0;
  kb::Timestamp duration = 120 * kb::kSecondsPerDay;
  /// Zipf skew of user activity ("a large amount of users are information
  /// seekers who rarely tweet").
  double activity_skew = 1.1;
  /// Expected mentions per tweet beyond the first (geometric). The paper
  /// reports 1.36 mentions/tweet on Twitter and ~2.3 on Sina Weibo.
  double extra_mention_prob = 0.3;
  /// Probability a mention uses an ambiguous shared surface rather than
  /// the entity's canonical one.
  double ambiguous_surface_prob = 0.85;
  /// Probability the tweet's topic is unrelated to the author's interests
  /// (topic diversity of real streams).
  double offtopic_prob = 0.2;
  /// Zipf skew of organic entity popularity within a topic. Kept moderate
  /// so organic 3-day windows stay below the burst threshold theta1 and
  /// recency fires on genuine bursts only.
  double entity_skew = 0.8;
  /// Burst events: how many, how long, and how strongly they pull tweets.
  uint32_t num_burst_events = 25;
  kb::Timestamp burst_duration = 4 * kb::kSecondsPerDay;
  /// Probability that a tweet about a bursting topic is about the
  /// bursting entity itself.
  double burst_capture_prob = 0.9;
  /// Fraction of tweets redirected to currently bursting entities (while
  /// any event is active).
  double burst_tweet_prob = 0.5;
  /// Probability a burst tweet's author is re-sampled from users
  /// interested in the bursting topic. The remainder keep a random
  /// author — those mentions are exactly where recency helps and user
  /// interest cannot (everyone tweets the World Cup).
  double burst_author_affinity = 0.3;
  /// Probability a (non-burst) tweet's author is re-assigned to a hub
  /// account of the tweet's topic. Hub accounts (@NBAOfficial) are
  /// prolific and topically pure — the precondition for the paper's
  /// influential-user detection.
  double hub_author_prob = 0.2;
  /// Context / noise tokens around each mention.
  uint32_t description_tokens = 2;
  uint32_t noise_tokens = 4;
  /// In-vocabulary tokens drawn from a random topic — misleading context
  /// (tweets are informal and drift off-topic mid-sentence).
  uint32_t confuser_tokens = 2;
  /// Probability of introducing one character typo into a mention
  /// surface (exercises the fuzzy candidate path; evaluation corpora use
  /// 0 so NER detection stays exact).
  double typo_prob = 0.0;
  uint64_t seed = 44;
};

/// \brief The generated corpus.
struct Corpus {
  std::vector<LabeledTweet> tweets;  // sorted by time ascending
  std::vector<BurstEvent> events;
  /// Tweet indices grouped by author.
  std::vector<std::vector<uint32_t>> tweets_by_user;

  uint32_t NumUsers() const {
    return static_cast<uint32_t>(tweets_by_user.size());
  }
};

/// Generates a corpus over the given knowledgebase and social network.
/// Users' tweet topics follow their ground-truth interests from `social`,
/// so the social-interest feature has signal to find.
Corpus GenerateTweets(const GeneratedKb& kb_world,
                      const GeneratedSocial& social,
                      const TweetGenOptions& options);

}  // namespace mel::gen

#endif  // MEL_GEN_TWEET_GENERATOR_H_

#ifndef MEL_GEN_WORKLOAD_H_
#define MEL_GEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gen/kb_generator.h"
#include "gen/social_graph_generator.h"
#include "gen/tweet_generator.h"
#include "kb/complemented_kb.h"
#include "util/random.h"

namespace mel::gen {

/// \brief A complete synthetic world: knowledgebase, followee-follower
/// network, and labeled tweet corpus. One-stop setup for tests, examples,
/// and benchmarks.
struct World {
  GeneratedKb kb_world;
  GeneratedSocial social;
  Corpus corpus;

  const kb::Knowledgebase& kb() const { return kb_world.knowledgebase; }
};

struct WorldOptions {
  KbGenOptions kb;
  SocialGenOptions social;
  TweetGenOptions tweets;
};

/// Generates a world; social/tweet topic counts are aligned with the
/// knowledgebase automatically.
World GenerateWorld(WorldOptions options);

/// \brief Replaces the three per-generator seeds with sub-seeds derived
/// from one master seed (DeriveSeed streams 0..2).
///
/// This is the single-seed entry point replay tooling depends on: a
/// workload generated from WithMasterSeed(options, s) is bit-identical
/// across runs, platforms with the same toolchain, and thread counts —
/// every generator owns a private Rng constructed from its derived seed
/// and never touches shared or global RNG state.
WorldOptions WithMasterSeed(WorldOptions options, uint64_t master_seed);

/// \brief A dataset split in the style of the paper's Table 2: indices of
/// tweets authored by users with at least `min_tweets` postings.
struct DatasetSplit {
  std::string name;           // e.g. "D30"
  uint32_t min_tweets = 0;    // the activity threshold theta
  std::vector<uint32_t> users;
  std::vector<uint32_t> tweet_indices;
};

/// Tweets of users with >= min_tweets postings (the D10..D90 datasets).
DatasetSplit FilterActiveUsers(const Corpus& corpus, uint32_t min_tweets);

/// Test split Dtest: up to `max_users` users with fewer than
/// `max_tweets_per_user` postings (the paper's "information seekers"),
/// sampled deterministically from `seed`. Only tweets that carry at least
/// one mention are retained.
DatasetSplit SampleInactiveUsers(const Corpus& corpus,
                                 uint32_t max_tweets_per_user,
                                 uint32_t max_users, uint64_t seed);

/// Partitions a split's users into two disjoint splits (first gets
/// ~first_fraction of the users, sampled deterministically). Tweet
/// indices follow the user assignment. Used to carve a validation set
/// out of Dtest for weight learning.
std::pair<DatasetSplit, DatasetSplit> SplitDataset(
    const Corpus& corpus, const DatasetSplit& split, double first_fraction,
    uint64_t seed);

/// \brief Offline complementation using ground truth (oracle): links every
/// mention of the split's tweets to its true entity, flipping each link to
/// a random co-candidate with probability `noise_rate` (imitating the
/// mistakes a real collective pre-linker makes).
void ComplementWithOracle(const World& world, const DatasetSplit& split,
                          double noise_rate, uint64_t seed,
                          kb::ComplementedKnowledgebase* ckb);

/// \brief Offline complementation with a *simulated* collective pre-linker:
/// each mention links to its true entity, flipped to a random co-candidate
/// with a per-user error probability
///     noise(u) = min(max_noise, base_noise / sqrt(#tweets of u)),
/// reflecting that collective linking [2] degrades on users with sparse
/// histories (the cause of the paper's Fig. 4(b) quality-vs-coverage
/// trade-off). Unlike our from-scratch CollectiveLinker on a small corpus,
/// errors here are independent across mentions — matching the error
/// *rate* of a realistic pre-linker without the small-corpus error
/// *correlation* that would fabricate recency bursts (see DESIGN.md).
void ComplementWithSimulatedLinker(const World& world,
                                   const DatasetSplit& split,
                                   double base_noise, double max_noise,
                                   uint64_t seed,
                                   kb::ComplementedKnowledgebase* ckb);

/// \brief Corpus statistics for the Table-2 style report.
struct SplitStats {
  uint32_t num_users = 0;
  uint32_t num_tweets = 0;
  uint32_t num_mentions = 0;
  double mentions_per_tweet = 0;
};

SplitStats ComputeSplitStats(const Corpus& corpus, const DatasetSplit& split);

}  // namespace mel::gen

#endif  // MEL_GEN_WORKLOAD_H_

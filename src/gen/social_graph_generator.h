#ifndef MEL_GEN_SOCIAL_GRAPH_GENERATOR_H_
#define MEL_GEN_SOCIAL_GRAPH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"
#include "util/random.h"

namespace mel::gen {

/// \brief Parameters of the synthetic followee-follower network.
///
/// Substitutes for the crawled Twitter graph: directed, heavy-tailed
/// in-degree (hub accounts), small-world (the paper relies on an average
/// separation of ~4.12 hops), and *topic-homophilous* — users
/// predominantly follow accounts of the topics they care about, which is
/// the signal the user-interest feature (Sec. 4.1) exploits.
struct SocialGenOptions {
  uint32_t num_users = 3000;
  uint32_t num_topics = 40;  // must match the knowledgebase's topics
  /// Average number of followees per user.
  double avg_followees = 20;
  /// Designated hub accounts per topic (e.g. @NBAOfficial): early users
  /// of a topic that attract most of that topic's follow edges.
  uint32_t hubs_per_topic = 3;
  /// Probability a follow edge targets the follower's own topics.
  double topic_follow_prob = 0.75;
  /// Within a topic, probability the target is one of its hubs.
  double hub_follow_prob = 0.5;
  /// Zipf skew of user interest over topics.
  double topic_skew = 0.8;
  uint64_t seed = 43;
};

/// \brief The generated network plus its ground-truth interest structure.
struct GeneratedSocial {
  graph::DirectedGraph graph;  // edge u -> v means "u follows v"
  /// Topics each user is interested in (1..3 topics).
  std::vector<std::vector<uint32_t>> user_topics;
  /// Hub users of each topic.
  std::vector<std::vector<uint32_t>> topic_hubs;
  /// Non-hub users of each topic (hubs excluded), for samplers.
  std::vector<std::vector<uint32_t>> topic_users;
};

GeneratedSocial GenerateSocialGraph(const SocialGenOptions& options);

}  // namespace mel::gen

#endif  // MEL_GEN_SOCIAL_GRAPH_GENERATOR_H_

#include "gen/social_graph_generator.h"

#include <algorithm>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace mel::gen {

GeneratedSocial GenerateSocialGraph(const SocialGenOptions& options) {
  MEL_CHECK(options.num_users > 0 && options.num_topics > 0);
  Rng rng(options.seed);
  GeneratedSocial out;
  const uint32_t n = options.num_users;

  // Interest assignment: 1..3 topics per user, Zipf over topics.
  ZipfSampler topic_sampler(options.num_topics, options.topic_skew);
  out.user_topics.resize(n);
  out.topic_users.resize(options.num_topics);
  out.topic_hubs.resize(options.num_topics);
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.Uniform(3));
    auto& topics = out.user_topics[u];
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t t = static_cast<uint32_t>(topic_sampler.Sample(&rng));
      if (std::find(topics.begin(), topics.end(), t) == topics.end()) {
        topics.push_back(t);
      }
    }
    for (uint32_t t : topics) out.topic_users[t].push_back(u);
  }

  // The first hubs_per_topic members of each topic become its hubs.
  for (uint32_t t = 0; t < options.num_topics; ++t) {
    auto& users = out.topic_users[t];
    uint32_t hubs = std::min<uint32_t>(options.hubs_per_topic,
                                       static_cast<uint32_t>(users.size()));
    out.topic_hubs[t].assign(users.begin(), users.begin() + hubs);
  }

  graph::GraphBuilder builder(n);
  // Global popularity for off-topic follows: earlier users are "older"
  // accounts with more followers (preferential attachment flavor).
  ZipfSampler global_pop(n, 0.9);
  // Per-topic popularity samplers, built once.
  std::vector<ZipfSampler> member_pop;
  member_pop.reserve(options.num_topics);
  for (uint32_t t = 0; t < options.num_topics; ++t) {
    member_pop.emplace_back(std::max<size_t>(1, out.topic_users[t].size()),
                            0.7);
  }

  for (uint32_t u = 0; u < n; ++u) {
    double expected = std::max(3.0, rng.Normal(options.avg_followees,
                                               options.avg_followees / 2));
    uint32_t degree = static_cast<uint32_t>(expected);
    const auto& topics = out.user_topics[u];
    for (uint32_t i = 0; i < degree; ++i) {
      uint32_t target = u;
      if (!topics.empty() &&
          rng.UniformDouble() < options.topic_follow_prob) {
        uint32_t t = topics[rng.Uniform(topics.size())];
        const auto& hubs = out.topic_hubs[t];
        const auto& members = out.topic_users[t];
        if (!hubs.empty() && rng.UniformDouble() < options.hub_follow_prob) {
          target = hubs[rng.Uniform(hubs.size())];
        } else if (!members.empty()) {
          // Popularity-biased pick among the topic's members.
          target = members[member_pop[t].Sample(&rng)];
        }
      } else {
        target = static_cast<uint32_t>(global_pop.Sample(&rng));
      }
      if (target != u) builder.AddEdge(u, target);
    }
  }
  out.graph = std::move(builder).Build();
  return out;
}

}  // namespace mel::gen

#ifndef MEL_MEL_H_
#define MEL_MEL_H_

/// \file
/// Umbrella header: the full public API of the microblog entity linking
/// library (see README.md for a guided tour).
///
/// Typical assembly, mirroring the paper's Fig. 2 pipeline:
///   1. Build a kb::Knowledgebase and wrap it in a
///      kb::ComplementedKnowledgebase (offline complementation).
///   2. Build a reach::* index over the followee-follower graph.
///   3. Build the recency::PropagationNetwork.
///   4. Construct a core::EntityLinker and call LinkMention / LinkTweet.

#include "baseline/collective_linker.h"
#include "baseline/on_the_fly_linker.h"
#include "core/candidate_generator.h"
#include "core/entity_linker.h"
#include "core/parallel_linker.h"
#include "core/personalized_search.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "graph/directed_graph.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "kb/complemented_kb.h"
#include "kb/knowledgebase.h"
#include "kb/types.h"
#include "kb/wlm.h"
#include "reach/distance_label_index.h"
#include "reach/naive_reachability.h"
#include "reach/pruned_online_search.h"
#include "reach/transitive_closure.h"
#include "reach/two_hop_index.h"
#include "reach/weighted_reachability.h"
#include "recency/burst_tracker.h"
#include "recency/propagation_network.h"
#include "recency/recency_propagator.h"
#include "recency/recency_source.h"
#include "recency/sliding_window.h"
#include "social/influence.h"
#include "social/influential_index.h"
#include "social/user_interest.h"
#include "text/edit_distance.h"
#include "text/gazetteer.h"
#include "text/qgram_index.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

#endif  // MEL_MEL_H_

#ifndef MEL_UTIL_SERIALIZE_H_
#define MEL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mel {

/// \brief Little-endian binary writer for index files.
///
/// Failures are sticky: any write after an I/O error is a no-op and
/// Finish() reports the first failure.
class BinaryWriter {
 public:
  /// Opens (truncates) the file for writing.
  explicit BinaryWriter(const std::string& path);

  void WriteU8(uint8_t v) { WriteRaw(&v, 1); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  /// Length-prefixed byte string.
  void WriteString(const std::string& s);

  /// Length-prefixed vector of fixed-width elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    WriteSpan(std::span<const T>(v));
  }

  /// Length-prefixed contiguous block: the whole span leaves as ONE raw
  /// write. Same wire format as WriteVector — arenas stream through here.
  template <typename T>
  void WriteSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Flushes and closes; returns the first error, if any.
  Status Finish();

 private:
  void WriteRaw(const void* data, size_t size);

  std::ofstream out_;
  Status status_;
};

/// \brief Little-endian binary reader matching BinaryWriter.
///
/// Failures (including truncated files) are sticky; callers check
/// status() once after reading.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();

  template <typename T>
  std::vector<T> ReadVector() {
    std::vector<T> v;
    ReadVectorInto(&v);
    return v;
  }

  /// Reads a block written by WriteVector/WriteSpan into `*out` (resized
  /// to fit): one length read plus ONE raw read for the payload, so arena
  /// loads cost a single I/O pass plus pointer fixup in the caller.
  /// Returns false (and clears `*out`) on error; status() is sticky.
  template <typename T>
  bool ReadVectorInto(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    out->clear();
    uint64_t size = ReadU64();
    // Guard against absurd sizes from corrupt headers.
    if (!status_.ok() || size > kMaxElements) {
      if (status_.ok()) {
        status_ = Status::InvalidArgument("corrupt vector length");
      }
      return false;
    }
    out->resize(size);
    if (size > 0) ReadRaw(out->data(), size * sizeof(T));
    if (!status_.ok()) {
      out->clear();
      return false;
    }
    return true;
  }

  const Status& status() const { return status_; }

  static constexpr uint64_t kMaxElements = 1ull << 33;

 private:
  void ReadRaw(void* data, size_t size);

  std::ifstream in_;
  Status status_;
};

/// \brief Minimal streaming JSON writer for exported reports (metrics
/// snapshots, benchmark sidecar files).
///
/// Commas and nesting are managed automatically; keys are escaped. Only
/// the subset needed by the library is supported: objects, string /
/// integer / double / bool values. Arrays of scalars go through
/// BeginArray/EndArray.
class JsonWriter {
 public:
  /// The stream must outlive the writer.
  explicit JsonWriter(std::ostream* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next value inside an object.
  void Key(std::string_view key);

  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(double v);  // non-finite values are emitted as null
  void Value(std::string_view v);
  void Value(bool v);

  /// Convenience: Key(key) followed by Value(v).
  template <typename T>
  void KeyValue(std::string_view key, T v) {
    Key(key);
    Value(v);
  }

 private:
  void Separate();  // emits "," between siblings
  void WriteEscaped(std::string_view s);

  std::ostream* out_;
  // One flag per open container: true until the first child is written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace mel

#endif  // MEL_UTIL_SERIALIZE_H_

#ifndef MEL_UTIL_SERIALIZE_H_
#define MEL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/mmap_file.h"
#include "util/status.h"

namespace mel {

/// \brief Little-endian binary writer for index files.
///
/// Failures are sticky: any write after an I/O error is a no-op and
/// Finish() reports the first failure.
class BinaryWriter {
 public:
  /// Opens (truncates) the file for writing.
  explicit BinaryWriter(const std::string& path);

  void WriteU8(uint8_t v) { WriteRaw(&v, 1); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  /// Length-prefixed byte string.
  void WriteString(const std::string& s);

  /// Length-prefixed vector of fixed-width elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    WriteSpan(std::span<const T>(v));
  }

  /// Length-prefixed contiguous block: the whole span leaves as ONE raw
  /// write. Same wire format as WriteVector — arenas stream through here.
  template <typename T>
  void WriteSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Raw bytes, no length prefix — the MEL3 writer lays blocks out at
  /// precomputed offsets and pads between them explicitly.
  void WriteBytes(const void* data, size_t size) { WriteRaw(data, size); }

  /// Writes zero bytes until `offset` (absolute from file start). It is
  /// an error to seek backwards.
  void PadTo(uint64_t offset);

  uint64_t bytes_written() const { return bytes_written_; }

  /// Flushes and closes; returns the first error, if any.
  Status Finish();

 private:
  void WriteRaw(const void* data, size_t size);

  std::ofstream out_;
  Status status_;
  uint64_t bytes_written_ = 0;
};

/// \brief Little-endian binary reader matching BinaryWriter.
///
/// Failures (including truncated files) are sticky; callers check
/// status() once after reading.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();

  template <typename T>
  std::vector<T> ReadVector() {
    std::vector<T> v;
    ReadVectorInto(&v);
    return v;
  }

  /// Reads a block written by WriteVector/WriteSpan into `*out` (resized
  /// to fit): one length read plus ONE raw read for the payload, so arena
  /// loads cost a single I/O pass plus pointer fixup in the caller.
  /// Returns false (and clears `*out`) on error; status() is sticky.
  template <typename T>
  bool ReadVectorInto(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    out->clear();
    uint64_t size = ReadU64();
    // Guard against absurd sizes from corrupt headers.
    if (!status_.ok() || size > kMaxElements) {
      if (status_.ok()) {
        status_ = Status::InvalidArgument("corrupt vector length");
      }
      return false;
    }
    out->resize(size);
    if (size > 0) ReadRaw(out->data(), size * sizeof(T));
    if (!status_.ok()) {
      out->clear();
      return false;
    }
    return true;
  }

  const Status& status() const { return status_; }

  static constexpr uint64_t kMaxElements = 1ull << 33;

 private:
  void ReadRaw(void* data, size_t size);

  std::ifstream in_;
  Status status_;
};

// ---------------------------------------------------------------------------
// MEL3 — sector-aligned on-disk index container (docs/ARCHITECTURE.md).
//
// Layout:
//   [Mel3Header (64 B, fixed offset 0)]
//   [Mel3BlockRecord x block_count]
//   ...zero padding...
//   [block payload]   <- every payload starts at a 4096-byte multiple
//   ...zero padding...
//   [block payload]
//   ...zero padding to header.file_size (itself 4096-aligned)...
//
// The header + block table are covered by `header_checksum`; each block
// payload carries its own checksum in its table record. A zero-copy
// loader validates the header and table only (one page), binds
// `std::span` views at the recorded offsets, and never touches payload
// pages until queries fault them in. Sector alignment means every
// payload begins on a page boundary, so arena element alignment holds
// for any trivially-copyable element type and paging I/O is never
// split across blocks.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kMel3Magic = 0x4d454c33;  // "MEL3"
inline constexpr uint32_t kMel3Version = 1;
inline constexpr uint64_t kMel3Alignment = 4096;
inline constexpr uint32_t kMel3MaxBlocks = 64;

/// Identifies what an arena block holds. Kinds are per-inner-format:
/// the 2-hop cover writes all six, the distance-label ablation the
/// first four.
enum class Mel3BlockKind : uint32_t {
  kInOffsets = 1,
  kInEntries = 2,
  kOutOffsets = 3,
  kOutEntries = 4,
  kFolloweeOffsets = 5,
  kFolloweeArena = 6,
};

/// Fixed 64-byte container header at file offset 0. `inner_magic` /
/// `inner_version` carry the wrapped index format (the legacy "MEL2" /
/// "MELD" magics live on inside the container, so version negotiation
/// is one sniff of the first 4 bytes).
struct Mel3Header {
  uint32_t magic;              // kMel3Magic
  uint32_t container_version;  // kMel3Version
  uint32_t inner_magic;        // e.g. "MEL2" (2-hop) or "MELD" (DLI)
  uint32_t inner_version;
  uint32_t num_nodes;
  uint32_t max_hops;
  uint32_t block_count;
  uint32_t reserved = 0;
  uint64_t file_size;        // total bytes incl. trailing padding
  uint64_t header_checksum;  // over header (this field zeroed) + table
  uint64_t reserved2[2] = {0, 0};
};
static_assert(sizeof(Mel3Header) == 64, "MEL3 header is a fixed 64 bytes");

/// One entry of the block table following the header.
struct Mel3BlockRecord {
  uint64_t offset;    // from file start; multiple of kMel3Alignment
  uint64_t length;    // payload bytes == count * elem_size
  uint64_t count;     // element count
  uint32_t elem_size; // sizeof the element type
  uint32_t kind;      // Mel3BlockKind
  uint64_t checksum;  // Mel3Checksum of the payload bytes
};
static_assert(sizeof(Mel3BlockRecord) == 40, "MEL3 record is 40 bytes");

/// Fast 64-bit content checksum (word-at-a-time multiply/xor mix; not
/// cryptographic — guards against truncation and bit rot, not malice).
uint64_t Mel3Checksum(const void* data, size_t size);

/// Describes one arena to be written into a MEL3 container.
struct Mel3BlockDesc {
  Mel3BlockKind kind;
  uint32_t elem_size;
  uint64_t count;
  const void* data;

  template <typename T>
  static Mel3BlockDesc Of(Mel3BlockKind kind, std::span<const T> span) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Mel3BlockDesc{kind, static_cast<uint32_t>(sizeof(T)),
                         span.size(), span.data()};
  }
};

/// Writes a complete MEL3 container: header, block table, then each
/// block zero-padded out to the next sector boundary. Deterministic for
/// identical inputs (padding is all zeros), so save -> load -> save is
/// byte-identical.
Status WriteMel3File(const std::string& path, uint32_t inner_magic,
                     uint32_t inner_version, uint32_t num_nodes,
                     uint32_t max_hops,
                     std::span<const Mel3BlockDesc> blocks);

/// \brief Parsed, structurally-validated view over a mapped MEL3 file.
///
/// `Parse` validates the header and block table (magic, versions, sizes,
/// sector alignment, bounds, table checksum) without reading any block
/// payload. Spans returned by `Block` point straight into the mapping;
/// the view shares ownership of the `MmapFile` and callers keep either
/// the view or their own `shared_ptr` alive for as long as spans are in
/// use.
class Mel3View {
 public:
  /// `expect_inner_magic` rejects containers wrapping a different index
  /// kind (a DLI file is not a 2-hop file even inside MEL3).
  static Result<Mel3View> Parse(
      std::shared_ptr<const util::MmapFile> file,
      uint32_t expect_inner_magic);

  const Mel3Header& header() const { return header_; }
  const std::shared_ptr<const util::MmapFile>& file() const {
    return file_;
  }

  /// Table record for `kind`, or nullptr when the container has none.
  const Mel3BlockRecord* Find(Mel3BlockKind kind) const;

  /// Zero-copy typed view of a block. Missing blocks and element-size
  /// mismatches are corrupt-container errors.
  template <typename T>
  Result<std::span<const T>> Block(Mel3BlockKind kind) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const Mel3BlockRecord* rec = Find(kind);
    if (rec == nullptr) {
      return Status::InvalidArgument("MEL3 container missing block kind " +
                                     std::to_string(uint32_t(kind)));
    }
    if (rec->elem_size != sizeof(T)) {
      return Status::InvalidArgument(
          "MEL3 block element size mismatch for kind " +
          std::to_string(uint32_t(kind)));
    }
    return std::span<const T>(
        reinterpret_cast<const T*>(file_->data() + rec->offset),
        static_cast<size_t>(rec->count));
  }

  /// Full payload verification: checksums every block against its table
  /// record. Touches every page (sequential-advised), so only the
  /// copying load and `verify_checksums` mapped loads call it.
  Status VerifyBlockChecksums() const;

 private:
  std::shared_ptr<const util::MmapFile> file_;
  Mel3Header header_;
  std::vector<Mel3BlockRecord> table_;
};

/// \brief Minimal streaming JSON writer for exported reports (metrics
/// snapshots, benchmark sidecar files).
///
/// Commas and nesting are managed automatically; keys are escaped. Only
/// the subset needed by the library is supported: objects, string /
/// integer / double / bool values. Arrays of scalars go through
/// BeginArray/EndArray.
class JsonWriter {
 public:
  /// The stream must outlive the writer.
  explicit JsonWriter(std::ostream* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next value inside an object.
  void Key(std::string_view key);

  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(double v);  // non-finite values are emitted as null
  void Value(std::string_view v);
  void Value(bool v);

  /// Convenience: Key(key) followed by Value(v).
  template <typename T>
  void KeyValue(std::string_view key, T v) {
    Key(key);
    Value(v);
  }

 private:
  void Separate();  // emits "," between siblings
  void WriteEscaped(std::string_view s);

  std::ostream* out_;
  // One flag per open container: true until the first child is written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace mel

#endif  // MEL_UTIL_SERIALIZE_H_

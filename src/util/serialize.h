#ifndef MEL_UTIL_SERIALIZE_H_
#define MEL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mel {

/// \brief Little-endian binary writer for index files.
///
/// Failures are sticky: any write after an I/O error is a no-op and
/// Finish() reports the first failure.
class BinaryWriter {
 public:
  /// Opens (truncates) the file for writing.
  explicit BinaryWriter(const std::string& path);

  void WriteU8(uint8_t v) { WriteRaw(&v, 1); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  /// Length-prefixed byte string.
  void WriteString(const std::string& s);

  /// Length-prefixed vector of fixed-width elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Flushes and closes; returns the first error, if any.
  Status Finish();

 private:
  void WriteRaw(const void* data, size_t size);

  std::ofstream out_;
  Status status_;
};

/// \brief Little-endian binary reader matching BinaryWriter.
///
/// Failures (including truncated files) are sticky; callers check
/// status() once after reading.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = ReadU64();
    // Guard against absurd sizes from corrupt headers.
    if (!status_.ok() || size > kMaxElements) {
      if (status_.ok()) {
        status_ = Status::InvalidArgument("corrupt vector length");
      }
      return {};
    }
    std::vector<T> v(size);
    if (size > 0) ReadRaw(v.data(), size * sizeof(T));
    if (!status_.ok()) v.clear();
    return v;
  }

  const Status& status() const { return status_; }

  static constexpr uint64_t kMaxElements = 1ull << 33;

 private:
  void ReadRaw(void* data, size_t size);

  std::ifstream in_;
  Status status_;
};

/// \brief Minimal streaming JSON writer for exported reports (metrics
/// snapshots, benchmark sidecar files).
///
/// Commas and nesting are managed automatically; keys are escaped. Only
/// the subset needed by the library is supported: objects, string /
/// integer / double / bool values. Arrays of scalars go through
/// BeginArray/EndArray.
class JsonWriter {
 public:
  /// The stream must outlive the writer.
  explicit JsonWriter(std::ostream* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next value inside an object.
  void Key(std::string_view key);

  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(double v);  // non-finite values are emitted as null
  void Value(std::string_view v);
  void Value(bool v);

  /// Convenience: Key(key) followed by Value(v).
  template <typename T>
  void KeyValue(std::string_view key, T v) {
    Key(key);
    Value(v);
  }

 private:
  void Separate();  // emits "," between siblings
  void WriteEscaped(std::string_view s);

  std::ostream* out_;
  // One flag per open container: true until the first child is written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace mel

#endif  // MEL_UTIL_SERIALIZE_H_

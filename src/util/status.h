#ifndef MEL_UTIL_STATUS_H_
#define MEL_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace mel {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions across API boundaries; fallible
/// operations return a Status (or a Result<T>, below) instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// \brief A lightweight success-or-error value.
///
/// Mirrors the conventional database-engine Status idiom: cheap to return in
/// the success case, carries a code plus a human-readable message on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// Accessors on an error-holding Result (value()) are programming errors;
/// callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit from value, so `return computed_value;` works.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status.
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  /// Returns the error, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "UNKNOWN";
  switch (code_) {
    case StatusCode::kOk:
      name = "OK";
      break;
    case StatusCode::kInvalidArgument:
      name = "INVALID_ARGUMENT";
      break;
    case StatusCode::kNotFound:
      name = "NOT_FOUND";
      break;
    case StatusCode::kOutOfRange:
      name = "OUT_OF_RANGE";
      break;
    case StatusCode::kFailedPrecondition:
      name = "FAILED_PRECONDITION";
      break;
    case StatusCode::kResourceExhausted:
      name = "RESOURCE_EXHAUSTED";
      break;
    case StatusCode::kInternal:
      name = "INTERNAL";
      break;
  }
  std::string out(name);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mel

#endif  // MEL_UTIL_STATUS_H_

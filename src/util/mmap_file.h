#ifndef MEL_UTIL_MMAP_FILE_H_
#define MEL_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.h"

namespace mel::util {

/// \brief RAII read-only memory mapping of a whole file.
///
/// Opens the file, maps it `PROT_READ` / `MAP_SHARED`, applies the
/// requested `madvise` hint, and closes the descriptor immediately (the
/// mapping keeps the pages alive). The destructor unmaps. Move-only:
/// index loaders hold one mapping per file in a `shared_ptr` so any
/// number of zero-copy views can pin it.
///
/// `MAP_SHARED` means concurrent processes mapping the same index file
/// share one copy of the page cache — the multi-process serving story of
/// the ROADMAP's mmap tier.
class MmapFile {
 public:
  /// Paging hint forwarded to `madvise` at map time.
  enum class Advice : uint32_t {
    kNormal = 0,      // kernel default readahead
    kRandom = 1,      // point queries: disable readahead (index serving)
    kSequential = 2,  // linear scans: aggressive readahead
    kWillNeed = 3,    // prefetch everything asynchronously
  };

  struct Options {
    Advice advice = Advice::kRandom;
    /// `MAP_POPULATE`: fault every page in at map time (warm start at
    /// the cost of load latency; the startup bench A/Bs this).
    bool prefault = false;
  };

  /// Maps `path` read-only. Empty files map to a null/zero view.
  static Result<MmapFile> Open(const std::string& path,
                               const Options& options);
  static Result<MmapFile> Open(const std::string& path) {
    return Open(path, Options());
  }

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const uint8_t> bytes() const { return {data_, size_}; }
  const std::string& path() const { return path_; }
  Advice advice() const { return advice_; }

  /// Re-advises the live mapping (e.g. switch to kSequential before a
  /// full-file checksum pass, back to kRandom for serving).
  Status Advise(Advice advice);

  static const char* AdviceName(Advice advice);

 private:
  MmapFile() = default;

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
  Advice advice_ = Advice::kNormal;
};

/// \brief Options shared by the zero-copy `LoadMapped` index paths.
struct MmapLoadOptions {
  MmapFile::Options map;
  /// When true the loader also checksums every arena block against the
  /// MEL3 block table and validates per-entry node ids — touching every
  /// page, like the copying load. The default trusts block payloads and
  /// validates the header, block table, and offset arrays only, so load
  /// time is independent of arena size.
  bool verify_checksums = false;
};

}  // namespace mel::util

#endif  // MEL_UTIL_MMAP_FILE_H_

#ifndef MEL_UTIL_STRING_UTIL_H_
#define MEL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mel {

/// Returns the ASCII-lowercased copy of the input.
std::string AsciiLower(std::string_view s);

/// Splits on the separator character; empty fields are dropped.
std::vector<std::string> SplitNonEmpty(std::string_view s, char sep);

/// Joins the pieces with the given separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Formats a byte count as a short human-readable string ("1.4GB").
std::string HumanBytes(uint64_t bytes);

/// Formats a duration given in nanoseconds ("0.3us", "17ms", "42s").
std::string HumanNanos(double nanos);

}  // namespace mel

#endif  // MEL_UTIL_STRING_UTIL_H_

#ifndef MEL_UTIL_RANDOM_H_
#define MEL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mel {

/// \brief Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// All randomized components in the library (generators, samplers, query
/// workloads) draw from this engine so that experiments are reproducible
/// from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples from a normal distribution via Box-Muller.
  double Normal(double mean, double stddev);

  /// Samples an exponential inter-arrival time with the given rate.
  double Exponential(double rate);

  /// Fisher-Yates shuffles the vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// \brief Zipf-distributed sampler over ranks {0, ..., n-1}.
///
/// Rank r is drawn with probability proportional to 1 / (r+1)^exponent.
/// Used to model entity popularity and user activity skew (both heavily
/// skewed in microblog data).
class ZipfSampler {
 public:
  /// \param n number of distinct items (> 0)
  /// \param exponent skew parameter; 0 degenerates to uniform
  ZipfSampler(size_t n, double exponent);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of the given rank.
  double Probability(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

/// \brief Samples an index proportional to the given non-negative weights.
///
/// Returns weights.size() when all weights are zero or the vector is empty.
size_t WeightedSample(const std::vector<double>& weights, Rng* rng);

/// \brief Derives an independent sub-seed from a master seed and a stream
/// index (splitmix64 mixing).
///
/// Components that need several RNG streams reproducible from ONE seed
/// (e.g. the kb/social/tweet generators behind a random workload, or
/// per-thread generators that must not share state) each construct their
/// own Rng from DeriveSeed(master, stream). Distinct streams yield
/// statistically independent sequences, and the mapping is pure — the
/// same (master, stream) pair always produces the same sub-seed, on any
/// thread, in any order.
uint64_t DeriveSeed(uint64_t master_seed, uint64_t stream);

}  // namespace mel

#endif  // MEL_UTIL_RANDOM_H_

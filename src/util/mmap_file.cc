#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mel::util {

namespace {

int AdviceFlag(MmapFile::Advice advice) {
  switch (advice) {
    case MmapFile::Advice::kNormal:
      return MADV_NORMAL;
    case MmapFile::Advice::kRandom:
      return MADV_RANDOM;
    case MmapFile::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case MmapFile::Advice::kWillNeed:
      return MADV_WILLNEED;
  }
  return MADV_NORMAL;
}

}  // namespace

const char* MmapFile::AdviceName(Advice advice) {
  switch (advice) {
    case Advice::kNormal:
      return "normal";
    case Advice::kRandom:
      return "random";
    case Advice::kSequential:
      return "sequential";
    case Advice::kWillNeed:
      return "willneed";
  }
  return "unknown";
}

Result<MmapFile> MmapFile::Open(const std::string& path,
                                const Options& options) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open for mapping: " + path + " (" +
                            std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed: " + path);
  }
  MmapFile file;
  file.path_ = path;
  file.advice_ = options.advice;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ == 0) {
    ::close(fd);
    return file;  // empty mapping: data() == nullptr, size() == 0
  }
  int flags = MAP_SHARED;
#ifdef MAP_POPULATE
  if (options.prefault) flags |= MAP_POPULATE;
#endif
  void* addr = ::mmap(nullptr, file.size_, PROT_READ, flags, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the pages
  if (addr == MAP_FAILED) {
    return Status::Internal("mmap failed: " + path + " (" +
                            std::strerror(errno) + ")");
  }
  file.data_ = static_cast<uint8_t*>(addr);
  // Advisory only: a failed madvise never fails the load.
  ::madvise(addr, file.size_, AdviceFlag(options.advice));
  return file;
}

Status MmapFile::Advise(Advice advice) {
  advice_ = advice;
  if (data_ == nullptr) return Status::OK();
  if (::madvise(data_, size_, AdviceFlag(advice)) != 0) {
    return Status::Internal(std::string("madvise failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  path_ = std::move(other.path_);
  advice_ = other.advice_;
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace mel::util

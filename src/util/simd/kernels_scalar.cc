// Scalar kernel tier: the portable fallback every host can run, the
// ground-truth half of every vectorized/scalar differential pair, and
// the forced baseline under MEL_SIMD=scalar. Compiled with the baseline
// ISA only — no vector intrinsics, no arch flags.

#include "util/simd/kernel_tables.h"
#include "util/simd/kernels_common.h"

namespace mel::util::simd::detail {

const KernelTable* ScalarKernels() {
  static const KernelTable table = {
      &ScalarMergeCount, &ScalarGallopCount,    &ScalarMinSumSpans,
      &ScalarProbeScan,  &ScalarFrontierAndNot,
  };
  return &table;
}

}  // namespace mel::util::simd::detail

#ifndef MEL_UTIL_SIMD_KERNEL_TABLES_H_
#define MEL_UTIL_SIMD_KERNEL_TABLES_H_

// Internal seam between the dispatcher (simd.cc) and the per-tier kernel
// translation units. Each TU exports exactly one provider; the SSE4 and
// AVX2 providers return nullptr when the binary was configured without
// that tier (non-x86 target or the compiler lacking the flag), which is
// how LevelSupported() learns what this build actually contains.
// Includes only simd_types.h — no inline code may leak into the
// arch-flagged TUs (see simd_types.h).

#include "util/simd/simd_types.h"

namespace mel::util::simd::detail {

const KernelTable* ScalarKernels();  // never nullptr
const KernelTable* Sse4KernelsOrNull();
const KernelTable* Avx2KernelsOrNull();

}  // namespace mel::util::simd::detail

#endif  // MEL_UTIL_SIMD_KERNEL_TABLES_H_

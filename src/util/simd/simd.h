#ifndef MEL_UTIL_SIMD_SIMD_H_
#define MEL_UTIL_SIMD_SIMD_H_

// Public face of the vectorized kernel layer (docs/PERFORMANCE.md,
// "Vectorized kernels"): runtime CPU-feature dispatch over scalar /
// SSE4.2 / AVX2 implementations of the four integer hot loops — sorted
// intersection (merge + gallop), the 2-hop running-min label walk, the
// fuzzy-index probe scan, and the dense-BFS frontier filter. Only the
// kernel TUs are built with arch flags; everything that executes before
// dispatch is baseline code, so the same binary runs on hosts without
// AVX2 (and under MEL_SIMD=scalar everywhere).
//
// This header is safe to include from baseline TUs only. The kernel TUs
// include simd_types.h, which carries no inline code.

#include <cstddef>
#include <cstdint>

#include "util/metrics.h"
#include "util/simd/simd_types.h"

namespace mel::util::simd {

/// Pure resolution logic: clamps the requested override (the value of
/// MEL_SIMD, may be null) to what `features` supports. Exposed separately
/// so tests can cover the override table without mutating the process
/// environment. Unknown override strings fall back to auto-detection.
Level ResolveLevel(const char* override_name, const CpuFeatures& features);

/// The tier every dispatched kernel call uses. Resolved once on first
/// use from CpuFeatures::Detect() and the MEL_SIMD environment variable
/// (scalar | sse4 | avx2; requests above the host's capability clamp
/// down), then pinned for the process lifetime and published as the
/// util.simd.level gauge.
Level ActiveLevel();

/// True when KernelsFor(level) is callable on this host: the tier is at
/// most what the CPU supports AND the binary was built with that tier's
/// kernel translation unit enabled.
bool LevelSupported(Level level);

/// The table for the active tier.
const KernelTable& Kernels();

/// The table for a specific tier — for tests and the scalar-vs-
/// dispatched benches. Aborts unless LevelSupported(level).
const KernelTable& KernelsFor(Level level);

/// Per-kernel dispatch counters, cached once like every hot-path metric
/// bundle (docs/METRICS.md, util.simd.* rows). `dense_levels` counts
/// BFS levels that took the word-parallel bitset path (graph/bfs.cc
/// bumps it; the other four are bumped by the wrappers below).
struct SimdMetrics {
  metrics::Counter* merge_dispatch;
  metrics::Counter* gallop_dispatch;
  metrics::Counter* minsum_dispatch;
  metrics::Counter* probe_dispatch;
  metrics::Counter* dense_levels;
};

const SimdMetrics& GetSimdMetrics();

// ---------------------------------------------------------------------------
// Dispatched entry points. These are what call sites use: one function-
// pointer hop into the active tier, plus (when metrics are enabled) a
// dispatch counter bump.
// ---------------------------------------------------------------------------

inline uint32_t MergeIntersectCountU32(const uint32_t* a, size_t na,
                                       const uint32_t* b, size_t nb) {
  if (metrics::Enabled()) GetSimdMetrics().merge_dispatch->Increment();
  return Kernels().merge_count(a, na, b, nb);
}

inline uint32_t GallopIntersectCountU32(const uint32_t* small, size_t ns,
                                        const uint32_t* large, size_t nl) {
  if (metrics::Enabled()) GetSimdMetrics().gallop_dispatch->Increment();
  return Kernels().gallop_count(small, ns, large, nl);
}

inline uint32_t MinSumSpansU64(const uint64_t* outs, size_t n_outs,
                               const uint64_t* ins, size_t n_ins,
                               uint32_t dmin_seed, uint64_t base,
                               uint64_t* span_out, size_t* n_spans) {
  if (metrics::Enabled()) GetSimdMetrics().minsum_dispatch->Increment();
  return Kernels().min_sum_spans(outs, n_outs, ins, n_ins, dmin_seed, base,
                                 span_out, n_spans);
}

inline size_t ProbeScanU64(const uint64_t* keys, size_t mask, uint64_t key,
                           size_t start) {
  if (metrics::Enabled()) GetSimdMetrics().probe_dispatch->Increment();
  return Kernels().probe_scan(keys, mask, key, start);
}

inline void FrontierAndNot(uint64_t* next, const uint64_t* visited,
                           size_t nwords) {
  Kernels().frontier_and_not(next, visited, nwords);
}

}  // namespace mel::util::simd

#endif  // MEL_UTIL_SIMD_SIMD_H_

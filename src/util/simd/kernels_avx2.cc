// AVX2 kernel tier. This translation unit is the ONLY code in the
// binary compiled with -mavx2 (set per-file by src/CMakeLists.txt), and
// nothing in it runs unless the dispatcher verified AVX2 via cpuid — so
// the same binary keeps working on baseline hosts. Every function here
// is bit-identical to its scalar core for all inputs, including
// duplicate-heavy ones: order comparisons use the sign-bias trick for
// exact unsigned semantics, and any window where a duplicate is visible
// falls back to one exact scalar step.
//
// MEL_SIMD_BUILD_AVX2 is defined by CMake exactly when the flag is
// available; otherwise this file compiles to a null provider.

#include "util/simd/kernel_tables.h"

#if defined(MEL_SIMD_BUILD_AVX2)

#include <immintrin.h>

#include "util/simd/kernels_common.h"

namespace mel::util::simd::detail {
namespace {

constexpr uint32_t kSignBias = 0x80000000u;

// Cyclic 8-lane rotations for the all-pairs block compare. Plain
// constexpr ints: loading them at runtime is baseline-safe, whereas a
// namespace-scope __m256i would run AVX code in a static initializer —
// before dispatch ever checked cpuid.
alignas(32) constexpr int32_t kRotIdx[8][8] = {
    {0, 1, 2, 3, 4, 5, 6, 7}, {1, 2, 3, 4, 5, 6, 7, 0},
    {2, 3, 4, 5, 6, 7, 0, 1}, {3, 4, 5, 6, 7, 0, 1, 2},
    {4, 5, 6, 7, 0, 1, 2, 3}, {5, 6, 7, 0, 1, 2, 3, 4},
    {6, 7, 0, 1, 2, 3, 4, 5}, {7, 0, 1, 2, 3, 4, 5, 6},
};

inline int MoveMask32(__m256i v) {
  return _mm256_movemask_ps(_mm256_castsi256_ps(v));
}

// Lanes of sorted vector `v` strictly below the (pre-biased) pivot.
// Sorted input makes the less-than lanes a prefix, so the popcount IS
// the first not-less position.
inline int PrefixLessU32x8(__m256i v, __m256i biased_pivot) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(kSignBias));
  const __m256i lt =
      _mm256_cmpgt_epi32(biased_pivot, _mm256_xor_si256(v, bias));
  return __builtin_popcount(static_cast<unsigned>(MoveMask32(lt)));
}

// ---------------------------------------------------------------------------
// Sorted-u32 intersection, merge flavor: shuffle-based 8x8 block compare.
// Windows that contain a visible duplicate (any adjacent-equal pair in
// a[i..i+8] or b[j..j+8]) take one exact scalar step instead — the
// all-pairs count is only valid on duplicate-free windows, and the
// guard also covers the value-spans-two-windows case because it checks
// one element past the window.
// ---------------------------------------------------------------------------

uint32_t MergeCountAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb) {
  uint32_t count = 0;
  size_t i = 0, j = 0;
  // The dup-guard loads 8 lanes from a+i+1 / b+j+1, so keep one element
  // of headroom past each window.
  while (i + 9 <= na && j + 9 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i va1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 1));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j + 1));
    const int dup = MoveMask32(_mm256_cmpeq_epi32(va, va1)) |
                    MoveMask32(_mm256_cmpeq_epi32(vb, vb1));
    if (dup != 0) {
      ScalarMergeStep(a, b, &i, &j, &count);
      continue;
    }
    // All-pairs 8x8 equality via the 8 cyclic rotations of the b block,
    // OR-accumulated per a-lane (each a value matches at most one b
    // value inside a duplicate-free window).
    __m256i hits = _mm256_setzero_si256();
    for (int r = 0; r < 8; ++r) {
      const __m256i rot = _mm256_permutevar8x32_epi32(
          vb, _mm256_load_si256(reinterpret_cast<const __m256i*>(kRotIdx[r])));
      hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, rot));
    }
    count += __builtin_popcount(static_cast<unsigned>(MoveMask32(hits)));
    // Retire the window(s) whose max cannot match anything further: the
    // standard advance rule; on equal maxima both retire (their shared
    // value was just counted once).
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) ScalarMergeStep(a, b, &i, &j, &count);
  return count;
}

// ---------------------------------------------------------------------------
// Sorted-u32 intersection, gallop flavor: vectorized bracket scan. The
// exponential probe checks 8 lanes per step; the movemask pinpoints the
// lower bound inside the probed block directly (0 < pc < 8), and only
// a block that is entirely >= x forces a binary search over the gap the
// doubling jumped across.
// ---------------------------------------------------------------------------

uint32_t GallopCountAvx2(const uint32_t* small, size_t ns,
                         const uint32_t* large, size_t nl) {
  uint32_t count = 0;
  size_t lo = 0;
  for (size_t k = 0; k < ns; ++k) {
    const uint32_t x = small[k];
    const __m256i pivot = _mm256_set1_epi32(static_cast<int>(x ^ kSignBias));
    size_t all_less_end = lo;  // large[0 .. all_less_end) < x is proven
    size_t hi = lo;
    size_t step = 8;
    size_t pos;
    for (;;) {
      if (hi + 8 > nl) {
        pos = LowerBoundU32(large, all_less_end, nl, x);
        break;
      }
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(large + hi));
      const int pc = PrefixLessU32x8(v, pivot);
      if (pc == 8) {
        all_less_end = hi + 8;
        hi += step;
        step <<= 1;
        continue;
      }
      if (pc > 0) {
        // large[hi] < x <= large[hi + pc]: the doubling gap before hi is
        // all < x too, so this is the exact lower bound.
        pos = hi + static_cast<size_t>(pc);
        break;
      }
      // large[hi] >= x: the bound sits in the jumped-over gap (or at hi).
      pos = LowerBoundU32(large, all_less_end, hi, x);
      break;
    }
    lo = pos;
    if (lo == nl) break;
    if (large[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// 2-hop running-min label walk: scalar match handling (matches are the
// rare, semantics-heavy part) with vectorized advance — the lagging
// side skips up to 4 packed labels per compare by counting node lanes
// below the other side's current node.
// ---------------------------------------------------------------------------

// How many of the 4 packed labels at p have node < pivot_node. Node ids
// sit in the even epi32 lanes; sorted unique nodes make the less-than
// flags a prefix among those lanes.
inline size_t PrefixLessNodesU64x4(const uint64_t* p, uint32_t pivot_node) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(kSignBias));
  const __m256i pivot =
      _mm256_set1_epi32(static_cast<int>(pivot_node ^ kSignBias));
  const __m256i lt = _mm256_cmpgt_epi32(pivot, _mm256_xor_si256(v, bias));
  return static_cast<size_t>(__builtin_popcount(
      static_cast<unsigned>(MoveMask32(lt)) & 0x55u));
}

uint32_t MinSumSpansAvx2(const uint64_t* outs, size_t n_outs,
                         const uint64_t* ins, size_t n_ins, uint32_t dmin,
                         uint64_t base, uint64_t* span_out, size_t* n_spans) {
  // Block skips only engage when one list is much longer than the other
  // (the long side jumps over runs between matches). Near-equal sizes
  // mean an advance of ~1 per step, where the branchless scalar merge is
  // already optimal — delegate instead of paying vector overhead for
  // skips that never happen. Same answer either way (both are exact).
  const size_t lo = n_outs < n_ins ? n_outs : n_ins;
  const size_t hi = n_outs < n_ins ? n_ins : n_outs;
  if (lo + hi < 32 || hi < 4 * lo) {
    return ScalarMinSumSpans(outs, n_outs, ins, n_ins, dmin, base, span_out,
                             n_spans);
  }
  *n_spans = 0;
  size_t i = 0, j = 0;
  while (i < n_outs && j < n_ins) {
    const uint32_t a = static_cast<uint32_t>(outs[i]);
    const uint32_t b = static_cast<uint32_t>(ins[j]);
    if (a == b) {
      MinSumMatch(outs[i], ins[j], i, &dmin, base, span_out, n_spans);
      ++i;
      ++j;
    } else if (a < b) {
      // Coarse skip costs one scalar compare per 4 labels (the whole
      // block is below b iff its last node is); the vector prefix count
      // only runs on the final partial block, so a tight interleave
      // (advance of 1) never pays for a SIMD op it cannot use.
      ++i;
      while (i + 4 <= n_outs && static_cast<uint32_t>(outs[i + 3]) < b) {
        i += 4;
      }
      if (i + 4 <= n_outs) {
        i += PrefixLessNodesU64x4(outs + i, b);
      } else {
        while (i < n_outs && static_cast<uint32_t>(outs[i]) < b) ++i;
      }
    } else {
      ++j;
      while (j + 4 <= n_ins && static_cast<uint32_t>(ins[j + 3]) < a) {
        j += 4;
      }
      if (j + 4 <= n_ins) {
        j += PrefixLessNodesU64x4(ins + j, a);
      } else {
        while (j < n_ins && static_cast<uint32_t>(ins[j]) < a) ++j;
      }
    }
  }
  return dmin;
}

// ---------------------------------------------------------------------------
// Open-addressed probe scan: 4 slots per compare, first match-or-empty
// lane wins. The wrap boundary (and tables smaller than one vector)
// degrade to exact scalar steps.
// ---------------------------------------------------------------------------

size_t ProbeScanAvx2(const uint64_t* keys, size_t mask, uint64_t key,
                     size_t start) {
  const size_t cap = mask + 1;
  const __m256i target = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256i zero = _mm256_setzero_si256();
  size_t idx = start;
  for (;;) {
    if (idx + 4 <= cap) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + idx));
      const __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi64(v, target),
                                          _mm256_cmpeq_epi64(v, zero));
      const int m = _mm256_movemask_pd(_mm256_castsi256_pd(hit));
      if (m != 0) {
        return idx + static_cast<size_t>(
                         __builtin_ctz(static_cast<unsigned>(m)));
      }
      idx += 4;
      if (idx == cap) idx = 0;
    } else {
      if (keys[idx] == key || keys[idx] == 0) return idx;
      idx = (idx + 1) & mask;
    }
  }
}

// ---------------------------------------------------------------------------
// Dense-BFS frontier filter: 4 bitset words per op.
// ---------------------------------------------------------------------------

void FrontierAndNotAvx2(uint64_t* next, const uint64_t* visited,
                        size_t nwords) {
  size_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    const __m256i n =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(next + w));
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(visited + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(next + w),
                        _mm256_andnot_si256(v, n));
  }
  for (; w < nwords; ++w) next[w] &= ~visited[w];
}

}  // namespace

const KernelTable* Avx2KernelsOrNull() {
  static const KernelTable table = {
      &MergeCountAvx2, &GallopCountAvx2,    &MinSumSpansAvx2,
      &ProbeScanAvx2,  &FrontierAndNotAvx2,
  };
  return &table;
}

}  // namespace mel::util::simd::detail

#else  // !MEL_SIMD_BUILD_AVX2

namespace mel::util::simd::detail {

const KernelTable* Avx2KernelsOrNull() { return nullptr; }

}  // namespace mel::util::simd::detail

#endif  // MEL_SIMD_BUILD_AVX2

#ifndef MEL_UTIL_SIMD_KERNELS_COMMON_H_
#define MEL_UTIL_SIMD_KERNELS_COMMON_H_

// Scalar cores shared by every kernel translation unit. The scalar tier
// registers these directly; the SSE4/AVX2 tiers call them for short
// inputs, vector tails, and the duplicate-heavy fallback steps — so the
// exact semantics (pairwise duplicate counting, lower-bound positions,
// running-min span resets) are written exactly once.
//
// Everything here is `static inline` ON PURPOSE: the SSE4/AVX2 TUs are
// compiled with arch flags, and an ordinary `inline` function would be
// a comdat the linker may pick from the vectorized TU for the whole
// binary — executing AVX instructions on the pre-dispatch path of a
// baseline host. Internal linkage gives every TU its own baseline-or-
// better copy, reachable only through that TU's dispatch table. For the
// same reason this header must not touch std:: templates that other TUs
// also instantiate (no <vector>, no <algorithm>).

#include <cstddef>
#include <cstdint>

namespace mel::util::simd::detail {

/// Local lower_bound over a sorted u32 range (std::lower_bound would be
/// a shared template instantiation — see the header comment).
static inline size_t LowerBoundU32(const uint32_t* p, size_t lo, size_t hi,
                                   uint32_t x) {
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (p[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Linear merge count; duplicates count pairwise like
/// std::set_intersection (min of the two multiplicities per value).
static inline uint32_t ScalarMergeCount(const uint32_t* a, size_t na,
                                        const uint32_t* b, size_t nb) {
  uint32_t count = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// One merge step from (i, j): counts at most one match and advances at
/// least one cursor. The duplicate-fallback unit of the vector merges.
static inline void ScalarMergeStep(const uint32_t* a, const uint32_t* b,
                                   size_t* i, size_t* j, uint32_t* count) {
  if (a[*i] < b[*j]) {
    ++*i;
  } else if (a[*i] > b[*j]) {
    ++*j;
  } else {
    ++*count;
    ++*i;
    ++*j;
  }
}

/// Galloping count: for each element of the small list, exponential-
/// search a bracket in the large list from the previous position, then
/// binary-search inside it. Identical results to ScalarMergeCount —
/// everything reduces to lower-bound positions.
static inline uint32_t ScalarGallopCount(const uint32_t* small, size_t ns,
                                         const uint32_t* large, size_t nl) {
  uint32_t count = 0;
  size_t lo = 0;
  for (size_t k = 0; k < ns; ++k) {
    const uint32_t x = small[k];
    size_t step = 1;
    size_t hi = lo;
    while (hi < nl && large[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    if (hi > nl) hi = nl;
    lo = LowerBoundU32(large, lo, hi, x);
    if (lo == nl) break;
    if (large[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

/// Handles one matched hub of the min-sum walk: folds the distance sum
/// into the running minimum with reset-on-strictly-smaller /
/// append-on-equal span semantics (TwoHopIndex Theorem-2 collection).
static inline void MinSumMatch(uint64_t out_word, uint64_t in_word, size_t i,
                               uint32_t* dmin, uint64_t base,
                               uint64_t* span_out, size_t* n_spans) {
  const uint32_t d = static_cast<uint32_t>(out_word >> 32) +
                     static_cast<uint32_t>(in_word >> 32);
  if (d < *dmin) {
    *dmin = d;
    *n_spans = 0;
    span_out[(*n_spans)++] = base + i;
  } else if (d == *dmin) {
    span_out[(*n_spans)++] = base + i;
  }
}

/// Fused sorted intersection + running-min span collection over packed
/// (node lo32, dist hi32) label words. See KernelTable::min_sum_spans.
static inline uint32_t ScalarMinSumSpans(const uint64_t* outs, size_t n_outs,
                                         const uint64_t* ins, size_t n_ins,
                                         uint32_t dmin, uint64_t base,
                                         uint64_t* span_out,
                                         size_t* n_spans) {
  *n_spans = 0;
  size_t i = 0, j = 0;
  while (i < n_outs && j < n_ins) {
    const uint32_t a = static_cast<uint32_t>(outs[i]);
    const uint32_t b = static_cast<uint32_t>(ins[j]);
    if (a == b) {
      MinSumMatch(outs[i], ins[j], i, &dmin, base, span_out, n_spans);
      ++i;
      ++j;
    } else {
      // Branchless advance, matching the original fused walk.
      i += a < b;
      j += b < a;
    }
  }
  return dmin;
}

/// Linear probe scan: first slot from `start` (wrapping at mask + 1)
/// whose key matches or is empty (0).
static inline size_t ScalarProbeScan(const uint64_t* keys, size_t mask,
                                     uint64_t key, size_t start) {
  size_t idx = start;
  while (keys[idx] != key && keys[idx] != 0) {
    idx = (idx + 1) & mask;
  }
  return idx;
}

static inline void ScalarFrontierAndNot(uint64_t* next,
                                        const uint64_t* visited,
                                        size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) next[w] &= ~visited[w];
}

}  // namespace mel::util::simd::detail

#endif  // MEL_UTIL_SIMD_KERNELS_COMMON_H_

// SSE4.2 kernel tier: 4-lane versions of the AVX2 kernels (see
// kernels_avx2.cc for the algorithm commentary — the structure is
// identical, halved widths). Compiled per-file with -msse4.2 and only
// reachable through the dispatch table after cpuid verified SSE4.2.
//
// MEL_SIMD_BUILD_SSE4 is defined by CMake exactly when the flag is
// available; otherwise this file compiles to a null provider.

#include "util/simd/kernel_tables.h"

#if defined(MEL_SIMD_BUILD_SSE4)

#include <nmmintrin.h>

#include "util/simd/kernels_common.h"

namespace mel::util::simd::detail {
namespace {

constexpr uint32_t kSignBias = 0x80000000u;

inline int MoveMask32(__m128i v) {
  return _mm_movemask_ps(_mm_castsi128_ps(v));
}

inline int PrefixLessU32x4(__m128i v, __m128i biased_pivot) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(kSignBias));
  const __m128i lt = _mm_cmpgt_epi32(biased_pivot, _mm_xor_si128(v, bias));
  return __builtin_popcount(static_cast<unsigned>(MoveMask32(lt)));
}

// 4x4 all-pairs block intersection with the same duplicate guard and
// advance-by-max rule as the 8x8 AVX2 version. The four rotations of
// the b block come from _mm_shuffle_epi32 immediates.
uint32_t MergeCountSse4(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb) {
  uint32_t count = 0;
  size_t i = 0, j = 0;
  while (i + 5 <= na && j + 5 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const __m128i va1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 1));
    const __m128i vb1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j + 1));
    const int dup = MoveMask32(_mm_cmpeq_epi32(va, va1)) |
                    MoveMask32(_mm_cmpeq_epi32(vb, vb1));
    if (dup != 0) {
      ScalarMergeStep(a, b, &i, &j, &count);
      continue;
    }
    __m128i hits = _mm_cmpeq_epi32(va, vb);
    hits = _mm_or_si128(
        hits, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    hits = _mm_or_si128(
        hits, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    hits = _mm_or_si128(
        hits, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    count += __builtin_popcount(static_cast<unsigned>(MoveMask32(hits)));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  while (i < na && j < nb) ScalarMergeStep(a, b, &i, &j, &count);
  return count;
}

uint32_t GallopCountSse4(const uint32_t* small, size_t ns,
                         const uint32_t* large, size_t nl) {
  uint32_t count = 0;
  size_t lo = 0;
  for (size_t k = 0; k < ns; ++k) {
    const uint32_t x = small[k];
    const __m128i pivot = _mm_set1_epi32(static_cast<int>(x ^ kSignBias));
    size_t all_less_end = lo;
    size_t hi = lo;
    size_t step = 4;
    size_t pos;
    for (;;) {
      if (hi + 4 > nl) {
        pos = LowerBoundU32(large, all_less_end, nl, x);
        break;
      }
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(large + hi));
      const int pc = PrefixLessU32x4(v, pivot);
      if (pc == 4) {
        all_less_end = hi + 4;
        hi += step;
        step <<= 1;
        continue;
      }
      if (pc > 0) {
        pos = hi + static_cast<size_t>(pc);
        break;
      }
      pos = LowerBoundU32(large, all_less_end, hi, x);
      break;
    }
    lo = pos;
    if (lo == nl) break;
    if (large[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

// Node ids of 2 packed labels below pivot_node (even epi32 lanes).
inline size_t PrefixLessNodesU64x2(const uint64_t* p, uint32_t pivot_node) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i bias = _mm_set1_epi32(static_cast<int>(kSignBias));
  const __m128i pivot =
      _mm_set1_epi32(static_cast<int>(pivot_node ^ kSignBias));
  const __m128i lt = _mm_cmpgt_epi32(pivot, _mm_xor_si128(v, bias));
  return static_cast<size_t>(__builtin_popcount(
      static_cast<unsigned>(MoveMask32(lt)) & 0x5u));
}

uint32_t MinSumSpansSse4(const uint64_t* outs, size_t n_outs,
                         const uint64_t* ins, size_t n_ins, uint32_t dmin,
                         uint64_t base, uint64_t* span_out, size_t* n_spans) {
  // Near-equal list sizes advance ~1 per step, where the branchless
  // scalar merge is already optimal (see the AVX2 tier for the full
  // rationale) — only asymmetric shapes take the block-skip path.
  const size_t lo = n_outs < n_ins ? n_outs : n_ins;
  const size_t hi = n_outs < n_ins ? n_ins : n_outs;
  if (lo + hi < 32 || hi < 4 * lo) {
    return ScalarMinSumSpans(outs, n_outs, ins, n_ins, dmin, base, span_out,
                             n_spans);
  }
  *n_spans = 0;
  size_t i = 0, j = 0;
  while (i < n_outs && j < n_ins) {
    const uint32_t a = static_cast<uint32_t>(outs[i]);
    const uint32_t b = static_cast<uint32_t>(ins[j]);
    if (a == b) {
      MinSumMatch(outs[i], ins[j], i, &dmin, base, span_out, n_spans);
      ++i;
      ++j;
    } else if (a < b) {
      // Same shape as the AVX2 tier: scalar whole-block skip first, the
      // vector prefix count only on the final partial block.
      ++i;
      while (i + 2 <= n_outs && static_cast<uint32_t>(outs[i + 1]) < b) {
        i += 2;
      }
      if (i + 2 <= n_outs) {
        i += PrefixLessNodesU64x2(outs + i, b);
      } else {
        while (i < n_outs && static_cast<uint32_t>(outs[i]) < b) ++i;
      }
    } else {
      ++j;
      while (j + 2 <= n_ins && static_cast<uint32_t>(ins[j + 1]) < a) {
        j += 2;
      }
      if (j + 2 <= n_ins) {
        j += PrefixLessNodesU64x2(ins + j, a);
      } else {
        while (j < n_ins && static_cast<uint32_t>(ins[j]) < a) ++j;
      }
    }
  }
  return dmin;
}

size_t ProbeScanSse4(const uint64_t* keys, size_t mask, uint64_t key,
                     size_t start) {
  const size_t cap = mask + 1;
  const __m128i target = _mm_set1_epi64x(static_cast<long long>(key));
  const __m128i zero = _mm_setzero_si128();
  size_t idx = start;
  for (;;) {
    if (idx + 2 <= cap) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + idx));
      const __m128i hit = _mm_or_si128(_mm_cmpeq_epi64(v, target),
                                       _mm_cmpeq_epi64(v, zero));
      const int m = _mm_movemask_pd(_mm_castsi128_pd(hit));
      if (m != 0) {
        return idx + static_cast<size_t>(
                         __builtin_ctz(static_cast<unsigned>(m)));
      }
      idx += 2;
      if (idx == cap) idx = 0;
    } else {
      if (keys[idx] == key || keys[idx] == 0) return idx;
      idx = (idx + 1) & mask;
    }
  }
}

void FrontierAndNotSse4(uint64_t* next, const uint64_t* visited,
                        size_t nwords) {
  size_t w = 0;
  for (; w + 2 <= nwords; w += 2) {
    const __m128i n =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(next + w));
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(visited + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(next + w),
                     _mm_andnot_si128(v, n));
  }
  for (; w < nwords; ++w) next[w] &= ~visited[w];
}

}  // namespace

const KernelTable* Sse4KernelsOrNull() {
  static const KernelTable table = {
      &MergeCountSse4, &GallopCountSse4,    &MinSumSpansSse4,
      &ProbeScanSse4,  &FrontierAndNotSse4,
  };
  return &table;
}

}  // namespace mel::util::simd::detail

#else  // !MEL_SIMD_BUILD_SSE4

namespace mel::util::simd::detail {

const KernelTable* Sse4KernelsOrNull() { return nullptr; }

}  // namespace mel::util::simd::detail

#endif  // MEL_SIMD_BUILD_SSE4

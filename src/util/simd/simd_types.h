#ifndef MEL_UTIL_SIMD_SIMD_TYPES_H_
#define MEL_UTIL_SIMD_SIMD_TYPES_H_

// Types shared between the dispatcher (simd.h / simd.cc) and the
// per-tier kernel translation units. This header deliberately contains
// NO inline function definitions: the SSE4/AVX2 TUs are compiled with
// arch flags, and any comdat (inline/template) function they emitted
// could be chosen by the linker for the whole binary — an illegal-
// instruction trap waiting for a baseline host. Keeping this header to
// plain declarations makes that impossible by construction.

#include <cstddef>
#include <cstdint>

namespace mel::util::simd {

/// Instruction-set tiers the kernel layer can dispatch to. Values are
/// ordered: a higher tier implies every capability of the lower ones,
/// and `util.simd.level` exports the active value verbatim.
enum class Level : int {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

/// Human-readable tier name ("scalar" / "sse4" / "avx2").
const char* LevelName(Level level);

/// What the host CPU can execute, probed once per process (cpuid via
/// __builtin_cpu_supports on x86; everything false elsewhere).
struct CpuFeatures {
  bool sse4_2 = false;
  bool avx2 = false;

  static const CpuFeatures& Detect();
};

/// \brief One resolved set of kernel entry points.
///
/// Every kernel is integer-exact: for identical inputs, every tier
/// returns bit-identical results (the differential oracle replays
/// vectorized/scalar pairs — see docs/TESTING.md). All pointers are
/// non-null in any table returned by Kernels() / KernelsFor().
struct KernelTable {
  /// Sorted-u32 intersection count, linear-merge flavor (near-equal
  /// sizes). Duplicates count pairwise like std::set_intersection.
  uint32_t (*merge_count)(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb);

  /// Sorted-u32 intersection count, galloping flavor (|small| <<
  /// |large|): per small element, an exponential bracket scan over the
  /// large list. Same duplicate semantics as merge_count.
  uint32_t (*gallop_count)(const uint32_t* small, size_t ns,
                           const uint32_t* large, size_t nl);

  /// The 2-hop running-min label walk (TwoHopIndex::
  /// CollectMinDistanceSpans' fused intersection): `outs` and `ins` are
  /// label arrays packed as little-endian u64 words with the hub node id
  /// in the low 32 bits and the distance in the high 32 bits, sorted
  /// ascending and unique by node. For every common hub the distance sum
  /// is folded into a running minimum seeded with `dmin_seed`; a
  /// strictly smaller sum resets the collected spans, an equal one
  /// appends `base + i` (i = index into `outs`). `span_out` must have
  /// room for n_outs entries; *n_spans receives how many were kept.
  /// Returns the final minimum.
  uint32_t (*min_sum_spans)(const uint64_t* outs, size_t n_outs,
                            const uint64_t* ins, size_t n_ins,
                            uint32_t dmin_seed, uint64_t base,
                            uint64_t* span_out, size_t* n_spans);

  /// Open-addressed probe scan: starting at `start`, returns the index
  /// of the first slot (in linear-probe order, wrapping at capacity =
  /// mask + 1, a power of two) whose key equals `key` or is 0 (empty).
  /// The table must contain at least one empty slot or a match.
  size_t (*probe_scan)(const uint64_t* keys, size_t mask, uint64_t key,
                       size_t start);

  /// Word-parallel frontier filter: next[w] &= ~visited[w] for w in
  /// [0, nwords). The dense-BFS level step in graph/bfs.cc.
  void (*frontier_and_not)(uint64_t* next, const uint64_t* visited,
                           size_t nwords);
};

}  // namespace mel::util::simd

#endif  // MEL_UTIL_SIMD_SIMD_TYPES_H_

#include "util/simd/simd.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"
#include "util/simd/kernel_tables.h"

namespace mel::util::simd {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse4:
      return "sse4";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const CpuFeatures& CpuFeatures::Detect() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    f.sse4_2 = __builtin_cpu_supports("sse4.2") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
    return f;
  }();
  return features;
}

namespace {

// What the binary itself contains, independent of the host CPU. A tier
// is usable only when both its TU was built AND the CPU supports it.
bool TierBuilt(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse4:
      return detail::Sse4KernelsOrNull() != nullptr;
    case Level::kAvx2:
      return detail::Avx2KernelsOrNull() != nullptr;
  }
  return false;
}

bool CpuSupports(Level level, const CpuFeatures& features) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse4:
      return features.sse4_2;
    case Level::kAvx2:
      return features.avx2;
  }
  return false;
}

Level BestSupported(const CpuFeatures& features) {
  if (CpuSupports(Level::kAvx2, features) && TierBuilt(Level::kAvx2)) {
    return Level::kAvx2;
  }
  if (CpuSupports(Level::kSse4, features) && TierBuilt(Level::kSse4)) {
    return Level::kSse4;
  }
  return Level::kScalar;
}

}  // namespace

Level ResolveLevel(const char* override_name, const CpuFeatures& features) {
  const Level best = BestSupported(features);
  if (override_name == nullptr || override_name[0] == '\0') return best;
  Level requested;
  if (std::strcmp(override_name, "scalar") == 0) {
    requested = Level::kScalar;
  } else if (std::strcmp(override_name, "sse4") == 0) {
    requested = Level::kSse4;
  } else if (std::strcmp(override_name, "avx2") == 0) {
    requested = Level::kAvx2;
  } else {
    std::fprintf(stderr,
                 "mel: unknown MEL_SIMD value \"%s\" "
                 "(expected scalar|sse4|avx2), auto-detecting\n",
                 override_name);
    return best;
  }
  // Requests above the host/build capability clamp down rather than
  // fail: MEL_SIMD=avx2 on an SSE4-only machine means "the best you
  // can", never an illegal instruction.
  if (static_cast<int>(requested) > static_cast<int>(best)) {
    std::fprintf(stderr,
                 "mel: MEL_SIMD=%s not usable on this host/build, "
                 "clamping to %s\n",
                 override_name, LevelName(best));
    return best;
  }
  return requested;
}

bool LevelSupported(Level level) {
  return TierBuilt(level) && CpuSupports(level, CpuFeatures::Detect());
}

Level ActiveLevel() {
  static const Level level = [] {
    const Level l =
        ResolveLevel(std::getenv("MEL_SIMD"), CpuFeatures::Detect());
    metrics::Registry().GetGauge("util.simd.level")->Set(
        static_cast<int64_t>(l));
    return l;
  }();
  return level;
}

const KernelTable& KernelsFor(Level level) {
  MEL_CHECK_MSG(LevelSupported(level), "requested SIMD tier unavailable");
  switch (level) {
    case Level::kSse4:
      return *detail::Sse4KernelsOrNull();
    case Level::kAvx2:
      return *detail::Avx2KernelsOrNull();
    case Level::kScalar:
      break;
  }
  return *detail::ScalarKernels();
}

const KernelTable& Kernels() {
  static const KernelTable& table = KernelsFor(ActiveLevel());
  return table;
}

const SimdMetrics& GetSimdMetrics() {
  static const SimdMetrics m = [] {
    auto& reg = metrics::Registry();
    SimdMetrics s;
    s.merge_dispatch = reg.GetCounter("util.simd.merge_dispatch_total");
    s.gallop_dispatch = reg.GetCounter("util.simd.gallop_dispatch_total");
    s.minsum_dispatch = reg.GetCounter("util.simd.minsum_dispatch_total");
    s.probe_dispatch = reg.GetCounter("util.simd.probe_dispatch_total");
    s.dense_levels = reg.GetCounter("util.simd.frontier_dense_levels_total");
    return s;
  }();
  return m;
}

}  // namespace mel::util::simd

#ifndef MEL_UTIL_STEAL_DEQUE_H_
#define MEL_UTIL_STEAL_DEQUE_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace mel::util {

/// \brief Fixed-capacity Chase-Lev work-stealing deque of 64-bit values.
///
/// One owner pushes and pops at the bottom (LIFO); any number of thieves
/// take from the top (FIFO), so the oldest — in the thread pool's usage,
/// the *largest* — range is the one that gets stolen. The protocol
/// follows Le, Pop, Cohen & Nardelli, "Correct and Efficient
/// Work-Stealing for Weak Memory Models" (PPoPP'13), with two deliberate
/// deviations:
///
///  * Slots are relaxed atomics. A thief may read a slot the owner is
///    concurrently recycling, but its CAS on top_ then fails and the
///    value is discarded; making the read atomic keeps that benign race
///    out of undefined-behaviour (and ThreadSanitizer-report) territory.
///  * top_/bottom_ use seq_cst operations instead of standalone fences,
///    because TSan does not model atomic_thread_fence and the scheduler
///    runs under TSan in CI. The extra ordering costs nothing next to a
///    grain of real work per deque operation.
///
/// Capacity is fixed rather than growable: the pool pushes at most one
/// entry per binary split of a range, so the owner's depth is bounded by
/// log2(range_size) <= 64 (a successful steal moves all *further*
/// splitting of the stolen half into the thief's own deque). Push
/// reports failure instead of resizing; the pool then simply runs the
/// oversized range without splitting it further.
class StealDeque {
 public:
  static constexpr uint32_t kCapacity = 256;
  static_assert((kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");

  /// Owner only. Returns false when the deque is full.
  bool Push(uint64_t value) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<int64_t>(kCapacity)) return false;
    slots_[static_cast<uint64_t>(b) & kMask].store(value,
                                                   std::memory_order_relaxed);
    // seq_cst release-publishes the slot to thieves reading bottom_.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. Pops the most recently pushed value (LIFO).
  bool Pop(uint64_t* out) {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // The decrement must be ordered before the top_ read (StoreLoad);
    // seq_cst on both provides it without a standalone fence.
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: restore the canonical empty shape
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    const uint64_t value =
        slots_[static_cast<uint64_t>(b) & kMask].load(
            std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via top_.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return false;
      *out = value;
      return true;
    }
    *out = value;
    return true;
  }

  /// Any thread. Takes the oldest value (FIFO). Returns false when the
  /// deque looks empty or another thief (or the owner taking the last
  /// element) won the race.
  bool Steal(uint64_t* out) {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    const uint64_t value =
        slots_[static_cast<uint64_t>(t) & kMask].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = value;
    return true;
  }

  /// Racy size hint for victim scanning; never a correctness signal.
  bool MaybeEmpty() const {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kMask = kCapacity - 1;

  // top_ and bottom_ on separate cache lines: thieves hammer top_, the
  // owner hammers bottom_.
  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
  std::array<std::atomic<uint64_t>, kCapacity> slots_{};
};

}  // namespace mel::util

#endif  // MEL_UTIL_STEAL_DEQUE_H_

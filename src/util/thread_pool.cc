#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/metrics.h"

namespace mel::util {

namespace {

// True while the current thread executes inside a ParallelFor region —
// as a pool worker or as the submitting caller. Nested ParallelFor calls
// observe it and degrade to the serial inline path.
thread_local bool t_in_parallel_region = false;

struct PoolMetrics {
  metrics::Counter* regions;
  metrics::Counter* inline_regions;
  metrics::Histogram* region_ns;
  metrics::Histogram* worker_items;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics m = [] {
    auto& reg = metrics::Registry();
    PoolMetrics pm;
    pm.regions = reg.GetCounter("util.pool.parallel_for_total");
    pm.inline_regions = reg.GetCounter("util.pool.inline_for_total");
    pm.region_ns = reg.GetHistogram("util.pool.parallel_for_ns");
    pm.worker_items = reg.GetHistogram("util.pool.worker_items");
    return pm;
  }();
  return m;
}

}  // namespace

struct ThreadPool::Job {
  std::atomic<size_t> next{0};
  size_t end = 0;
  size_t grain = 1;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<bool> cancelled{false};
};

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads - 1);
  for (uint32_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: destruction order against other static state at
  // exit is not worth the risk, and the workers park on a condvar.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

uint64_t ThreadPool::RunChunks(Job* job) {
  uint64_t processed = 0;
  while (!job->cancelled.load(std::memory_order_relaxed)) {
    size_t start = job->next.fetch_add(job->grain, std::memory_order_relaxed);
    if (start >= job->end) break;
    size_t stop = std::min(start + job->grain, job->end);
    try {
      for (size_t i = start; i < stop; ++i) (*job->fn)(i);
    } catch (...) {
      job->cancelled.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_exception_) first_exception_ = std::current_exception();
      break;
    }
    processed += stop - start;
  }
  if (metrics::Enabled()) GetPoolMetrics().worker_items->Record(processed);
  return processed;
}

void ThreadPool::WorkerLoop() {
  t_in_parallel_region = true;  // workers never open nested regions
  uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      if (workers_in_job_ >= job_worker_limit_) continue;  // enough hands
      ++workers_in_job_;
      job = job_;
    }
    RunChunks(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_in_job_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn,
                             uint32_t max_threads) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t count = end - begin;
  const size_t chunks = (count + grain - 1) / grain;
  if (max_threads == 0) max_threads = num_threads();

  // Serial inline path: nothing to parallelize with, or we are already
  // inside a region (nested call).
  if (t_in_parallel_region || workers_.empty() || max_threads <= 1 ||
      chunks <= 1) {
    GetPoolMetrics().inline_regions->Increment();
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  const PoolMetrics& pm = GetPoolMetrics();
  pm.regions->Increment();
  metrics::ScopedStageTimer region_timer(pm.region_ns);

  Job job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_generation_;
    first_exception_ = nullptr;
    // The caller is one participant; workers fill the rest, never more
    // than one per chunk.
    job_worker_limit_ = static_cast<uint32_t>(std::min<size_t>(
        {workers_.size(), max_threads - 1, chunks - 1}));
  }
  work_cv_.notify_all();

  t_in_parallel_region = true;
  RunChunks(&job);
  t_in_parallel_region = false;

  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;  // late wakeups must not join a finished region
    done_cv_.wait(lock, [&] { return workers_in_job_ == 0; });
    exception = first_exception_;
    first_exception_ = nullptr;
  }
  if (exception) std::rethrow_exception(exception);
}

}  // namespace mel::util

#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/cpu_topology.h"
#include "util/metrics.h"

namespace mel::util {

namespace {

// True while the current thread executes inside a ParallelFor region —
// as a pool worker or as the submitting caller. Nested ParallelFor calls
// observe it and degrade to the serial inline path.
thread_local bool t_in_parallel_region = false;

struct PoolMetrics {
  metrics::Counter* regions;
  metrics::Counter* inline_regions;
  metrics::Counter* steals;
  metrics::Counter* steal_fails;
  metrics::Counter* local_pops;
  metrics::Gauge* imbalance;
  metrics::Histogram* region_ns;
  metrics::Histogram* worker_items;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics m = [] {
    auto& reg = metrics::Registry();
    PoolMetrics pm;
    pm.regions = reg.GetCounter("util.pool.parallel_for_total");
    pm.inline_regions = reg.GetCounter("util.pool.inline_for_total");
    pm.steals = reg.GetCounter("util.pool.steals_total");
    pm.steal_fails = reg.GetCounter("util.pool.steal_fails_total");
    pm.local_pops = reg.GetCounter("util.pool.local_pops_total");
    pm.imbalance = reg.GetGauge("util.pool.region_imbalance_x100");
    pm.region_ns = reg.GetHistogram("util.pool.parallel_for_ns");
    pm.worker_items = reg.GetHistogram("util.pool.worker_items");
    return pm;
  }();
  return m;
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Exponential backoff: brief pause-spinning, then yields, then parks in
/// escalating microsecond sleeps (capped at 256us) so idle thieves stop
/// burning cycles — and, on oversubscribed machines, stop starving the
/// participants that still hold work.
class Backoff {
 public:
  void Pause() {
    if (round_ < kSpinRounds) {
      for (uint32_t i = 0; i < (1u << round_); ++i) CpuRelax();
    } else if (round_ < kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      const uint32_t exp =
          std::min(round_ - kSpinRounds - kYieldRounds, 8u);
      std::this_thread::sleep_for(std::chrono::microseconds(1u << exp));
    }
    ++round_;
  }
  void Reset() { round_ = 0; }

 private:
  static constexpr uint32_t kSpinRounds = 5;
  static constexpr uint32_t kYieldRounds = 3;
  uint32_t round_ = 0;
};

/// Cheap per-participant RNG for randomized victim selection.
struct XorShift {
  uint64_t state;
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// Ranges are packed (lo << 32 | hi), relative to the region's begin, so
// deque slots stay single 64-bit atomics. Regions with more than 2^32
// indices fall back to the chunk-pull path (none of our workloads come
// within orders of magnitude of that).
constexpr size_t kMaxStealCount = (uint64_t{1} << 32) - 1;

inline uint64_t PackRange(uint64_t lo, uint64_t hi) {
  return (lo << 32) | hi;
}

inline void UnpackRange(uint64_t packed, size_t* lo, size_t* hi) {
  *lo = static_cast<size_t>(packed >> 32);
  *hi = static_cast<size_t>(packed & 0xffffffffull);
}

SchedulerKind SchedulerFromEnv() {
  const char* env = std::getenv("MEL_SCHEDULER");
  if (env != nullptr) {
    if (std::strcmp(env, "chunk") == 0) return SchedulerKind::kChunkPull;
    if (std::strcmp(env, "steal") == 0) return SchedulerKind::kWorkStealing;
    std::fprintf(stderr,
                 "[mel] ThreadPool: unknown MEL_SCHEDULER '%s' "
                 "(expected chunk|steal); using steal\n",
                 env);
  }
  return SchedulerKind::kWorkStealing;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct ThreadPool::Job {
  size_t begin = 0;
  size_t end = 0;
  size_t count = 0;
  size_t grain = 1;
  const std::function<void(size_t)>* fn = nullptr;
  SchedulerKind scheduler = SchedulerKind::kChunkPull;
  uint32_t participants = 1;
  uint64_t seed = 0;
  std::atomic<bool> cancelled{false};

  // Chunk-pull: the shared cursor.
  std::atomic<size_t> next{0};

  // Work-stealing: completion counting and the two-level exit barrier.
  std::atomic<size_t> done{0};
  std::vector<std::vector<uint32_t>> socket_members;  // victim lists
  struct SocketArrivals {
    std::atomic<uint32_t> arrived{0};
    uint32_t expected = 0;
  };
  std::vector<SocketArrivals> barrier;     // per-socket tier
  std::atomic<uint32_t> sockets_done{0};   // global tier
  uint32_t active_sockets = 0;
  std::atomic<bool> released{false};
};

ThreadPool::ThreadPool(uint32_t num_threads)
    : ThreadPool([num_threads] {
        Options o;
        o.num_threads = num_threads;
        return o;
      }()) {}

ThreadPool::ThreadPool(const Options& options) {
  uint32_t num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  scheduler_ = options.scheduler.has_value() ? *options.scheduler
                                             : SchedulerFromEnv();
  const CpuTopology& topo = HostTopology();
  pinned_ = options.pin_threads && topo.detected && !topo.cpus.empty() &&
            num_threads > 1;
  num_sockets_ = pinned_ ? topo.num_sockets : 1;

  slots_ = std::make_unique<Slot[]>(num_threads);
  slot_socket_.assign(num_threads, 0);
  worker_cpu_.assign(num_threads - 1, 0);
  for (uint32_t t = 0; t + 1 < num_threads; ++t) {
    if (pinned_) {
      // Workers fill topology order (socket-major); cpu slot 0 is left
      // to the submitting thread, which commonly runs there.
      const CpuTopology::Cpu& cpu = topo.cpus[(t + 1) % topo.cpus.size()];
      worker_cpu_[t] = cpu.cpu_id;
      slot_socket_[t + 1] = cpu.socket;
    }
  }

  workers_.reserve(num_threads - 1);
  for (uint32_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
  if (!workers_.empty()) {
    std::fprintf(
        stderr, "[mel] ThreadPool: threads=%u scheduler=%s sockets=%u%s\n",
        num_threads,
        scheduler_ == SchedulerKind::kChunkPull ? "chunk-pull"
                                                : "work-stealing",
        num_sockets_, pinned_ ? " (workers pinned)" : "");
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: destruction order against other static state at
  // exit is not worth the risk, and the workers park on a condvar.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ThreadPool::CaptureException(Job* job) {
  job->cancelled.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_exception_) first_exception_ = std::current_exception();
}

void ThreadPool::RunChunks(Job* job) {
  uint64_t processed = 0;
  while (!job->cancelled.load(std::memory_order_relaxed)) {
    size_t start = job->next.fetch_add(job->grain, std::memory_order_relaxed);
    if (start >= job->end) break;
    size_t stop = std::min(start + job->grain, job->end);
    try {
      for (size_t i = start; i < stop; ++i) (*job->fn)(i);
    } catch (...) {
      CaptureException(job);
      break;
    }
    processed += stop - start;
  }
  if (metrics::Enabled()) GetPoolMetrics().worker_items->Record(processed);
}

void ThreadPool::RunSteal(Job* job, uint32_t slot) {
  Slot& self = slots_[slot];
  const size_t grain = job->grain;
  const uint32_t my_socket = slot_socket_[slot];
  const std::vector<uint32_t>& local_victims =
      job->socket_members[my_socket];
  const bool timed = metrics::Enabled();
  constexpr uint32_t kLocalAttempts = 2;   // same-socket victims first
  constexpr uint32_t kGlobalAttempts = 2;  // then cross-socket

  uint64_t local_pops = 0, steals = 0, steal_fails = 0;
  uint64_t processed = 0, busy_ns = 0;
  // Busy time is accounted per *streak* of consecutive chunks, not per
  // chunk: the clock is read only when transitioning between "has work"
  // and "stealing", so fine grains pay no timing overhead.
  uint64_t streak_start = 0;
  bool in_streak = false;
  XorShift rng{job->seed * 0x9E3779B97F4A7C15ull + slot * 2 + 1};
  Backoff backoff;
  uint64_t range = 0;
  bool have = false;

  while (!job->cancelled.load(std::memory_order_relaxed) &&
         job->done.load(std::memory_order_relaxed) < job->count) {
    if (!have && self.deque.Pop(&range)) {
      have = true;
      ++local_pops;
    }
    if (have) {
      have = false;
      backoff.Reset();
      size_t lo, hi;
      UnpackRange(range, &lo, &hi);
      // Adaptive splitting: halve the range until it fits one grain,
      // pushing the far halves bottom-up — the deque's top then holds
      // the largest piece, so a thief walks away with roughly half of
      // this participant's remaining work in a single steal. If the
      // deque is full (can't happen with bounded splits, but belt and
      // braces) the oversized range simply runs unsplit.
      while (hi - lo > grain) {
        const size_t mid = lo + (hi - lo) / 2;
        if (!self.deque.Push(PackRange(mid, hi))) break;
        hi = mid;
      }
      if (timed && !in_streak) {
        streak_start = NowNs();
        in_streak = true;
      }
      try {
        const size_t base = job->begin;
        const std::function<void(size_t)>& fn = *job->fn;
        for (size_t i = lo; i < hi; ++i) fn(base + i);
      } catch (...) {
        CaptureException(job);
        break;
      }
      processed += hi - lo;
      job->done.fetch_add(hi - lo, std::memory_order_relaxed);
      continue;
    }
    // Own deque dry: steal. Randomized victims, same socket before
    // crossing sockets; repeated failure backs off toward parking.
    if (timed && in_streak) {
      busy_ns += NowNs() - streak_start;
      in_streak = false;
    }
    bool stole = false;
    if (local_victims.size() > 1) {
      for (uint32_t a = 0; a < kLocalAttempts && !stole; ++a) {
        const uint32_t v = local_victims[static_cast<size_t>(
            rng.Next() % local_victims.size())];
        if (v == slot) continue;
        if (slots_[v].deque.Steal(&range)) {
          stole = true;
        } else {
          ++steal_fails;
        }
      }
    }
    for (uint32_t a = 0; a < kGlobalAttempts && !stole; ++a) {
      const uint32_t v =
          static_cast<uint32_t>(rng.Next() % job->participants);
      if (v == slot) continue;
      if (slots_[v].deque.Steal(&range)) {
        stole = true;
      } else {
        ++steal_fails;
      }
    }
    if (stole) {
      have = true;
      ++steals;
      backoff.Reset();
    } else {
      backoff.Pause();
    }
  }

  if (timed && in_streak) busy_ns += NowNs() - streak_start;

  // A cancelled region leaves unexecuted ranges behind; drain our own
  // deque so the next region starts clean. (On normal completion the
  // deques are already empty: done == count implies nothing is queued.)
  uint64_t discard;
  while (self.deque.Pop(&discard)) {
  }

  self.busy_ns.store(busy_ns, std::memory_order_relaxed);
  if (metrics::Enabled()) {
    const PoolMetrics& pm = GetPoolMetrics();
    pm.steals->Increment(steals);
    pm.steal_fails->Increment(steal_fails);
    pm.local_pops->Increment(local_pops);
    pm.worker_items->Record(processed);
  }

  // Two-level exit barrier: last arrival within each socket promotes the
  // socket to the global tier; the last socket releases everyone. The
  // release/acquire chain also publishes every participant's busy_ns to
  // the caller for the imbalance gauge.
  Job::SocketArrivals& tier = job->barrier[my_socket];
  if (tier.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      tier.expected) {
    if (job->sockets_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->active_sockets) {
      job->released.store(true, std::memory_order_release);
    }
  }
  Backoff barrier_backoff;
  while (!job->released.load(std::memory_order_acquire)) {
    barrier_backoff.Pause();
  }
}

void ThreadPool::WorkerLoop(uint32_t worker_index) {
  if (pinned_) PinCurrentThreadToCpu(worker_cpu_[worker_index]);
  t_in_parallel_region = true;  // workers never open nested regions
  uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      // Participation is deterministic: the first `job_worker_limit_`
      // workers run the region. The work-stealing exit barrier counts
      // on exactly this set showing up (and the caller keeps the job
      // open until they all have).
      if (worker_index >= job_worker_limit_) continue;
      ++workers_in_job_;
      job = job_;
    }
    if (job->scheduler == SchedulerKind::kWorkStealing) {
      RunSteal(job, worker_index + 1);
    } else {
      RunChunks(job);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_in_job_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn,
                             uint32_t max_threads) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t count = end - begin;
  if (max_threads == 0) max_threads = num_threads();

  // Degenerate and nested regions run inline on the caller with zero
  // synchronization: no job, no locks, no worker wakeups (contract in
  // the header). The metrics increment is one relaxed atomic and only
  // happens while metrics are enabled.
  if (t_in_parallel_region || workers_.empty() || max_threads <= 1 ||
      count <= grain) {
    if (metrics::Enabled()) GetPoolMetrics().inline_regions->Increment();
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  const PoolMetrics& pm = GetPoolMetrics();
  if (metrics::Enabled()) pm.regions->Increment();
  metrics::ScopedStageTimer region_timer(pm.region_ns);

  const size_t chunks = (count + grain - 1) / grain;
  // The caller is one participant; workers fill the rest, never more
  // than one per chunk.
  const uint32_t helpers = static_cast<uint32_t>(std::min<size_t>(
      {workers_.size(), max_threads - 1, chunks - 1}));
  const uint32_t participants = helpers + 1;

  SchedulerKind sched = scheduler_;
  if (sched == SchedulerKind::kWorkStealing && count > kMaxStealCount) {
    sched = SchedulerKind::kChunkPull;  // range exceeds packed 32-bit form
  }

  Job job;
  job.begin = begin;
  job.end = end;
  job.count = count;
  job.grain = grain;
  job.fn = &fn;
  job.scheduler = sched;
  job.participants = participants;
  job.seed = ++region_seed_;
  job.next.store(begin, std::memory_order_relaxed);

  if (sched == SchedulerKind::kWorkStealing) {
    // The caller's socket can change between regions; workers' sockets
    // are fixed by pinning. Safe to write here: the previous region's
    // exit barrier guarantees nobody else touches slot state until this
    // job is published under mu_ below.
    slot_socket_[0] =
        pinned_ ? CurrentCpuSocket(HostTopology()) % num_sockets_ : 0;
    job.socket_members.assign(num_sockets_, {});
    job.barrier = std::vector<Job::SocketArrivals>(num_sockets_);
    for (uint32_t p = 0; p < participants; ++p) {
      const uint32_t s = slot_socket_[p];
      job.socket_members[s].push_back(p);
      ++job.barrier[s].expected;
    }
    for (const auto& tier : job.barrier) {
      if (tier.expected > 0) ++job.active_sockets;
    }
    // Seed every participant's deque with its contiguous slice of the
    // range, so each starts on cache-local work and *all* work is
    // stealable immediately — a slow-to-wake worker's slice gets eaten
    // by thieves instead of idling.
    for (uint32_t p = 0; p < participants; ++p) {
      const uint64_t lo = count * static_cast<uint64_t>(p) / participants;
      const uint64_t hi =
          count * (static_cast<uint64_t>(p) + 1) / participants;
      if (lo < hi) slots_[p].deque.Push(PackRange(lo, hi));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_generation_;
    first_exception_ = nullptr;
    job_worker_limit_ = helpers;
  }
  work_cv_.notify_all();

  t_in_parallel_region = true;
  if (sched == SchedulerKind::kWorkStealing) {
    RunSteal(&job, 0);
  } else {
    RunChunks(&job);
  }
  t_in_parallel_region = false;

  // For work-stealing, the exit barrier inside RunSteal already
  // synchronized all participants; fold their busy times into the
  // per-region imbalance gauge (max/mean; 100 = perfectly balanced).
  if (sched == SchedulerKind::kWorkStealing && metrics::Enabled()) {
    uint64_t max_busy = 0, sum_busy = 0;
    for (uint32_t p = 0; p < participants; ++p) {
      const uint64_t b = slots_[p].busy_ns.load(std::memory_order_relaxed);
      max_busy = std::max(max_busy, b);
      sum_busy += b;
    }
    if (sum_busy > 0) {
      const double mean =
          static_cast<double>(sum_busy) / static_cast<double>(participants);
      pm.imbalance->Set(
          static_cast<int64_t>(100.0 * static_cast<double>(max_busy) / mean));
    }
  }

  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;  // late wakeups must not join a finished region
    done_cv_.wait(lock, [&] { return workers_in_job_ == 0; });
    exception = first_exception_;
    first_exception_ = nullptr;
  }
  if (exception) std::rethrow_exception(exception);
}

}  // namespace mel::util

#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/serialize.h"

namespace mel::metrics {

namespace {

std::atomic<bool> g_enabled{true};

// Bucket i holds values with bit width i: [2^(i-1), 2^i). Value 0 has
// bit width 0 and gets bucket 0.
uint32_t BucketIndex(uint64_t value) {
  return static_cast<uint32_t>(std::bit_width(value));
}

uint64_t BucketLowerBound(uint32_t index) {
  return index == 0 ? 0 : uint64_t{1} << (index - 1);
}

uint64_t BucketUpperBound(uint32_t index) {
  if (index == 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void AtomicStoreMin(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (value < cur && !slot->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicStoreMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (value > cur && !slot->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicStoreMin(&min_, value);
  AtomicStoreMax(&max_, value);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0) return static_cast<double>(min);
  if (p >= 100) return static_cast<double>(max);
  // 1-based target rank of the percentile sample.
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate the rank's position inside this bucket.
    const double lo = static_cast<double>(BucketLowerBound(i));
    const double hi = static_cast<double>(BucketUpperBound(i));
    const double frac =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    double value = lo + (hi - lo) * frac;
    // Clamp to observed extremes so degenerate distributions (single
    // sample, single bucket) report exact values.
    value = std::max(value, static_cast<double>(min));
    value = std::min(value, static_cast<double>(max));
    return value;
  }
  return static_cast<double>(max);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    MEL_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                      histograms_.find(name) == histograms_.end(),
                  "metric name registered with a different kind");
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    MEL_CHECK_MSG(counters_.find(name) == counters_.end() &&
                      histograms_.find(name) == histograms_.end(),
                  "metric name registered with a different kind");
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    MEL_CHECK_MSG(counters_.find(name) == counters_.end() &&
                      gauges_.find(name) == gauges_.end(),
                  "metric name registered with a different kind");
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->GetSnapshot());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string RegistrySnapshot::ToJson() const {
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : counters) json.KeyValue(name, value);
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : gauges) json.KeyValue(name, value);
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, h] : histograms) {
    json.Key(name);
    json.BeginObject();
    json.KeyValue("count", h.count);
    json.KeyValue("sum", h.sum);
    json.KeyValue("min", h.min);
    json.KeyValue("max", h.max);
    json.KeyValue("mean", h.Mean());
    json.KeyValue("p50", h.Percentile(50));
    json.KeyValue("p95", h.Percentile(95));
    json.KeyValue("p99", h.Percentile(99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return out.str();
}

Status WriteJsonFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << Registry().Snapshot().ToJson() << '\n';
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace mel::metrics

#include "util/cpu_topology.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mel::util {

namespace internal {

std::vector<uint32_t> ParseCpuList(const std::string& list) {
  std::vector<uint32_t> cpus;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const size_t dash = token.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const unsigned long v = std::strtoul(token.c_str(), &end, 10);
      if (end == token.c_str()) return {};  // unparsable -> undetected
      cpus.push_back(static_cast<uint32_t>(v));
    } else {
      const unsigned long lo = std::strtoul(token.c_str(), &end, 10);
      const unsigned long hi =
          std::strtoul(token.c_str() + dash + 1, &end, 10);
      if (hi < lo || hi - lo > 4096) return {};
      for (unsigned long c = lo; c <= hi; ++c) {
        cpus.push_back(static_cast<uint32_t>(c));
      }
    }
  }
  return cpus;
}

}  // namespace internal

namespace {

bool ReadUint(const std::string& path, uint32_t* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  long long v = -1;
  in >> v;
  if (!in || v < 0) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

CpuTopology DetectTopology() {
  CpuTopology topo;
  const auto fallback = [&topo] {
    topo.cpus.clear();
    uint32_t n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    for (uint32_t c = 0; c < n; ++c) {
      topo.cpus.push_back({c, c, 0});
    }
    topo.num_sockets = 1;
    topo.detected = false;
    return topo;
  };

  std::ifstream online("/sys/devices/system/cpu/online");
  if (!online.is_open()) return fallback();
  std::string list;
  std::getline(online, list);
  const std::vector<uint32_t> cpu_ids = internal::ParseCpuList(list);
  if (cpu_ids.empty()) return fallback();

  std::map<uint32_t, uint32_t> socket_remap;  // raw package id -> dense
  for (uint32_t cpu : cpu_ids) {
    const std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    uint32_t package = 0;
    uint32_t core = cpu;
    // Missing per-cpu topology files degrade that cpu to socket 0 /
    // core==cpu rather than failing the whole detection.
    ReadUint(base + "physical_package_id", &package);
    ReadUint(base + "core_id", &core);
    const auto it = socket_remap
                        .emplace(package,
                                 static_cast<uint32_t>(socket_remap.size()))
                        .first;
    topo.cpus.push_back({cpu, core, it->second});
  }
  topo.num_sockets = std::max<uint32_t>(
      1, static_cast<uint32_t>(socket_remap.size()));
  std::sort(topo.cpus.begin(), topo.cpus.end(),
            [](const CpuTopology::Cpu& a, const CpuTopology::Cpu& b) {
              if (a.socket != b.socket) return a.socket < b.socket;
              if (a.core_id != b.core_id) return a.core_id < b.core_id;
              return a.cpu_id < b.cpu_id;
            });
  topo.detected = true;
  return topo;
}

}  // namespace

const CpuTopology& HostTopology() {
  static const CpuTopology topo = DetectTopology();
  return topo;
}

uint32_t CurrentCpuSocket(const CpuTopology& topo) {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) {
    for (const auto& c : topo.cpus) {
      if (c.cpu_id == static_cast<uint32_t>(cpu)) return c.socket;
    }
  }
#else
  (void)topo;
#endif
  return 0;
}

bool PinCurrentThreadToCpu(uint32_t cpu_id) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu_id, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu_id;
  return false;
#endif
}

}  // namespace mel::util

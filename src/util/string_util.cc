#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace mel {

std::string AsciiLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> SplitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

std::string HumanNanos(double nanos) {
  char buf[32];
  if (nanos < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", nanos);
  } else if (nanos < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", nanos / 1e3);
  } else if (nanos < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", nanos / 1e9);
  }
  return buf;
}

}  // namespace mel

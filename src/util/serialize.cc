#include "util/serialize.h"

#include <cmath>
#include <cstdio>

namespace mel {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::NotFound("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_.good()) status_ = Status::Internal("write failed");
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::Internal("flush failed");
  }
  out_.close();
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::NotFound("cannot open for reading: " + path);
  }
}

void BinaryReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok()) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    status_ = Status::OutOfRange("unexpected end of file");
  }
}

uint8_t BinaryReader::ReadU8() {
  uint8_t v = 0;
  ReadRaw(&v, 1);
  return v;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadFloat() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadDouble() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint64_t size = ReadU64();
  if (!status_.ok() || size > kMaxElements) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("corrupt string length");
    }
    return {};
  }
  std::string s(size, '\0');
  if (size > 0) ReadRaw(s.data(), size);
  if (!status_.ok()) s.clear();
  return s;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) *out_ << ',';
    first_in_scope_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  *out_ << '{';
  first_in_scope_.push_back(true);
}

void JsonWriter::EndObject() {
  first_in_scope_.pop_back();
  *out_ << '}';
}

void JsonWriter::BeginArray() {
  Separate();
  *out_ << '[';
  first_in_scope_.push_back(true);
}

void JsonWriter::EndArray() {
  first_in_scope_.pop_back();
  *out_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  *out_ << '"';
  WriteEscaped(key);
  *out_ << "\":";
  pending_key_ = true;
}

void JsonWriter::Value(uint64_t v) {
  Separate();
  *out_ << v;
}

void JsonWriter::Value(int64_t v) {
  Separate();
  *out_ << v;
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    *out_ << "null";
    return;
  }
  // %.17g round-trips doubles but is noisy; metrics exports are read by
  // humans and plotting scripts, so 6 significant digits suffice.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out_ << buf;
}

void JsonWriter::Value(std::string_view v) {
  Separate();
  *out_ << '"';
  WriteEscaped(v);
  *out_ << '"';
}

void JsonWriter::Value(bool v) {
  Separate();
  *out_ << (v ? "true" : "false");
}

void JsonWriter::WriteEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out_ << "\\\"";
        break;
      case '\\':
        *out_ << "\\\\";
        break;
      case '\n':
        *out_ << "\\n";
        break;
      case '\t':
        *out_ << "\\t";
        break;
      case '\r':
        *out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out_ << buf;
        } else {
          *out_ << c;
        }
    }
  }
}

}  // namespace mel

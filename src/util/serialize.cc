#include "util/serialize.h"

namespace mel {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::NotFound("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_.good()) status_ = Status::Internal("write failed");
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::Internal("flush failed");
  }
  out_.close();
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::NotFound("cannot open for reading: " + path);
  }
}

void BinaryReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok()) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    status_ = Status::OutOfRange("unexpected end of file");
  }
}

uint8_t BinaryReader::ReadU8() {
  uint8_t v = 0;
  ReadRaw(&v, 1);
  return v;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadFloat() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadDouble() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint64_t size = ReadU64();
  if (!status_.ok() || size > kMaxElements) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("corrupt string length");
    }
    return {};
  }
  std::string s(size, '\0');
  if (size > 0) ReadRaw(s.data(), size);
  if (!status_.ok()) s.clear();
  return s;
}

}  // namespace mel

#include "util/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace mel {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::NotFound("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_.good()) {
    status_ = Status::Internal("write failed");
    return;
  }
  bytes_written_ += size;
}

void BinaryWriter::PadTo(uint64_t offset) {
  if (!status_.ok()) return;
  if (offset < bytes_written_) {
    status_ = Status::Internal("PadTo would seek backwards");
    return;
  }
  static constexpr char kZeros[4096] = {};
  uint64_t remaining = offset - bytes_written_;
  while (remaining > 0 && status_.ok()) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(remaining, sizeof(kZeros)));
    WriteRaw(kZeros, chunk);
    remaining -= chunk;
  }
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::Internal("flush failed");
  }
  out_.close();
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::NotFound("cannot open for reading: " + path);
  }
}

void BinaryReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok()) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    status_ = Status::OutOfRange("unexpected end of file");
  }
}

uint8_t BinaryReader::ReadU8() {
  uint8_t v = 0;
  ReadRaw(&v, 1);
  return v;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadFloat() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadDouble() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint64_t size = ReadU64();
  if (!status_.ok() || size > kMaxElements) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("corrupt string length");
    }
    return {};
  }
  std::string s(size, '\0');
  if (size > 0) ReadRaw(s.data(), size);
  if (!status_.ok()) s.clear();
  return s;
}

// ------------------------------------------------------------------ MEL3

uint64_t Mel3Checksum(const void* data, size_t size) {
  // 8 bytes per step with a multiply/xor-shift mix (xorshift-multiply in
  // the style of splitmix64). Word-wise so checksumming runs at memory
  // bandwidth rather than byte-at-a-time FNV speed.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0x9e3779b97f4a7c15ull ^ size;
  while (size >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h ^= w;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    p += 8;
    size -= 8;
  }
  if (size > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p, size);
    h ^= w;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
  }
  return h;
}

namespace {

uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

/// Serializes the header (checksum field zeroed) plus the table into one
/// buffer — the byte range `header_checksum` covers on disk.
std::vector<uint8_t> HeaderAndTableBytes(
    const Mel3Header& header, std::span<const Mel3BlockRecord> table) {
  Mel3Header h = header;
  h.header_checksum = 0;
  std::vector<uint8_t> bytes(sizeof(Mel3Header) +
                             table.size() * sizeof(Mel3BlockRecord));
  std::memcpy(bytes.data(), &h, sizeof(h));
  if (!table.empty()) {
    std::memcpy(bytes.data() + sizeof(h), table.data(),
                table.size() * sizeof(Mel3BlockRecord));
  }
  return bytes;
}

}  // namespace

Status WriteMel3File(const std::string& path, uint32_t inner_magic,
                     uint32_t inner_version, uint32_t num_nodes,
                     uint32_t max_hops,
                     std::span<const Mel3BlockDesc> blocks) {
  if (blocks.size() > kMel3MaxBlocks) {
    return Status::InvalidArgument("too many MEL3 blocks");
  }
  // Lay the blocks out first: payloads at ascending sector-aligned
  // offsets, file padded out to a whole sector at the end.
  std::vector<Mel3BlockRecord> table(blocks.size());
  uint64_t cursor = AlignUp(
      sizeof(Mel3Header) + blocks.size() * sizeof(Mel3BlockRecord),
      kMel3Alignment);
  for (size_t i = 0; i < blocks.size(); ++i) {
    const Mel3BlockDesc& b = blocks[i];
    Mel3BlockRecord& rec = table[i];
    rec.offset = cursor;
    rec.length = b.count * b.elem_size;
    rec.count = b.count;
    rec.elem_size = b.elem_size;
    rec.kind = static_cast<uint32_t>(b.kind);
    rec.checksum = Mel3Checksum(b.data, static_cast<size_t>(rec.length));
    cursor = AlignUp(cursor + rec.length, kMel3Alignment);
  }

  Mel3Header header = {};
  header.magic = kMel3Magic;
  header.container_version = kMel3Version;
  header.inner_magic = inner_magic;
  header.inner_version = inner_version;
  header.num_nodes = num_nodes;
  header.max_hops = max_hops;
  header.block_count = static_cast<uint32_t>(blocks.size());
  header.file_size = cursor;
  header.header_checksum = Mel3Checksum(
      HeaderAndTableBytes(header, table).data(),
      sizeof(Mel3Header) + table.size() * sizeof(Mel3BlockRecord));

  BinaryWriter writer(path);
  writer.WriteBytes(&header, sizeof(header));
  if (!table.empty()) {
    writer.WriteBytes(table.data(),
                      table.size() * sizeof(Mel3BlockRecord));
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    writer.PadTo(table[i].offset);
    if (table[i].length > 0) {
      writer.WriteBytes(blocks[i].data,
                        static_cast<size_t>(table[i].length));
    }
  }
  writer.PadTo(header.file_size);
  return writer.Finish();
}

Result<Mel3View> Mel3View::Parse(
    std::shared_ptr<const util::MmapFile> file,
    uint32_t expect_inner_magic) {
  if (file == nullptr) {
    return Status::InvalidArgument("null mapping");
  }
  if (file->size() < sizeof(Mel3Header)) {
    return Status::InvalidArgument("truncated MEL3 header");
  }
  Mel3View view;
  std::memcpy(&view.header_, file->data(), sizeof(Mel3Header));
  const Mel3Header& h = view.header_;
  if (h.magic != kMel3Magic) {
    return Status::InvalidArgument("not a MEL3 container");
  }
  if (h.container_version != kMel3Version) {
    return Status::InvalidArgument("unsupported MEL3 container version " +
                                   std::to_string(h.container_version));
  }
  if (h.block_count > kMel3MaxBlocks) {
    return Status::InvalidArgument("corrupt MEL3 block count");
  }
  const uint64_t table_end =
      sizeof(Mel3Header) + uint64_t{h.block_count} * sizeof(Mel3BlockRecord);
  if (table_end > file->size()) {
    return Status::InvalidArgument("truncated MEL3 block table");
  }
  if (h.file_size != file->size()) {
    return Status::InvalidArgument(
        "MEL3 file size mismatch (header says " +
        std::to_string(h.file_size) + ", file is " +
        std::to_string(file->size()) + " bytes)");
  }
  view.table_.resize(h.block_count);
  if (h.block_count > 0) {
    std::memcpy(view.table_.data(), file->data() + sizeof(Mel3Header),
                h.block_count * sizeof(Mel3BlockRecord));
  }
  const auto covered = HeaderAndTableBytes(view.header_, view.table_);
  if (Mel3Checksum(covered.data(), covered.size()) != h.header_checksum) {
    return Status::InvalidArgument("corrupt MEL3 header checksum");
  }
  for (const Mel3BlockRecord& rec : view.table_) {
    if (rec.offset % kMel3Alignment != 0) {
      return Status::InvalidArgument("misaligned MEL3 block offset");
    }
    if (rec.elem_size == 0 || rec.length != rec.count * rec.elem_size) {
      return Status::InvalidArgument("corrupt MEL3 block length");
    }
    if (rec.offset > file->size() ||
        rec.length > file->size() - rec.offset) {
      return Status::InvalidArgument("MEL3 block out of bounds");
    }
  }
  if (h.inner_magic != expect_inner_magic) {
    return Status::InvalidArgument(
        "MEL3 container wraps a different index kind");
  }
  view.file_ = std::move(file);
  return view;
}

const Mel3BlockRecord* Mel3View::Find(Mel3BlockKind kind) const {
  for (const Mel3BlockRecord& rec : table_) {
    if (rec.kind == static_cast<uint32_t>(kind)) return &rec;
  }
  return nullptr;
}

Status Mel3View::VerifyBlockChecksums() const {
  for (const Mel3BlockRecord& rec : table_) {
    const uint64_t got = Mel3Checksum(file_->data() + rec.offset,
                                      static_cast<size_t>(rec.length));
    if (got != rec.checksum) {
      return Status::InvalidArgument(
          "MEL3 block checksum mismatch (kind " +
          std::to_string(rec.kind) + ")");
    }
  }
  return Status::OK();
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) *out_ << ',';
    first_in_scope_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  *out_ << '{';
  first_in_scope_.push_back(true);
}

void JsonWriter::EndObject() {
  first_in_scope_.pop_back();
  *out_ << '}';
}

void JsonWriter::BeginArray() {
  Separate();
  *out_ << '[';
  first_in_scope_.push_back(true);
}

void JsonWriter::EndArray() {
  first_in_scope_.pop_back();
  *out_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  *out_ << '"';
  WriteEscaped(key);
  *out_ << "\":";
  pending_key_ = true;
}

void JsonWriter::Value(uint64_t v) {
  Separate();
  *out_ << v;
}

void JsonWriter::Value(int64_t v) {
  Separate();
  *out_ << v;
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    *out_ << "null";
    return;
  }
  // %.17g round-trips doubles but is noisy; metrics exports are read by
  // humans and plotting scripts, so 6 significant digits suffice.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out_ << buf;
}

void JsonWriter::Value(std::string_view v) {
  Separate();
  *out_ << '"';
  WriteEscaped(v);
  *out_ << '"';
}

void JsonWriter::Value(bool v) {
  Separate();
  *out_ << (v ? "true" : "false");
}

void JsonWriter::WriteEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out_ << "\\\"";
        break;
      case '\\':
        *out_ << "\\\\";
        break;
      case '\n':
        *out_ << "\\n";
        break;
      case '\t':
        *out_ << "\\t";
        break;
      case '\r':
        *out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out_ << buf;
        } else {
          *out_ << c;
        }
    }
  }
}

}  // namespace mel

#ifndef MEL_UTIL_METRICS_H_
#define MEL_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mel::metrics {

/// Global kill switch for the observability layer. Metric objects keep
/// their registration when disabled; ScopedStageTimer skips the clock
/// reads and Record becomes a no-op at the call sites that gate on it.
/// Enabled by default.
bool Enabled();
void SetEnabled(bool enabled);

/// \brief Monotonically increasing event count (lock-free).
///
/// Safe for concurrent use from any number of threads; increments are
/// relaxed atomics, so counters cost ~1 ns on the hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-written instantaneous value (queue depth, worker count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram for latencies (nanoseconds) and other
/// non-negative magnitudes.
///
/// Buckets are powers of two: bucket i holds values whose bit width is i,
/// i.e. [2^(i-1), 2^i). That covers the full uint64 range with 65 slots —
/// ~1.4 significant digits of resolution, plenty for p50/p95/p99 of
/// latency distributions spanning nanoseconds to minutes. Recording is a
/// handful of relaxed atomic operations; no locks, no allocation.
class Histogram {
 public:
  static constexpr uint32_t kNumBuckets = 65;

  void Record(uint64_t value);

  /// \brief A consistent-enough copy of the histogram state. (Individual
  /// loads are relaxed; concurrent recorders can skew count vs sum by a
  /// few in-flight samples, which is irrelevant for reporting.)
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
    /// Estimated value at percentile p in [0, 100]: linear interpolation
    /// inside the bucket holding the target rank, clamped to the observed
    /// [min, max] (so a single-sample histogram reports the sample
    /// exactly). Returns 0 when empty.
    double Percentile(double p) const;
  };

  Snapshot GetSnapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// \brief A named metric snapshot set, ordered by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// Renders the snapshot as a JSON document (see docs/METRICS.md for the
  /// schema). Histograms export count/sum/min/max/mean/p50/p95/p99.
  std::string ToJson() const;
};

/// \brief Process-wide registry of named metrics.
///
/// Metrics are created on first lookup and live forever (pointers remain
/// valid across Reset, which zeroes values but never unregisters).
/// Lookup takes a mutex — call sites on hot paths cache the returned
/// pointer in a function-local static.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Finds or creates the metric. A name must be used with only one
  /// metric kind; reusing it with another kind is a programming error.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Copies every registered metric's current value, sorted by name.
  RegistrySnapshot Snapshot() const;

  /// Zeroes all registered metrics (registration is kept, pointers stay
  /// valid). Benchmarks call this after warm-up so exports cover only the
  /// measured section.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for MetricsRegistry::Global().
inline MetricsRegistry& Registry() { return MetricsRegistry::Global(); }

/// Snapshots the global registry and writes its JSON to `path`.
Status WriteJsonFile(const std::string& path);

/// \brief RAII stage timer: records elapsed nanoseconds into a histogram
/// on destruction. No-op (no clock reads) when metrics are disabled or
/// the histogram is null.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(Histogram* histogram)
      : histogram_(Enabled() ? histogram : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedStageTimer() {
    if (histogram_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Lap clock for instrumenting consecutive stages of one function
/// with a single chain of clock reads (each boundary ends one stage and
/// starts the next). Constructed disabled when metrics are off, in which
/// case Lap does nothing.
class StageClock {
 public:
  StageClock() : on_(Enabled()) {
    if (on_) last_ = std::chrono::steady_clock::now();
  }

  /// Records time since construction / the previous Lap into `histogram`.
  void Lap(Histogram* histogram) {
    if (!on_) return;
    auto now = std::chrono::steady_clock::now();
    histogram->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_)
            .count()));
    last_ = now;
  }

  bool on() const { return on_; }

 private:
  bool on_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace mel::metrics

#endif  // MEL_UTIL_METRICS_H_

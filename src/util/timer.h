#ifndef MEL_UTIL_TIMER_H_
#define MEL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mel {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const;

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mel

#endif  // MEL_UTIL_TIMER_H_

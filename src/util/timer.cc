#include "util/timer.h"

namespace mel {

void WallTimer::Restart() { start_ = std::chrono::steady_clock::now(); }

int64_t WallTimer::ElapsedNanos() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
      .count();
}

}  // namespace mel

#ifndef MEL_UTIL_LOGGING_H_
#define MEL_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checks. These guard programming errors, not user input;
// user input is validated with Status returns. A failed check aborts.

#define MEL_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MEL_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define MEL_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MEL_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // MEL_UTIL_LOGGING_H_

#ifndef MEL_UTIL_CPU_TOPOLOGY_H_
#define MEL_UTIL_CPU_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mel::util {

/// \brief Core/socket layout of the host, read from
/// /sys/devices/system/cpu (Linux). When sysfs is unavailable or
/// unparsable the topology degrades to a flat single-socket view with
/// `detected == false`, which callers treat as "pinning and socket
/// preferences are no-ops".
struct CpuTopology {
  struct Cpu {
    uint32_t cpu_id = 0;   // kernel cpu number (valid for affinity masks)
    uint32_t core_id = 0;  // physical core within the socket
    uint32_t socket = 0;   // dense socket index in [0, num_sockets)
  };

  /// Online cpus sorted by (socket, core_id, cpu_id), so that assigning
  /// consecutive workers to consecutive entries fills one socket's cores
  /// before spilling to the next — contiguous ParallelFor slices land on
  /// neighbouring cores.
  std::vector<Cpu> cpus;
  uint32_t num_sockets = 1;
  bool detected = false;
};

/// Topology of this host, detected once and cached for the process.
const CpuTopology& HostTopology();

/// Dense socket index of the cpu the calling thread is currently on
/// (via sched_getcpu); 0 when undetectable.
uint32_t CurrentCpuSocket(const CpuTopology& topo);

/// Pins the calling thread to one cpu. Returns false (and changes
/// nothing) when unsupported on this platform or rejected by the kernel.
bool PinCurrentThreadToCpu(uint32_t cpu_id);

namespace internal {
/// Parses a sysfs cpu list such as "0-3,8,10-11". Exposed for tests.
std::vector<uint32_t> ParseCpuList(const std::string& list);
}  // namespace internal

}  // namespace mel::util

#endif  // MEL_UTIL_CPU_TOPOLOGY_H_

#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace mel {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  MEL_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MEL_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Guard the log(0) corner.
  if (u1 <= 0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double rate) {
  MEL_CHECK(rate > 0);
  double u = UniformDouble();
  if (u <= 0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  MEL_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  // Binary search the first rank whose cumulative mass exceeds u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Probability(size_t rank) const {
  MEL_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

size_t WeightedSample(const std::vector<double>& weights, Rng* rng) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return weights.size();
  double u = rng->UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

uint64_t DeriveSeed(uint64_t master_seed, uint64_t stream) {
  // Advance a splitmix64 state by the stream index so adjacent streams
  // land far apart, then mix twice more to decorrelate adjacent masters.
  uint64_t state = master_seed + stream * 0x9e3779b97f4a7c15ULL;
  SplitMix64(&state);
  return SplitMix64(&state);
}

}  // namespace mel

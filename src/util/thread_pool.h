#ifndef MEL_UTIL_THREAD_POOL_H_
#define MEL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mel::util {

/// \brief Fixed-size thread pool with a blocking data-parallel primitive.
///
/// The pool owns `num_threads() - 1` worker threads; the thread calling
/// ParallelFor is the remaining participant, so a pool of size 1 runs
/// everything inline with zero synchronization. There is no work
/// stealing and no task futures — the only entry point is ParallelFor,
/// which is exactly what the index constructions and batch linking need.
///
/// Scheduling is dynamic: participants pull `grain`-sized index chunks
/// from a shared atomic cursor, which load-balances work whose per-item
/// cost varies (BFS sizes, community sizes) without any tuning.
///
/// Concurrency contract:
///  * ParallelFor may be called from any thread; concurrent calls on the
///    same pool serialize on an internal mutex (one region at a time).
///  * A ParallelFor issued from inside a ParallelFor body (same or other
///    pool) runs serially inline — nesting never deadlocks and never
///    oversubscribes.
///  * The first exception thrown by `fn` cancels the remaining chunks
///    and is rethrown on the calling thread after all workers left the
///    region.
class ThreadPool {
 public:
  /// \param num_threads total parallelism including the calling thread;
  ///        0 means std::thread::hardware_concurrency().
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism of the pool (workers + the calling thread).
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size()) + 1;
  }

  /// Process-wide shared pool sized to the hardware. Construction happens
  /// on first use; the pool lives for the rest of the process.
  static ThreadPool& Shared();

  /// Invokes fn(i) exactly once for every i in [begin, end).
  ///
  /// \param grain indices pulled per scheduling step (0 behaves as 1);
  ///        pick it so one chunk amortizes the atomic fetch, i.e. a few
  ///        hundred microseconds of work.
  /// \param max_threads cap on participants for this region (0 = the
  ///        whole pool). Used by callers that expose their own --threads
  ///        knob on top of the shared pool.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn,
                   uint32_t max_threads = 0);

 private:
  struct Job;

  void WorkerLoop();
  /// Chunk-pull loop; returns the number of indices this participant
  /// processed. Exceptions from fn are captured into the pool state.
  uint64_t RunChunks(Job* job);

  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;  // workers: a new region is open
  std::condition_variable done_cv_;  // caller: all workers left the region
  Job* job_ = nullptr;               // open region, or nullptr
  uint64_t job_generation_ = 0;
  uint32_t workers_in_job_ = 0;
  uint32_t job_worker_limit_ = 0;
  std::exception_ptr first_exception_;
  bool shutdown_ = false;

  std::mutex submit_mu_;  // serializes concurrent ParallelFor callers
};

}  // namespace mel::util

#endif  // MEL_UTIL_THREAD_POOL_H_

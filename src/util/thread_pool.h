#ifndef MEL_UTIL_THREAD_POOL_H_
#define MEL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/steal_deque.h"

namespace mel::util {

/// How ParallelFor distributes indices across participants.
enum class SchedulerKind : uint8_t {
  /// Work-stealing executor: each participant starts on its own
  /// contiguous slice of the range (cache locality), splits it in half
  /// into a per-thread Chase-Lev deque as it goes, and — when its own
  /// deque runs dry — steals the *top* (largest) range of a randomly
  /// chosen victim, preferring same-socket victims before crossing
  /// sockets, with exponential backoff to idle parking between failed
  /// rounds. This is the default: it wins on skewed per-item costs
  /// (power-law degree distributions) and on small grains, where the
  /// legacy shared cursor serializes on one hot cache line.
  kWorkStealing,
  /// Legacy dynamic chunking: participants pull grain-sized chunks from
  /// one shared atomic cursor. Still wins for tiny regions of a few
  /// chunks (no deques to seed, no exit barrier) and is kept as the
  /// in-bench A/B baseline and as an escape hatch (MEL_SCHEDULER=chunk).
  kChunkPull,
};

/// \brief Fixed-size thread pool with a blocking data-parallel primitive.
///
/// The pool owns `num_threads() - 1` worker threads; the thread calling
/// ParallelFor is the remaining participant, so a pool of size 1 runs
/// everything inline with zero synchronization. There are no task
/// futures — the only entry point is ParallelFor, which is exactly what
/// the index constructions and batch linking need.
///
/// Scheduling is work-stealing by default (see SchedulerKind); workers
/// are pinned to cores when /sys/devices/system/cpu is readable, sorted
/// so that neighbouring workers share a socket, and every region ends
/// with a two-level (per-socket, then global) barrier.
///
/// Concurrency contract (unchanged across schedulers):
///  * ParallelFor invokes fn(i) exactly once for every i in [begin, end).
///  * ParallelFor may be called from any thread; concurrent calls on the
///    same pool serialize on an internal mutex (one region at a time).
///  * A ParallelFor issued from inside a ParallelFor body (same or other
///    pool) runs serially inline — nesting never deadlocks and never
///    oversubscribes.
///  * The first exception thrown by `fn` cancels the remaining chunks
///    and is rethrown on the calling thread after all workers left the
///    region.
///  * Degenerate regions run inline on the caller with zero
///    synchronization — no job is opened and no worker is woken when
///    the region is empty, fits in one grain (`end - begin <= grain`),
///    is capped to one participant (`max_threads == 1`), the pool has
///    no workers, or the call is nested inside another region. The only
///    shared-state touch on that path is one relaxed metrics increment,
///    and only while metrics are enabled.
class ThreadPool {
 public:
  struct Options {
    /// Total parallelism including the calling thread; 0 means
    /// std::thread::hardware_concurrency().
    uint32_t num_threads = 0;
    /// Scheduler selection. Unset resolves from the MEL_SCHEDULER
    /// environment variable ("chunk" or "steal"); otherwise
    /// kWorkStealing. Benchmarks set it explicitly to A/B both paths.
    std::optional<SchedulerKind> scheduler;
    /// Pin workers to cores using the detected topology. Ignored (flat,
    /// unpinned) when topology detection fails.
    bool pin_threads = true;
  };

  /// \param num_threads total parallelism including the calling thread;
  ///        0 means std::thread::hardware_concurrency().
  explicit ThreadPool(uint32_t num_threads = 0);
  explicit ThreadPool(const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism of the pool (workers + the calling thread).
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size()) + 1;
  }

  /// The scheduler this pool runs (logged once at construction).
  SchedulerKind scheduler() const { return scheduler_; }

  /// Number of distinct sockets the pool's participants can land on
  /// (1 when topology is undetected or pinning is off).
  uint32_t num_sockets() const { return num_sockets_; }

  /// True when workers were successfully pinned to cores.
  bool pinned() const { return pinned_; }

  /// Process-wide shared pool sized to the hardware. Construction happens
  /// on first use; the pool lives for the rest of the process.
  static ThreadPool& Shared();

  /// Invokes fn(i) exactly once for every i in [begin, end).
  ///
  /// \param grain the smallest range a participant executes per
  ///        scheduling step (0 behaves as 1); pick it so one chunk
  ///        amortizes a couple of atomic operations, i.e. a few hundred
  ///        nanoseconds of work or more. Under work-stealing, ranges are
  ///        split in half until they reach `grain`, so it is also the
  ///        unit of load balancing.
  /// \param max_threads cap on participants for this region (0 = the
  ///        whole pool). Used by callers that expose their own --threads
  ///        knob on top of the shared pool.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn,
                   uint32_t max_threads = 0);

 private:
  struct Job;

  /// Per-participant scheduler state. Lives in the pool (not the job) so
  /// regions do not allocate; region exit barriers guarantee exclusive
  /// reuse. Cache-line aligned: the owner hammers its own deque bottom
  /// while thieves probe the top.
  struct alignas(64) Slot {
    StealDeque deque;
    /// Busy time (executing fn, not stealing/waiting) of the last
    /// region, written by the slot owner before the exit barrier and
    /// read by the caller after it for the imbalance gauge.
    std::atomic<uint64_t> busy_ns{0};
  };

  void WorkerLoop(uint32_t worker_index);
  /// Legacy chunk-pull loop over the shared cursor.
  void RunChunks(Job* job);
  /// Work-stealing loop for one participant, including the two-level
  /// exit barrier. `slot` is 0 for the submitting caller, worker_index+1
  /// for workers.
  void RunSteal(Job* job, uint32_t slot);
  /// Records the first exception and cancels the region. Call from a
  /// catch block.
  void CaptureException(Job* job);

  std::vector<std::thread> workers_;
  std::unique_ptr<Slot[]> slots_;        // one per participant slot
  std::vector<uint32_t> slot_socket_;    // slot -> socket; [0] set per region
  std::vector<uint32_t> worker_cpu_;     // worker -> pinned cpu id
  SchedulerKind scheduler_ = SchedulerKind::kWorkStealing;
  uint32_t num_sockets_ = 1;
  bool pinned_ = false;
  uint64_t region_seed_ = 0;  // per-region victim-selection seed

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;  // workers: a new region is open
  std::condition_variable done_cv_;  // caller: all workers left the region
  Job* job_ = nullptr;               // open region, or nullptr
  uint64_t job_generation_ = 0;
  uint32_t workers_in_job_ = 0;
  uint32_t job_worker_limit_ = 0;
  std::exception_ptr first_exception_;
  bool shutdown_ = false;

  std::mutex submit_mu_;  // serializes concurrent ParallelFor callers
};

}  // namespace mel::util

#endif  // MEL_UTIL_THREAD_POOL_H_

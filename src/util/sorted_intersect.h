#ifndef MEL_UTIL_SORTED_INTERSECT_H_
#define MEL_UTIL_SORTED_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "util/simd/simd.h"

namespace mel::util {

/// Size ratio beyond which galloping beats the linear merge. Shared by
/// the WLM inlink intersection and the 2-hop count-only query path so
/// both hot paths dispatch on the same empirical constant.
inline constexpr size_t kGallopRatio = 16;

/// Sorted-list intersection by linear merge. Both spans must be sorted
/// ascending; duplicates (if any) are counted pairwise like
/// std::set_intersection.
template <typename T>
uint32_t MergeIntersectCount(std::span<const T> small,
                             std::span<const T> large) {
  uint32_t count = 0;
  size_t i = 0, j = 0;
  while (i < small.size() && j < large.size()) {
    if (small[i] < large[j]) {
      ++i;
    } else if (small[i] > large[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Galloping intersection for skewed sizes: for each id of the short
/// list, exponential-search a bracket in the long list from the previous
/// position, then binary-search inside it — O(|small| * log(|large|))
/// instead of O(|small| + |large|).
template <typename T>
uint32_t GallopIntersectCount(std::span<const T> small,
                              std::span<const T> large) {
  uint32_t count = 0;
  size_t lo = 0;
  for (T x : small) {
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, large.size());
    const auto* it = std::lower_bound(large.data() + lo, large.data() + hi, x);
    lo = static_cast<size_t>(it - large.data());
    if (lo == large.size()) break;
    if (large[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

/// True for element types the vectorized kernel layer handles: 32-bit
/// unsigned integers (NodeId, EntityId, and friends).
template <typename T>
inline constexpr bool kSimdIntersectable =
    std::is_integral_v<T> && std::is_unsigned_v<T> && sizeof(T) == 4;

/// Dispatching entry point: swaps so the smaller span leads, gallops when
/// the size ratio crosses kGallopRatio, merges otherwise. 32-bit unsigned
/// element types route through the runtime-dispatched vectorized kernels
/// (util/simd/simd.h) — same ratio split, bit-identical counts; other
/// types keep the portable templates above.
template <typename T>
uint32_t SortedIntersectCount(std::span<const T> a, std::span<const T> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if constexpr (kSimdIntersectable<T>) {
    const auto* pa = reinterpret_cast<const uint32_t*>(a.data());
    const auto* pb = reinterpret_cast<const uint32_t*>(b.data());
    if (b.size() / a.size() >= kGallopRatio) {
      return simd::GallopIntersectCountU32(pa, a.size(), pb, b.size());
    }
    return simd::MergeIntersectCountU32(pa, a.size(), pb, b.size());
  } else {
    if (b.size() / a.size() >= kGallopRatio) {
      return GallopIntersectCount(a, b);
    }
    return MergeIntersectCount(a, b);
  }
}

}  // namespace mel::util

#endif  // MEL_UTIL_SORTED_INTERSECT_H_

#ifndef MEL_UTIL_ARENA_REF_H_
#define MEL_UTIL_ARENA_REF_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace mel::util {

/// \brief A contiguous read-only arena that either owns its storage
/// (heap-built or copy-loaded indexes) or views someone else's (a
/// read-only file mapping).
///
/// Query code sees one thing — `std::span<const T>` — regardless of
/// where the bytes live, which is what lets the zero-copy MEL3 load bind
/// the label arenas straight into an `MmapFile` without touching the hot
/// path. Whoever binds a view is responsible for keeping the backing
/// storage alive (indexes pin the mapping with a `shared_ptr`).
///
/// Copy/move are well-defined in both states: moving an owned arena
/// transfers the vector's heap buffer (so the view stays valid), copying
/// one deep-copies and rebinds; view-state arenas copy/move the span.
template <typename T>
class ArenaRef {
 public:
  ArenaRef() = default;

  /// Takes ownership of `storage`; the view covers it.
  void Own(std::vector<T> storage) {
    owned_ = std::move(storage);
    owns_ = true;
    view_ = owned_;
  }

  /// Binds an external view (e.g. into a file mapping) and releases any
  /// owned storage.
  void BindView(std::span<const T> view) {
    owned_ = {};
    owns_ = false;
    view_ = view;
  }

  ArenaRef(const ArenaRef& other) { CopyFrom(other); }
  ArenaRef& operator=(const ArenaRef& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  ArenaRef(ArenaRef&& other) noexcept { MoveFrom(std::move(other)); }
  ArenaRef& operator=(ArenaRef&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  std::span<const T> view() const { return view_; }
  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }

  /// True when this arena owns its bytes (empty arenas trivially do).
  bool owns_storage() const { return owns_ || view_.empty(); }

 private:
  void CopyFrom(const ArenaRef& other) {
    if (other.owns_) {
      Own(std::vector<T>(other.owned_));
    } else {
      owned_ = {};
      owns_ = false;
      view_ = other.view_;
    }
  }

  void MoveFrom(ArenaRef&& other) noexcept {
    // A moved std::vector keeps its heap buffer, so re-deriving the view
    // from the landed vector is equivalent to copying the span — but
    // doing it explicitly keeps the invariant obvious.
    owned_ = std::move(other.owned_);
    owns_ = other.owns_;
    view_ = owns_ ? std::span<const T>(owned_) : other.view_;
    other.owned_ = {};
    other.owns_ = false;
    other.view_ = {};
  }

  std::vector<T> owned_;
  std::span<const T> view_;
  bool owns_ = false;
};

}  // namespace mel::util

#endif  // MEL_UTIL_ARENA_REF_H_

#ifndef MEL_SOCIAL_INFLUENTIAL_INDEX_H_
#define MEL_SOCIAL_INFLUENTIAL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kb/complemented_kb.h"
#include "kb/types.h"
#include "social/influence.h"

namespace mel::social {

/// \brief Offline store of the most influential users per
/// (surface form, candidate entity) pair — the "collections of most
/// influential users broadcasting about each entity" that the paper's
/// knowledge-acquisition step (Sec. 3.2.1) materializes so online
/// inference does not rank whole communities per query.
///
/// Influence depends on the mention's candidate set E_m (the idf /
/// entropy terms range over the co-candidates), so entries are keyed by
/// surface id, not by entity alone.
///
/// The index can be refreshed after online feedback: Invalidate(entity)
/// drops every cached entry involving the entity, and the next lookup
/// recomputes it from the complemented knowledgebase.
class InfluentialUserIndex {
 public:
  /// \param ckb complemented knowledgebase (must outlive the index)
  /// \param method influence estimator (tf-idf or entropy)
  /// \param top_k users kept per (surface, candidate); 0 = whole
  ///        community
  InfluentialUserIndex(const kb::ComplementedKnowledgebase* ckb,
                       InfluenceMethod method, uint32_t top_k);

  /// Pre-computes entries for every surface form of the knowledgebase
  /// (the offline pass). Optional: lookups fill the cache lazily.
  void PrecomputeAll();

  /// The top influential users of `entity` in the context of the
  /// candidate set of `surface_id`. Computed and cached on first use.
  const std::vector<InfluentialUser>& Get(uint32_t surface_id,
                                          kb::EntityId entity);

  /// Drops every cached entry whose surface has `entity` among its
  /// candidates. Call after feedback links change the entity's community.
  void Invalidate(kb::EntityId entity);

  size_t CachedEntries() const;

 private:
  struct SurfaceCache {
    bool valid = false;
    // Aligned with the surface's candidate list.
    std::vector<std::vector<InfluentialUser>> per_candidate;
  };

  void FillSurface(uint32_t surface_id);

  const kb::ComplementedKnowledgebase* ckb_;
  InfluenceEstimator estimator_;
  uint32_t top_k_;
  std::vector<SurfaceCache> cache_;
  // entity -> surfaces it participates in (built once at construction).
  std::unordered_map<kb::EntityId, std::vector<uint32_t>> entity_surfaces_;
};

}  // namespace mel::social

#endif  // MEL_SOCIAL_INFLUENTIAL_INDEX_H_

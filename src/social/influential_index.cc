#include "social/influential_index.h"

#include "util/logging.h"
#include "util/metrics.h"

namespace mel::social {

namespace {

struct IndexMetrics {
  metrics::Counter* hits;
  metrics::Counter* misses;
  metrics::Counter* invalidations;
};

const IndexMetrics& GetIndexMetrics() {
  static const IndexMetrics m = [] {
    auto& reg = metrics::Registry();
    IndexMetrics im;
    im.hits = reg.GetCounter("social.influential_index.hits_total");
    im.misses = reg.GetCounter("social.influential_index.misses_total");
    im.invalidations =
        reg.GetCounter("social.influential_index.invalidations_total");
    return im;
  }();
  return m;
}

}  // namespace

InfluentialUserIndex::InfluentialUserIndex(
    const kb::ComplementedKnowledgebase* ckb, InfluenceMethod method,
    uint32_t top_k)
    : ckb_(ckb), estimator_(ckb, method), top_k_(top_k) {
  MEL_CHECK(ckb != nullptr);
  const kb::Knowledgebase& kbase = ckb->base();
  cache_.resize(kbase.surfaces().size());
  for (uint32_t sid = 0; sid < kbase.surfaces().size(); ++sid) {
    for (const kb::Candidate& c : kbase.CandidatesBySurfaceId(sid)) {
      entity_surfaces_[c.entity].push_back(sid);
    }
  }
}

void InfluentialUserIndex::FillSurface(uint32_t surface_id) {
  SurfaceCache& entry = cache_[surface_id];
  auto candidates = ckb_->base().CandidatesBySurfaceId(surface_id);
  std::vector<kb::EntityId> entities;
  entities.reserve(candidates.size());
  for (const kb::Candidate& c : candidates) entities.push_back(c.entity);
  entry.per_candidate.assign(candidates.size(), {});
  for (size_t i = 0; i < candidates.size(); ++i) {
    entry.per_candidate[i] =
        estimator_.TopInfluential(entities[i], entities, top_k_);
  }
  entry.valid = true;
}

void InfluentialUserIndex::PrecomputeAll() {
  for (uint32_t sid = 0; sid < cache_.size(); ++sid) {
    if (!cache_[sid].valid) FillSurface(sid);
  }
}

const std::vector<InfluentialUser>& InfluentialUserIndex::Get(
    uint32_t surface_id, kb::EntityId entity) {
  MEL_CHECK(surface_id < cache_.size());
  const IndexMetrics& im = GetIndexMetrics();
  if (!cache_[surface_id].valid) {
    im.misses->Increment();
    FillSurface(surface_id);
  } else {
    im.hits->Increment();
  }
  auto candidates = ckb_->base().CandidatesBySurfaceId(surface_id);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].entity == entity) {
      return cache_[surface_id].per_candidate[i];
    }
  }
  MEL_CHECK_MSG(false, "entity is not a candidate of the surface");
  static const std::vector<InfluentialUser> kEmpty;
  return kEmpty;
}

void InfluentialUserIndex::Invalidate(kb::EntityId entity) {
  auto it = entity_surfaces_.find(entity);
  if (it == entity_surfaces_.end()) return;
  GetIndexMetrics().invalidations->Increment();
  for (uint32_t sid : it->second) {
    cache_[sid].valid = false;
    cache_[sid].per_candidate.clear();
  }
}

size_t InfluentialUserIndex::CachedEntries() const {
  size_t count = 0;
  for (const auto& entry : cache_) {
    if (entry.valid) count += entry.per_candidate.size();
  }
  return count;
}

}  // namespace mel::social

#include "social/influence.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mel::social {

namespace {

// Eq. 7 divides by the entropy, which is 0 for a perfectly discriminative
// user. An additive smoothing of 1 keeps the score finite and bounded in
// (0, 1], preserving the ranking "focused users first, then by tweet
// share" without letting zero-entropy users dwarf everyone else.
constexpr double kEntropySmoothing = 1.0;

}  // namespace

InfluenceEstimator::InfluenceEstimator(
    const kb::ComplementedKnowledgebase* ckb, InfluenceMethod method)
    : ckb_(ckb), method_(method) {
  MEL_CHECK(ckb != nullptr);
}

double InfluenceEstimator::Discriminativeness(
    kb::UserId u, std::span<const kb::EntityId> candidates) const {
  if (method_ == InfluenceMethod::kTfIdf) {
    // log(|E_m| / |E_m^u|): how unique u's interest is among candidates.
    uint32_t mentioned = 0;
    for (kb::EntityId e : candidates) {
      if (ckb_->UserTweetCount(e, u) > 0) ++mentioned;
    }
    if (mentioned == 0) return 0;
    return std::log(static_cast<double>(candidates.size()) / mentioned);
  }
  // Entropy of u's tweet distribution over the candidates (Eq. 7).
  double total = 0;
  for (kb::EntityId e : candidates) total += ckb_->UserTweetCount(e, u);
  if (total == 0) return 0;
  double entropy = 0;
  for (kb::EntityId e : candidates) {
    uint32_t c = ckb_->UserTweetCount(e, u);
    if (c == 0) continue;
    double p = c / total;
    entropy -= p * std::log(p);
  }
  return 1.0 / (entropy + kEntropySmoothing);
}

double InfluenceEstimator::Influence(
    kb::UserId u, kb::EntityId entity,
    std::span<const kb::EntityId> candidates) const {
  uint32_t community_tweets = ckb_->LinkedTweetCount(entity);
  if (community_tweets == 0) return 0;
  uint32_t user_tweets = ckb_->UserTweetCount(entity, u);
  if (user_tweets == 0) return 0;
  double share = static_cast<double>(user_tweets) / community_tweets;
  return share * Discriminativeness(u, candidates);
}

std::vector<InfluentialUser> InfluenceEstimator::TopInfluential(
    kb::EntityId entity, std::span<const kb::EntityId> candidates,
    uint32_t top_k) const {
  std::vector<InfluentialUser> scored;
  auto community = ckb_->Community(entity);
  scored.reserve(community.size());
  const double inv_total =
      community.empty() ? 0
                        : 1.0 / ckb_->LinkedTweetCount(entity);
  for (const auto& [user, count] : community) {
    double influence =
        count * inv_total * Discriminativeness(user, candidates);
    scored.push_back(InfluentialUser{user, influence});
  }
  auto by_influence = [](const InfluentialUser& a, const InfluentialUser& b) {
    if (a.influence != b.influence) return a.influence > b.influence;
    return a.user < b.user;  // deterministic tie-break
  };
  if (top_k != 0 && top_k < scored.size()) {
    std::partial_sort(scored.begin(), scored.begin() + top_k, scored.end(),
                      by_influence);
    scored.resize(top_k);
  } else {
    std::sort(scored.begin(), scored.end(), by_influence);
  }
  return scored;
}

}  // namespace mel::social

#ifndef MEL_SOCIAL_USER_INTEREST_H_
#define MEL_SOCIAL_USER_INTEREST_H_

#include <span>

#include "kb/types.h"
#include "reach/weighted_reachability.h"
#include "social/influence.h"

namespace mel::social {

/// \brief Computes S_in(u, e): user u's interest in entity e as her
/// average weighted reachability to the most influential users of e's
/// community (Eq. 8; Eq. 3 is the special case top_k = 0, i.e., the whole
/// community).
///
/// User ids must coincide with node ids of the followee-follower network
/// behind the reachability backend.
class UserInterestScorer {
 public:
  /// Both dependencies must outlive this object.
  UserInterestScorer(const InfluenceEstimator* influence,
                     const reach::WeightedReachability* reachability,
                     uint32_t top_k_influential);

  /// S_in(u, e) in [0, 1] under candidate set `candidates`.
  double Interest(kb::UserId u, kb::EntityId entity,
                  std::span<const kb::EntityId> candidates) const;

  /// Eq. 8 with an explicit, pre-selected influential-user set.
  double InterestOver(kb::UserId u,
                      std::span<const InfluentialUser> influential) const;

  uint32_t top_k_influential() const { return top_k_; }
  void set_top_k_influential(uint32_t k) { top_k_ = k; }

 private:
  const InfluenceEstimator* influence_;
  const reach::WeightedReachability* reach_;
  uint32_t top_k_;
};

}  // namespace mel::social

#endif  // MEL_SOCIAL_USER_INTEREST_H_

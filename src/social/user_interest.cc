#include "social/user_interest.h"

#include "util/logging.h"

namespace mel::social {

UserInterestScorer::UserInterestScorer(
    const InfluenceEstimator* influence,
    const reach::WeightedReachability* reachability,
    uint32_t top_k_influential)
    : influence_(influence), reach_(reachability), top_k_(top_k_influential) {
  MEL_CHECK(influence != nullptr && reachability != nullptr);
}

double UserInterestScorer::Interest(
    kb::UserId u, kb::EntityId entity,
    std::span<const kb::EntityId> candidates) const {
  auto influential = influence_->TopInfluential(entity, candidates, top_k_);
  return InterestOver(u, influential);
}

double UserInterestScorer::InterestOver(
    kb::UserId u, std::span<const InfluentialUser> influential) const {
  if (influential.empty()) return 0;
  double total = 0;
  for (const InfluentialUser& v : influential) {
    // Eq. 4 only divides |F_uv|, so the count-only fast path suffices;
    // ScoreOnly is bitwise-equal to Score on every backend.
    total += reach_->ScoreOnly(u, v.user);
  }
  return total / static_cast<double>(influential.size());
}

}  // namespace mel::social

#ifndef MEL_SOCIAL_INFLUENCE_H_
#define MEL_SOCIAL_INFLUENCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kb/complemented_kb.h"
#include "kb/types.h"

namespace mel::social {

/// Which user-influence estimator to use (Sec. 4.1.2).
enum class InfluenceMethod {
  /// Eq. 6: tweet share times idf over the candidate entity set. Penalizes
  /// users who mention several candidates at all, however rarely.
  kTfIdf,
  /// Eq. 7: tweet share divided by the entropy of the user's tweet
  /// distribution over candidates. Tolerates incidental postings about
  /// other candidates.
  kEntropy,
};

/// \brief One influential user with her influence score.
struct InfluentialUser {
  kb::UserId user = kb::kInvalidUser;
  double influence = 0;
};

/// \brief Estimates user influence within entity communities and extracts
/// the most influential users (Sec. 4.1.2).
///
/// Influence is defined relative to a mention's candidate entity set E_m:
/// a user is influential for candidate e if she contributes many of e's
/// tweets AND discriminates e from the other candidates.
class InfluenceEstimator {
 public:
  /// The complemented knowledgebase must outlive this object.
  InfluenceEstimator(const kb::ComplementedKnowledgebase* ckb,
                     InfluenceMethod method);

  /// Inf(u, U_e) of Eq. 6 or Eq. 7, in the context of candidate set
  /// `candidates` (which must contain `entity`).
  double Influence(kb::UserId u, kb::EntityId entity,
                   std::span<const kb::EntityId> candidates) const;

  /// The top_k most influential users of entity's community U_e* under
  /// the candidate set, sorted by descending influence. Fewer are
  /// returned when the community is smaller than top_k; top_k == 0 means
  /// "the whole community" (ranked).
  std::vector<InfluentialUser> TopInfluential(
      kb::EntityId entity, std::span<const kb::EntityId> candidates,
      uint32_t top_k) const;

  InfluenceMethod method() const { return method_; }

 private:
  double Discriminativeness(kb::UserId u,
                            std::span<const kb::EntityId> candidates) const;

  const kb::ComplementedKnowledgebase* ckb_;
  InfluenceMethod method_;
};

}  // namespace mel::social

#endif  // MEL_SOCIAL_INFLUENCE_H_

#include "kb/knowledgebase.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace mel::kb {

uint32_t Vocabulary::Intern(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

uint32_t Vocabulary::Find(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kMissing : it->second;
}

std::string Knowledgebase::NormalizeSurface(std::string_view surface) {
  auto tokens = text::Tokenize(surface);
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += tokens[i].text;
  }
  return out;
}

EntityId Knowledgebase::AddEntity(
    std::string name, EntityCategory category,
    const std::vector<std::string>& description_words) {
  MEL_CHECK(!finalized_);
  EntityRecord rec;
  rec.name = std::move(name);
  rec.category = category;
  rec.description.reserve(description_words.size());
  for (const auto& w : description_words) {
    rec.description.push_back(vocab_.Intern(w));
  }
  entities_.push_back(std::move(rec));
  inlinks_.emplace_back();
  outlinks_.emplace_back();
  return static_cast<EntityId>(entities_.size() - 1);
}

void Knowledgebase::AddSurfaceForm(std::string_view surface, EntityId entity,
                                   uint32_t anchor_count) {
  MEL_CHECK(!finalized_);
  MEL_CHECK(entity < entities_.size());
  std::string norm = NormalizeSurface(surface);
  if (norm.empty()) return;
  auto [it, inserted] =
      surface_index_.try_emplace(norm, static_cast<uint32_t>(surfaces_.size()));
  if (inserted) {
    surfaces_.push_back(norm);
    surface_records_.emplace_back();
  }
  auto& cands = surface_records_[it->second].candidates;
  for (auto& c : cands) {
    if (c.entity == entity) {
      c.anchor_count += anchor_count;
      return;
    }
  }
  cands.push_back(Candidate{entity, anchor_count});
}

void Knowledgebase::AddHyperlink(EntityId from, EntityId to) {
  MEL_CHECK(!finalized_);
  MEL_CHECK(from < entities_.size() && to < entities_.size());
  if (from == to) return;
  inlinks_[to].push_back(from);
  outlinks_[from].push_back(to);
}

void Knowledgebase::Finalize() {
  if (finalized_) return;
  for (auto& rec : surface_records_) {
    std::stable_sort(rec.candidates.begin(), rec.candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.anchor_count > b.anchor_count;
                     });
  }
  for (auto& links : inlinks_) {
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
  }
  for (auto& links : outlinks_) {
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
  }
  finalized_ = true;
}

std::span<const Candidate> Knowledgebase::Candidates(
    std::string_view surface) const {
  MEL_CHECK(finalized_);
  auto it = surface_index_.find(NormalizeSurface(surface));
  if (it == surface_index_.end()) return {};
  return surface_records_[it->second].candidates;
}

bool Knowledgebase::HasSurface(std::string_view surface) const {
  return surface_index_.contains(NormalizeSurface(surface));
}

uint32_t Knowledgebase::SurfaceId(std::string_view surface) const {
  auto it = surface_index_.find(NormalizeSurface(surface));
  return it == surface_index_.end() ? kInvalidSurface : it->second;
}

std::span<const Candidate> Knowledgebase::CandidatesBySurfaceId(
    uint32_t surface_id) const {
  MEL_CHECK(finalized_);
  MEL_CHECK(surface_id < surface_records_.size());
  return surface_records_[surface_id].candidates;
}

namespace {
constexpr uint32_t kKbMagic = 0x4d454c4b;  // "MELK"
constexpr uint32_t kKbVersion = 1;
}  // namespace

Status Knowledgebase::Save(const std::string& path) const {
  if (!finalized_) {
    return Status::FailedPrecondition("knowledgebase is not finalized");
  }
  BinaryWriter writer(path);
  writer.WriteU32(kKbMagic);
  writer.WriteU32(kKbVersion);

  writer.WriteU64(vocab_.size());
  for (uint32_t w = 0; w < vocab_.size(); ++w) {
    writer.WriteString(vocab_.Word(w));
  }

  writer.WriteU64(entities_.size());
  for (const EntityRecord& rec : entities_) {
    writer.WriteString(rec.name);
    writer.WriteU8(static_cast<uint8_t>(rec.category));
    writer.WriteVector(rec.description);
  }

  writer.WriteU64(surfaces_.size());
  for (uint32_t sid = 0; sid < surfaces_.size(); ++sid) {
    writer.WriteString(surfaces_[sid]);
    const auto& cands = surface_records_[sid].candidates;
    writer.WriteU64(cands.size());
    for (const Candidate& c : cands) {
      writer.WriteU32(c.entity);
      writer.WriteU32(c.anchor_count);
    }
  }

  for (const auto& links : outlinks_) writer.WriteVector(links);
  return writer.Finish();
}

Result<Knowledgebase> Knowledgebase::Load(const std::string& path) {
  BinaryReader reader(path);
  uint32_t magic = reader.ReadU32();
  uint32_t version = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (magic != kKbMagic) {
    return Status::InvalidArgument("not a knowledgebase file");
  }
  if (version != kKbVersion) {
    return Status::InvalidArgument("unsupported knowledgebase version");
  }

  Knowledgebase kb;
  uint64_t vocab_size = reader.ReadU64();
  if (!reader.status().ok() || vocab_size > BinaryReader::kMaxElements) {
    return Status::InvalidArgument("corrupt vocabulary");
  }
  for (uint64_t w = 0; w < vocab_size; ++w) {
    kb.vocab_.Intern(reader.ReadString());
    if (!reader.status().ok()) return reader.status();
  }

  uint64_t num_entities = reader.ReadU64();
  if (!reader.status().ok() || num_entities > BinaryReader::kMaxElements) {
    return Status::InvalidArgument("corrupt entity count");
  }
  for (uint64_t e = 0; e < num_entities; ++e) {
    EntityRecord rec;
    rec.name = reader.ReadString();
    uint8_t category = reader.ReadU8();
    if (category >= kNumEntityCategories) {
      return Status::InvalidArgument("corrupt entity category");
    }
    rec.category = static_cast<EntityCategory>(category);
    rec.description = reader.ReadVector<uint32_t>();
    if (!reader.status().ok()) return reader.status();
    for (uint32_t token : rec.description) {
      if (token >= kb.vocab_.size()) {
        return Status::InvalidArgument("description token out of range");
      }
    }
    kb.entities_.push_back(std::move(rec));
    kb.inlinks_.emplace_back();
    kb.outlinks_.emplace_back();
  }

  uint64_t num_surfaces = reader.ReadU64();
  if (!reader.status().ok() || num_surfaces > BinaryReader::kMaxElements) {
    return Status::InvalidArgument("corrupt surface count");
  }
  for (uint64_t sid = 0; sid < num_surfaces; ++sid) {
    std::string surface = reader.ReadString();
    uint64_t num_cands = reader.ReadU64();
    if (!reader.status().ok() || num_cands > BinaryReader::kMaxElements) {
      return Status::InvalidArgument("corrupt candidate count");
    }
    for (uint64_t c = 0; c < num_cands; ++c) {
      EntityId entity = reader.ReadU32();
      uint32_t anchors = reader.ReadU32();
      if (!reader.status().ok()) return reader.status();
      if (entity >= kb.entities_.size()) {
        return Status::InvalidArgument("candidate entity out of range");
      }
      kb.AddSurfaceForm(surface, entity, anchors);
    }
  }

  for (EntityId e = 0; e < kb.entities_.size(); ++e) {
    auto targets = reader.ReadVector<EntityId>();
    if (!reader.status().ok()) return reader.status();
    for (EntityId t : targets) {
      if (t >= kb.entities_.size()) {
        return Status::InvalidArgument("hyperlink target out of range");
      }
      kb.AddHyperlink(e, t);
    }
  }
  if (!reader.status().ok()) return reader.status();
  kb.Finalize();
  return kb;
}

std::span<const EntityId> Knowledgebase::Inlinks(EntityId e) const {
  MEL_CHECK(finalized_);
  return inlinks_[e];
}

std::span<const EntityId> Knowledgebase::Outlinks(EntityId e) const {
  MEL_CHECK(finalized_);
  return outlinks_[e];
}

}  // namespace mel::kb

#ifndef MEL_KB_WLM_H_
#define MEL_KB_WLM_H_

#include <cstdint>

#include "kb/knowledgebase.h"
#include "kb/types.h"

namespace mel::kb {

/// \brief Wikipedia Link-based Measure (Witten & Milne), Eq. 10 of the
/// paper: topical relatedness of two entities from the overlap of the
/// article sets linking to them.
///
///   Rel(e_i, e_j) = 1 - (log(max(|A_i|,|A_j|)) - log(|A_i ∩ A_j|))
///                       / (log(|A|) - log(min(|A_i|,|A_j|)))
///
/// Values are clamped to [0, 1]; pairs with empty inlink sets or empty
/// intersection score 0.
class WlmRelatedness {
 public:
  /// The knowledgebase must be finalized and outlive this object.
  explicit WlmRelatedness(const Knowledgebase* kb);

  /// Topical relatedness in [0, 1].
  double Relatedness(EntityId a, EntityId b) const;

  /// |A_a ∩ A_b|: number of articles linking to both.
  uint32_t InlinkIntersection(EntityId a, EntityId b) const;

 private:
  const Knowledgebase* kb_;
  double log_total_articles_;
};

}  // namespace mel::kb

#endif  // MEL_KB_WLM_H_

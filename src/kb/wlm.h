#ifndef MEL_KB_WLM_H_
#define MEL_KB_WLM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kb/knowledgebase.h"
#include "kb/types.h"

namespace mel::kb {

/// \brief Wikipedia Link-based Measure (Witten & Milne), Eq. 10 of the
/// paper: topical relatedness of two entities from the overlap of the
/// article sets linking to them.
///
///   Rel(e_i, e_j) = 1 - (log(max(|A_i|,|A_j|)) - log(|A_i ∩ A_j|))
///                       / (log(|A|) - log(min(|A_i|,|A_j|)))
///
/// Values are clamped to [0, 1]; pairs with empty inlink sets or empty
/// intersection score 0.
///
/// The constructor copies the knowledgebase's sorted inlink lists into
/// one contiguous CSR arena, so the millions of intersections of a
/// network build walk cache-line-packed ids. Skewed pairs (one list much
/// longer than the other) switch from the linear merge to a galloping
/// search over the longer list.
class WlmRelatedness {
 public:
  /// The knowledgebase must be finalized and outlive this object.
  explicit WlmRelatedness(const Knowledgebase* kb);

  /// Topical relatedness in [0, 1].
  double Relatedness(EntityId a, EntityId b) const;

  /// |A_a ∩ A_b|: number of articles linking to both.
  uint32_t InlinkIntersection(EntityId a, EntityId b) const;

 private:
  std::span<const EntityId> Inlinks(EntityId e) const {
    return {flat_inlinks_.data() + inlink_offsets_[e],
            flat_inlinks_.data() + inlink_offsets_[e + 1]};
  }

  const Knowledgebase* kb_;
  double log_total_articles_;
  std::vector<uint64_t> inlink_offsets_;
  std::vector<EntityId> flat_inlinks_;
};

}  // namespace mel::kb

#endif  // MEL_KB_WLM_H_

#include "kb/complemented_kb.h"

#include <algorithm>

#include "util/logging.h"
#include "util/serialize.h"

namespace mel::kb {

ComplementedKnowledgebase::ComplementedKnowledgebase(const Knowledgebase* kb)
    : kb_(kb) {
  MEL_CHECK(kb != nullptr && kb->finalized());
  per_entity_.resize(kb->num_entities());
}

void ComplementedKnowledgebase::AddLink(EntityId entity,
                                        const Posting& posting) {
  MEL_CHECK(entity < per_entity_.size());
  EntityPostings& ep = per_entity_[entity];
  if (!ep.postings.empty() && posting.time < ep.postings.back().time) {
    ep.dirty = true;
  }
  ep.postings.push_back(posting);
  auto [it, inserted] = ep.user_index.try_emplace(
      posting.user, static_cast<uint32_t>(ep.community.size()));
  if (inserted) {
    ep.community.emplace_back(posting.user, 1u);
  } else {
    ++ep.community[it->second].second;
  }
  ++total_links_;
  ++version_;
}

void ComplementedKnowledgebase::EnsureSorted(EntityId e) const {
  EntityPostings& ep = per_entity_[e];
  if (ep.dirty) {
    std::stable_sort(ep.postings.begin(), ep.postings.end(),
                     [](const Posting& a, const Posting& b) {
                       return a.time < b.time;
                     });
    ep.dirty = false;
  }
}

void ComplementedKnowledgebase::EnsureAllSorted() const {
  for (EntityId e = 0; e < per_entity_.size(); ++e) EnsureSorted(e);
}

uint32_t ComplementedKnowledgebase::LinkedTweetCount(EntityId e) const {
  MEL_CHECK(e < per_entity_.size());
  return static_cast<uint32_t>(per_entity_[e].postings.size());
}

uint32_t ComplementedKnowledgebase::RecentTweetCount(EntityId e,
                                                     Timestamp now,
                                                     Timestamp tau) const {
  MEL_CHECK(e < per_entity_.size());
  EnsureSorted(e);
  const auto& postings = per_entity_[e].postings;
  const Timestamp cutoff = now - tau;
  // First posting with time >= cutoff.
  auto lo = std::lower_bound(postings.begin(), postings.end(), cutoff,
                             [](const Posting& p, Timestamp t) {
                               return p.time < t;
                             });
  // Last posting with time <= now.
  auto hi = std::upper_bound(lo, postings.end(), now,
                             [](Timestamp t, const Posting& p) {
                               return t < p.time;
                             });
  return static_cast<uint32_t>(hi - lo);
}

uint32_t ComplementedKnowledgebase::UserTweetCount(EntityId e,
                                                   UserId u) const {
  MEL_CHECK(e < per_entity_.size());
  const EntityPostings& ep = per_entity_[e];
  auto it = ep.user_index.find(u);
  return it == ep.user_index.end() ? 0 : ep.community[it->second].second;
}

std::span<const std::pair<UserId, uint32_t>>
ComplementedKnowledgebase::Community(EntityId e) const {
  MEL_CHECK(e < per_entity_.size());
  return per_entity_[e].community;
}

namespace {
constexpr uint32_t kCkbMagic = 0x4d454c43;  // "MELC"
constexpr uint32_t kCkbVersion = 1;
}  // namespace

Status ComplementedKnowledgebase::Save(const std::string& path) const {
  EnsureAllSorted();
  BinaryWriter writer(path);
  writer.WriteU32(kCkbMagic);
  writer.WriteU32(kCkbVersion);
  writer.WriteU32(static_cast<uint32_t>(per_entity_.size()));
  for (const EntityPostings& ep : per_entity_) {
    writer.WriteU64(ep.postings.size());
    for (const Posting& p : ep.postings) {
      writer.WriteU32(p.tweet);
      writer.WriteU32(p.user);
      writer.WriteU64(static_cast<uint64_t>(p.time));
    }
  }
  return writer.Finish();
}

Result<ComplementedKnowledgebase> ComplementedKnowledgebase::Load(
    const std::string& path, const Knowledgebase* kb) {
  BinaryReader reader(path);
  uint32_t magic = reader.ReadU32();
  uint32_t version = reader.ReadU32();
  uint32_t num_entities = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (magic != kCkbMagic) {
    return Status::InvalidArgument("not a complemented-KB file");
  }
  if (version != kCkbVersion) {
    return Status::InvalidArgument("unsupported complemented-KB version");
  }
  if (num_entities != kb->num_entities()) {
    return Status::FailedPrecondition(
        "complemented KB was built for a different knowledgebase");
  }
  ComplementedKnowledgebase ckb(kb);
  for (EntityId e = 0; e < num_entities; ++e) {
    uint64_t count = reader.ReadU64();
    if (!reader.status().ok() || count > BinaryReader::kMaxElements) {
      return Status::InvalidArgument("corrupt posting count");
    }
    for (uint64_t i = 0; i < count; ++i) {
      Posting p;
      p.tweet = reader.ReadU32();
      p.user = reader.ReadU32();
      p.time = static_cast<Timestamp>(reader.ReadU64());
      if (!reader.status().ok()) return reader.status();
      ckb.AddLink(e, p);
    }
  }
  return ckb;
}

std::span<const Posting> ComplementedKnowledgebase::Postings(
    EntityId e) const {
  MEL_CHECK(e < per_entity_.size());
  EnsureSorted(e);
  return per_entity_[e].postings;
}

}  // namespace mel::kb

#ifndef MEL_KB_KNOWLEDGEBASE_H_
#define MEL_KB_KNOWLEDGEBASE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/types.h"
#include "util/status.h"

namespace mel::kb {

/// \brief Interns words to dense token ids (shared by entity descriptions
/// and the context-similarity features of the baselines).
class Vocabulary {
 public:
  /// Returns the id for the word, creating one if unseen.
  uint32_t Intern(std::string_view word);

  /// Returns the id, or kMissing when the word was never interned.
  uint32_t Find(std::string_view word) const;

  const std::string& Word(uint32_t id) const { return words_[id]; }
  size_t size() const { return words_.size(); }

  static constexpr uint32_t kMissing = static_cast<uint32_t>(-1);

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// \brief Immutable-after-Finalize knowledgebase: entities, surface forms,
/// mention->candidate mappings, and the inter-article hyperlink structure
/// (Definition 4 of the paper; Wikipedia in the original system).
///
/// Population order: AddEntity / AddSurfaceForm / AddHyperlink in any
/// interleaving, then Finalize() exactly once. Read accessors require a
/// finalized knowledgebase.
class Knowledgebase {
 public:
  struct EntityRecord {
    std::string name;            // canonical page title
    EntityCategory category = EntityCategory::kPerson;
    std::vector<uint32_t> description;  // token ids of the article text
  };

  Knowledgebase() = default;
  Knowledgebase(const Knowledgebase&) = delete;
  Knowledgebase& operator=(const Knowledgebase&) = delete;
  Knowledgebase(Knowledgebase&&) = default;
  Knowledgebase& operator=(Knowledgebase&&) = default;

  /// Creates an entity and returns its id. Descriptions are interned
  /// through vocab().
  EntityId AddEntity(std::string name, EntityCategory category,
                     const std::vector<std::string>& description_words);

  /// Maps a surface form (name variation, nickname, redirect, anchor text)
  /// to an entity. anchor_count is the number of times this anchor text
  /// pointed at this entity; repeat calls accumulate it.
  void AddSurfaceForm(std::string_view surface, EntityId entity,
                      uint32_t anchor_count);

  /// Records that article `from` hyperlinks to article `to`.
  void AddHyperlink(EntityId from, EntityId to);

  /// Sorts candidate lists and inlink sets; must be called once before any
  /// read accessor. Idempotent.
  void Finalize();

  // -- read accessors (require Finalize) ---------------------------------

  uint32_t num_entities() const {
    return static_cast<uint32_t>(entities_.size());
  }
  size_t num_surface_forms() const { return surface_index_.size(); }

  const EntityRecord& entity(EntityId e) const { return entities_[e]; }

  /// Candidate entities of the (normalized) surface form, sorted by
  /// descending anchor_count. Empty when the surface is unknown.
  std::span<const Candidate> Candidates(std::string_view surface) const;

  /// True iff the surface form exists in the knowledgebase.
  bool HasSurface(std::string_view surface) const;

  /// All registered surface forms (normalized) with their ids; the id is
  /// the index into this list and is stable after Finalize.
  const std::vector<std::string>& surfaces() const { return surfaces_; }

  /// Candidates by surface id (index into surfaces()).
  std::span<const Candidate> CandidatesBySurfaceId(uint32_t surface_id) const;

  /// Id of the (normalized) surface form, or kInvalidSurface if unknown.
  uint32_t SurfaceId(std::string_view surface) const;

  static constexpr uint32_t kInvalidSurface = static_cast<uint32_t>(-1);

  /// Articles linking TO entity e (the set A_e of Eq. 10), sorted.
  std::span<const EntityId> Inlinks(EntityId e) const;

  /// Articles entity e links to, sorted.
  std::span<const EntityId> Outlinks(EntityId e) const;

  Vocabulary& vocab() { return vocab_; }
  const Vocabulary& vocab() const { return vocab_; }

  bool finalized() const { return finalized_; }

  /// Persists the finalized knowledgebase (entities, vocabulary, surface
  /// forms, hyperlinks) to disk.
  Status Save(const std::string& path) const;

  /// Loads a knowledgebase written by Save; the result is finalized.
  static Result<Knowledgebase> Load(const std::string& path);

 private:
  struct SurfaceRecord {
    std::vector<Candidate> candidates;
  };

  static std::string NormalizeSurface(std::string_view surface);

  std::vector<EntityRecord> entities_;
  std::vector<std::string> surfaces_;
  std::vector<SurfaceRecord> surface_records_;
  std::unordered_map<std::string, uint32_t> surface_index_;
  std::vector<std::vector<EntityId>> inlinks_;
  std::vector<std::vector<EntityId>> outlinks_;
  Vocabulary vocab_;
  bool finalized_ = false;
};

}  // namespace mel::kb

#endif  // MEL_KB_KNOWLEDGEBASE_H_

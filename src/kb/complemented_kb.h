#ifndef MEL_KB_COMPLEMENTED_KB_H_
#define MEL_KB_COMPLEMENTED_KB_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "kb/knowledgebase.h"
#include "kb/types.h"

namespace mel::kb {

/// \brief The complemented knowledgebase (Definition 5): each entity is
/// associated with the list of tweets mentioning it, along with their
/// timestamps and authors. Derived data — the community U_e (Definition 6)
/// and per-user tweet counts |D_e^u| — is maintained incrementally so the
/// online-inference features (popularity Eq. 2, influence Eq. 6/7, recency
/// Eq. 9) read it in O(1)/O(log n).
///
/// Links may arrive out of timestamp order (offline complementation batches
/// are unordered); posting lists re-sort lazily on the first time-range
/// query after an out-of-order insert.
class ComplementedKnowledgebase {
 public:
  /// The base knowledgebase must be finalized and outlive this object.
  explicit ComplementedKnowledgebase(const Knowledgebase* kb);

  /// Records that the tweet mentions the entity (the result of offline
  /// collective linking, or an online user-confirmed link).
  void AddLink(EntityId entity, const Posting& posting);

  const Knowledgebase& base() const { return *kb_; }

  /// |D_e|: number of tweets linked to e.
  uint32_t LinkedTweetCount(EntityId e) const;

  /// |D_e^tau|: tweets linked to e with time in [now - tau, now].
  uint32_t RecentTweetCount(EntityId e, Timestamp now, Timestamp tau) const;

  /// |D_e^u|: tweets linked to e authored by u.
  uint32_t UserTweetCount(EntityId e, UserId u) const;

  /// The community U_e: distinct users tweeting about e, each with their
  /// tweet count |D_e^u|. Order is unspecified.
  std::span<const std::pair<UserId, uint32_t>> Community(EntityId e) const;

  /// Full posting list of e, sorted by time ascending.
  std::span<const Posting> Postings(EntityId e) const;

  /// Total number of links across all entities.
  uint64_t TotalLinks() const { return total_links_; }

  /// Monotonic mutation counter: bumped by every AddLink. Consumers that
  /// memoize derived quantities (e.g. the recency propagation cache) key
  /// their entries on this version so they invalidate exactly when the
  /// complemented knowledgebase changes.
  uint64_t version() const { return version_; }

  /// Sorts every dirty posting list now. Time-range queries normally
  /// re-sort lazily, which mutates shared state; calling this once makes
  /// all subsequent read accessors safe for concurrent use (as long as no
  /// AddLink runs in parallel).
  void EnsureAllSorted() const;

  /// Persists all posting lists to disk.
  Status Save(const std::string& path) const;

  /// Loads postings written by Save on top of the given base
  /// knowledgebase (entity count is validated).
  static Result<ComplementedKnowledgebase> Load(const std::string& path,
                                                const Knowledgebase* kb);

 private:
  struct EntityPostings {
    std::vector<Posting> postings;  // sorted by time when !dirty
    std::vector<std::pair<UserId, uint32_t>> community;
    std::unordered_map<UserId, uint32_t> user_index;  // user -> community idx
    bool dirty = false;
  };

  void EnsureSorted(EntityId e) const;

  const Knowledgebase* kb_;
  mutable std::vector<EntityPostings> per_entity_;
  uint64_t total_links_ = 0;
  uint64_t version_ = 0;
};

}  // namespace mel::kb

#endif  // MEL_KB_COMPLEMENTED_KB_H_

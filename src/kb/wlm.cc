#include "kb/wlm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mel::kb {

namespace {

// Sorted-list intersection by linear merge.
uint32_t MergeIntersect(std::span<const EntityId> small,
                        std::span<const EntityId> large) {
  uint32_t count = 0;
  size_t i = 0, j = 0;
  while (i < small.size() && j < large.size()) {
    if (small[i] < large[j]) {
      ++i;
    } else if (small[i] > large[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// Galloping intersection for skewed sizes: for each id of the short
// list, exponential-search a bracket in the long list from the previous
// position, then binary-search inside it — O(|small| * log(|large|))
// instead of O(|small| + |large|).
uint32_t GallopIntersect(std::span<const EntityId> small,
                         std::span<const EntityId> large) {
  uint32_t count = 0;
  size_t lo = 0;
  for (EntityId x : small) {
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, large.size());
    const auto* it =
        std::lower_bound(large.data() + lo, large.data() + hi, x);
    lo = static_cast<size_t>(it - large.data());
    if (lo == large.size()) break;
    if (large[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

// Size ratio beyond which galloping beats the linear merge.
constexpr size_t kGallopRatio = 16;

}  // namespace

WlmRelatedness::WlmRelatedness(const Knowledgebase* kb) : kb_(kb) {
  MEL_CHECK(kb != nullptr && kb->finalized());
  log_total_articles_ =
      std::log(std::max<uint32_t>(2, kb->num_entities()));
  const uint32_t n = kb->num_entities();
  inlink_offsets_.assign(n + 1, 0);
  for (EntityId e = 0; e < n; ++e) {
    inlink_offsets_[e + 1] = inlink_offsets_[e] + kb->Inlinks(e).size();
  }
  flat_inlinks_.resize(inlink_offsets_[n]);
  for (EntityId e = 0; e < n; ++e) {
    auto links = kb->Inlinks(e);
    std::copy(links.begin(), links.end(),
              flat_inlinks_.begin() +
                  static_cast<ptrdiff_t>(inlink_offsets_[e]));
  }
}

uint32_t WlmRelatedness::InlinkIntersection(EntityId a, EntityId b) const {
  auto ia = Inlinks(a);
  auto ib = Inlinks(b);
  if (ia.size() > ib.size()) std::swap(ia, ib);
  if (ia.empty()) return 0;
  if (ib.size() / ia.size() >= kGallopRatio) {
    return GallopIntersect(ia, ib);
  }
  return MergeIntersect(ia, ib);
}

double WlmRelatedness::Relatedness(EntityId a, EntityId b) const {
  if (a == b) return 1.0;
  const double na = static_cast<double>(Inlinks(a).size());
  const double nb = static_cast<double>(Inlinks(b).size());
  if (na == 0 || nb == 0) return 0.0;
  const double inter = static_cast<double>(InlinkIntersection(a, b));
  if (inter == 0) return 0.0;
  const double denom = log_total_articles_ - std::log(std::min(na, nb));
  if (denom <= 0) return 1.0;  // both linked from (nearly) every article
  const double rel =
      1.0 - (std::log(std::max(na, nb)) - std::log(inter)) / denom;
  return std::clamp(rel, 0.0, 1.0);
}

}  // namespace mel::kb

#include "kb/wlm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mel::kb {

WlmRelatedness::WlmRelatedness(const Knowledgebase* kb) : kb_(kb) {
  MEL_CHECK(kb != nullptr && kb->finalized());
  log_total_articles_ =
      std::log(std::max<uint32_t>(2, kb->num_entities()));
}

uint32_t WlmRelatedness::InlinkIntersection(EntityId a, EntityId b) const {
  auto ia = kb_->Inlinks(a);
  auto ib = kb_->Inlinks(b);
  uint32_t count = 0;
  size_t i = 0, j = 0;
  while (i < ia.size() && j < ib.size()) {
    if (ia[i] < ib[j]) {
      ++i;
    } else if (ia[i] > ib[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double WlmRelatedness::Relatedness(EntityId a, EntityId b) const {
  if (a == b) return 1.0;
  const double na = static_cast<double>(kb_->Inlinks(a).size());
  const double nb = static_cast<double>(kb_->Inlinks(b).size());
  if (na == 0 || nb == 0) return 0.0;
  const double inter = static_cast<double>(InlinkIntersection(a, b));
  if (inter == 0) return 0.0;
  const double denom = log_total_articles_ - std::log(std::min(na, nb));
  if (denom <= 0) return 1.0;  // both linked from (nearly) every article
  const double rel =
      1.0 - (std::log(std::max(na, nb)) - std::log(inter)) / denom;
  return std::clamp(rel, 0.0, 1.0);
}

}  // namespace mel::kb

#include "kb/wlm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/sorted_intersect.h"

namespace mel::kb {

WlmRelatedness::WlmRelatedness(const Knowledgebase* kb) : kb_(kb) {
  MEL_CHECK(kb != nullptr && kb->finalized());
  log_total_articles_ =
      std::log(std::max<uint32_t>(2, kb->num_entities()));
  const uint32_t n = kb->num_entities();
  inlink_offsets_.assign(n + 1, 0);
  for (EntityId e = 0; e < n; ++e) {
    inlink_offsets_[e + 1] = inlink_offsets_[e] + kb->Inlinks(e).size();
  }
  flat_inlinks_.resize(inlink_offsets_[n]);
  for (EntityId e = 0; e < n; ++e) {
    auto links = kb->Inlinks(e);
    std::copy(links.begin(), links.end(),
              flat_inlinks_.begin() +
                  static_cast<ptrdiff_t>(inlink_offsets_[e]));
  }
}

uint32_t WlmRelatedness::InlinkIntersection(EntityId a, EntityId b) const {
  return util::SortedIntersectCount(Inlinks(a), Inlinks(b));
}

double WlmRelatedness::Relatedness(EntityId a, EntityId b) const {
  if (a == b) return 1.0;
  const double na = static_cast<double>(Inlinks(a).size());
  const double nb = static_cast<double>(Inlinks(b).size());
  if (na == 0 || nb == 0) return 0.0;
  const double inter = static_cast<double>(InlinkIntersection(a, b));
  if (inter == 0) return 0.0;
  const double denom = log_total_articles_ - std::log(std::min(na, nb));
  if (denom <= 0) return 1.0;  // both linked from (nearly) every article
  const double rel =
      1.0 - (std::log(std::max(na, nb)) - std::log(inter)) / denom;
  return std::clamp(rel, 0.0, 1.0);
}

}  // namespace mel::kb

#ifndef MEL_KB_TYPES_H_
#define MEL_KB_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mel::kb {

/// Dense entity identifier (a knowledgebase article).
using EntityId = uint32_t;
/// Dense user identifier (a node of the followee-follower network).
using UserId = uint32_t;
/// Tweet identifier.
using TweetId = uint32_t;
/// Seconds since an arbitrary epoch. All corpus timestamps use this unit.
using Timestamp = int64_t;

inline constexpr EntityId kInvalidEntity =
    std::numeric_limits<EntityId>::max();
inline constexpr UserId kInvalidUser = std::numeric_limits<UserId>::max();

inline constexpr Timestamp kSecondsPerDay = 24 * 60 * 60;

/// \brief A microblog post.
struct Tweet {
  TweetId id = 0;
  UserId user = kInvalidUser;  // d.u in the paper
  Timestamp time = 0;          // d.t in the paper
  std::string text;
};

/// \brief One entry of an entity's posting list in the complemented
/// knowledgebase: a tweet known to mention the entity.
struct Posting {
  TweetId tweet = 0;
  UserId user = kInvalidUser;
  Timestamp time = 0;
};

/// \brief A candidate produced for a mention: entity plus the anchor
/// statistics used by popularity-style priors.
struct Candidate {
  EntityId entity = kInvalidEntity;
  /// Number of knowledgebase anchors mapping this surface to this entity
  /// (the "commonness" prior used by the TAGME-style baseline).
  uint32_t anchor_count = 0;
};

/// \brief Coarse entity category (Appendix C.1 of the paper).
enum class EntityCategory : uint8_t {
  kPerson = 0,
  kLocation,
  kCompany,
  kProduct,
  kMovieMusic,
};

inline const char* EntityCategoryName(EntityCategory c) {
  switch (c) {
    case EntityCategory::kPerson:
      return "Person";
    case EntityCategory::kLocation:
      return "Location";
    case EntityCategory::kCompany:
      return "Company";
    case EntityCategory::kProduct:
      return "Product";
    case EntityCategory::kMovieMusic:
      return "Movie&Music";
  }
  return "Unknown";
}

inline constexpr int kNumEntityCategories = 5;

}  // namespace mel::kb

#endif  // MEL_KB_TYPES_H_
